//! Cross-crate integration tests: the full system assembled end-to-end.

use dve::config::{Scheme, SystemConfig};
use dve::system::{run_workload, System};
use dve_workloads::catalog;

const OPS: u64 = 2_000;
const SEED: u64 = 0xD0E5_2021;

fn workload(name: &str) -> dve_workloads::WorkloadProfile {
    catalog()
        .into_iter()
        .find(|p| p.name == name)
        .expect("workload in catalog")
}

#[test]
fn full_system_is_deterministic_across_runs() {
    let p = workload("fft");
    let a = run_workload(&p, Scheme::DveDeny, OPS, SEED);
    let b = run_workload(&p, Scheme::DveDeny, OPS, SEED);
    assert_eq!(a.cycles, b.cycles);
    assert_eq!(a.traffic.total_bytes(), b.traffic.total_bytes());
    assert_eq!(a.engine.replica_reads, b.engine.replica_reads);
    assert_eq!(a.mem_ops, b.mem_ops);
}

#[test]
fn different_seeds_produce_different_timings() {
    let p = workload("fft");
    let a = run_workload(&p, Scheme::BaselineNuma, OPS, 1);
    let b = run_workload(&p, Scheme::BaselineNuma, OPS, 2);
    assert_ne!(a.cycles, b.cycles);
}

#[test]
fn deny_protocol_beats_baseline_on_every_top10_workload() {
    for p in catalog().iter().take(10) {
        let base = run_workload(p, Scheme::BaselineNuma, OPS, SEED);
        let deny = run_workload(p, Scheme::DveDeny, OPS, SEED);
        let speedup = deny.speedup_over(&base);
        assert!(speedup > 1.0, "{}: deny speedup {:.3}", p.name, speedup);
        assert!(
            deny.engine.replica_reads > 0,
            "{}: no replica reads",
            p.name
        );
    }
}

#[test]
fn dve_cuts_inter_socket_traffic() {
    let p = workload("backprop");
    let base = run_workload(&p, Scheme::BaselineNuma, OPS, SEED);
    for scheme in [Scheme::DveAllow, Scheme::DveDeny] {
        let r = run_workload(&p, scheme, OPS, SEED);
        let norm = r.traffic.normalized_to(&base.traffic);
        assert!(norm < 1.0, "{scheme:?}: traffic {norm:.3} not reduced");
    }
}

#[test]
fn replicas_stay_strongly_consistent_through_writebacks() {
    // Under Dvé every dirty writeback hits both memory copies: the
    // replica-channel write counters must track the home-channel ones.
    let p = workload("lbm"); // write-heavy
    let mut cfg = SystemConfig::table_ii(Scheme::DveDeny);
    cfg.ops_per_thread = OPS;
    cfg.warmup_per_thread = OPS / 10;
    // Tiny caches force writebacks.
    cfg.engine.llc_bytes = 64 * 1024;
    cfg.engine.l1_bytes = 4 * 1024;
    let r = System::new(cfg, &p, SEED).run();
    assert!(r.engine.writebacks > 0, "no writebacks despite tiny caches");
}

#[test]
fn sharing_classification_sums_to_one() {
    for p in catalog().iter().step_by(5) {
        let r = run_workload(p, Scheme::BaselineNuma, OPS, SEED);
        let sum: f64 = r.class_fractions.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9, "{}: fractions sum {sum}", p.name);
    }
}

#[test]
fn fig7_structure_separates_the_two_groups() {
    // Deny winners are read-dominated; allow winners are write-dominated
    // at the directory.
    let top = run_workload(&workload("backprop"), Scheme::BaselineNuma, OPS, SEED);
    let bottom = run_workload(&workload("lbm"), Scheme::BaselineNuma, OPS, SEED);
    assert!(
        top.class_fractions[0] > 0.5,
        "backprop should be private-read heavy"
    );
    assert!(
        bottom.class_fractions[3] > top.class_fractions[3],
        "lbm must show more private-rw than backprop"
    );
}

#[test]
fn intel_mirror_balances_reads_without_coherent_replication() {
    let p = workload("fft");
    let r = run_workload(&p, Scheme::IntelMirrorPlus, OPS, SEED);
    assert_eq!(
        r.engine.replica_reads, 0,
        "mirroring must not use the replica directory"
    );
    assert!(r.cycles > 0);
}

#[test]
fn dynamic_scheme_switches_policies() {
    let p = workload("backprop");
    let mut cfg = SystemConfig::table_ii(Scheme::DveDynamic);
    cfg.ops_per_thread = OPS;
    cfg.warmup_per_thread = 100;
    cfg.dynamic_window = 200;
    let r = System::new(cfg, &p, SEED).run();
    // The dynamic run completed all work with both machines exercised.
    assert_eq!(r.mem_ops, OPS * 16, "all measured ops executed");
    assert!(r.engine.replica_reads > 0);
}

#[test]
fn link_latency_sweep_moves_baseline_but_not_dve_much() {
    // Fig. 10's mechanism: Dvé's replica reads bypass the link, so its
    // absolute runtime moves far less with link latency than baseline's.
    let p = workload("xsbench");
    let run_at = |scheme, ns| {
        let mut cfg = SystemConfig::table_ii(scheme);
        cfg.ops_per_thread = OPS;
        cfg.warmup_per_thread = OPS / 10;
        cfg.link_latency = dve_sim::time::Nanos(ns);
        System::new(cfg, &p, SEED).run().cycles as f64
    };
    let base_delta = run_at(Scheme::BaselineNuma, 60) / run_at(Scheme::BaselineNuma, 30);
    let deny_delta = run_at(Scheme::DveDeny, 60) / run_at(Scheme::DveDeny, 30);
    assert!(
        base_delta > deny_delta,
        "baseline sensitivity {base_delta:.3} must exceed deny's {deny_delta:.3}"
    );
}

#[test]
fn energy_shows_dve_memory_overhead() {
    // Replication doubles the DRAM population: Dvé's absolute memory
    // energy must exceed baseline's for the same work.
    let p = workload("canneal");
    let base = run_workload(&p, Scheme::BaselineNuma, OPS, SEED);
    let deny = run_workload(&p, Scheme::DveDeny, OPS, SEED);
    assert!(deny.mem_energy_joules > base.mem_energy_joules);
}

#[test]
fn recovery_and_protocol_compose() {
    // The reliability claim end-to-end: a controller dies, every read of
    // the replicated region still returns data (as CEs), none machine-check.
    use dve::recovery::{RecoverableMemory, RecoveryOutcome};
    let mut mem = RecoverableMemory::new_dve_tsd();
    mem.primary_mut()
        .faults_mut()
        .fail(dve_dram::fault::FaultDomain::Controller);
    let mut t = 0;
    for i in 0..500u64 {
        let (outcome, done) = mem.read(i * 64, t);
        assert_ne!(outcome, RecoveryOutcome::MachineCheck, "read {i}");
        t = done;
    }
    assert_eq!(mem.stats().machine_checks, 0);
    assert_eq!(mem.stats().corrected, 500);
}

#[test]
fn verified_protocols_match_engine_behavior() {
    // The model checker and the performance engine implement the same
    // policies: absence semantics agree.
    use dve_coherence::replica_dir::{ReplicaDirectory, ReplicaPolicy};
    let allow = ReplicaDirectory::default_config(ReplicaPolicy::Allow);
    let deny = ReplicaDirectory::default_config(ReplicaPolicy::Deny);
    assert!(!allow.replica_readable(0), "allow: absence = no");
    assert!(deny.replica_readable(0), "deny: absence = yes");
    let a = dve_verify::check(dve_verify::Variant::Allow, 500_000);
    let d = dve_verify::check(dve_verify::Variant::Deny, 500_000);
    assert!(a.ok() && d.ok());
}

#[test]
fn table1_reliability_hierarchy() {
    // End-to-end reliability ordering the paper establishes.
    use dve_reliability::fit::ThermalMapping;
    use dve_reliability::model::ReliabilityModel;
    let m = ReliabilityModel::paper_defaults();
    let chipkill = m.chipkill();
    let dve = m.dve_tsd(ThermalMapping::Identity);
    let raim = m.raim();
    let dve_ck = m.dve_chipkill();
    assert!(dve.due < chipkill.due, "Dvé beats Chipkill on DUE");
    assert!(dve_ck.due < raim.due, "Dvé+Chipkill beats RAIM on DUE");
    assert!(dve.sdc < chipkill.sdc, "TSD detection crushes SDC");
}
