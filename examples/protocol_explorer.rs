//! Protocol explorer: watch the allow- and deny-based replica protocols
//! make decisions on a tiny hand-built access sequence, then exhaustively
//! verify both with the model checker (§V-C4).
//!
//! ```text
//! cargo run --release --example protocol_explorer
//! ```

use dve_coherence::engine::{EngineConfig, Mode, ProtocolEngine};
use dve_coherence::fabric::TestFabric;
use dve_coherence::replica_dir::ReplicaPolicy;
use dve_coherence::types::{ReqType, ServiceLevel};
use dve_verify::{check, Variant};

fn main() {
    // Line 64 lives on page 1 → homed on socket 1. Cores 0–7 are on
    // socket 0 (the *replica* side for this line), cores 8–15 on socket 1.
    const LINE: u64 = 64;

    for policy in [ReplicaPolicy::Allow, ReplicaPolicy::Deny] {
        println!("=== {policy:?}-based protocol ===");
        let mut e = ProtocolEngine::new(
            Mode::Dve {
                policy,
                speculative: false,
            },
            EngineConfig::default(),
        );
        let mut f = TestFabric::default();
        let mut t = 0;

        // 1. A replica-side core reads the line.
        let o = e.access(0, LINE, ReqType::Read, t, &mut f);
        t = o.complete_at;
        println!(
            "  replica-side read : served {:?} in {} cycles  (allow pulls permission first; deny reads replica directly)",
            o.service, o.complete_at
        );
        match policy {
            ReplicaPolicy::Allow => assert_eq!(o.service, ServiceLevel::RemoteDram),
            ReplicaPolicy::Deny => assert_eq!(o.service, ServiceLevel::LocalDram),
        }

        // 2. The same core reads again — L1 hit either way.
        let o = e.access(0, LINE, ReqType::Read, t, &mut f);
        t = o.complete_at;
        println!(
            "  repeat read       : served {:?} in {} cycles",
            o.service,
            o.complete_at - t + 1
        );

        // 3. A home-side core writes the line: the replica permission is
        //    revoked (allow) or an RM entry is pushed (deny).
        let before = f.traffic.total_messages();
        let o = e.access(8, LINE, ReqType::Write, t, &mut f);
        t = o.complete_at;
        println!(
            "  home-side write   : {} cycles, {} link messages (invalidate + {} handshake)",
            o.complete_at,
            f.traffic.total_messages() - before,
            if policy == ReplicaPolicy::Deny {
                "RM-install"
            } else {
                "permission-revoke"
            }
        );
        assert!(
            !e.replica_dir(0).replica_readable(LINE),
            "replica must be blocked now"
        );

        // 4. A replica-side read now forwards to the dirty owner.
        let o = e.access(1, LINE, ReqType::Read, t, &mut f);
        println!(
            "  replica-side read : served {:?} (owner forward — replica is stale until writeback)",
            o.service
        );
        assert_eq!(o.service, ServiceLevel::RemoteOwner);
        println!();
    }

    println!("=== exhaustive verification (the paper's Murphi step) ===");
    for v in [Variant::Allow, Variant::Deny] {
        let report = check(v, 2_000_000);
        println!("  {report}");
        assert!(report.ok());
    }
    println!("  invariants: SWMR, data-value, replica consistency, deadlock freedom — all hold.");
}
