//! Fault-injection campaign against Dvé's recovery path (§V-B2).
//!
//! Injects every fault class of Fig. 2 — cell clusters, rows, whole
//! chips, channels, and a full memory controller — into the primary
//! copy of a replicated region, and shows how detection at the
//! controller plus correction from the replica handles each. Also
//! demonstrates degraded mode and the machine-check case, and checks the
//! concrete ECC codecs against random corruption.
//!
//! ```text
//! cargo run --release --example fault_injection_recovery
//! ```

use dve::recovery::{RecoverableMemory, RecoveryOutcome};
use dve_dram::fault::FaultDomain;
use dve_ecc::code::{CorrectionCode, DetectionCode};
use dve_ecc::inject::{FaultInjector, FaultKind};
use dve_ecc::rs::Rs;
use dve_ecc::rs16::Rs16Detect;

fn main() {
    println!("--- codec-level: empirical detection coverage ---");
    codec_campaign();
    println!();
    println!("--- system-level: recovery via the replica ---");
    system_campaign();
}

fn codec_campaign() {
    let mut inj = FaultInjector::new(2026);
    let chipkill = Rs::chipkill();
    let tsd = Rs16Detect::tsd(64);
    let data16: Vec<u8> = (0..16).collect();
    let line: Vec<u8> = (0..64).collect();

    // Chipkill corrects every whole-chip (single-symbol) error.
    let mut corrected = 0;
    for _ in 0..1000 {
        let mut cw = chipkill.encode(&data16);
        inj.inject(&mut cw, FaultKind::ChipSymbol);
        if chipkill.check_and_repair(&mut cw).is_good() && chipkill.extract_data(&cw) == data16 {
            corrected += 1;
        }
    }
    println!("chipkill RS(18,16): {corrected}/1000 whole-chip errors corrected locally");

    // TSD detects multi-chip and burst errors it cannot correct.
    let mut detected = 0;
    for kind in [
        FaultKind::MultiChip { count: 2 },
        FaultKind::Burst { bits: 24 },
    ] {
        for _ in 0..500 {
            let mut cw = tsd.encode(&line);
            inj.inject(&mut cw, kind);
            if !tsd.check(&cw).is_good() {
                detected += 1;
            }
        }
    }
    println!("Dve+TSD detection:  {detected}/1000 multi-chip/burst errors detected (→ replica)");
}

fn system_campaign() {
    let cases: Vec<(&str, FaultDomain)> = vec![
        (
            "cache line (cell cluster)",
            FaultDomain::Line {
                channel: 0,
                line: 0x40,
            },
        ),
        (
            "DRAM row (wordline)",
            FaultDomain::Row {
                channel: 0,
                rank: 0,
                bank: 0,
                row: 1,
            },
        ),
        (
            "whole chip",
            FaultDomain::Chip {
                channel: 0,
                rank: 0,
                chip: 4,
            },
        ),
        ("whole channel", FaultDomain::Channel { channel: 0 }),
        ("memory controller", FaultDomain::Controller),
    ];
    for (name, fault) in cases {
        let mut mem = RecoverableMemory::new_dve_tsd();
        mem.primary_mut().faults_mut().fail(fault);
        // Read a line the fault covers.
        let addr = match fault {
            FaultDomain::Line { line, .. } => line * 64,
            FaultDomain::Row { .. } => 8192 * 16, // row 1, bank 0
            _ => 0x1000,
        };
        let (outcome, t) = mem.read(addr, 0);
        println!(
            "{name:<28} -> {outcome:?} at t={t} (degraded: {})",
            mem.is_degraded(addr)
        );
        assert_ne!(
            outcome,
            RecoveryOutcome::MachineCheck,
            "replica must recover {name}"
        );
    }

    // Transient fault: repaired in place after the replica supplies data.
    let mut mem = RecoverableMemory::new_dve_tsd();
    let transient = FaultDomain::Line {
        channel: 0,
        line: 7,
    };
    mem.primary_mut().faults_mut().fail(transient);
    mem.primary_mut().faults_mut().repair(transient); // scrub fixed it
    let (outcome, _) = mem.read(7 * 64, 0);
    println!("transient (scrubbed)         -> {outcome:?}");

    // Double failure: both controllers die — a genuine DUE.
    let mut mem = RecoverableMemory::new_dve_tsd();
    mem.primary_mut().faults_mut().fail(FaultDomain::Controller);
    mem.replica_mut().faults_mut().fail(FaultDomain::Controller);
    let (outcome, _) = mem.read(0, 0);
    println!("both controllers failed      -> {outcome:?} (machine-check exception)");
    assert_eq!(outcome, RecoveryOutcome::MachineCheck);

    let mut mem = RecoverableMemory::new_dve_tsd();
    mem.primary_mut().faults_mut().fail(FaultDomain::Controller);
    for i in 0..100 {
        mem.read(i * 64, i * 10_000);
    }
    let s = mem.stats();
    println!();
    println!(
        "controller-failure campaign: {} corrected from replica, {} degraded regions, {} machine checks",
        s.corrected, s.degraded, s.machine_checks
    );
}
