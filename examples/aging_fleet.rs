//! Aging fleet: §II-B's on-demand motivation played out over a machine
//! lifetime.
//!
//! "Another need for on-demand reliability is to combat the higher error
//! rates observed as DRAMs age ... Memory systems today do not allow for
//! flexibly boosting reliability, requiring periodic memory replacement."
//!
//! This example simulates a fleet of Chipkill machines whose device FIT
//! rate grows with age. The control plane watches the projected annual
//! DUE count; once it crosses a service-level threshold, it flips the
//! fleet into Dvé mode (using idle capacity) instead of replacing DIMMs
//! — and the failure projection drops back under the bar for the rest of
//! the deployment.
//!
//! ```text
//! cargo run --release --example aging_fleet
//! ```

use dve_osmem::policy::ReplicationPolicy;
use dve_reliability::fit::ThermalMapping;
use dve_reliability::model::ReliabilityModel;
use dve_reliability::mttf::fleet_events_per_year;

const FLEET: u64 = 100_000;
/// Service-level objective: tolerated DUEs per year across the fleet.
const SLO_DUES_PER_YEAR: f64 = 0.02;

fn model_at(fit: f64) -> ReliabilityModel {
    ReliabilityModel {
        chips_per_dimm: 9,
        dimms: 32,
        chip_fit: vec![fit; 9],
    }
}

fn main() {
    println!("fleet: {FLEET} machines, SLO: {SLO_DUES_PER_YEAR} fleet DUEs/year");
    println!();
    println!(
        "{:>4} {:>8} {:>16} {:>16} {:>12}",
        "year", "FIT", "chipkill DUE/yr", "dve DUE/yr", "mode"
    );

    let mut policy = ReplicationPolicy::datacenter_defaults();
    // The fleet's memory stays ~30% utilized (§II-B: "at least 50% of
    // the memory is idle 90% of the time"), so capacity for replication
    // is available throughout.
    let utilization = 0.30;
    let mut replicated = false;
    let mut switch_year = None;

    for year in 0..=10 {
        // Wear-out: FIT grows ~12% per year after an infant-mortality
        // plateau (a representative aging curve; see Fieback 2017).
        let fit = 66.1 * 1.12f64.powi((year - 2).max(0));
        let m = model_at(fit);
        let chipkill = fleet_events_per_year(m.chipkill().due, FLEET);
        let dve = fleet_events_per_year(m.dve_tsd(ThermalMapping::Identity).due, FLEET);

        if !replicated && chipkill > SLO_DUES_PER_YEAR {
            // The control plane checks capacity headroom, then flips the
            // fleet into replicated mode (§V-D).
            let decision = policy.decide(utilization);
            assert_eq!(decision, dve_osmem::policy::Decision::Replicate);
            replicated = true;
            switch_year = Some(year);
        }
        let projected = if replicated { dve } else { chipkill };
        println!(
            "{year:>4} {fit:>8.1} {chipkill:>16.4} {dve:>16.4} {:>12}",
            if replicated { "dve (on)" } else { "chipkill" }
        );
        assert!(
            projected <= SLO_DUES_PER_YEAR * 2.0,
            "year {year}: projection {projected} blows through the SLO"
        );
    }

    let y = switch_year.expect("aging must eventually cross the SLO");
    println!();
    println!("control plane enabled replication in year {y}: the 4x DUE reduction");
    println!("buys back the aging-induced exposure without replacing a single DIMM,");
    println!(
        "paid for with idle capacity ({}% utilized).",
        (utilization * 100.0) as u32
    );
}
