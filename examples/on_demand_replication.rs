//! On-demand replication lifecycle (§III, §V-D): the control plane
//! watches memory utilization, the OS carves idle capacity balloon-style,
//! pairs pages across the two sockets, maps them in the RMT, and hands
//! the capacity back when demand spikes.
//!
//! ```text
//! cargo run --release --example on_demand_replication
//! ```

use dve_osmem::allocator::ReplicaAllocator;
use dve_osmem::policy::{Decision, ReplicationPolicy};
use dve_osmem::rmt::{ReplicaLoc, ReplicaMapTable, RmtCache, RmtOrganization};

fn main() {
    // A 2-socket box with 512 pages per socket (scaled down), and the
    // datacenter defaults: replicate while utilization < 45%, reclaim
    // above 85%.
    let mut alloc = ReplicaAllocator::new(512, 512);
    alloc.set_pressure_floor(0.05);
    let mut policy = ReplicationPolicy::datacenter_defaults();
    let mut rmt = ReplicaMapTable::new(RmtOrganization::Radix2);
    let mut rmt_cache = RmtCache::new(64);
    let mut live = Vec::new();

    // Phase 1: the machine is mostly idle ("at least 50% of the memory
    // is idle 90% of the time") — a critical workload arrives.
    println!("phase 1: idle machine, critical workload arrives");
    policy.set_process_critical(1001, true);
    let decision = policy.decide(alloc.utilization(0));
    println!(
        "  utilization {:.0}% -> {decision:?}",
        alloc.utilization(0) * 100.0
    );
    assert_eq!(decision, Decision::Replicate);

    // The allocator builds cross-socket page pairs; the RMT records them.
    for _ in 0..200 {
        match alloc.allocate_pair() {
            Ok(pair) => {
                rmt.map(
                    pair.primary,
                    ReplicaLoc {
                        node: pair.replica_socket,
                        frame: pair.replica,
                    },
                );
                live.push(pair);
            }
            Err(e) => {
                println!("  allocation stopped: {e}");
                break;
            }
        }
    }
    println!(
        "  {} replica pairs mapped; RMT holds {} entries; socket utilization {:.0}%/{:.0}%",
        live.len(),
        rmt.len(),
        alloc.utilization(0) * 100.0,
        alloc.utilization(1) * 100.0
    );

    // Directory controllers translate through the cached RMT.
    let mut walk_accesses = 0;
    for pair in live.iter().take(100) {
        let (replica, cost) = rmt_cache.translate(pair.primary, &rmt);
        assert_eq!(replica.map(|l| l.frame), Some(pair.replica));
        walk_accesses += cost;
    }
    for pair in live.iter().skip(68).take(32) {
        let (_, cost) = rmt_cache.translate(pair.primary, &rmt);
        walk_accesses += cost;
    }
    println!(
        "  RMT cache: {} hits, {} misses, {} memory accesses spent on walks",
        rmt_cache.hits(),
        rmt_cache.misses(),
        walk_accesses
    );

    // Unmapped pages seamlessly fall back to a single copy.
    assert_eq!(rmt.lookup(999_999), None);
    println!("  unmapped page -> single-copy fallback (no RMT entry)");

    // Phase 2: demand spikes — the control plane reclaims capacity.
    println!();
    println!("phase 2: capacity crunch");
    // Simulate a burst consuming the free pool.
    let burst = alloc.balloon_inflate(280);
    println!("  burst consumed {}+{} pages", burst[0], burst[1]);
    let util = alloc.utilization(0).max(alloc.utilization(1));
    let decision = policy.decide(util);
    println!("  utilization {:.0}% -> {decision:?}", util * 100.0);
    assert_eq!(decision, Decision::Reclaim);

    // Replica pages hot-plug back into the visible free pool. RMT
    // entries may persist (reducing shoot-downs); we unmap here to show
    // the full teardown.
    let reclaimed = live.len();
    for pair in live.drain(..) {
        rmt.unmap(pair.primary);
        alloc.free_pair(pair);
    }
    println!(
        "  {} pairs reclaimed; free pages now {}/{}; process 1001 replicated: {}",
        reclaimed,
        alloc.free_pages(0),
        alloc.free_pages(1),
        policy.process_replicated(1001)
    );
    assert!(!policy.replicating());
}
