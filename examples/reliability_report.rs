//! Reliability report: the full §IV analytical model — DUE/SDC rates for
//! every scheme, thermal scaling, and what-if sweeps over FIT rates and
//! DIMM counts that go beyond the paper's fixed configuration.
//!
//! ```text
//! cargo run --release --example reliability_report
//! ```

use dve_reliability::capacity::fig1_capacity_points;
use dve_reliability::fit::{arrhenius_scale, ThermalMapping};
use dve_reliability::model::ReliabilityModel;
use dve_reliability::table1::table1_rows;

fn main() {
    println!("Table I (reproduced):");
    for row in table1_rows() {
        println!("  {row}");
    }

    println!();
    println!("Effective capacity (Fig. 1 axis):");
    for p in fig1_capacity_points() {
        println!(
            "  {:<9} {:>6.2}%  {}",
            p.scheme,
            p.effective * 100.0,
            if p.on_demand {
                "(reclaimable on demand)"
            } else {
                "(fixed at design time)"
            }
        );
    }

    // What-if: how do the schemes behave as devices age (FIT grows)?
    println!();
    println!("What-if: device aging (uniform FIT sweep), DUE per 10^9 h:");
    println!(
        "  {:>6} {:>12} {:>12} {:>12}",
        "FIT", "Chipkill", "Dve", "Dve+Chipkill"
    );
    for fit in [66.1, 100.0, 200.0, 400.0] {
        let m = ReliabilityModel {
            chips_per_dimm: 9,
            dimms: 32,
            chip_fit: vec![fit; 9],
        };
        println!(
            "  {:>6.1} {:>12.2e} {:>12.2e} {:>12.2e}",
            fit,
            m.chipkill().due,
            m.dve_due(ThermalMapping::Identity),
            m.dve_chipkill().due
        );
    }
    println!("  (Dvé's advantage grows quadratically less than ECC's exposure: the");
    println!("   on-demand use case — turn replication on as DIMMs age — §II-B.)");

    // What-if: operating temperature via the Arrhenius equation.
    println!();
    println!("What-if: operating temperature (Arrhenius, Ea = 0.6 eV):");
    for t in [45.0, 55.0, 65.0, 75.0] {
        let fit = arrhenius_scale(66.1, 45.0, t, 0.6);
        let m = ReliabilityModel {
            chips_per_dimm: 9,
            dimms: 32,
            chip_fit: vec![fit; 9],
        };
        println!(
            "  {:>4.0} C: FIT {:>6.1} -> Chipkill DUE {:.2e}, Dve DUE {:.2e}",
            t,
            fit,
            m.chipkill().due,
            m.dve_due(ThermalMapping::Identity)
        );
    }

    // Thermal mapping choice on a gradient.
    println!();
    println!("Thermal mapping on the fan gradient (Table I lower half):");
    let t = ReliabilityModel::thermal();
    let identity = t.dve_due(ThermalMapping::Identity);
    let inverse = t.dve_due(ThermalMapping::RiskInverse);
    println!("  identity pairing (Intel-style):   DUE {identity:.3e}");
    println!("  risk-inverse pairing (Dvé):       DUE {inverse:.3e}");
    println!("  improvement: {:.1}%", (identity / inverse - 1.0) * 100.0);
}
