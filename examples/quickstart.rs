//! Quickstart: build the paper's Table II system, run one workload under
//! baseline NUMA and under Dvé, and compare.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use dve::config::{Scheme, SystemConfig};
use dve::system::System;
use dve_workloads::catalog;

fn main() {
    // 1. Pick a workload clone — backprop, the paper's most
    //    memory-intensive benchmark.
    let profiles = catalog();
    let backprop = profiles
        .iter()
        .find(|p| p.name == "backprop")
        .expect("in catalog");
    println!(
        "workload: {} ({}), {} MiB working set",
        backprop.name,
        backprop.suite,
        backprop.working_set_lines * 64 / (1 << 20)
    );

    // 2. Run it on the baseline dual-socket NUMA system.
    let mut cfg = SystemConfig::table_ii(Scheme::BaselineNuma);
    cfg.ops_per_thread = 20_000;
    cfg.warmup_per_thread = 2_000;
    let baseline = System::new(cfg, backprop, 42).run();
    println!(
        "baseline NUMA : {:>10} cycles, {} inter-socket messages",
        baseline.cycles,
        baseline.traffic.total_messages()
    );

    // 3. Run the same workload with Dvé's deny-based Coherent
    //    Replication: every line has a replica on the other socket, kept
    //    strongly consistent and readable during fault-free operation.
    let mut cfg = SystemConfig::table_ii(Scheme::DveDeny);
    cfg.ops_per_thread = 20_000;
    cfg.warmup_per_thread = 2_000;
    let dve = System::new(cfg, backprop, 42).run();
    println!(
        "dve (deny)    : {:>10} cycles, {} inter-socket messages, {} reads served by the local replica",
        dve.cycles,
        dve.traffic.total_messages(),
        dve.engine.replica_reads
    );

    // 4. The dual benefit: faster *and* every line now has two
    //    independent points of access for recovery.
    println!();
    println!("speedup: {:.2}x", dve.speedup_over(&baseline));
    println!(
        "inter-socket traffic: {:.0}% of baseline",
        dve.traffic.normalized_to(&baseline.traffic) * 100.0
    );
    println!(
        "reliability: DUE rate improves {:.1}x over Chipkill (see `reliability_report` example)",
        {
            let m = dve_reliability::model::ReliabilityModel::paper_defaults();
            m.chipkill().due
                / m.dve_tsd(dve_reliability::fit::ThermalMapping::Identity)
                    .due
        }
    );
}
