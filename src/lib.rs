//! placeholder
pub use dve;
