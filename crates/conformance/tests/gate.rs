//! The conformance gate, sized for `cargo test`:
//!
//! * a fuzz smoke — every builtin configuration survives a short
//!   profile-biased random trace on the pinned bench seed, and
//! * the mutation gate — every deliberately seeded engine bug is
//!   caught by some configuration and its trace shrinks to ≤30 ops.
//!
//! The full-size versions (100 k ops/config fuzz, 10 k ops mutation
//! hunt) run in release via `cargo run -p dve-bench --bin conformance`;
//! see EXPERIMENTS.md.

use dve_conformance::{builtin_configs, fuzz_config, mutation_check};

/// The workspace-wide pinned seed (`dve_bench::SEED`), duplicated here
/// so the conformance crate does not depend on the bench crate.
const SEED: u64 = 0xD0E5_2021;

#[test]
fn fuzz_smoke_all_configs_clean() {
    for cfg in builtin_configs() {
        let out = fuzz_config(&cfg, SEED, 1_500, None);
        assert_eq!(out.ops_run, 1_500, "{} stopped early", cfg.name);
        if let Some(f) = out.failure {
            panic!(
                "{}: violation at op {}: {}",
                cfg.name, f.violation.op_index, f.violation.kind
            );
        }
    }
}

#[test]
fn mutation_gate_catches_and_shrinks_every_seeded_bug() {
    // 6 000 ops/config is enough for every seeded bug on the pinned
    // seed (the slowest, SkipReplicaWriteback, needs ~5.1 k ops in the
    // tiny-replica-directory configuration).
    let reports = mutation_check(SEED, 6_000);
    assert_eq!(reports.len(), 7, "one report per seeded bug");
    for r in &reports {
        assert!(r.caught, "{:?} escaped the conformance harness", r.bug);
        assert!(
            !r.shrunk.is_empty() && r.shrunk.len() <= 30,
            "{:?}: shrunk trace has {} ops (want 1..=30)",
            r.bug,
            r.shrunk.len()
        );
        // Re-confirm the minimized trace still trips the harness with
        // the bug seeded (shrinking must preserve the violation class).
        let cfg = dve_conformance::trace::config_by_name(&r.config);
        assert!(
            dve_conformance::run_trace(&cfg, &r.shrunk, Some(r.bug)).is_some(),
            "{:?}: shrunk trace no longer violates",
            r.bug
        );
    }
}
