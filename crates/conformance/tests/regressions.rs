//! Minimized regression traces for every real protocol bug the
//! conformance fuzzer flushed out of `dve_coherence::engine`.
//!
//! Each test replays a trace that **violated** a conformance invariant
//! on the pre-fix engine (the shrunken output of
//! `cargo run -p dve-bench --bin conformance`), asserting the fixed
//! engine now survives it. The traces are committed verbatim in the
//! form `format_trace` prints, so future violations can be added the
//! same way. Companion direct unit tests live next to the fixes in
//! `crates/coherence/src/engine.rs`; these end-to-end replays pin the
//! *observable* invariant each bug broke.

use dve_conformance::trace::{config_by_name, tiny_engine};
use dve_conformance::{run_trace, FuzzConfig, FuzzOp};

use dve_coherence::engine::{EngineConfig, Mode};
use dve_coherence::replica_dir::ReplicaPolicy;

fn replay_clean(cfg: &FuzzConfig, ops: &[FuzzOp]) {
    if let Some(v) = run_trace(cfg, ops, None) {
        panic!(
            "regression trace re-violates {}: op {}: {}",
            cfg.name, v.op_index, v.kind
        );
    }
}

/// A deny-mode config whose LLC (1 KiB, 2-way → 8 sets of 2) is half
/// the 32-line fuzz pool, so dirty capacity evictions — and therefore
/// memory writebacks — happen within a handful of ops. Used by the
/// degraded-writeback quarantine regression, which needs a writeback
/// *while* the replica is out of service.
fn small_llc_deny() -> FuzzConfig {
    FuzzConfig {
        name: "dve-deny-small-llc".to_string(),
        mode: Mode::Dve {
            policy: ReplicaPolicy::Deny,
            speculative: false,
        },
        engine: EngineConfig {
            llc_bytes: 1024,
            llc_ways: 2,
            ..tiny_engine()
        },
    }
}

/// Bug C(ii): a cross-socket read forwarded by the owning LLC
/// downgraded that LLC M→O but left the writing core's **L1** in M —
/// an inclusion violation (L1 dirty above an O-state LLC) that let the
/// stale L1 satisfy later stores without ownership.
///
/// Pre-fix violation (config `baseline`, 2 ops):
/// `inclusion: core 0 L1 holds line 1 dirty (M) but socket 0 LLC is only O`
#[test]
fn owner_l1_downgraded_on_cross_socket_read() {
    let trace = [
        FuzzOp::Access {
            core: 0,
            line: 1,
            write: true,
        },
        FuzzOp::Access {
            core: 3,
            line: 1,
            write: false,
        },
    ];
    for name in ["baseline", "intel-mirror", "dve-allow", "dve-deny"] {
        replay_clean(&config_by_name(name), &trace);
    }
}

/// Bug C(i): a same-socket read that hit the LLC in M filled the
/// reader's L1 in S but left the sibling writer's L1 in M — two L1s on
/// one socket, one of them dirty: an SWMR violation inside the socket.
///
/// Pre-fix violation (config `dve-allow`, 2 ops):
/// `swmr: line 14 dirty in core 2 L1 but also present in core 3 L1`
#[test]
fn sibling_l1_downgraded_on_shared_read() {
    let trace = [
        FuzzOp::Access {
            core: 2,
            line: 14,
            write: true,
        },
        FuzzOp::Access {
            core: 3,
            line: 14,
            write: false,
        },
    ];
    for name in ["baseline", "dve-allow", "dve-deny", "dve-deny-tiny-rd"] {
        replay_clean(&config_by_name(name), &trace);
    }
}

/// Bug A: the allow-family install of an M entry on a write from the
/// replica side was not guarded by `line_replicated`, so degraded mode
/// (and out-of-scope pages) still polluted the replica directory —
/// which must stay empty whenever the line has no live replica.
///
/// Pre-fix violation (config `dve-allow-tiny-rd`, 2 ops):
/// `replica-dir: degraded but socket 0 replica dir non-empty`
#[test]
fn no_replica_dir_pollution_outside_scope() {
    let trace = [
        FuzzOp::SetDegraded(true),
        FuzzOp::Access {
            core: 2,
            line: 7,
            write: true,
        },
    ];
    for name in ["dve-allow", "dve-allow-tiny-rd", "dve-allow-scoped"] {
        replay_clean(&config_by_name(name), &trace);
    }
}

/// Bug B (recovery half): entering degraded mode drains the replica
/// directories, but lines still *dirty* in a home-side LLC across the
/// degraded window lost their deny-family Rm protection — after
/// recovery, deny's absence-means-readable default let the opposite
/// socket read the replica copy that never saw the write.
///
/// The fix re-pushes Rm entries for every dirty home-owned line when
/// `set_degraded(false)` brings the replica back.
#[test]
fn degraded_recovery_requarantines_dirty_lines() {
    let trace = [
        // Core 0 (socket 0) dirties line 0 (home 0) — deny pushes Rm.
        FuzzOp::Access {
            core: 0,
            line: 0,
            write: true,
        },
        // Replica fails: directories drain, Rm protection vanishes.
        FuzzOp::SetDegraded(true),
        // Replica recovers. The line is still dirty in socket 0's LLC;
        // without the re-push, deny absence ⇒ readable ⇒ stale read.
        FuzzOp::SetDegraded(false),
        // Socket-1 read must be funnelled to the home side, not served
        // from the never-updated replica copy.
        FuzzOp::Access {
            core: 2,
            line: 0,
            write: false,
        },
    ];
    for name in ["dve-deny", "dve-deny-spec", "dve-deny-tiny-rd"] {
        replay_clean(&config_by_name(name), &trace);
    }
}

/// Bug B (writeback half): a dirty line written back *while* degraded
/// reaches only the home copy (§V-E keeps the replica out of service),
/// leaving the replica memory permanently behind. Pre-fix, recovery
/// resumed serving replica reads from that stale copy.
///
/// The fix quarantines such lines in `stale_replica` at writeback time
/// and re-syncs the replica copy on the first post-recovery touch.
#[test]
fn recovered_replica_requires_resync_before_reads() {
    let cfg = small_llc_deny();
    let trace = [
        // Dirty line 0 (home 0, LLC set 0) from socket 0.
        FuzzOp::Access {
            core: 0,
            line: 0,
            write: true,
        },
        FuzzOp::SetDegraded(true),
        // Fill LLC set 0 (2 ways; lines ≡ 0 mod 8): lines 8 and 16
        // evict dirty line 0 → writeback lands on the home copy only.
        FuzzOp::Access {
            core: 0,
            line: 8,
            write: false,
        },
        FuzzOp::Access {
            core: 0,
            line: 16,
            write: false,
        },
        FuzzOp::SetDegraded(false),
        // Socket-1 read of line 0: the replica copy missed the
        // writeback and must be re-synced before it may serve.
        FuzzOp::Access {
            core: 2,
            line: 0,
            write: false,
        },
    ];
    replay_clean(&cfg, &trace);
}

/// Dynamic-switch bug: `switch_policy` re-pushed Rm entries only for
/// *writable* (M/E) home-owned lines, missing O-state lines that a
/// cross-socket read had downgraded — dirty at home, yet readable at
/// the replica after the switch.
///
/// Pre-fix violation (config `dve-deny-spec`, 5 ops, shrunk by ddmin):
/// `replica-dir: socket 1 LLC dirty on line 2 but replica readable`
#[test]
fn switch_to_deny_protects_o_state_lines() {
    let trace = [
        FuzzOp::Access {
            core: 0,
            line: 2,
            write: true,
        },
        FuzzOp::Access {
            core: 0,
            line: 18,
            write: false,
        },
        FuzzOp::Access {
            core: 0,
            line: 10,
            write: false,
        },
        // Cross-socket read downgrades socket 0's LLC to O (still dirty).
        FuzzOp::Access {
            core: 3,
            line: 2,
            write: false,
        },
        FuzzOp::SwitchPolicy {
            deny: true,
            speculative: true,
        },
    ];
    for name in ["dve-deny-spec", "dve-allow", "dve-deny"] {
        replay_clean(&config_by_name(name), &trace);
    }
}

/// Bug D: the coarse-grained allow pull checked `writable()` instead of
/// `dirty()` when deciding whether a region was safe to install as S —
/// an O-state line inside the region slipped through, creating an S
/// entry (replica readable) while a home-side LLC still held dirty
/// data the replica copy had never seen.
#[test]
fn coarse_allow_region_install_excludes_o_state() {
    let trace = [
        // Dirty line 0 at home socket 0.
        FuzzOp::Access {
            core: 0,
            line: 0,
            write: true,
        },
        // Cross-socket read: LLC 0 downgrades M→O, stays dirty.
        FuzzOp::Access {
            core: 2,
            line: 0,
            write: false,
        },
        // Socket-1 read of line 1 pulls region 0 (lines 0–3) under
        // allow. The region holds dirty O-state line 0, so the install
        // must be refused.
        FuzzOp::Access {
            core: 2,
            line: 1,
            write: false,
        },
    ];
    for name in ["dve-allow-coarse", "dve-allow"] {
        replay_clean(&config_by_name(name), &trace);
    }
}

/// Switch-while-degraded bug: a dynamic switch issued during the
/// degraded window re-populated the replica directories even though the
/// replica was out of service (they must stay empty until recovery).
///
/// Pre-fix violation (config `dve-allow-coarse`, 3 ops, shrunk by
/// ddmin): `replica-dir: degraded but socket 1 replica dir non-empty`
#[test]
fn switch_while_degraded_keeps_replica_dirs_empty() {
    let trace = [
        FuzzOp::SetDegraded(true),
        FuzzOp::Access {
            core: 0,
            line: 18,
            write: true,
        },
        FuzzOp::SwitchPolicy {
            deny: true,
            speculative: false,
        },
    ];
    for name in ["dve-allow-coarse", "dve-allow", "dve-deny-tiny-rd"] {
        replay_clean(&config_by_name(name), &trace);
    }
}
