//! Delta-debugging trace minimization (Zeller's ddmin, plus a greedy
//! single-op sweep).
//!
//! Because fuzz traces are generated independently of engine outcomes
//! (see [`crate::fuzz`]), every subsequence of a trace is itself a
//! well-formed trace — so minimization is plain subset search. The
//! predicate is *class-preserving*: a candidate subsequence counts as
//! "still failing" only if replaying it yields a violation of the same
//! class (the stable prefix of [`Violation::kind`] before the first
//! `:`), so shrinking a stale-read cannot wander off and return some
//! unrelated stats discrepancy.
//!
//! [`Violation::kind`]: crate::check::Violation

use crate::check::Violation;
use crate::fuzz::run_trace;
use crate::trace::{FuzzConfig, FuzzOp};
use dve_coherence::engine::SeededBug;

/// Replays `ops` and reports whether it still produces a violation of
/// class `class`.
fn still_fails(
    cfg: &FuzzConfig,
    ops: &[FuzzOp],
    bug: Option<SeededBug>,
    class: &str,
) -> Option<Violation> {
    run_trace(cfg, ops, bug).filter(|v| v.class() == class)
}

/// Minimizes `trace` to a small subsequence that still triggers a
/// violation of the same class as `violation`, and returns it together
/// with the violation the minimized trace produces.
///
/// The input trace must actually fail; if it does not (flaky harness,
/// wrong config), the original trace is returned unchanged with the
/// original violation.
pub fn shrink(
    cfg: &FuzzConfig,
    trace: &[FuzzOp],
    bug: Option<SeededBug>,
    violation: &Violation,
) -> (Vec<FuzzOp>, Violation) {
    let class = violation.class().to_string();
    let Some(mut best_v) = still_fails(cfg, trace, bug, &class) else {
        return (trace.to_vec(), violation.clone());
    };
    // Everything after the violating op is irrelevant by construction.
    let mut cur: Vec<FuzzOp> = trace[..=best_v.op_index.min(trace.len() - 1)].to_vec();

    // ddmin: try removing chunks at decreasing granularity.
    let mut n = 2usize;
    while cur.len() >= 2 {
        let chunk = cur.len().div_ceil(n);
        let mut reduced = false;
        let mut start = 0usize;
        while start < cur.len() {
            let end = (start + chunk).min(cur.len());
            let mut candidate = Vec::with_capacity(cur.len() - (end - start));
            candidate.extend_from_slice(&cur[..start]);
            candidate.extend_from_slice(&cur[end..]);
            if let Some(v) = still_fails(cfg, &candidate, bug, &class) {
                cur = candidate;
                cur.truncate(v.op_index + 1);
                best_v = v;
                n = n.saturating_sub(1).max(2);
                reduced = true;
                break;
            }
            start = end;
        }
        if !reduced {
            if chunk <= 1 {
                break;
            }
            n = (n * 2).min(cur.len());
        }
    }

    // Greedy sweep: drop single ops until a fixpoint.
    let mut changed = true;
    while changed && cur.len() > 1 {
        changed = false;
        let mut i = 0;
        while i < cur.len() {
            let mut candidate = cur.clone();
            candidate.remove(i);
            if let Some(v) = still_fails(cfg, &candidate, bug, &class) {
                cur = candidate;
                cur.truncate(v.op_index + 1);
                best_v = v;
                changed = true;
            } else {
                i += 1;
            }
        }
    }
    (cur, best_v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::config_by_name;

    /// Shrinking the seeded time-travel bug must reach a single op.
    #[test]
    fn shrinks_time_travel_to_one_op() {
        let cfg = config_by_name("baseline");
        // Pad a violating op with noise on other lines.
        let mut trace = Vec::new();
        for i in 0..40 {
            trace.push(FuzzOp::Access {
                core: (i % 4) as u8,
                line: (i % 16) as u64,
                write: i % 3 == 0,
            });
        }
        let v = run_trace(&cfg, &trace, Some(SeededBug::TimeTravelCompletion))
            .expect("time-travel bug must be caught");
        let (small, sv) = shrink(&cfg, &trace, Some(SeededBug::TimeTravelCompletion), &v);
        assert_eq!(sv.class(), v.class());
        assert!(
            small.len() <= 2,
            "expected a 1–2 op repro, got {} ops",
            small.len()
        );
        assert!(run_trace(&cfg, &small, Some(SeededBug::TimeTravelCompletion)).is_some());
    }

    /// A clean trace comes back unchanged.
    #[test]
    fn non_failing_trace_is_returned_unchanged() {
        let cfg = config_by_name("baseline");
        let trace = vec![FuzzOp::Access {
            core: 0,
            line: 0,
            write: false,
        }];
        let fake = Violation {
            op_index: 0,
            kind: "stale-read: fabricated".into(),
        };
        let (out, v) = shrink(&cfg, &trace, None, &fake);
        assert_eq!(out, trace);
        assert_eq!(v, fake);
    }
}
