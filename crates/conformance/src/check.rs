//! The op-by-op conformance checker.
//!
//! A [`ConformanceChecker`] owns one production [`ProtocolEngine`], a
//! [`RecordingFabric`] and a [`GoldenShadow`], drives [`FuzzOp`]s
//! through the engine one at a time (matching §V-C3's per-line
//! serialization at the directory), and after **every** op verifies:
//!
//! 1. **Latency monotonicity** — the reported completion time is not
//!    before the issue time — and **latency conservation** — the
//!    per-component breakdown the outcome carries sums exactly to the
//!    end-to-end latency (every cycle attributed to one layer, none
//!    invented).
//! 2. **Read-returns-last-write** — the physical location the engine's
//!    reported [`ServiceLevel`] names must hold the golden latest
//!    version of the line (per the shadow's freshness mask).
//! 3. **Routing integrity** — replica-served reads only for lines that
//!    actually have a replica, and only with a recorded replica-memory
//!    access; owner-served reads only when the home directory knows an
//!    owner.
//! 4. **Structural invariants** over the whole line pool: SWMR, L1⊆LLC
//!    inclusion, L1-sharer-mask agreement, no *stale resident copy*
//!    anywhere, home-directory ↔ cache agreement, replica-directory
//!    hygiene (no entries outside Dvé/healthy/covered state), the deny
//!    guarantee (home-side M ⇒ not replica-readable), the allow
//!    guarantee (S permission ⇒ no dirty copy of the line anywhere),
//!    and replica-memory freshness whenever the replica directory would
//!    allow a read to be served from it.
//! 5. **Stats conservation** — ops/reads/writes/served/latency_sum
//!    against an independently maintained mirror, and
//!    `served[L1] == l1_hits`.
//!
//! Any failure is reported as a [`Violation`] whose `kind` starts with
//! a stable class prefix (`stale-read:`, `swmr:`, `inclusion:`,
//! `dir-mismatch:`, `replica-dir:`, `stale-copy:`, `monotonicity:`,
//! `conservation:`, `routing:`, `stats:`) — the shrinker preserves the
//! class while minimizing the trace.

use crate::shadow::{FabricEvent, GoldenShadow, Location, RecordingFabric};
use crate::trace::{FuzzConfig, FuzzOp};
use dve_coherence::engine::{service_index, ProtocolEngine, SeededBug};
use dve_coherence::replica_dir::{ReplicaPolicy, ReplicaState};
use dve_coherence::types::{LineAddr, ReqType, ServiceLevel};
use dve_coherence::Mode;
use dve_sim::latency::LatencyBreakdown;

/// A conformance failure: the index of the op that exposed it and a
/// human-readable description starting with a stable class prefix.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Index (within the trace) of the op after which the check failed.
    pub op_index: usize,
    /// Class-prefixed description (`class: details`).
    pub kind: String,
}

impl Violation {
    /// The class prefix of the violation (text before the first `:`).
    pub fn class(&self) -> &str {
        self.kind.split(':').next().unwrap_or(&self.kind)
    }
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "op {}: {}", self.op_index, self.kind)
    }
}

/// Independent mirror of the engine-stat fields the checker can predict
/// exactly from the outcomes it observes.
#[derive(Debug, Clone, Copy, Default)]
struct StatsMirror {
    ops: u64,
    reads: u64,
    writes: u64,
    served: [u64; 6],
    latency_sum: [u64; 6],
    breakdown: LatencyBreakdown,
}

/// Drives ops through one engine configuration and checks every
/// invariant after each op.
#[derive(Debug)]
pub struct ConformanceChecker {
    engine: ProtocolEngine,
    fabric: RecordingFabric,
    shadow: GoldenShadow,
    mirror: StatsMirror,
    /// All lines the trace may touch (structural checks sweep these).
    pool: Vec<LineAddr>,
    now: u64,
    ops_applied: usize,
}

impl ConformanceChecker {
    /// Builds a checker for `cfg`, optionally seeding `bug` into the
    /// engine (mutation-check mode). `pool` lists every line the trace
    /// may address.
    pub fn new(cfg: &FuzzConfig, bug: Option<SeededBug>, pool: Vec<LineAddr>) -> Self {
        let mut engine = ProtocolEngine::new(cfg.mode, cfg.engine.clone());
        engine.seed_bug(bug);
        let shadow = GoldenShadow::new(engine.placement(), cfg.engine.cores_per_socket);
        let fabric = RecordingFabric::with_nodes(engine.num_nodes());
        ConformanceChecker {
            engine,
            fabric,
            shadow,
            mirror: StatsMirror::default(),
            pool,
            // Start at 1 so an op whose completion "time travels" below
            // its issue time is distinguishable even on the very first
            // op (a saturating 0 would equal an issue time of 0).
            now: 1,
            ops_applied: 0,
        }
    }

    /// The engine under test (read-only, for reporting).
    pub fn engine(&self) -> &ProtocolEngine {
        &self.engine
    }

    /// Number of ops applied so far.
    pub fn ops_applied(&self) -> usize {
        self.ops_applied
    }

    /// Applies one op and runs every check. Returns the first violation.
    pub fn apply(&mut self, op: FuzzOp) -> Result<(), Violation> {
        let idx = self.ops_applied;
        self.ops_applied += 1;
        match op {
            FuzzOp::Access { core, line, write } => {
                self.apply_access(idx, core as usize, line, write)?
            }
            FuzzOp::SetDegraded(d) => {
                self.engine.set_degraded(d, self.now, &mut self.fabric);
                let events = self.fabric.take_events();
                self.shadow.apply_events(&events);
            }
            FuzzOp::SwitchPolicy { deny, speculative } => {
                if matches!(self.engine.mode(), Mode::Dve { .. }) {
                    let policy = if deny {
                        ReplicaPolicy::Deny
                    } else {
                        ReplicaPolicy::Allow
                    };
                    self.engine
                        .switch_policy(policy, speculative, self.now, &mut self.fabric);
                    let events = self.fabric.take_events();
                    self.shadow.apply_events(&events);
                }
            }
        }
        self.structural_check(idx)
    }

    fn violation(idx: usize, kind: String) -> Violation {
        Violation {
            op_index: idx,
            kind,
        }
    }

    fn apply_access(
        &mut self,
        idx: usize,
        core: usize,
        line: LineAddr,
        write: bool,
    ) -> Result<(), Violation> {
        let req = if write { ReqType::Write } else { ReqType::Read };
        let issued = self.now;
        let outcome = self
            .engine
            .access(core, line, req, issued, &mut self.fabric);
        let events = self.fabric.take_events();

        // 1. Latency monotonicity.
        if outcome.complete_at < issued {
            return Err(Self::violation(
                idx,
                format!(
                    "monotonicity: op issued at {issued} reported completion {}",
                    outcome.complete_at
                ),
            ));
        }
        // 1b. Latency conservation: the per-component breakdown must sum
        // to the reported end-to-end latency. (Checked here in release
        // builds too — the engine's own debug_assert is compiled out in
        // the fuzzing harness.)
        if outcome.breakdown.total() != outcome.complete_at - issued {
            return Err(Self::violation(
                idx,
                format!(
                    "conservation: breakdown {:?} sums to {} but end-to-end latency is {}",
                    outcome.breakdown,
                    outcome.breakdown.total(),
                    outcome.complete_at - issued
                ),
            ));
        }
        // 1c. The coherence engine itself never charges the recovery
        // component — only the timed fabric's §V-B2 detour does, and the
        // conformance model runs the protocol over a fault-free fabric.
        // A non-zero value here means a protocol path misattributed
        // ordinary service time to recovery.
        if outcome.breakdown.recovery != 0 {
            return Err(Self::violation(
                idx,
                format!(
                    "conservation: protocol op charged {} recovery cycles on a fault-free fabric",
                    outcome.breakdown.recovery
                ),
            ));
        }
        self.now = outcome.complete_at.max(self.now) + 1;

        if write {
            self.shadow.apply_write(core, line);
            self.shadow.apply_events(&events);
        } else {
            // 2./3. Identify the physical source the service level
            // names and check it held the latest version.
            let source = self.read_source(idx, core, line, outcome.service, &events)?;
            if !self.shadow.is_fresh(line, source) {
                return Err(Self::violation(
                    idx,
                    format!(
                        "stale-read: core {core} load of line {line} served {:?} from {source:?}, \
                         which does not hold golden version {}",
                        outcome.service,
                        self.shadow.version(line)
                    ),
                ));
            }
            self.shadow.apply_events(&events);
            self.shadow
                .fill_caches(core, line, outcome.service != ServiceLevel::L1);
        }

        // 5. Stats conservation.
        self.mirror.ops += 1;
        if write {
            self.mirror.writes += 1;
        } else {
            self.mirror.reads += 1;
        }
        let si = service_index(outcome.service);
        self.mirror.served[si] += 1;
        self.mirror.latency_sum[si] += outcome.complete_at.saturating_sub(issued);
        self.mirror.breakdown.merge(&outcome.breakdown);
        let stats = self.engine.stats();
        if stats.ops != self.mirror.ops
            || stats.reads != self.mirror.reads
            || stats.writes != self.mirror.writes
        {
            return Err(Self::violation(
                idx,
                format!(
                    "stats: op counters diverged (engine {}r/{}w/{} total, mirror {}r/{}w/{})",
                    stats.reads,
                    stats.writes,
                    stats.ops,
                    self.mirror.reads,
                    self.mirror.writes,
                    self.mirror.ops
                ),
            ));
        }
        if stats.served != self.mirror.served {
            return Err(Self::violation(
                idx,
                format!(
                    "stats: served[] diverged (engine {:?}, mirror {:?})",
                    stats.served, self.mirror.served
                ),
            ));
        }
        if stats.latency_sum != self.mirror.latency_sum {
            return Err(Self::violation(
                idx,
                format!(
                    "stats: latency_sum[] diverged (engine {:?}, mirror {:?})",
                    stats.latency_sum, self.mirror.latency_sum
                ),
            ));
        }
        if stats.latency_breakdown != self.mirror.breakdown {
            return Err(Self::violation(
                idx,
                format!(
                    "stats: latency_breakdown diverged (engine {:?}, mirror {:?})",
                    stats.latency_breakdown, self.mirror.breakdown
                ),
            ));
        }
        if stats.served[service_index(ServiceLevel::L1)] != stats.l1_hits {
            return Err(Self::violation(
                idx,
                format!(
                    "stats: served[L1]={} != l1_hits={}",
                    stats.served[service_index(ServiceLevel::L1)],
                    stats.l1_hits
                ),
            ));
        }
        Ok(())
    }

    /// Maps a read's reported service level to the physical location
    /// that supplied the data, verifying routing integrity on the way.
    fn read_source(
        &self,
        idx: usize,
        core: usize,
        line: LineAddr,
        service: ServiceLevel,
        events: &[FabricEvent],
    ) -> Result<Location, Violation> {
        let socket = self.engine.socket_of(core);
        let home = self.engine.home_of(line);
        match service {
            ServiceLevel::L1 => Ok(Location::L1(core)),
            ServiceLevel::Llc => Ok(Location::Llc(socket)),
            ServiceLevel::LocalDram => {
                if socket == home {
                    Ok(Location::HomeMem)
                } else {
                    // Only a replica copy can serve "local DRAM" on a
                    // non-home socket, and only on the node the
                    // placement actually assigned the replica to.
                    if !self.engine.line_has_replica(line) {
                        return Err(Self::violation(
                            idx,
                            format!(
                                "routing: line {line} served LocalDram on socket {socket} \
                                 but has no live replica"
                            ),
                        ));
                    }
                    if self.engine.replica_node_of(line) != socket {
                        return Err(Self::violation(
                            idx,
                            format!(
                                "routing: line {line} served LocalDram on socket {socket} \
                                 but its replica is placed on node {}",
                                self.engine.replica_node_of(line)
                            ),
                        ));
                    }
                    let saw_replica_read = events.iter().any(|e| {
                        matches!(e, FabricEvent::ReplicaRead { socket: s, line: l }
                                 if *s == socket && *l == line)
                    });
                    if !saw_replica_read {
                        return Err(Self::violation(
                            idx,
                            format!(
                                "routing: replica-served read of line {line} recorded no \
                                 replica-memory access on socket {socket}"
                            ),
                        ));
                    }
                    Ok(Location::ReplicaMem(socket))
                }
            }
            ServiceLevel::RemoteDram => Ok(Location::HomeMem),
            ServiceLevel::LocalOwner | ServiceLevel::RemoteOwner => {
                match self.engine.home_dir(home).entry(line).owner {
                    Some(owner) => Ok(Location::Llc(owner)),
                    None => Err(Self::violation(
                        idx,
                        format!(
                            "routing: line {line} served {service:?} but the home directory \
                             records no owner"
                        ),
                    )),
                }
            }
        }
    }

    /// Sweeps the line pool and checks every structural invariant.
    fn structural_check(&self, idx: usize) -> Result<(), Violation> {
        let cfg = self.engine.config();
        let cores = cfg.cores;
        let cps = cfg.cores_per_socket;
        let sockets = cfg.sockets;
        let nodes = self.engine.num_nodes();
        let is_dve = matches!(self.engine.mode(), Mode::Dve { .. });
        let degraded = self.engine.is_degraded();

        // Replica directories must be empty outside Dvé/healthy state.
        if !is_dve || degraded {
            for s in 0..nodes {
                if !self.engine.replica_dir(s).is_empty() {
                    return Err(Self::violation(
                        idx,
                        format!(
                            "replica-dir: socket {s} directory holds {} entries while \
                             {} (replica permissions are meaningless here)",
                            self.engine.replica_dir(s).len(),
                            if degraded {
                                "degraded"
                            } else {
                                "not in a Dvé mode"
                            }
                        ),
                    ));
                }
            }
        }

        for &line in &self.pool {
            let home = self.engine.home_of(line);
            let l1: Vec<_> = (0..cores).map(|c| self.engine.l1_state(c, line)).collect();
            let llc: Vec<_> = (0..sockets)
                .map(|s| self.engine.llc_state(s, line))
                .collect();

            // Inclusion and L1-sharer-mask agreement.
            for (c, l1s) in l1.iter().enumerate() {
                let Some(st) = l1s else { continue };
                let s = c / cps;
                let Some(llc_st) = llc[s] else {
                    return Err(Self::violation(
                        idx,
                        format!(
                            "inclusion: core {c} L1 holds line {line} ({st:?}) but socket {s} \
                             LLC does not (inclusive hierarchy)"
                        ),
                    ));
                };
                if st.dirty() && llc_st != dve_coherence::types::CacheState::M {
                    return Err(Self::violation(
                        idx,
                        format!(
                            "inclusion: core {c} L1 holds line {line} dirty ({st:?}) but socket \
                             {s} LLC is only {llc_st:?}"
                        ),
                    ));
                }
                let mask = self.engine.llc_l1_sharers(s, line).unwrap_or(0);
                if mask & (1 << (c % cps)) == 0 {
                    return Err(Self::violation(
                        idx,
                        format!(
                            "dir-mismatch: core {c} L1 holds line {line} but socket {s}'s \
                             embedded directory sharer mask {mask:#06b} misses it"
                        ),
                    ));
                }
            }

            // SWMR across sockets and cores.
            let dirty_sockets: Vec<_> = (0..sockets)
                .filter(|&s| llc[s].is_some_and(|st| st.dirty()))
                .collect();
            if dirty_sockets.len() > 1 {
                return Err(Self::violation(
                    idx,
                    format!("swmr: line {line} dirty in multiple sockets' LLCs ({llc:?})"),
                ));
            }
            for s in 0..sockets {
                if llc[s] != Some(dve_coherence::types::CacheState::M) {
                    continue;
                }
                for other in (0..sockets).filter(|&o| o != s) {
                    if llc[other].is_some() {
                        return Err(Self::violation(
                            idx,
                            format!(
                                "swmr: socket {s} LLC holds line {line} in M while socket \
                                 {other} LLC still holds {:?}",
                                llc[other]
                            ),
                        ));
                    }
                }
                for (c, st) in l1.iter().enumerate() {
                    if c / cps != s && st.is_some() {
                        return Err(Self::violation(
                            idx,
                            format!(
                                "swmr: socket {s} LLC holds line {line} in M while core {c} \
                                 (another socket) L1 holds {st:?}"
                            ),
                        ));
                    }
                }
            }
            if let Some(writer) = (0..cores).find(|&c| l1[c].is_some_and(|st| st.dirty())) {
                for (c, st) in l1.iter().enumerate() {
                    if c != writer && st.is_some() {
                        return Err(Self::violation(
                            idx,
                            format!(
                                "swmr: core {writer} L1 holds line {line} dirty while core {c} \
                                 L1 holds {st:?}"
                            ),
                        ));
                    }
                }
            }

            // Stale resident copies: in this serialized setting every
            // resident cache copy must hold the latest version.
            for (c, st) in l1.iter().enumerate() {
                if st.is_some() && !self.shadow.is_fresh(line, Location::L1(c)) {
                    return Err(Self::violation(
                        idx,
                        format!(
                            "stale-copy: core {c} L1 holds line {line} ({:?}) but the latest \
                             write (v{}) never reached it",
                            st.unwrap(),
                            self.shadow.version(line)
                        ),
                    ));
                }
            }
            for (s, st) in llc.iter().enumerate() {
                if st.is_some() && !self.shadow.is_fresh(line, Location::Llc(s)) {
                    return Err(Self::violation(
                        idx,
                        format!(
                            "stale-copy: socket {s} LLC holds line {line} ({:?}) but the latest \
                             write (v{}) never reached it",
                            st.unwrap(),
                            self.shadow.version(line)
                        ),
                    ));
                }
            }

            // Home-directory agreement.
            let entry = self.engine.home_dir(home).entry(line);
            for (s, slot) in llc.iter().enumerate() {
                let Some(st) = *slot else { continue };
                if entry.sharers & (1 << s) == 0 {
                    return Err(Self::violation(
                        idx,
                        format!(
                            "dir-mismatch: socket {s} LLC holds line {line} ({st:?}) but the \
                             home directory's sharer vector {:#04b} misses it",
                            entry.sharers
                        ),
                    ));
                }
                if st.dirty() && entry.owner != Some(s) {
                    return Err(Self::violation(
                        idx,
                        format!(
                            "dir-mismatch: socket {s} LLC holds line {line} dirty ({st:?}) but \
                             the home directory records owner {:?}",
                            entry.owner
                        ),
                    ));
                }
            }
            if entry.state.dirty() && entry.owner.is_none() {
                return Err(Self::violation(
                    idx,
                    format!(
                        "dir-mismatch: home directory marks line {line} {:?} with no owner",
                        entry.state
                    ),
                ));
            }

            // Replica-directory hygiene and the replica-value invariant.
            if is_dve && !degraded {
                let replica = self.engine.replica_node_of(line);
                let rd = self.engine.replica_dir(replica);
                let covered = self.engine.line_has_replica(line);
                if rd.peek(line).is_some() && !covered {
                    return Err(Self::violation(
                        idx,
                        format!(
                            "replica-dir: node {replica} holds an entry for line {line}, \
                             which is outside the replication scope"
                        ),
                    ));
                }
                // A line's entry lives only in the directory of the
                // node the placement assigned its replica to.
                for n in (0..nodes).filter(|&n| n != replica) {
                    if self.engine.replica_dir(n).peek(line).is_some() {
                        return Err(Self::violation(
                            idx,
                            format!(
                                "replica-dir: node {n} holds an entry for line {line}, whose \
                                 replica is placed on node {replica}"
                            ),
                        ));
                    }
                }
                if covered {
                    match rd.policy() {
                        ReplicaPolicy::Deny => {
                            if llc[home].is_some_and(|st| st.dirty()) && rd.replica_readable(line) {
                                return Err(Self::violation(
                                    idx,
                                    format!(
                                        "replica-dir: deny directory leaves line {line} \
                                         replica-readable while the home socket holds it dirty \
                                         ({:?})",
                                        llc[home]
                                    ),
                                ));
                            }
                        }
                        ReplicaPolicy::Allow => {
                            if rd.peek(line) == Some(ReplicaState::S)
                                && (0..sockets).any(|s| llc[s].is_some_and(|st| st.dirty()))
                            {
                                return Err(Self::violation(
                                    idx,
                                    format!(
                                        "replica-dir: allow directory grants S on line {line} \
                                         while a dirty copy exists ({llc:?})"
                                    ),
                                ));
                            }
                        }
                    }
                    // If a replica-side read would be served from
                    // replica memory right now, that memory must be
                    // fresh. (A far-memory replica node has no LLC.)
                    let replica_llc_dirty =
                        replica < sockets && llc[replica].is_some_and(|st| st.dirty());
                    if rd.replica_readable(line)
                        && !replica_llc_dirty
                        && !self.engine.replica_stale(line)
                        && !self.shadow.is_fresh(line, Location::ReplicaMem(replica))
                    {
                        return Err(Self::violation(
                            idx,
                            format!(
                                "replica-dir: line {line} is replica-readable on node \
                                 {replica} but the replica memory copy is stale (golden v{})",
                                self.shadow.version(line)
                            ),
                        ));
                    }
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{config_by_name, tiny_engine};

    fn pool() -> Vec<LineAddr> {
        (0..32).collect()
    }

    #[test]
    fn clean_baseline_trace_passes() {
        let cfg = config_by_name("baseline");
        let mut ck = ConformanceChecker::new(&cfg, None, pool());
        for (i, op) in [
            FuzzOp::Access {
                core: 0,
                line: 0,
                write: false,
            },
            FuzzOp::Access {
                core: 1,
                line: 0,
                write: true,
            },
            FuzzOp::Access {
                core: 2,
                line: 0,
                write: false,
            },
            FuzzOp::Access {
                core: 0,
                line: 0,
                write: false,
            },
        ]
        .into_iter()
        .enumerate()
        {
            ck.apply(op).unwrap_or_else(|v| panic!("op {i}: {v}"));
        }
        assert_eq!(ck.ops_applied(), 4);
    }

    #[test]
    fn breakdown_conserves_across_clean_trace() {
        // Drive a Dvé config through a mixed trace; the per-op
        // conservation check and the breakdown mirror both run after
        // every op, so reaching the end proves every access's
        // per-component attribution summed to its end-to-end latency.
        let cfg = config_by_name("dve-deny-spec");
        let mut ck = ConformanceChecker::new(&cfg, None, pool());
        for i in 0..24u64 {
            let op = FuzzOp::Access {
                core: (i % 4) as u8,
                line: i % 6,
                write: i % 3 == 0,
            };
            ck.apply(op).unwrap_or_else(|v| panic!("op {i}: {v}"));
        }
        let stats = ck.engine().stats();
        assert_eq!(
            stats.latency_breakdown.total(),
            stats.latency_sum.iter().sum::<u64>(),
            "aggregate breakdown equals aggregate latency"
        );
        assert!(stats.latency_breakdown.link > 0, "remote traffic charged");
    }

    #[test]
    fn time_travel_bug_caught_as_monotonicity() {
        let cfg = config_by_name("baseline");
        let mut ck = ConformanceChecker::new(&cfg, Some(SeededBug::TimeTravelCompletion), pool());
        let v = ck
            .apply(FuzzOp::Access {
                core: 0,
                line: 0,
                write: false,
            })
            .unwrap_err();
        assert_eq!(v.class(), "monotonicity");
    }

    #[test]
    fn violation_class_is_prefix() {
        let v = Violation {
            op_index: 3,
            kind: "stale-read: details".into(),
        };
        assert_eq!(v.class(), "stale-read");
        assert_eq!(format!("{v}"), "op 3: stale-read: details");
    }

    #[test]
    fn checker_reports_engine_geometry() {
        let cfg = FuzzConfig {
            name: "t".into(),
            mode: Mode::Baseline,
            engine: tiny_engine(),
        };
        let ck = ConformanceChecker::new(&cfg, None, pool());
        assert_eq!(ck.engine().config().cores, 4);
    }
}
