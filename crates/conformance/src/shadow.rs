//! The golden shadow: a flat, sequentially-consistent memory model plus
//! per-location freshness tracking, and the recording fabric that feeds
//! it.
//!
//! The conformance driver serializes operations (matching §V-C3's
//! per-line serialization at the directory), so sequential consistency
//! reduces to *read-returns-last-write*: every line has a single latest
//! version, and a read is correct iff the location the engine served it
//! from holds that version. The shadow therefore keeps, per line:
//!
//! * a version counter (the golden memory — bumped by every store), and
//! * a **freshness mask** of physical locations currently holding the
//!   latest version: home memory, each node's replica memory, each
//!   socket's LLC and each core's L1.
//!
//! Stores reset the mask to the writer's caches; writebacks observed
//! through the [`RecordingFabric`] re-add the home and replica memory
//! copies; reads add the requester's caches *after* checking that the
//! claimed data source was fresh. A location that is both resident (per
//! the engine's own structures) and *not* fresh is a stale copy — the
//! exact failure §V-B1's strong consistency is supposed to exclude.

use dve_coherence::fabric::{Fabric, TestFabric};
use dve_coherence::types::LineAddr;
use dve_noc::topology::PlacementMap;
use dve_noc::traffic::MessageClass;
use dve_sim::latency::Stamp;
use std::collections::HashMap;

/// One memory-system action the engine performed, as seen at the
/// fabric boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FabricEvent {
    /// Home-copy read on `socket` (also issued for on-chip directory
    /// cache misses, so it is *not* used for freshness accounting).
    MemRead {
        /// Socket whose memory was read.
        socket: usize,
        /// Line (or directory-entry) address.
        line: LineAddr,
    },
    /// Home-copy write on `socket`.
    MemWrite {
        /// Socket whose memory was written.
        socket: usize,
        /// Line address.
        line: LineAddr,
    },
    /// Replica-copy read on `socket`.
    ReplicaRead {
        /// Socket whose replica memory was read.
        socket: usize,
        /// Line address.
        line: LineAddr,
    },
    /// Replica-copy write on `socket`.
    ReplicaWrite {
        /// Socket whose replica memory was written.
        socket: usize,
        /// Line address.
        line: LineAddr,
    },
}

/// A [`Fabric`] that delegates timing to [`TestFabric`] while recording
/// every memory/replica access for the shadow.
#[derive(Debug, Clone, Default)]
pub struct RecordingFabric {
    /// The fixed-latency fabric providing all timing.
    pub inner: TestFabric,
    /// Events recorded since the last [`RecordingFabric::take_events`].
    pub events: Vec<FabricEvent>,
}

impl RecordingFabric {
    /// A recording fabric spanning `nodes` nodes.
    pub fn with_nodes(nodes: usize) -> RecordingFabric {
        RecordingFabric {
            inner: TestFabric::with_nodes(nodes),
            events: Vec::new(),
        }
    }

    /// Drains and returns the events recorded for the last operation.
    pub fn take_events(&mut self) -> Vec<FabricEvent> {
        std::mem::take(&mut self.events)
    }
}

impl Fabric for RecordingFabric {
    fn mesh_latency(&self) -> u64 {
        self.inner.mesh_latency()
    }

    fn link_send(&mut self, from: usize, to: usize, t: Stamp, class: MessageClass) -> Stamp {
        self.inner.link_send(from, to, t, class)
    }

    fn link_probe(&self, from: usize, to: usize, t: Stamp, class: MessageClass) -> Stamp {
        self.inner.link_probe(from, to, t, class)
    }

    fn mem_read(&mut self, socket: usize, line: LineAddr, t: Stamp) -> Stamp {
        self.events.push(FabricEvent::MemRead { socket, line });
        self.inner.mem_read(socket, line, t)
    }

    fn replica_read(&mut self, socket: usize, line: LineAddr, t: Stamp) -> Stamp {
        self.events.push(FabricEvent::ReplicaRead { socket, line });
        self.inner.replica_read(socket, line, t)
    }

    fn mem_write(&mut self, socket: usize, line: LineAddr, t: Stamp) -> Stamp {
        self.events.push(FabricEvent::MemWrite { socket, line });
        self.inner.mem_write(socket, line, t)
    }

    fn replica_write(&mut self, socket: usize, line: LineAddr, t: Stamp) -> Stamp {
        self.events.push(FabricEvent::ReplicaWrite { socket, line });
        self.inner.replica_write(socket, line, t)
    }
}

/// A physical location that can hold a copy of a line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Location {
    /// The home memory copy.
    HomeMem,
    /// The replica memory copy held on the given node.
    ReplicaMem(usize),
    /// A socket's shared LLC.
    Llc(usize),
    /// A core's private L1.
    L1(usize),
}

impl Location {
    /// Bit of this location in a freshness mask: home memory, then up
    /// to 8 replica nodes, up to 8 socket LLCs, and up to 47 core L1s
    /// (the fuzz configs use at most 3 nodes and 6 cores).
    pub fn bit(self) -> u64 {
        match self {
            Location::HomeMem => 1,
            Location::ReplicaMem(n) => 1 << (1 + n),
            Location::Llc(s) => 1 << (9 + s),
            Location::L1(c) => 1 << (17 + c),
        }
    }
}

/// The golden sequentially-consistent shadow.
#[derive(Debug, Clone)]
pub struct GoldenShadow {
    place: PlacementMap,
    cores_per_socket: usize,
    /// Golden memory: version of the last write per line (0 = initial).
    version: HashMap<LineAddr, u64>,
    /// Locations holding the latest version, per line. Absent = every
    /// location trivially fresh (nothing was ever written).
    fresh: HashMap<LineAddr, u64>,
}

const ALL_FRESH: u64 = u64::MAX;

impl GoldenShadow {
    /// Creates the shadow for an engine with the given geometry and
    /// replica placement.
    pub fn new(place: PlacementMap, cores_per_socket: usize) -> GoldenShadow {
        GoldenShadow {
            place,
            cores_per_socket,
            version: HashMap::new(),
            fresh: HashMap::new(),
        }
    }

    /// The golden (authoritative) version of `line`.
    pub fn version(&self, line: LineAddr) -> u64 {
        self.version.get(&line).copied().unwrap_or(0)
    }

    /// Whether `loc` holds the latest version of `line`.
    pub fn is_fresh(&self, line: LineAddr, loc: Location) -> bool {
        self.fresh.get(&line).copied().unwrap_or(ALL_FRESH) & loc.bit() != 0
    }

    fn mark_fresh(&mut self, line: LineAddr, loc: Location) {
        *self.fresh.entry(line).or_insert(ALL_FRESH) |= loc.bit();
    }

    /// Applies the fabric events of one operation: writebacks restore
    /// the home/replica memory copies to freshness. (Reads carry no
    /// data-movement information the service-level check doesn't
    /// already capture; directory-cache fetches masquerade as
    /// `MemRead`s and must be ignored.)
    pub fn apply_events(&mut self, events: &[FabricEvent]) {
        for ev in events {
            match *ev {
                FabricEvent::MemWrite { socket, line } => {
                    // Writebacks target the home socket; anything else
                    // would be a routing bug caught by the checker.
                    if socket == self.place.home_of(line) {
                        self.mark_fresh(line, Location::HomeMem);
                    }
                }
                FabricEvent::ReplicaWrite { socket, line } => {
                    if socket == self.place.replica_node(line) {
                        self.mark_fresh(line, Location::ReplicaMem(socket));
                    }
                }
                FabricEvent::MemRead { .. } | FabricEvent::ReplicaRead { .. } => {}
            }
        }
    }

    /// Records a completed store by `core` to `line`: the golden version
    /// advances and only the writer's caches hold it.
    pub fn apply_write(&mut self, core: usize, line: LineAddr) {
        *self.version.entry(line).or_insert(0) += 1;
        let socket = core / self.cores_per_socket;
        self.fresh
            .insert(line, Location::L1(core).bit() | Location::Llc(socket).bit());
    }

    /// Marks the requester's caches fresh after a load of `line` by
    /// `core` that was served below the L1 (LLC, DRAM or a forward).
    pub fn fill_caches(&mut self, core: usize, line: LineAddr, include_llc: bool) {
        self.mark_fresh(line, Location::L1(core));
        if include_llc {
            let socket = core / self.cores_per_socket;
            self.mark_fresh(line, Location::Llc(socket));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dve_noc::topology::PlacementPolicy;

    fn mirror2() -> PlacementMap {
        PlacementMap::new(2, 8, PlacementPolicy::Mirror2)
    }

    #[test]
    fn initial_state_everything_fresh() {
        let s = GoldenShadow::new(mirror2(), 2);
        assert_eq!(s.version(5), 0);
        for loc in [
            Location::HomeMem,
            Location::ReplicaMem(1),
            Location::Llc(0),
            Location::L1(3),
        ] {
            assert!(s.is_fresh(5, loc));
        }
    }

    #[test]
    fn write_restricts_freshness_to_writer() {
        let mut s = GoldenShadow::new(mirror2(), 2);
        s.apply_write(3, 9); // core 3 = socket 1
        assert_eq!(s.version(9), 1);
        assert!(s.is_fresh(9, Location::L1(3)));
        assert!(s.is_fresh(9, Location::Llc(1)));
        assert!(!s.is_fresh(9, Location::HomeMem));
        assert!(!s.is_fresh(9, Location::ReplicaMem(0)));
        assert!(!s.is_fresh(9, Location::L1(0)));
        assert!(!s.is_fresh(9, Location::Llc(0)));
    }

    #[test]
    fn writeback_events_restore_memory_freshness() {
        let mut s = GoldenShadow::new(mirror2(), 2);
        s.apply_write(0, 9); // line 9: page 1, home socket 1, replica 0
        s.apply_events(&[
            FabricEvent::MemWrite { socket: 1, line: 9 },
            FabricEvent::ReplicaWrite { socket: 0, line: 9 },
        ]);
        assert!(s.is_fresh(9, Location::HomeMem));
        assert!(s.is_fresh(9, Location::ReplicaMem(0)));
        // Misrouted writes must not count.
        s.apply_write(0, 9);
        s.apply_events(&[FabricEvent::MemWrite { socket: 0, line: 9 }]);
        assert!(!s.is_fresh(9, Location::HomeMem));
    }

    #[test]
    fn three_node_striping_keys_replica_freshness_by_node() {
        // 3 sockets, round-robin: line 0 (page 0) homes on 0, replica
        // lands on node 1; a replica write on node 2 must not count.
        let mut s = GoldenShadow::new(PlacementMap::new(3, 8, PlacementPolicy::RoundRobin), 2);
        let replica = s.place.replica_node(0);
        assert_eq!(replica, 1);
        s.apply_write(0, 0);
        s.apply_events(&[FabricEvent::ReplicaWrite { socket: 2, line: 0 }]);
        assert!(!s.is_fresh(0, Location::ReplicaMem(replica)));
        s.apply_events(&[FabricEvent::ReplicaWrite {
            socket: replica,
            line: 0,
        }]);
        assert!(s.is_fresh(0, Location::ReplicaMem(replica)));
        // Each node's replica slot is a distinct location.
        assert_ne!(Location::ReplicaMem(1).bit(), Location::ReplicaMem(2).bit());
    }

    #[test]
    fn recording_fabric_captures_events_and_delegates_timing() {
        let mut f = RecordingFabric::default();
        let t = f.mem_read(0, 7, Stamp::start(100));
        assert_eq!(t.at(), 100 + f.inner.dram);
        assert_eq!(t.breakdown().bank_service, f.inner.dram);
        let t2 = f.replica_write(1, 7, Stamp::start(0));
        assert_eq!(t2.at(), f.inner.dram);
        let evs = f.take_events();
        assert_eq!(
            evs,
            vec![
                FabricEvent::MemRead { socket: 0, line: 7 },
                FabricEvent::ReplicaWrite { socket: 1, line: 7 },
            ]
        );
        assert!(f.take_events().is_empty());
        assert_eq!(f.inner.mem_reads[0], 1);
    }
}
