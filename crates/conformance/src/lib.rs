//! # dve-conformance — differential conformance fuzzing of the
//! production coherence engine
//!
//! §V-C4 of the paper verifies the Dvé protocol in Murφ, and
//! `dve-verify` reproduces that — but against its *own* small model,
//! not the production state machine in `dve-coherence::engine` that
//! every performance number flows through. This crate closes that gap
//! in the spirit of Tvarak's end-to-end redundancy verification and the
//! Ramulator 2.0 re-evaluation's warning about silently-wrong simulator
//! models:
//!
//! * [`shadow`] — a data-carrying **golden shadow**: a flat,
//!   sequentially-consistent memory (per-line version counters) plus a
//!   freshness map recording *which physical locations* (home memory,
//!   replica memory, each LLC, each L1) currently hold the latest
//!   version of each line. A [`shadow::RecordingFabric`] captures every
//!   memory/replica read and write the engine performs.
//! * [`check`] — the op-by-op conformance checker: after **every**
//!   operation it verifies SWMR across L1s/LLCs, L1⊆LLC inclusion,
//!   home-directory and replica-directory agreement with the caches,
//!   replica-memory freshness whenever the replica directory would
//!   allow a read, read-returns-last-write (the service level the
//!   engine reports must name a location holding the latest version),
//!   latency monotonicity, and exact stats conservation against an
//!   independently maintained mirror.
//! * [`fuzz`] — randomized multi-core op sequences, seeded via
//!   [`dve_sim::rng::derive_seed`] and biased by `dve-workloads`
//!   profiles (sharing mix, write fraction, spatial locality), driven
//!   through **all** engine modes: Baseline, IntelMirror,
//!   Dvé×{allow,deny}×{speculative}, replicated-subset scopes, and
//!   tiny replica-directory capacities that stress evictions, plus
//!   degraded-mode transitions and dynamic protocol switches.
//! * [`shrink`] — a delta-debugging (ddmin) shrinker that minimizes a
//!   violating op trace to a replayable regression case.
//! * [`mutation`] — the harness-validation gate: re-runs the fuzzer
//!   against engines with deliberately seeded protocol bugs
//!   ([`dve_coherence::SeededBug`]) and asserts each one is caught and
//!   shrunk to a short trace. A fuzzer that cannot catch planted bugs
//!   proves nothing about the real one.
//!
//! The harness is the net; the bugfixes it forced in
//! `dve-coherence::engine` (stale sibling-L1 copies after in-socket
//! writes, missing L1 downgrades on owner forwards, replica-directory
//! pollution outside the replication scope, and unsafe §V-E degraded
//! recovery) are the catch — each ships with its minimized trace as a
//! committed regression test in `tests/regressions.rs`.

pub mod check;
pub mod fuzz;
pub mod mutation;
pub mod shadow;
pub mod shrink;
pub mod trace;

pub use check::{ConformanceChecker, Violation};
pub use fuzz::{builtin_configs, fuzz_config, run_trace, FuzzOutcome};
pub use mutation::{mutation_check, MutationReport, ALL_BUGS};
pub use shrink::shrink;
pub use trace::{FuzzConfig, FuzzOp};
