//! Fuzz-trace vocabulary: the operations the fuzzer drives through the
//! engine and the mode/structure configurations it sweeps.

use dve_coherence::engine::{EngineConfig, Mode, ReplicationScope};
use dve_coherence::replica_dir::ReplicaPolicy;
use dve_coherence::types::LineAddr;
use dve_noc::topology::PlacementPolicy;

/// One step of a conformance-fuzz trace.
///
/// Traces are plain data: they replay deterministically through
/// [`crate::fuzz::run_trace`], shrink with [`crate::shrink::shrink`],
/// and commit verbatim as regression tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FuzzOp {
    /// One memory operation by `core` on `line`.
    Access {
        /// Issuing core.
        core: u8,
        /// Target cache line.
        line: LineAddr,
        /// Store (`true`) or load (`false`).
        write: bool,
    },
    /// Enter/leave the §V-E degraded (single-copy) state.
    SetDegraded(bool),
    /// Dynamic-scheme protocol switch (§V-C5). Ignored outside Dvé
    /// modes so shrunken traces stay replayable everywhere.
    SwitchPolicy {
        /// Switch to the deny family (`true`) or allow (`false`).
        deny: bool,
        /// Speculative replica access after the switch.
        speculative: bool,
    },
}

/// A named engine configuration the fuzzer drives.
#[derive(Debug, Clone)]
pub struct FuzzConfig {
    /// Human-readable name (used in reports and CI logs).
    pub name: String,
    /// Engine mode.
    pub mode: Mode,
    /// Engine structure configuration (typically tiny caches, so
    /// evictions and writebacks happen within short traces).
    pub engine: EngineConfig,
}

/// Small-structure engine config shared by all fuzz modes: 4 cores over
/// 2 sockets, 512 B direct-mapped-ish L1s and a 2 KiB LLC so capacity
/// evictions, writebacks and back-invalidations fire within a few dozen
/// ops, and 8-line pages so the home mapping interleaves densely across
/// the 32-line fuzz pool.
pub fn tiny_engine() -> EngineConfig {
    EngineConfig {
        cores: 4,
        cores_per_socket: 2,
        l1_bytes: 512,
        l1_ways: 2,
        llc_bytes: 2048,
        llc_ways: 4,
        line_bytes: 64,
        page_lines: 8,
        replica_dir_entries: Some(2048),
        replica_region_lines: 1,
        free_installs: false,
        dir_cache_entries: None,
        replication_scope: ReplicationScope::All,
        sockets: 2,
        placement: PlacementPolicy::Mirror2,
    }
}

fn dve(policy: ReplicaPolicy, speculative: bool) -> Mode {
    Mode::Dve {
        policy,
        speculative,
    }
}

/// The full mode sweep: baseline NUMA, Intel mirroring, both Dvé
/// families with and without speculation, a replicated-subset scope,
/// tiny replica directories (capacity 4, forcing constant evictions —
/// including forced RM downgrades) and a coarse-grained (4-line region)
/// replica directory.
pub fn builtin_configs() -> Vec<FuzzConfig> {
    let base = tiny_engine();
    let scoped = |cfg: &EngineConfig| EngineConfig {
        // Pages 0 (home 0) and 1 (home 1) replicated; pages 2 and 3
        // take the §V-D single-copy fallback path even in Dvé modes.
        replication_scope: ReplicationScope::Pages([0u64, 1u64].into_iter().collect()),
        ..cfg.clone()
    };
    let tiny_rd = |cfg: &EngineConfig| EngineConfig {
        replica_dir_entries: Some(4),
        ..cfg.clone()
    };
    let coarse = |cfg: &EngineConfig| EngineConfig {
        replica_region_lines: 4,
        replica_dir_entries: Some(8),
        ..cfg.clone()
    };
    let dir_cached = |cfg: &EngineConfig| EngineConfig {
        dir_cache_entries: Some(8),
        ..cfg.clone()
    };
    // Three sockets, round-robin replica striping: replica-set bugs the
    // two-node configs cannot express (a third socket that is neither
    // home nor replica for a line).
    let nway3 = |cfg: &EngineConfig| EngineConfig {
        cores: 6,
        cores_per_socket: 2,
        sockets: 3,
        placement: PlacementPolicy::RoundRobin,
        ..cfg.clone()
    };
    let mk = |name: &str, mode: Mode, engine: EngineConfig| FuzzConfig {
        name: name.to_string(),
        mode,
        engine,
    };
    vec![
        mk("baseline", Mode::Baseline, base.clone()),
        mk("intel-mirror", Mode::IntelMirror, base.clone()),
        mk("dve-allow", dve(ReplicaPolicy::Allow, false), base.clone()),
        mk("dve-deny", dve(ReplicaPolicy::Deny, false), base.clone()),
        mk(
            "dve-allow-spec",
            dve(ReplicaPolicy::Allow, true),
            base.clone(),
        ),
        mk(
            "dve-deny-spec",
            dve(ReplicaPolicy::Deny, true),
            base.clone(),
        ),
        mk(
            "dve-allow-scoped",
            dve(ReplicaPolicy::Allow, false),
            scoped(&base),
        ),
        mk(
            "dve-deny-scoped",
            dve(ReplicaPolicy::Deny, true),
            scoped(&base),
        ),
        mk(
            "dve-allow-tiny-rd",
            dve(ReplicaPolicy::Allow, false),
            tiny_rd(&base),
        ),
        mk(
            "dve-deny-tiny-rd",
            dve(ReplicaPolicy::Deny, false),
            tiny_rd(&base),
        ),
        mk(
            "dve-deny-coarse",
            dve(ReplicaPolicy::Deny, false),
            coarse(&base),
        ),
        mk(
            "dve-allow-coarse",
            dve(ReplicaPolicy::Allow, false),
            coarse(&base),
        ),
        mk(
            "dve-deny-dircache",
            dve(ReplicaPolicy::Deny, false),
            dir_cached(&base),
        ),
        mk(
            "dve-allow-nway3",
            dve(ReplicaPolicy::Allow, false),
            nway3(&base),
        ),
        mk(
            "dve-deny-nway3",
            dve(ReplicaPolicy::Deny, false),
            nway3(&base),
        ),
    ]
}

/// Looks up a builtin config by name.
///
/// # Panics
///
/// Panics if `name` is not a builtin configuration.
pub fn config_by_name(name: &str) -> FuzzConfig {
    builtin_configs()
        .into_iter()
        .find(|c| c.name == name)
        .unwrap_or_else(|| panic!("unknown fuzz config {name}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn configs_cover_all_mode_families() {
        let cfgs = builtin_configs();
        assert!(cfgs.iter().any(|c| c.mode == Mode::Baseline));
        assert!(cfgs.iter().any(|c| c.mode == Mode::IntelMirror));
        for policy in [ReplicaPolicy::Allow, ReplicaPolicy::Deny] {
            for spec in [false, true] {
                assert!(
                    cfgs.iter().any(|c| c.mode == dve(policy, spec)),
                    "missing Dvé {policy:?} spec={spec}"
                );
            }
        }
        // Stress variants present.
        assert!(cfgs.iter().any(|c| c.engine.replica_dir_entries == Some(4)));
        assert!(cfgs.iter().any(|c| c.engine.replica_region_lines > 1));
        assert!(cfgs
            .iter()
            .any(|c| matches!(c.engine.replication_scope, ReplicationScope::Pages(_))));
        assert!(cfgs.iter().any(|c| c.engine.dir_cache_entries.is_some()));
    }

    #[test]
    fn config_names_unique() {
        let cfgs = builtin_configs();
        let mut names: Vec<_> = cfgs.iter().map(|c| c.name.clone()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), cfgs.len());
    }

    #[test]
    fn config_by_name_round_trips() {
        for c in builtin_configs() {
            assert_eq!(config_by_name(&c.name).name, c.name);
        }
    }
}
