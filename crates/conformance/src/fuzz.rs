//! Randomized trace generation and the fuzz driver.
//!
//! Traces are generated *independently of engine outcomes* — the ops a
//! trace contains never depend on what the engine returned — so any
//! trace replays bit-identically and every subsequence of a trace is
//! itself a valid trace. That property is what makes [`crate::shrink`]
//! sound.
//!
//! Generation is seeded through [`dve_sim::rng::derive_seed`] (the one
//! sanctioned master-seed → child-seed derivation in this workspace)
//! and biased by the Table III workload profiles from `dve-workloads`:
//! the sharing-class mix picks shared vs. thread-private regions, the
//! profile's write fraction picks loads vs. stores, and its spatial
//! locality drives sequential next-line cursors — so the fuzzer visits
//! the same protocol-state neighborhoods the performance runs do, plus
//! the degraded-mode and protocol-switch transitions they never take.

pub use crate::trace::builtin_configs;

use crate::check::{ConformanceChecker, Violation};
use crate::trace::{FuzzConfig, FuzzOp};
use dve_coherence::engine::SeededBug;
use dve_coherence::types::LineAddr;
use dve_coherence::Mode;
use dve_sim::rng::{derive_seed, SplitMix64};
use dve_workloads::{catalog, WorkloadProfile};

/// Lines per thread-private region.
const PRIVATE_LINES: u64 = 4;
/// Lines in the shared region (spanning pages 0 and 1, so both sockets
/// are home to half of it).
const SHARED_LINES: u64 = 16;
/// Probability of a degraded-mode toggle per op slot (Dvé configs).
const P_DEGRADED: f64 = 0.004;
/// Probability of a dynamic protocol switch per op slot (Dvé configs).
const P_SWITCH: f64 = 0.003;

/// The 32-line pool every fuzz trace draws from: lines 0–15 are the
/// shared region (pages 0–1, homes interleaved), lines 16–31 are four
/// thread-private regions of [`PRIVATE_LINES`] each (pages 2–3). With
/// the `Pages([0, 1])` replication scope, the shared region is
/// replicated and the private regions take the §V-D single-copy
/// fallback.
pub fn line_pool() -> Vec<LineAddr> {
    (0..SHARED_LINES + 4 * PRIVATE_LINES).collect()
}

/// First line of `core`'s private region.
fn private_base(core: u8) -> LineAddr {
    SHARED_LINES + PRIVATE_LINES * core as u64
}

/// Profile-biased op generator.
struct OpGen {
    rng: SplitMix64,
    profile: WorkloadProfile,
    /// Whether degraded/switch transition ops may be emitted.
    dve: bool,
    cores: u8,
    /// Per-core sequential cursor in the shared region.
    shared_cursor: [u64; 8],
    /// Per-core sequential cursor in its private region.
    private_cursor: [u64; 8],
}

impl OpGen {
    fn new(cfg: &FuzzConfig, profile: WorkloadProfile, seed: u64) -> OpGen {
        OpGen {
            rng: SplitMix64::new(seed),
            profile,
            dve: matches!(cfg.mode, Mode::Dve { .. }),
            cores: cfg.engine.cores as u8,
            shared_cursor: [0; 8],
            private_cursor: [0; 8],
        }
    }

    fn next_op(&mut self) -> FuzzOp {
        if self.dve && self.rng.chance(P_DEGRADED) {
            return FuzzOp::SetDegraded(self.rng.chance(0.5));
        }
        if self.dve && self.rng.chance(P_SWITCH) {
            return FuzzOp::SwitchPolicy {
                deny: self.rng.chance(0.5),
                speculative: self.rng.chance(0.5),
            };
        }
        let core = self.rng.next_below(self.cores as u64) as u8;
        // Sharing class drawn from the profile mix.
        let mix = self.profile.mix;
        let x = self.rng.next_f64();
        let (private, writable_class) = if x < mix.private_read {
            (true, false)
        } else if x < mix.private_read + mix.read_only {
            (false, false)
        } else if x < mix.private_read + mix.read_only + mix.read_write {
            (false, true)
        } else {
            (true, true)
        };
        // Read-only classes still see rare stores (initialization
        // phases), so no line in the pool is unwritable forever.
        let write = if writable_class {
            self.rng.chance(self.profile.write_frac.max(0.15))
        } else {
            self.rng.chance(0.02)
        };
        let ci = core as usize;
        let (base, len, cursor) = if private {
            (
                private_base(core),
                PRIVATE_LINES,
                &mut self.private_cursor[ci],
            )
        } else {
            (0, SHARED_LINES, &mut self.shared_cursor[ci])
        };
        let off = if self.rng.chance(self.profile.spatial) {
            *cursor = (*cursor + 1) % len;
            *cursor
        } else {
            let o = self.rng.next_below(len);
            *cursor = o;
            o
        };
        FuzzOp::Access {
            core,
            line: base + off,
            write,
        }
    }
}

/// Generates a `len`-op trace for `cfg`, biased by `profile`, from a
/// fully derived `seed`.
pub fn gen_trace(
    cfg: &FuzzConfig,
    profile: &WorkloadProfile,
    seed: u64,
    len: usize,
) -> Vec<FuzzOp> {
    let mut g = OpGen::new(cfg, profile.clone(), seed);
    (0..len).map(|_| g.next_op()).collect()
}

/// Replays `ops` through a fresh engine in `cfg` (optionally with a
/// seeded `bug`) and returns the first conformance violation, if any.
pub fn run_trace(cfg: &FuzzConfig, ops: &[FuzzOp], bug: Option<SeededBug>) -> Option<Violation> {
    let mut checker = ConformanceChecker::new(cfg, bug, line_pool());
    for &op in ops {
        if let Err(v) = checker.apply(op) {
            return Some(v);
        }
    }
    None
}

/// A violating trace together with the violation it produced.
#[derive(Debug, Clone)]
pub struct FuzzFailure {
    /// The (unshrunk) trace that exposed the violation.
    pub trace: Vec<FuzzOp>,
    /// The violation itself.
    pub violation: Violation,
}

/// Result of fuzzing one configuration.
#[derive(Debug, Clone)]
pub struct FuzzOutcome {
    /// Name of the configuration fuzzed.
    pub config: String,
    /// Total ops executed before stopping (all of them, if clean).
    pub ops_run: u64,
    /// The first failure, if one occurred.
    pub failure: Option<FuzzFailure>,
}

/// Ops per generated trace chunk. Each chunk starts from a cold engine,
/// so state pathologies must develop within one chunk — 512 ops is
/// dozens of times the tiny caches' capacity, which is plenty (and it
/// keeps violating traces short before shrinking even starts).
const CHUNK_OPS: usize = 512;

/// FNV-1a, used to give every configuration its own seed stream.
fn stream_of(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Fuzzes one configuration for `total_ops` operations (in
/// [`CHUNK_OPS`]-sized traces, cycling through the Table III workload
/// profiles) and stops at the first violation.
pub fn fuzz_config(
    cfg: &FuzzConfig,
    master_seed: u64,
    total_ops: u64,
    bug: Option<SeededBug>,
) -> FuzzOutcome {
    let profiles = catalog();
    let stream = stream_of(&cfg.name);
    let mut ops_run = 0u64;
    let mut round = 0u64;
    while ops_run < total_ops {
        let len = CHUNK_OPS.min((total_ops - ops_run) as usize);
        let profile = &profiles[(round as usize) % profiles.len()];
        let seed = derive_seed(master_seed, stream, round);
        let trace = gen_trace(cfg, profile, seed, len);
        if let Some(violation) = run_trace(cfg, &trace, bug) {
            ops_run += violation.op_index as u64 + 1;
            return FuzzOutcome {
                config: cfg.name.clone(),
                ops_run,
                failure: Some(FuzzFailure { trace, violation }),
            };
        }
        ops_run += len as u64;
        round += 1;
    }
    FuzzOutcome {
        config: cfg.name.clone(),
        ops_run,
        failure: None,
    }
}

/// Renders a trace as the Rust literal used in committed regression
/// tests (`tests/regressions.rs`).
pub fn format_trace(ops: &[FuzzOp]) -> String {
    let mut s = String::from("&[\n");
    for op in ops {
        match *op {
            FuzzOp::Access { core, line, write } => {
                s.push_str(&format!(
                    "    FuzzOp::Access {{ core: {core}, line: {line}, write: {write} }},\n"
                ));
            }
            FuzzOp::SetDegraded(d) => {
                s.push_str(&format!("    FuzzOp::SetDegraded({d}),\n"));
            }
            FuzzOp::SwitchPolicy { deny, speculative } => {
                s.push_str(&format!(
                    "    FuzzOp::SwitchPolicy {{ deny: {deny}, speculative: {speculative} }},\n"
                ));
            }
        }
    }
    s.push(']');
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::config_by_name;

    #[test]
    fn traces_are_deterministic() {
        let cfg = config_by_name("dve-allow");
        let p = &catalog()[0];
        let a = gen_trace(&cfg, p, 42, 200);
        let b = gen_trace(&cfg, p, 42, 200);
        assert_eq!(a, b);
        let c = gen_trace(&cfg, p, 43, 200);
        assert_ne!(a, c);
    }

    #[test]
    fn generated_lines_stay_in_pool() {
        let cfg = config_by_name("dve-deny");
        let pool = line_pool();
        for (i, p) in catalog().iter().enumerate() {
            for op in gen_trace(&cfg, p, 1000 + i as u64, 300) {
                if let FuzzOp::Access { line, core, .. } = op {
                    assert!(pool.contains(&line));
                    assert!((core as usize) < cfg.engine.cores);
                }
            }
        }
    }

    #[test]
    fn baseline_traces_have_no_transition_ops() {
        let cfg = config_by_name("baseline");
        let p = &catalog()[3];
        for op in gen_trace(&cfg, p, 7, 2000) {
            assert!(matches!(op, FuzzOp::Access { .. }));
        }
    }

    #[test]
    fn format_trace_round_trip_shape() {
        let ops = [
            FuzzOp::Access {
                core: 1,
                line: 9,
                write: true,
            },
            FuzzOp::SetDegraded(true),
            FuzzOp::SwitchPolicy {
                deny: false,
                speculative: true,
            },
        ];
        let s = format_trace(&ops);
        assert!(s.contains("FuzzOp::Access { core: 1, line: 9, write: true }"));
        assert!(s.contains("FuzzOp::SetDegraded(true)"));
        assert!(s.contains("FuzzOp::SwitchPolicy { deny: false, speculative: true }"));
    }
}
