//! Harness validation by mutation testing.
//!
//! A conformance harness that has never caught a bug proves nothing: it
//! may simply be blind. This module re-runs the fuzzer against engines
//! with deliberately seeded protocol/accounting bugs
//! ([`dve_coherence::SeededBug`]) and reports, for each mutation, which
//! configuration caught it, how many ops that took, and the minimized
//! trace. The CI gate asserts every mutation is caught and shrinks to a
//! short trace — the same standard `dve-verify`'s Murφ-style model
//! holds itself to, applied to the production engine's net.

use crate::fuzz::{builtin_configs, fuzz_config};
use crate::shrink::shrink;
use crate::trace::FuzzOp;
use dve_coherence::engine::SeededBug;

/// Every seeded mutation the engine supports.
pub const ALL_BUGS: [SeededBug; 7] = [
    SeededBug::AllowAbsenceReadable,
    SeededBug::SkipReplicaWriteback,
    SeededBug::SkipRmInstall,
    SeededBug::SkipReplicaInvalidate,
    SeededBug::SkipSiblingL1Invalidate,
    SeededBug::NoOwnerDowngradeOnForward,
    SeededBug::TimeTravelCompletion,
];

/// Outcome of hunting one seeded mutation.
#[derive(Debug, Clone)]
pub struct MutationReport {
    /// The mutation that was seeded.
    pub bug: SeededBug,
    /// Whether any configuration caught it.
    pub caught: bool,
    /// Configuration that caught it (empty if escaped).
    pub config: String,
    /// Ops executed in that configuration before the catch.
    pub ops_to_catch: u64,
    /// Class of the violation that caught it.
    pub class: String,
    /// The minimized reproducing trace.
    pub shrunk: Vec<FuzzOp>,
}

/// Runs the fuzzer against each seeded mutation across all builtin
/// configurations (up to `ops_per_config` ops each) and returns one
/// report per mutation. A mutation that no configuration catches comes
/// back with `caught == false` — the caller decides whether that fails
/// the gate.
pub fn mutation_check(master_seed: u64, ops_per_config: u64) -> Vec<MutationReport> {
    let configs = builtin_configs();
    ALL_BUGS
        .iter()
        .map(|&bug| {
            for cfg in &configs {
                let out = fuzz_config(cfg, master_seed, ops_per_config, Some(bug));
                if let Some(failure) = out.failure {
                    let (small, v) = shrink(cfg, &failure.trace, Some(bug), &failure.violation);
                    return MutationReport {
                        bug,
                        caught: true,
                        config: cfg.name.clone(),
                        ops_to_catch: out.ops_run,
                        class: v.class().to_string(),
                        shrunk: small,
                    };
                }
            }
            MutationReport {
                bug,
                caught: false,
                config: String::new(),
                ops_to_catch: 0,
                class: String::new(),
                shrunk: Vec::new(),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_bugs_listed_once() {
        let mut seen = ALL_BUGS.to_vec();
        seen.dedup();
        assert_eq!(seen.len(), 7);
    }
}
