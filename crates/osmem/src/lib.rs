//! # dve-osmem — OS support for on-demand memory replication (§III, §V-D)
//!
//! Dvé maps every replicated physical page to a partner page on the
//! *other* socket, either through a fixed function (when all memory is
//! replicated en masse) or through the OS-managed **Replica Map Table**
//! (RMT) for flexible, on-demand replication. This crate models that
//! software layer:
//!
//! * [`mapping`] — the paper's fixed-function mapping
//!   `f(p) = p/L + 1 − 2S` (socket-interleaved page pairs, identical
//!   DRAM-internal coordinates).
//! * [`rmt`] — the RMT as a linear table and as a 2-level radix tree,
//!   plus the directory-side RMT cache with hit/walk statistics. Entries
//!   are `page → (node, frame)` [`ReplicaLoc`]s, so replicas can live on
//!   any node of an N-node topology, not just "the other socket".
//! * [`placement`] — pluggable placement policies (mirror-2,
//!   round-robin N-way, two-tier local-compressed + remote-full) with
//!   per-node frame allocation and capacity accounting.
//! * [`allocator`] — a two-node physical page allocator that builds
//!   replica pairs across sockets, carves capacity balloon-style from
//!   free memory, and hot-plugs it back when replication is disabled.
//! * [`policy`] — the control-plane decision logic: hysteresis
//!   thresholds on memory utilization and per-process replication flags
//!   (the PCB bit of §V-D).
//! * [`heap`] — the `malloc_replicated` façade: applications place just
//!   their failure-resilient data segments on replicated pages.
//!
//! # Example
//!
//! ```
//! use dve_osmem::allocator::ReplicaAllocator;
//!
//! let mut alloc = ReplicaAllocator::new(1024, 1024); // pages per socket
//! let pair = alloc.allocate_pair().unwrap();
//! assert_ne!(pair.primary_socket, pair.replica_socket);
//! ```

pub mod allocator;
pub mod heap;
pub mod mapping;
pub mod placement;
pub mod policy;
pub mod rmt;

pub use allocator::{PagePair, ReplicaAllocator};
pub use heap::ReplicatedHeap;
pub use mapping::FixedMapping;
pub use placement::ReplicaPlacer;
pub use policy::ReplicationPolicy;
pub use rmt::{ReplicaLoc, ReplicaMapTable, RmtCache, RmtOrganization};
