//! A `malloc_replicated`-style allocation façade (§V-D).
//!
//! "A variant of the malloc/calloc call can be provided to request the
//! OS to allocate a replicated physical memory" — so that a stateless
//! application can place just its failure-resilient data segments on
//! replicated pages. [`ReplicatedHeap`] sits on top of the
//! [`ReplicaAllocator`] and the [`ReplicaMapTable`]: each allocation
//! reserves whole replica page pairs, registers them in the RMT, and
//! hands back a contiguous virtual range; `free` returns the pages and
//! (optionally) retires the RMT entries.

use crate::allocator::{AllocError, PagePair, ReplicaAllocator};
use crate::rmt::{ReplicaLoc, ReplicaMapTable};
use std::collections::HashMap;

/// Page size used by the heap (4 KiB).
pub const PAGE_BYTES: u64 = 4096;

/// A replicated allocation handle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Allocation {
    /// Virtual base address of the range.
    pub base: u64,
    /// Length in bytes (rounded up to whole pages).
    pub bytes: u64,
}

/// The replicated-memory heap for one process.
///
/// # Example
///
/// ```
/// use dve_osmem::allocator::ReplicaAllocator;
/// use dve_osmem::heap::ReplicatedHeap;
/// use dve_osmem::rmt::{ReplicaMapTable, RmtOrganization};
///
/// let mut alloc = ReplicaAllocator::new(64, 64);
/// let mut rmt = ReplicaMapTable::new(RmtOrganization::Linear);
/// let mut heap = ReplicatedHeap::new(0x7f00_0000_0000);
/// let a = heap.malloc_replicated(10_000, &mut alloc, &mut rmt).unwrap();
/// assert_eq!(a.bytes, 3 * 4096); // rounded up to pages
/// assert!(heap.is_replicated(a.base + 5000));
/// heap.free(a, &mut alloc, &mut rmt).unwrap();
/// ```
#[derive(Debug, Default)]
pub struct ReplicatedHeap {
    next_vaddr: u64,
    /// Live allocations → their backing page pairs.
    live: HashMap<u64, Vec<PagePair>>,
    /// Virtual page → primary physical page (for address translation).
    vmap: HashMap<u64, u64>,
}

/// Errors from the replicated heap.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HeapError {
    /// The underlying allocator could not supply pages.
    Alloc(AllocError),
    /// Freed an address that is not a live allocation base.
    BadFree,
    /// Zero-byte allocation requested.
    ZeroSize,
}

impl std::fmt::Display for HeapError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HeapError::Alloc(e) => write!(f, "replica allocation failed: {e}"),
            HeapError::BadFree => write!(f, "free of an unknown allocation base"),
            HeapError::ZeroSize => write!(f, "zero-byte allocation"),
        }
    }
}

impl std::error::Error for HeapError {}

impl ReplicatedHeap {
    /// Creates a heap whose virtual ranges start at `base_vaddr`
    /// (page-aligned).
    pub fn new(base_vaddr: u64) -> ReplicatedHeap {
        ReplicatedHeap {
            next_vaddr: base_vaddr & !(PAGE_BYTES - 1),
            live: HashMap::new(),
            vmap: HashMap::new(),
        }
    }

    /// Allocates `bytes` of replicated memory: whole page pairs from the
    /// allocator, registered in the RMT.
    ///
    /// # Errors
    ///
    /// [`HeapError::ZeroSize`] for empty requests;
    /// [`HeapError::Alloc`] when capacity or the pressure floor blocks
    /// the allocation (already-acquired pages are rolled back).
    pub fn malloc_replicated(
        &mut self,
        bytes: u64,
        alloc: &mut ReplicaAllocator,
        rmt: &mut ReplicaMapTable,
    ) -> Result<Allocation, HeapError> {
        if bytes == 0 {
            return Err(HeapError::ZeroSize);
        }
        let pages = bytes.div_ceil(PAGE_BYTES);
        let mut pairs = Vec::with_capacity(pages as usize);
        for _ in 0..pages {
            match alloc.allocate_pair() {
                Ok(p) => pairs.push(p),
                Err(e) => {
                    // Roll back partial acquisition.
                    for p in pairs.drain(..) {
                        alloc.free_pair(p);
                    }
                    return Err(HeapError::Alloc(e));
                }
            }
        }
        let base = self.next_vaddr;
        self.next_vaddr += pages * PAGE_BYTES;
        for (i, p) in pairs.iter().enumerate() {
            // Physical page numbers are socket-local; qualify with the
            // socket in the high bits so the RMT key is global.
            let gp = global_page(p.primary_socket, p.primary);
            rmt.map(
                gp,
                ReplicaLoc {
                    node: p.replica_socket,
                    frame: p.replica,
                },
            );
            self.vmap.insert(base / PAGE_BYTES + i as u64, gp);
        }
        self.live.insert(base, pairs);
        Ok(Allocation {
            base,
            bytes: pages * PAGE_BYTES,
        })
    }

    /// Whether `vaddr` falls inside a live replicated allocation.
    pub fn is_replicated(&self, vaddr: u64) -> bool {
        self.vmap.contains_key(&(vaddr / PAGE_BYTES))
    }

    /// Translates a virtual address to its (global) primary physical
    /// page, if replicated.
    pub fn primary_page(&self, vaddr: u64) -> Option<u64> {
        self.vmap.get(&(vaddr / PAGE_BYTES)).copied()
    }

    /// Frees an allocation: pages return to the allocator and the RMT
    /// entries retire.
    ///
    /// # Errors
    ///
    /// [`HeapError::BadFree`] if `a.base` is not a live allocation.
    pub fn free(
        &mut self,
        a: Allocation,
        alloc: &mut ReplicaAllocator,
        rmt: &mut ReplicaMapTable,
    ) -> Result<(), HeapError> {
        let pairs = self.live.remove(&a.base).ok_or(HeapError::BadFree)?;
        for (i, p) in pairs.iter().enumerate() {
            rmt.unmap(global_page(p.primary_socket, p.primary));
            self.vmap.remove(&(a.base / PAGE_BYTES + i as u64));
            alloc.free_pair(*p);
        }
        Ok(())
    }

    /// Live allocation count.
    pub fn live_allocations(&self) -> usize {
        self.live.len()
    }
}

/// Qualifies a socket-local page number into a global page id.
pub fn global_page(socket: usize, page: u64) -> u64 {
    ((socket as u64) << 48) | page
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rmt::RmtOrganization;

    fn setup() -> (ReplicaAllocator, ReplicaMapTable, ReplicatedHeap) {
        (
            ReplicaAllocator::new(32, 32),
            ReplicaMapTable::new(RmtOrganization::Radix2),
            ReplicatedHeap::new(0x1000_0000),
        )
    }

    #[test]
    fn malloc_rounds_to_pages_and_maps() {
        let (mut alloc, mut rmt, mut heap) = setup();
        let a = heap.malloc_replicated(1, &mut alloc, &mut rmt).unwrap();
        assert_eq!(a.bytes, PAGE_BYTES);
        assert_eq!(rmt.len(), 1);
        assert!(heap.is_replicated(a.base));
        assert!(!heap.is_replicated(a.base + PAGE_BYTES));
        let b = heap
            .malloc_replicated(PAGE_BYTES * 2 + 1, &mut alloc, &mut rmt)
            .unwrap();
        assert_eq!(b.bytes, 3 * PAGE_BYTES);
        assert_eq!(rmt.len(), 4);
        assert_eq!(heap.live_allocations(), 2);
    }

    #[test]
    fn allocations_do_not_overlap() {
        let (mut alloc, mut rmt, mut heap) = setup();
        let a = heap
            .malloc_replicated(PAGE_BYTES, &mut alloc, &mut rmt)
            .unwrap();
        let b = heap
            .malloc_replicated(PAGE_BYTES, &mut alloc, &mut rmt)
            .unwrap();
        assert!(a.base + a.bytes <= b.base);
    }

    #[test]
    fn translation_reaches_the_rmt() {
        let (mut alloc, mut rmt, mut heap) = setup();
        let a = heap
            .malloc_replicated(PAGE_BYTES, &mut alloc, &mut rmt)
            .unwrap();
        let primary = heap.primary_page(a.base).unwrap();
        let replica = rmt.lookup(primary).expect("mapped");
        assert_ne!(primary >> 48, replica.node as u64, "pair spans sockets");
    }

    #[test]
    fn free_returns_everything() {
        let (mut alloc, mut rmt, mut heap) = setup();
        let a = heap
            .malloc_replicated(5 * PAGE_BYTES, &mut alloc, &mut rmt)
            .unwrap();
        assert_eq!(alloc.free_pages(0) + alloc.free_pages(1), 54);
        heap.free(a, &mut alloc, &mut rmt).unwrap();
        assert_eq!(alloc.free_pages(0) + alloc.free_pages(1), 64);
        assert_eq!(rmt.len(), 0);
        assert!(!heap.is_replicated(a.base));
        assert_eq!(heap.free(a, &mut alloc, &mut rmt), Err(HeapError::BadFree));
    }

    #[test]
    fn partial_failure_rolls_back() {
        let (_, mut rmt, mut heap) = setup();
        let mut tiny = ReplicaAllocator::new(2, 2);
        let r = heap.malloc_replicated(5 * PAGE_BYTES, &mut tiny, &mut rmt);
        assert!(matches!(r, Err(HeapError::Alloc(_))));
        assert_eq!(tiny.free_pages(0), 2, "partial pages rolled back");
        assert_eq!(rmt.len(), 0);
        assert_eq!(heap.live_allocations(), 0);
    }

    #[test]
    fn zero_size_rejected() {
        let (mut alloc, mut rmt, mut heap) = setup();
        assert_eq!(
            heap.malloc_replicated(0, &mut alloc, &mut rmt),
            Err(HeapError::ZeroSize)
        );
    }
}
