//! Pluggable replica placement: which node gets a page's replica, and
//! which frame on that node.
//!
//! The original system had exactly one placement: the other socket,
//! same DRAM coordinates. The N-node layer splits that decision in
//! two — the *node* comes from the topology-level
//! [`PlacementPolicy`] (mirror-2, round-robin N-way, or the two-tier
//! local-compressed + remote-full scheme of Volos & Sazeides), and
//! the *frame* comes from a per-node allocator here. The chosen
//! [`ReplicaLoc`] is recorded in the [`ReplicaMapTable`] so hardware
//! walks resolve it.
//!
//! Two-tier capacity accounting: besides the full replica on the far
//! node, each placed page keeps a *compressed* local copy on its home
//! socket. Compressed copies pack [`TWO_TIER_COMPRESSION`] to a frame;
//! the timed simulation does not model decompression (see DESIGN.md
//! §15 for that fidelity remainder), but the capacity ledger here
//! does, so control-plane decisions see the real footprint.

use crate::rmt::{ReplicaLoc, ReplicaMapTable};
use dve_noc::topology::{NodeId, PlacementPolicy, Topology};

/// Compressed copies packed per physical frame in the two-tier scheme
/// (a 2:1 compression ratio, the conservative end of what Volos &
/// Sazeides assume).
pub const TWO_TIER_COMPRESSION: u64 = 2;

/// Chooses replica nodes per policy and allocates frames on them.
///
/// # Example
///
/// ```
/// use dve_noc::topology::{EdgeParams, PlacementPolicy, Topology};
/// use dve_osmem::placement::ReplicaPlacer;
/// use dve_osmem::rmt::{ReplicaMapTable, RmtOrganization};
///
/// let topo = Topology::symmetric(4, EdgeParams::qpi());
/// let mut placer = ReplicaPlacer::new(&topo, PlacementPolicy::RoundRobin);
/// let mut rmt = ReplicaMapTable::new(RmtOrganization::Radix2);
/// let loc = placer.place(7, &mut rmt);
/// assert_eq!(rmt.lookup(7), Some(loc));
/// assert_ne!(loc.node, placer.home_of(7));
/// ```
#[derive(Debug, Clone)]
pub struct ReplicaPlacer {
    policy: PlacementPolicy,
    sockets: usize,
    /// Per-node bump pointer for fresh frames.
    next_frame: Vec<u64>,
    /// Per-node free lists (frames returned by `unplace`, reused LIFO).
    free: Vec<Vec<u64>>,
    /// Per-node count of live full replicas.
    replicas: Vec<u64>,
    /// Per-home-socket count of live compressed local copies
    /// (two-tier only).
    compressed: Vec<u64>,
}

impl ReplicaPlacer {
    /// Builds a placer for `topology` under `policy`.
    ///
    /// # Panics
    ///
    /// Panics if the policy names nodes the topology does not have, or
    /// if a two-tier far node is not a far-memory node.
    pub fn new(topology: &Topology, policy: PlacementPolicy) -> ReplicaPlacer {
        let sockets = topology.sockets();
        let nodes = topology.nodes();
        match policy {
            PlacementPolicy::Mirror2 => assert_eq!(sockets, 2, "mirror needs two sockets"),
            PlacementPolicy::RoundRobin => assert!(sockets >= 2),
            PlacementPolicy::TwoTier { far } => {
                assert!(far < nodes, "far node {far} outside topology");
                assert!(
                    !topology.is_socket(far),
                    "the two-tier far node must be a far-memory pool"
                );
            }
        }
        ReplicaPlacer {
            policy,
            sockets,
            next_frame: vec![0; nodes],
            free: vec![Vec::new(); nodes],
            replicas: vec![0; nodes],
            compressed: vec![0; sockets],
        }
    }

    /// The policy in force.
    pub fn policy(&self) -> PlacementPolicy {
        self.policy
    }

    /// The home socket of `page` (round-robin page interleave; the
    /// two-socket case is the paper's parity rule).
    pub fn home_of(&self, page: u64) -> NodeId {
        (page % self.sockets as u64) as usize
    }

    /// The node the policy sends `page`'s replica to.
    pub fn replica_node_of(&self, page: u64) -> NodeId {
        let home = self.home_of(page);
        match self.policy {
            PlacementPolicy::Mirror2 => 1 - home,
            PlacementPolicy::RoundRobin => {
                let others = self.sockets as u64 - 1;
                (home + 1 + (page % others) as usize) % self.sockets
            }
            PlacementPolicy::TwoTier { far } => far,
        }
    }

    fn take_frame(&mut self, node: NodeId) -> u64 {
        if let Some(f) = self.free[node].pop() {
            return f;
        }
        let f = self.next_frame[node];
        self.next_frame[node] += 1;
        f
    }

    /// Places `page`: picks the replica node, allocates a frame there,
    /// records the mapping in `rmt`, and (two-tier) accounts the
    /// compressed local copy. Returns the location. Placing an
    /// already-placed page returns the existing location unchanged.
    pub fn place(&mut self, page: u64, rmt: &mut ReplicaMapTable) -> ReplicaLoc {
        if let Some(existing) = rmt.lookup(page) {
            return existing;
        }
        let node = self.replica_node_of(page);
        let frame = self.take_frame(node);
        let loc = ReplicaLoc { node, frame };
        rmt.map(page, loc);
        self.replicas[node] += 1;
        if matches!(self.policy, PlacementPolicy::TwoTier { .. }) {
            let home = self.home_of(page);
            self.compressed[home] += 1;
        }
        loc
    }

    /// Reverses [`place`](ReplicaPlacer::place): unmaps the page,
    /// returns its frame to the node's free list, and releases the
    /// compressed-copy accounting. Returns the old location, `None` if
    /// the page was not placed.
    pub fn unplace(&mut self, page: u64, rmt: &mut ReplicaMapTable) -> Option<ReplicaLoc> {
        let loc = rmt.unmap(page)?;
        self.free[loc.node].push(loc.frame);
        self.replicas[loc.node] -= 1;
        if matches!(self.policy, PlacementPolicy::TwoTier { .. }) {
            let home = self.home_of(page);
            self.compressed[home] -= 1;
        }
        Some(loc)
    }

    /// Live full-replica count per node.
    pub fn replica_counts(&self) -> &[u64] {
        &self.replicas
    }

    /// Full-replica frames currently reserved on `node` (live plus
    /// free-listed — the high-water mark).
    pub fn frames_reserved(&self, node: NodeId) -> u64 {
        self.next_frame[node]
    }

    /// Physical frames the compressed local copies occupy on socket
    /// `node` (two-tier only; zero otherwise). Compressed copies pack
    /// [`TWO_TIER_COMPRESSION`] per frame, rounded up.
    pub fn compressed_frames(&self, node: NodeId) -> u64 {
        if node >= self.compressed.len() {
            return 0;
        }
        self.compressed[node].div_ceil(TWO_TIER_COMPRESSION)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rmt::RmtOrganization;
    use dve_noc::topology::EdgeParams;

    fn rmt() -> ReplicaMapTable {
        ReplicaMapTable::new(RmtOrganization::Linear)
    }

    #[test]
    fn mirror_places_on_the_other_socket() {
        let topo = Topology::mirror2(EdgeParams::qpi());
        let mut placer = ReplicaPlacer::new(&topo, PlacementPolicy::Mirror2);
        let mut rmt = rmt();
        for page in 0..64u64 {
            let loc = placer.place(page, &mut rmt);
            assert_eq!(loc.node, 1 - (page % 2) as usize);
        }
        assert_eq!(placer.replica_counts(), &[32, 32]);
        assert_eq!(
            placer.compressed_frames(0),
            0,
            "mirror has no compressed tier"
        );
    }

    #[test]
    fn place_is_idempotent_and_unplace_reuses_frames() {
        let topo = Topology::symmetric(3, EdgeParams::qpi());
        let mut placer = ReplicaPlacer::new(&topo, PlacementPolicy::RoundRobin);
        let mut rmt = rmt();
        let a = placer.place(10, &mut rmt);
        assert_eq!(placer.place(10, &mut rmt), a, "double place is a lookup");
        assert_eq!(placer.replica_counts().iter().sum::<u64>(), 1);
        assert_eq!(placer.unplace(10, &mut rmt), Some(a));
        assert_eq!(rmt.lookup(10), None);
        assert_eq!(
            placer.unplace(10, &mut rmt),
            None,
            "double unplace is a no-op"
        );
        // The freed frame is reused by the next placement on that node.
        let pages_on_same_node: Vec<u64> = (0..100)
            .filter(|&p| placer.replica_node_of(p) == a.node)
            .collect();
        let b = placer.place(pages_on_same_node[0], &mut rmt);
        assert_eq!(
            b,
            ReplicaLoc {
                node: a.node,
                frame: a.frame
            }
        );
    }

    #[test]
    fn two_tier_accounts_compressed_local_copies() {
        let topo = Topology::two_tier(EdgeParams::qpi(), EdgeParams::far_tier());
        let mut placer = ReplicaPlacer::new(&topo, PlacementPolicy::TwoTier { far: 2 });
        let mut rmt = rmt();
        for page in 0..10u64 {
            let loc = placer.place(page, &mut rmt);
            assert_eq!(loc.node, 2, "full replicas go to the far pool");
        }
        assert_eq!(placer.replica_counts(), &[0, 0, 10]);
        // 5 home-0 pages and 5 home-1 pages, packed 2:1.
        assert_eq!(placer.compressed_frames(0), 3);
        assert_eq!(placer.compressed_frames(1), 3);
        assert_eq!(
            placer.compressed_frames(2),
            0,
            "the far pool holds full copies"
        );
        placer.unplace(0, &mut rmt);
        assert_eq!(placer.compressed_frames(0), 2);
    }

    #[test]
    #[should_panic(expected = "far-memory pool")]
    fn two_tier_rejects_a_socket_as_far_node() {
        let topo = Topology::symmetric(3, EdgeParams::qpi());
        ReplicaPlacer::new(&topo, PlacementPolicy::TwoTier { far: 2 });
    }
}
