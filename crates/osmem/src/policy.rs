//! Control-plane policy: when to enable/disable replication, and for
//! whom (§V-D).
//!
//! "The onus is on the workload placement and server management
//! infrastructure (aka Control Plane) to define critical workloads and
//! notify the OS when such replication costs are justified." The policy
//! here implements the two signals the paper describes: a memory
//! utilization hysteresis (replicate while memory is idle, reclaim under
//! capacity crunch) and per-process criticality flags (the PCB bit set
//! at process-creation time).

use std::collections::HashMap;

/// A replication decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Decision {
    /// Keep (or start) replicating.
    Replicate,
    /// Stop replicating and reclaim replica pages.
    Reclaim,
    /// No change (inside the hysteresis band).
    Hold,
}

/// Hysteresis policy on memory utilization.
///
/// Replication is enabled while utilization stays below `enable_below`
/// and torn down once it rises above `disable_above` — the band between
/// the two prevents flapping.
///
/// # Example
///
/// ```
/// use dve_osmem::policy::{Decision, ReplicationPolicy};
///
/// let mut p = ReplicationPolicy::new(0.45, 0.85);
/// assert_eq!(p.decide(0.30), Decision::Replicate);
/// assert_eq!(p.decide(0.60), Decision::Hold); // inside the band
/// assert_eq!(p.decide(0.90), Decision::Reclaim);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ReplicationPolicy {
    enable_below: f64,
    disable_above: f64,
    replicating: bool,
    flags: HashMap<u64, bool>,
}

impl ReplicationPolicy {
    /// Creates a policy with the given thresholds.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < enable_below < disable_above < 1`.
    pub fn new(enable_below: f64, disable_above: f64) -> ReplicationPolicy {
        assert!(
            0.0 < enable_below && enable_below < disable_above && disable_above < 1.0,
            "thresholds must satisfy 0 < enable < disable < 1"
        );
        ReplicationPolicy {
            enable_below,
            disable_above,
            replicating: false,
            flags: HashMap::new(),
        }
    }

    /// The paper's motivating observation — "at least 50% of the memory
    /// is idle 90% of the time" — makes 45%/85% sensible defaults.
    pub fn datacenter_defaults() -> ReplicationPolicy {
        ReplicationPolicy::new(0.45, 0.85)
    }

    /// Whether replication is currently on.
    pub fn replicating(&self) -> bool {
        self.replicating
    }

    /// Feeds a utilization sample and returns the decision.
    ///
    /// # Panics
    ///
    /// Panics if `utilization` is outside `[0, 1]`.
    pub fn decide(&mut self, utilization: f64) -> Decision {
        assert!(
            (0.0..=1.0).contains(&utilization),
            "utilization must be in [0,1]"
        );
        if utilization < self.enable_below {
            self.replicating = true;
            Decision::Replicate
        } else if utilization > self.disable_above {
            self.replicating = false;
            Decision::Reclaim
        } else {
            Decision::Hold
        }
    }

    /// Marks a process (by pid) as requiring replicated memory — the
    /// PCB flag set at process creation, or a `malloc_replicated`
    /// region owner.
    pub fn set_process_critical(&mut self, pid: u64, critical: bool) {
        self.flags.insert(pid, critical);
    }

    /// Whether allocations for `pid` should come from replicated memory:
    /// requires both the global mode and the per-process flag.
    pub fn process_replicated(&self, pid: u64) -> bool {
        self.replicating && self.flags.get(&pid).copied().unwrap_or(false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hysteresis_band_holds_state() {
        let mut p = ReplicationPolicy::new(0.4, 0.8);
        assert!(!p.replicating());
        p.decide(0.3);
        assert!(p.replicating());
        // Utilization creeps up through the band: stays on.
        assert_eq!(p.decide(0.5), Decision::Hold);
        assert!(p.replicating());
        assert_eq!(p.decide(0.79), Decision::Hold);
        assert!(p.replicating());
        // Crosses the top: reclaim.
        assert_eq!(p.decide(0.81), Decision::Reclaim);
        assert!(!p.replicating());
        // Falls back into the band: stays off (no flapping).
        assert_eq!(p.decide(0.6), Decision::Hold);
        assert!(!p.replicating());
    }

    #[test]
    fn process_flags_require_global_mode() {
        let mut p = ReplicationPolicy::datacenter_defaults();
        p.set_process_critical(42, true);
        assert!(!p.process_replicated(42), "global mode off");
        p.decide(0.1);
        assert!(p.process_replicated(42));
        assert!(!p.process_replicated(7), "unflagged process");
        p.set_process_critical(42, false);
        assert!(!p.process_replicated(42));
    }

    #[test]
    #[should_panic(expected = "thresholds")]
    fn inverted_thresholds_rejected() {
        ReplicationPolicy::new(0.8, 0.4);
    }

    #[test]
    #[should_panic(expected = "utilization")]
    fn bad_utilization_rejected() {
        ReplicationPolicy::datacenter_defaults().decide(1.5);
    }
}
