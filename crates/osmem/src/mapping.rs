//! The fixed-function replica mapping of §III (footnote 3).
//!
//! With consecutive physical pages interleaved between the two sockets,
//! the paper's example function `f(p) = p/L + 1 − 2S` pairs each page
//! with its neighbor on the other socket: page 2k (socket 0) ↔ page
//! 2k+1 (socket 1). The DRAM-internal coordinates (row/rank/bank/column)
//! are retained, so translation is a single arithmetic operation — no
//! table lookup.

/// The fixed (static, direct-mapped) replica mapping.
///
/// # Example
///
/// ```
/// use dve_osmem::mapping::FixedMapping;
///
/// let m = FixedMapping::new(4096);
/// assert_eq!(m.replica_page(0), 1);
/// assert_eq!(m.replica_page(1), 0);
/// assert_eq!(m.replica_page(6), 7);
/// // The mapping is an involution: f(f(p)) == p.
/// assert_eq!(m.replica_page(m.replica_page(42)), 42);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FixedMapping {
    page_bytes: u64,
}

impl FixedMapping {
    /// Creates a mapping for the given page size.
    ///
    /// # Panics
    ///
    /// Panics unless `page_bytes` is a power of two of at least 4 KiB.
    pub fn new(page_bytes: u64) -> FixedMapping {
        assert!(
            page_bytes.is_power_of_two() && page_bytes >= 4096,
            "page size must be a power of two >= 4 KiB"
        );
        FixedMapping { page_bytes }
    }

    /// Page size in bytes (the paper's `L`).
    pub fn page_bytes(self) -> u64 {
        self.page_bytes
    }

    /// Socket of a page under the interleaved allocation policy.
    pub fn socket_of_page(self, page: u64) -> usize {
        (page % 2) as usize
    }

    /// The replica page of `page`: `p + 1 − 2S` where `S` is the page's
    /// socket — i.e. the partner in its even/odd pair.
    pub fn replica_page(self, page: u64) -> u64 {
        let s = page % 2;
        page + 1 - 2 * s
    }

    /// The replica *byte address* of a byte address.
    pub fn replica_addr(self, addr: u64) -> u64 {
        let page = addr / self.page_bytes;
        let offset = addr % self.page_bytes;
        self.replica_page(page) * self.page_bytes + offset
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pairs_are_cross_socket() {
        let m = FixedMapping::new(4096);
        for page in 0..1000u64 {
            let r = m.replica_page(page);
            assert_ne!(m.socket_of_page(page), m.socket_of_page(r), "page {page}");
        }
    }

    #[test]
    fn involution() {
        let m = FixedMapping::new(4096);
        for page in 0..1000u64 {
            assert_eq!(m.replica_page(m.replica_page(page)), page);
        }
    }

    #[test]
    fn replica_addr_keeps_offset() {
        let m = FixedMapping::new(4096);
        let addr = 2 * 4096 + 123;
        let r = m.replica_addr(addr);
        assert_eq!(r % 4096, 123, "DRAM-internal offset retained");
        assert_eq!(r / 4096, 3);
    }

    #[test]
    fn larger_pages_supported() {
        let m = FixedMapping::new(2 * 1024 * 1024); // 2 MiB huge pages
        assert_eq!(m.page_bytes(), 2 * 1024 * 1024);
        assert_eq!(m.replica_page(10), 11);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn odd_page_size_rejected() {
        FixedMapping::new(5000);
    }
}
