//! The Replica Map Table (RMT) and its directory-side cache (§V-D).
//!
//! A single system-wide OS-managed table maps each replicated physical
//! page to its replica location — the *node* holding the copy and the
//! *frame* within that node. The paper notes it "can be organized as a
//! simple linear table or a 2-level radix-tree (similar to the page
//! table)"; both organizations are provided behind one API. Entries can
//! outlive deallocation (reducing shoot-downs), and directory
//! controllers cache recent translations, walking the table in hardware
//! on a miss.
//!
//! In the original two-socket system the node was implicit ("the other
//! socket") and the table held a bare frame number. The N-node
//! placement layer (see [`crate::placement`] and
//! `dve_noc::topology`) makes the node explicit: entries are
//! [`ReplicaLoc`]s, chosen by a pluggable placement policy.

use dve_noc::topology::NodeId;
use std::collections::HashMap;

/// Where a replicated page's copy lives: a node and a frame on it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ReplicaLoc {
    /// Node holding the replica (socket or far-memory pool).
    pub node: NodeId,
    /// Physical frame number on that node.
    pub frame: u64,
}

/// RMT organization.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RmtOrganization {
    /// Flat hash/array lookup, O(1).
    Linear,
    /// Two-level radix tree (page-table-like); a hardware walk costs two
    /// dependent memory accesses.
    Radix2,
}

/// Radix parameters: low 9 bits index the leaf, next bits the root.
const RADIX_LEAF_BITS: u32 = 9;
const RADIX_LEAF_SIZE: usize = 1 << RADIX_LEAF_BITS;

#[derive(Debug, Clone)]
enum Table {
    Linear(HashMap<u64, ReplicaLoc>),
    Radix2 {
        root: HashMap<u64, Box<[Option<ReplicaLoc>; RADIX_LEAF_SIZE]>>,
        len: usize,
    },
}

/// The system-wide replica map table.
///
/// # Example
///
/// ```
/// use dve_osmem::rmt::{ReplicaLoc, ReplicaMapTable, RmtOrganization};
///
/// let mut rmt = ReplicaMapTable::new(RmtOrganization::Radix2);
/// rmt.map(100, ReplicaLoc { node: 1, frame: 257 });
/// assert_eq!(rmt.lookup(100), Some(ReplicaLoc { node: 1, frame: 257 }));
/// assert_eq!(rmt.lookup(101), None); // unmapped: falls back to single copy
/// ```
#[derive(Debug, Clone)]
pub struct ReplicaMapTable {
    table: Table,
}

impl ReplicaMapTable {
    /// Creates an empty RMT with the chosen organization.
    pub fn new(org: RmtOrganization) -> ReplicaMapTable {
        let table = match org {
            RmtOrganization::Linear => Table::Linear(HashMap::new()),
            RmtOrganization::Radix2 => Table::Radix2 {
                root: HashMap::new(),
                len: 0,
            },
        };
        ReplicaMapTable { table }
    }

    /// The organization in use.
    pub fn organization(&self) -> RmtOrganization {
        match self.table {
            Table::Linear(_) => RmtOrganization::Linear,
            Table::Radix2 { .. } => RmtOrganization::Radix2,
        }
    }

    /// Maps `page` to `replica`. Returns the previous mapping, if any.
    pub fn map(&mut self, page: u64, replica: ReplicaLoc) -> Option<ReplicaLoc> {
        match &mut self.table {
            Table::Linear(m) => m.insert(page, replica),
            Table::Radix2 { root, len } => {
                let leaf = root
                    .entry(page >> RADIX_LEAF_BITS)
                    .or_insert_with(|| Box::new([None; RADIX_LEAF_SIZE]));
                let slot = &mut leaf[(page & (RADIX_LEAF_SIZE as u64 - 1)) as usize];
                let prev = slot.take();
                *slot = Some(replica);
                if prev.is_none() {
                    *len += 1;
                }
                prev
            }
        }
    }

    /// Looks up the replica location. `None` means the page is not
    /// replicated — "Dvé seamlessly falls back to using a single copy".
    pub fn lookup(&self, page: u64) -> Option<ReplicaLoc> {
        match &self.table {
            Table::Linear(m) => m.get(&page).copied(),
            Table::Radix2 { root, .. } => root
                .get(&(page >> RADIX_LEAF_BITS))
                .and_then(|leaf| leaf[(page & (RADIX_LEAF_SIZE as u64 - 1)) as usize]),
        }
    }

    /// Removes the mapping (rare: only on capacity reclamation).
    pub fn unmap(&mut self, page: u64) -> Option<ReplicaLoc> {
        match &mut self.table {
            Table::Linear(m) => m.remove(&page),
            Table::Radix2 { root, len } => {
                let leaf = root.get_mut(&(page >> RADIX_LEAF_BITS))?;
                let slot = &mut leaf[(page & (RADIX_LEAF_SIZE as u64 - 1)) as usize];
                let prev = slot.take();
                if prev.is_some() {
                    *len -= 1;
                }
                prev
            }
        }
    }

    /// Number of live mappings.
    pub fn len(&self) -> usize {
        match &self.table {
            Table::Linear(m) => m.len(),
            Table::Radix2 { len, .. } => *len,
        }
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Memory accesses a hardware walk costs for this organization.
    pub fn walk_accesses(&self) -> u32 {
        match self.table {
            Table::Linear(_) => 1,
            Table::Radix2 { .. } => 2,
        }
    }
}

/// A small fully-associative LRU cache of RMT translations held at a
/// directory controller ("The RMT can be cached at the directory
/// controller for quick lookups").
#[derive(Debug, Clone)]
pub struct RmtCache {
    capacity: usize,
    entries: Vec<(u64, ReplicaLoc)>, // (page, replica), front = MRU
    hits: u64,
    misses: u64,
}

impl RmtCache {
    /// Creates a cache with `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> RmtCache {
        assert!(capacity > 0, "capacity must be non-zero");
        RmtCache {
            capacity,
            entries: Vec::new(),
            hits: 0,
            misses: 0,
        }
    }

    /// Translates `page`, walking `rmt` on a miss. Returns the replica
    /// location (if mapped) and the number of memory accesses spent
    /// (0 on a cache hit, `rmt.walk_accesses()` on a miss).
    pub fn translate(&mut self, page: u64, rmt: &ReplicaMapTable) -> (Option<ReplicaLoc>, u32) {
        if let Some(i) = self.entries.iter().position(|&(p, _)| p == page) {
            let e = self.entries.remove(i);
            self.entries.insert(0, e);
            self.hits += 1;
            return (Some(e.1), 0);
        }
        self.misses += 1;
        let walked = rmt.lookup(page);
        if let Some(r) = walked {
            if self.entries.len() == self.capacity {
                self.entries.pop();
            }
            self.entries.insert(0, (page, r));
        }
        (walked, rmt.walk_accesses())
    }

    /// Invalidates one cached translation (RMT shoot-down).
    pub fn invalidate(&mut self, page: u64) {
        self.entries.retain(|&(p, _)| p != page);
    }

    /// Cache hit count.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Cache miss count.
    pub fn misses(&self) -> u64 {
        self.misses
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Shorthand: a replica on node 1 at `frame` (the two-socket
    /// mirror's only choice; placement tests with other nodes live in
    /// `crate::placement`).
    fn loc(frame: u64) -> ReplicaLoc {
        ReplicaLoc { node: 1, frame }
    }

    #[test]
    fn both_organizations_roundtrip() {
        for org in [RmtOrganization::Linear, RmtOrganization::Radix2] {
            let mut rmt = ReplicaMapTable::new(org);
            assert_eq!(rmt.organization(), org);
            assert!(rmt.is_empty());
            for p in 0..2000u64 {
                assert_eq!(rmt.map(p, loc(p + 10_000)), None);
            }
            assert_eq!(rmt.len(), 2000);
            for p in 0..2000u64 {
                assert_eq!(rmt.lookup(p), Some(loc(p + 10_000)), "{org:?} page {p}");
            }
            assert_eq!(rmt.lookup(99_999), None);
            assert_eq!(rmt.unmap(5), Some(loc(10_005)));
            assert_eq!(rmt.lookup(5), None);
            assert_eq!(rmt.len(), 1999);
        }
    }

    #[test]
    fn remap_returns_previous() {
        let mut rmt = ReplicaMapTable::new(RmtOrganization::Radix2);
        rmt.map(1, loc(2));
        assert_eq!(rmt.map(1, loc(3)), Some(loc(2)));
        assert_eq!(rmt.lookup(1), Some(loc(3)));
        assert_eq!(rmt.len(), 1);
    }

    #[test]
    fn radix_spans_leaves() {
        let mut rmt = ReplicaMapTable::new(RmtOrganization::Radix2);
        // Pages far apart land in different leaves.
        rmt.map(0, loc(1));
        rmt.map(1 << 20, loc(7));
        assert_eq!(rmt.lookup(0), Some(loc(1)));
        assert_eq!(rmt.lookup(1 << 20), Some(loc(7)));
        assert_eq!(rmt.walk_accesses(), 2);
        assert_eq!(
            ReplicaMapTable::new(RmtOrganization::Linear).walk_accesses(),
            1
        );
    }

    #[test]
    fn cache_hits_after_first_walk() {
        let mut rmt = ReplicaMapTable::new(RmtOrganization::Radix2);
        rmt.map(7, loc(8));
        let mut cache = RmtCache::new(4);
        let (r1, cost1) = cache.translate(7, &rmt);
        assert_eq!((r1, cost1), (Some(loc(8)), 2));
        let (r2, cost2) = cache.translate(7, &rmt);
        assert_eq!((r2, cost2), (Some(loc(8)), 0));
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 1);
    }

    #[test]
    fn cache_lru_eviction() {
        let mut rmt = ReplicaMapTable::new(RmtOrganization::Linear);
        for p in 0..5 {
            rmt.map(p, loc(p + 100));
        }
        let mut cache = RmtCache::new(2);
        cache.translate(0, &rmt);
        cache.translate(1, &rmt);
        cache.translate(0, &rmt); // 0 MRU, 1 LRU
        cache.translate(2, &rmt); // evicts 1
        let (_, cost) = cache.translate(0, &rmt);
        assert_eq!(cost, 0, "0 still cached");
        let (_, cost) = cache.translate(1, &rmt);
        assert_eq!(cost, 1, "1 was evicted");
    }

    #[test]
    fn cache_shootdown() {
        let mut rmt = ReplicaMapTable::new(RmtOrganization::Linear);
        rmt.map(3, loc(4));
        let mut cache = RmtCache::new(4);
        cache.translate(3, &rmt);
        cache.invalidate(3);
        let (_, cost) = cache.translate(3, &rmt);
        assert_eq!(cost, 1, "must re-walk after shoot-down");
    }

    #[test]
    fn unmapped_pages_not_cached() {
        let rmt = ReplicaMapTable::new(RmtOrganization::Linear);
        let mut cache = RmtCache::new(4);
        let (r, _) = cache.translate(9, &rmt);
        assert_eq!(r, None);
        // A second lookup must walk again (no negative caching).
        let (_, cost) = cache.translate(9, &rmt);
        assert_eq!(cost, 1);
    }
}
