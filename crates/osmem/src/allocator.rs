//! Two-node physical page allocator with balloon-style capacity carving.
//!
//! §V-D: the OS steals estimated-idle memory for replication ("balloon
//! drivers ... can be used to create memory pressure"), pairs pages
//! across NUMA nodes (never within one), and hot-plugs the capacity back
//! into the free pool when the control plane disables replication. Dvé
//! "only requires pairs of pages in different NUMA nodes and not a large
//! contiguous address space", so the allocator is free-list based.

use std::collections::BTreeSet;

/// A replica page pair spanning the two sockets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PagePair {
    /// The primary (data) page frame number.
    pub primary: u64,
    /// Socket holding the primary page.
    pub primary_socket: usize,
    /// The replica page frame number.
    pub replica: u64,
    /// Socket holding the replica page.
    pub replica_socket: usize,
}

/// Errors from the allocator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AllocError {
    /// One of the sockets has no free pages left for replication.
    OutOfMemory {
        /// The exhausted socket.
        socket: usize,
    },
    /// Allocation would push free memory below the pressure threshold
    /// (the OS's guard against excessive swapping, §V-D).
    PressureLimit,
}

impl std::fmt::Display for AllocError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AllocError::OutOfMemory { socket } => {
                write!(f, "socket {socket} has no free pages for replication")
            }
            AllocError::PressureLimit => write!(f, "allocation would exceed memory pressure limit"),
        }
    }
}

impl std::error::Error for AllocError {}

/// The two-node replica page allocator.
///
/// Page frame numbers are socket-local; sockets are 0 and 1. Primary
/// pages alternate sockets (interleave policy) and the replica always
/// lands on the other socket.
///
/// # Example
///
/// ```
/// use dve_osmem::allocator::ReplicaAllocator;
///
/// let mut a = ReplicaAllocator::new(64, 64);
/// let p = a.allocate_pair().unwrap();
/// assert_ne!(p.primary_socket, p.replica_socket);
/// a.free_pair(p);
/// assert_eq!(a.free_pages(0) + a.free_pages(1), 128);
/// ```
#[derive(Debug, Clone)]
pub struct ReplicaAllocator {
    free: [BTreeSet<u64>; 2],
    total: [u64; 2],
    /// Minimum fraction of each socket's pages that must stay free
    /// (guard against swap storms). 0.0 disables the guard.
    pressure_floor: f64,
    next_primary_socket: usize,
    live_pairs: usize,
}

impl ReplicaAllocator {
    /// Creates an allocator with `pages0`/`pages1` free pages per socket.
    pub fn new(pages0: u64, pages1: u64) -> ReplicaAllocator {
        ReplicaAllocator {
            free: [(0..pages0).collect(), (0..pages1).collect()],
            total: [pages0, pages1],
            pressure_floor: 0.0,
            next_primary_socket: 0,
            live_pairs: 0,
        }
    }

    /// Sets the free-memory floor as a fraction of each socket's total.
    ///
    /// # Panics
    ///
    /// Panics unless `floor` is in `[0, 1)`.
    pub fn set_pressure_floor(&mut self, floor: f64) {
        assert!((0.0..1.0).contains(&floor), "floor must be in [0,1)");
        self.pressure_floor = floor;
    }

    /// Free pages on a socket.
    pub fn free_pages(&self, socket: usize) -> u64 {
        self.free[socket].len() as u64
    }

    /// Live replica pairs.
    pub fn live_pairs(&self) -> usize {
        self.live_pairs
    }

    /// Utilization of a socket in [0, 1].
    pub fn utilization(&self, socket: usize) -> f64 {
        if self.total[socket] == 0 {
            return 1.0;
        }
        1.0 - self.free[socket].len() as f64 / self.total[socket] as f64
    }

    fn floor_ok(&self, socket: usize) -> bool {
        let after = self.free[socket].len() as f64 - 1.0;
        after >= self.pressure_floor * self.total[socket] as f64
    }

    /// Allocates a replica pair: primary on the interleave-next socket,
    /// replica on the other.
    ///
    /// # Errors
    ///
    /// [`AllocError::OutOfMemory`] when a socket is exhausted;
    /// [`AllocError::PressureLimit`] when the free floor would be
    /// violated.
    pub fn allocate_pair(&mut self) -> Result<PagePair, AllocError> {
        let ps = self.next_primary_socket;
        let rs = 1 - ps;
        for s in [ps, rs] {
            if self.free[s].is_empty() {
                return Err(AllocError::OutOfMemory { socket: s });
            }
            if !self.floor_ok(s) {
                return Err(AllocError::PressureLimit);
            }
        }
        let primary = *self.free[ps].iter().next().expect("checked non-empty");
        self.free[ps].remove(&primary);
        let replica = *self.free[rs].iter().next().expect("checked non-empty");
        self.free[rs].remove(&replica);
        self.next_primary_socket = rs;
        self.live_pairs += 1;
        Ok(PagePair {
            primary,
            primary_socket: ps,
            replica,
            replica_socket: rs,
        })
    }

    /// Returns both pages of a pair to the free pools ("the memory
    /// relinquished can be hot-plugged back to system visible capacity").
    ///
    /// # Panics
    ///
    /// Panics if either page is already free (double free).
    pub fn free_pair(&mut self, pair: PagePair) {
        assert!(
            self.free[pair.primary_socket].insert(pair.primary),
            "double free of primary page {}",
            pair.primary
        );
        assert!(
            self.free[pair.replica_socket].insert(pair.replica),
            "double free of replica page {}",
            pair.replica
        );
        self.live_pairs -= 1;
    }

    /// Carves `n` pages from each socket (balloon inflation) for future
    /// replication use; returns how many were actually carved per socket.
    pub fn balloon_inflate(&mut self, n: u64) -> [u64; 2] {
        let mut carved = [0u64; 2];
        for (s, count) in carved.iter_mut().enumerate() {
            for _ in 0..n {
                if !self.floor_ok(s) || self.free[s].is_empty() {
                    break;
                }
                let page = *self.free[s].iter().next_back().expect("non-empty");
                self.free[s].remove(&page);
                *count += 1;
            }
        }
        carved
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pairs_alternate_primary_socket() {
        let mut a = ReplicaAllocator::new(16, 16);
        let p1 = a.allocate_pair().unwrap();
        let p2 = a.allocate_pair().unwrap();
        assert_eq!(p1.primary_socket, 0);
        assert_eq!(p2.primary_socket, 1);
        assert_eq!(a.live_pairs(), 2);
    }

    #[test]
    fn exhaustion_reports_socket() {
        let mut a = ReplicaAllocator::new(2, 2);
        a.allocate_pair().unwrap();
        a.allocate_pair().unwrap();
        assert!(matches!(
            a.allocate_pair(),
            Err(AllocError::OutOfMemory { .. })
        ));
    }

    #[test]
    fn pressure_floor_blocks_allocation() {
        let mut a = ReplicaAllocator::new(10, 10);
        a.set_pressure_floor(0.85);
        a.allocate_pair().unwrap(); // 9 free ≥ 8.5 floor
        assert_eq!(a.allocate_pair(), Err(AllocError::PressureLimit));
    }

    #[test]
    fn free_restores_capacity() {
        let mut a = ReplicaAllocator::new(4, 4);
        let p = a.allocate_pair().unwrap();
        assert_eq!(a.free_pages(0), 3);
        a.free_pair(p);
        assert_eq!(a.free_pages(0), 4);
        assert_eq!(a.free_pages(1), 4);
        assert_eq!(a.live_pairs(), 0);
    }

    #[test]
    #[should_panic(expected = "double free")]
    fn double_free_detected() {
        let mut a = ReplicaAllocator::new(4, 4);
        let p = a.allocate_pair().unwrap();
        a.free_pair(p);
        a.free_pair(p);
    }

    #[test]
    fn utilization_tracks_allocation() {
        let mut a = ReplicaAllocator::new(10, 10);
        assert_eq!(a.utilization(0), 0.0);
        for _ in 0..5 {
            a.allocate_pair().unwrap();
        }
        // 5 pairs: each socket lost 5 pages.
        assert!((a.utilization(0) - 0.5).abs() < 1e-12);
        assert!((a.utilization(1) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn balloon_respects_floor() {
        let mut a = ReplicaAllocator::new(10, 10);
        a.set_pressure_floor(0.5);
        let carved = a.balloon_inflate(100);
        assert_eq!(carved, [5, 5]);
        assert_eq!(a.free_pages(0), 5);
    }
}
