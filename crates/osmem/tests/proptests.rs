//! Property-based tests for the OS memory-replication layer.

use dve_noc::topology::{EdgeParams, PlacementPolicy, Topology};
use dve_osmem::allocator::ReplicaAllocator;
use dve_osmem::mapping::FixedMapping;
use dve_osmem::placement::ReplicaPlacer;
use dve_osmem::rmt::{ReplicaLoc, ReplicaMapTable, RmtCache, RmtOrganization};
use proptest::prelude::*;
use std::collections::HashMap;

fn loc(node: usize, frame: u64) -> ReplicaLoc {
    ReplicaLoc { node, frame }
}

proptest! {
    // The fixed-function mapping is an involution that always crosses
    // sockets and preserves page offsets.
    #[test]
    fn fixed_mapping_involution(page in 0u64..1_000_000, offset in 0u64..4096) {
        let m = FixedMapping::new(4096);
        let r = m.replica_page(page);
        prop_assert_eq!(m.replica_page(r), page);
        prop_assert_ne!(m.socket_of_page(page), m.socket_of_page(r));
        let addr = page * 4096 + offset;
        prop_assert_eq!(m.replica_addr(addr) % 4096, offset);
        prop_assert_eq!(m.replica_addr(m.replica_addr(addr)), addr);
    }

    // Both RMT organizations implement identical map semantics.
    #[test]
    fn rmt_organizations_agree(
        ops in proptest::collection::vec((0u64..10_000, any::<Option<u64>>()), 1..200)
    ) {
        let mut linear = ReplicaMapTable::new(RmtOrganization::Linear);
        let mut radix = ReplicaMapTable::new(RmtOrganization::Radix2);
        let mut reference: HashMap<u64, ReplicaLoc> = HashMap::new();
        for (page, action) in ops {
            match action {
                Some(frame) => {
                    let replica = loc((frame % 8) as usize, frame);
                    let a = linear.map(page, replica);
                    let b = radix.map(page, replica);
                    prop_assert_eq!(a, b);
                    prop_assert_eq!(a, reference.insert(page, replica));
                }
                None => {
                    let a = linear.unmap(page);
                    let b = radix.unmap(page);
                    prop_assert_eq!(a, b);
                    prop_assert_eq!(a, reference.remove(&page));
                }
            }
            prop_assert_eq!(linear.len(), reference.len());
            prop_assert_eq!(radix.len(), reference.len());
        }
        for (&page, &replica) in &reference {
            prop_assert_eq!(linear.lookup(page), Some(replica));
            prop_assert_eq!(radix.lookup(page), Some(replica));
        }
    }

    // The RMT cache is a transparent accelerator: translations through
    // the cache always equal direct table lookups.
    #[test]
    fn rmt_cache_is_transparent(
        mappings in proptest::collection::hash_map(0u64..256, 0u64..1_000_000, 1..64),
        queries in proptest::collection::vec(0u64..256, 1..200),
        capacity in 1usize..16,
    ) {
        let mut rmt = ReplicaMapTable::new(RmtOrganization::Radix2);
        for (&p, &r) in &mappings {
            rmt.map(p, loc((r % 4) as usize, r));
        }
        let mut cache = RmtCache::new(capacity);
        for q in queries {
            let (via_cache, _) = cache.translate(q, &rmt);
            prop_assert_eq!(via_cache, rmt.lookup(q));
        }
    }

    // The allocator conserves pages: free + allocated == total, pairs
    // always span sockets, and freeing restores everything.
    #[test]
    fn allocator_conserves_pages(
        pages in 2u64..64,
        n_alloc in 1usize..32,
    ) {
        let mut a = ReplicaAllocator::new(pages, pages);
        let mut live = Vec::new();
        for _ in 0..n_alloc {
            match a.allocate_pair() {
                Ok(p) => {
                    prop_assert_ne!(p.primary_socket, p.replica_socket);
                    live.push(p);
                }
                Err(_) => break,
            }
            let total_free = a.free_pages(0) + a.free_pages(1);
            prop_assert_eq!(total_free + 2 * live.len() as u64, 2 * pages);
        }
        for p in live.drain(..) {
            a.free_pair(p);
        }
        prop_assert_eq!(a.free_pages(0), pages);
        prop_assert_eq!(a.free_pages(1), pages);
        prop_assert_eq!(a.live_pairs(), 0);
    }

    // Placement round-trip over random N-node topologies: place/lookup/
    // unplace agree with the RMT, the replica never lands on the home
    // socket (crossing nodes is the whole point), and unplacing
    // everything leaves both structures empty.
    #[test]
    fn placement_round_trip_over_random_topologies(
        sockets in 2usize..6,
        policy_sel in 0u8..2,
        raw_pages in proptest::collection::vec(0u64..5_000, 1..64),
        org_radix in any::<bool>(),
    ) {
        let (topo, policy) = if policy_sel == 0 {
            (
                Topology::symmetric(sockets, EdgeParams::qpi()),
                PlacementPolicy::RoundRobin,
            )
        } else {
            let topo = Topology::two_tier(EdgeParams::qpi(), EdgeParams::far_tier());
            let far = topo.nodes() - 1;
            (topo, PlacementPolicy::TwoTier { far })
        };
        let mut placer = ReplicaPlacer::new(&topo, policy);
        let org = if org_radix { RmtOrganization::Radix2 } else { RmtOrganization::Linear };
        let mut rmt = ReplicaMapTable::new(org);
        let pages: std::collections::HashSet<u64> = raw_pages.into_iter().collect();

        let mut placed = HashMap::new();
        for &page in &pages {
            let l = placer.place(page, &mut rmt);
            prop_assert_ne!(l.node, placer.home_of(page));
            prop_assert_eq!(l.node, placer.replica_node_of(page));
            prop_assert_eq!(rmt.lookup(page), Some(l));
            // No two live replicas on the same node share a frame.
            prop_assert!(!placed.values().any(|&ol| ol == l));
            placed.insert(page, l);
        }
        let total: u64 = placer.replica_counts().iter().sum();
        prop_assert_eq!(total, pages.len() as u64);
        for &page in &pages {
            prop_assert_eq!(placer.unplace(page, &mut rmt), placed.get(&page).copied());
        }
        prop_assert_eq!(rmt.len(), 0);
        prop_assert_eq!(placer.replica_counts().iter().sum::<u64>(), 0);
    }
}
