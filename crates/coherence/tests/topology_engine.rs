//! Engine behavior on N-node topologies: round-robin 4-way striping,
//! the two-tier far-memory scheme, and the golden-preservation identity
//! (round-robin at two sockets is cycle-exact against the mirror).

use dve_coherence::engine::{AccessOutcome, EngineConfig, Mode, ProtocolEngine};
use dve_coherence::fabric::TestFabric;
use dve_coherence::replica_dir::ReplicaPolicy;
use dve_coherence::types::{ReqType, ServiceLevel};
use dve_noc::topology::PlacementPolicy;

fn deny() -> Mode {
    Mode::Dve {
        policy: ReplicaPolicy::Deny,
        speculative: false,
    }
}

fn allow() -> Mode {
    Mode::Dve {
        policy: ReplicaPolicy::Allow,
        speculative: false,
    }
}

fn nway4() -> EngineConfig {
    EngineConfig {
        cores: 32,
        cores_per_socket: 8,
        sockets: 4,
        placement: PlacementPolicy::RoundRobin,
        ..Default::default()
    }
}

fn twotier() -> EngineConfig {
    EngineConfig {
        placement: PlacementPolicy::TwoTier { far: 2 },
        ..Default::default()
    }
}

// Line 0: page 0, home socket 0, round-robin replica (0+1+0)%4 = 1.
const LINE: u64 = 0;

#[test]
fn nway4_replica_colocated_socket_reads_locally() {
    let mut e = ProtocolEngine::new(deny(), nway4());
    let mut f = TestFabric::with_nodes(4);
    assert_eq!(e.home_of(LINE), 0);
    assert_eq!(e.replica_node_of(LINE), 1);
    // A core on socket 1 (the replica node) reads without the link.
    let o = e.access(8, LINE, ReqType::Read, 0, &mut f);
    assert_eq!(o.service, ServiceLevel::LocalDram);
    assert_eq!(f.traffic.total_messages(), 0);
    assert_eq!(f.replica_reads[1], 1);
}

#[test]
fn nway4_third_socket_goes_to_home() {
    let mut e = ProtocolEngine::new(deny(), nway4());
    let mut f = TestFabric::with_nodes(4);
    // Socket 2 is neither home (0) nor replica (1): remote home read.
    let o = e.access(16, LINE, ReqType::Read, 0, &mut f);
    assert_eq!(o.service, ServiceLevel::RemoteDram);
    assert!(f.traffic.total_messages() >= 2, "request + data response");
    assert_eq!(f.replica_reads, [0, 0, 0, 0]);
}

#[test]
fn nway4_third_socket_write_pushes_rm_to_the_replica_node() {
    let mut e = ProtocolEngine::new(deny(), nway4());
    let mut f = TestFabric::with_nodes(4);
    // A write from socket 2 (neither home nor replica) must still
    // protect the replica on node 1 before completing.
    e.access(16, LINE, ReqType::Write, 0, &mut f);
    assert_eq!(e.stats().rm_installs, 1);
    assert!(!e.replica_dir(1).replica_readable(LINE));
    // The replica node's read now routes to the owner, not its replica.
    let o = e.access(8, LINE, ReqType::Read, 1_000_000, &mut f);
    assert_eq!(o.service, ServiceLevel::RemoteOwner);
    assert_eq!(e.stats().replica_reads, 0);
}

#[test]
fn nway4_allow_revokes_permission_on_third_socket_write() {
    let mut e = ProtocolEngine::new(allow(), nway4());
    let mut f = TestFabric::with_nodes(4);
    // Socket 1 pulls a read permission for its co-located replica.
    e.access(8, LINE, ReqType::Read, 0, &mut f);
    assert!(e.replica_dir(1).replica_readable(LINE));
    // A socket-2 write revokes it synchronously.
    e.access(16, LINE, ReqType::Write, 1_000_000, &mut f);
    assert_eq!(e.stats().replica_invalidations, 1);
    assert!(!e.replica_dir(1).replica_readable(LINE));
}

#[test]
fn nway4_writeback_updates_the_placed_replica() {
    let cfg = EngineConfig {
        llc_bytes: 1024,
        llc_ways: 1,
        l1_bytes: 512,
        l1_ways: 1,
        ..nway4()
    };
    let mut e = ProtocolEngine::new(deny(), cfg);
    let mut f = TestFabric::with_nodes(4);
    // Dirty LINE (home 0, replica 1) from its home socket, then thrash
    // the 1-way LLC until the writeback fires.
    e.access(0, LINE, ReqType::Write, 0, &mut f);
    let mut t = 1_000_000;
    for i in 1..24u64 {
        // Same LLC set (16 sets at 1 KiB / 1 way), all homed on socket 0
        // (page stride keeps pages ≡ 0 mod 4).
        e.access(0, i * 16 * 64 * 4, ReqType::Read, t, &mut f);
        t += 1_000_000;
    }
    assert!(e.stats().writebacks > 0);
    assert!(f.mem_writes[0] > 0, "home copy written");
    assert!(f.replica_writes[1] > 0, "replica copy written on node 1");
    assert_eq!(f.replica_writes[2], 0);
    assert_eq!(f.replica_writes[3], 0);
}

#[test]
fn twotier_serves_no_replica_reads_but_protects_the_far_copy() {
    let mut e = ProtocolEngine::new(deny(), twotier());
    let mut f = TestFabric::with_nodes(3);
    assert_eq!(e.num_nodes(), 3);
    assert_eq!(e.replica_node_of(LINE), 2);
    // No core is co-located with the far replica: a socket-1 read of a
    // socket-0 line crosses the link to home.
    let o = e.access(8, LINE, ReqType::Read, 0, &mut f);
    assert_eq!(o.service, ServiceLevel::RemoteDram);
    assert_eq!(e.stats().replica_reads, 0);
    // A home-side write pushes the RM entry out to the far node.
    e.access(0, LINE + 1, ReqType::Write, 1_000_000, &mut f);
    assert_eq!(e.stats().rm_installs, 1);
    assert!(!e.replica_dir(2).replica_readable(LINE + 1));
}

#[test]
fn twotier_writeback_reaches_the_far_replica() {
    let cfg = EngineConfig {
        llc_bytes: 1024,
        llc_ways: 1,
        l1_bytes: 512,
        l1_ways: 1,
        ..twotier()
    };
    let mut e = ProtocolEngine::new(deny(), cfg);
    let mut f = TestFabric::with_nodes(3);
    e.access(0, LINE, ReqType::Write, 0, &mut f);
    let mut t = 1_000_000;
    for i in 1..24u64 {
        e.access(0, i * 16 * 64 * 2, ReqType::Read, t, &mut f);
        t += 1_000_000;
    }
    assert!(e.stats().writebacks > 0);
    assert!(f.replica_writes[2] > 0, "far node holds the replica");
    assert_eq!(f.replica_writes[0], 0);
    assert_eq!(f.replica_writes[1], 0);
}

#[test]
fn round_robin_at_two_sockets_is_cycle_identical_to_the_mirror() {
    // The golden-preservation argument, exercised at the engine level:
    // RoundRobin degenerates to Mirror2 at N = 2, so every access must
    // produce the same completion time, service level, and stats.
    for mode in [Mode::Baseline, allow(), deny()] {
        let mut mirror = ProtocolEngine::new(
            mode,
            EngineConfig {
                placement: PlacementPolicy::Mirror2,
                ..Default::default()
            },
        );
        let mut rr = ProtocolEngine::new(
            mode,
            EngineConfig {
                placement: PlacementPolicy::RoundRobin,
                ..Default::default()
            },
        );
        let mut fm = TestFabric::default();
        let mut fr = TestFabric::default();
        let mut rng = dve_sim::rng::SplitMix64::new(0xD0E);
        let mut t = 0u64;
        for _ in 0..2000 {
            let core = rng.next_below(16) as usize;
            let line = rng.next_below(256);
            let req = if rng.chance(0.35) {
                ReqType::Write
            } else {
                ReqType::Read
            };
            let om: AccessOutcome = mirror.access(core, line, req, t, &mut fm);
            let or: AccessOutcome = rr.access(core, line, req, t, &mut fr);
            assert_eq!(om, or, "divergence at t={t} core={core} line={line}");
            t = om.complete_at + 10;
        }
        assert_eq!(mirror.stats(), rr.stats());
        assert_eq!(fm.traffic.total_messages(), fr.traffic.total_messages());
    }
}
