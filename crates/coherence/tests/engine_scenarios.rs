//! Scenario tests: multi-step protocol flows through the engine that the
//! unit tests don't reach — coarse-grain region semantics, dynamic
//! switching under load, degraded-mode funneling, owner-forward chains,
//! and inclusive-hierarchy back-invalidation.

use dve_coherence::engine::{EngineConfig, Mode, ProtocolEngine};
use dve_coherence::fabric::TestFabric;
use dve_coherence::replica_dir::ReplicaPolicy;
use dve_coherence::types::{ReqType, RequestClass, ServiceLevel};

const HOME0: u64 = 0; // page 0 → socket 0
const HOME1: u64 = 64; // page 1 → socket 1

fn dve(policy: ReplicaPolicy) -> Mode {
    Mode::Dve {
        policy,
        speculative: false,
    }
}

// ---- coarse-grain regions ---------------------------------------------

#[test]
fn coarse_region_pull_covers_sibling_lines() {
    let cfg = EngineConfig {
        replica_region_lines: 16,
        ..Default::default()
    };
    let mut e = ProtocolEngine::new(dve(ReplicaPolicy::Allow), cfg);
    let mut f = TestFabric::default();
    // One pull on line 64 grants the whole region 64..80.
    let o = e.access(0, HOME1, ReqType::Read, 0, &mut f);
    assert_eq!(
        o.service,
        ServiceLevel::RemoteDram,
        "first pull goes to home"
    );
    for (i, l) in (65..80).enumerate() {
        let o = e.access(
            1 + (i % 7),
            l,
            ReqType::Read,
            10_000 + i as u64 * 1000,
            &mut f,
        );
        assert_eq!(
            o.service,
            ServiceLevel::LocalDram,
            "line {l} covered by the region"
        );
    }
}

#[test]
fn coarse_region_install_skipped_when_region_dirty() {
    let cfg = EngineConfig {
        replica_region_lines: 16,
        ..Default::default()
    };
    let mut e = ProtocolEngine::new(dve(ReplicaPolicy::Allow), cfg);
    let mut f = TestFabric::default();
    // Home side dirties one line of the region first.
    e.access(8, HOME1 + 3, ReqType::Write, 0, &mut f);
    // A replica-side read of a *different* line in the same region must
    // not install region read permission (§V-C5's condition).
    let o = e.access(0, HOME1 + 7, ReqType::Read, 10_000, &mut f);
    assert_eq!(o.service, ServiceLevel::RemoteDram);
    assert!(
        !e.replica_dir(0).replica_readable(HOME1 + 7),
        "no region entry while a line in it is writable at home"
    );
}

#[test]
fn coarse_region_invalidated_by_one_write() {
    let cfg = EngineConfig {
        replica_region_lines: 16,
        ..Default::default()
    };
    let mut e = ProtocolEngine::new(dve(ReplicaPolicy::Allow), cfg);
    let mut f = TestFabric::default();
    e.access(0, HOME1, ReqType::Read, 0, &mut f); // pulls region
    assert!(e.replica_dir(0).replica_readable(HOME1 + 9));
    // One home-side write anywhere in the region revokes all 16 lines.
    e.access(8, HOME1 + 9, ReqType::Write, 10_000, &mut f);
    for l in HOME1..HOME1 + 16 {
        assert!(
            !e.replica_dir(0).replica_readable(l),
            "line {l} still readable"
        );
    }
    assert_eq!(e.stats().replica_invalidations, 1);
}

// ---- dynamic switching under load ---------------------------------------

#[test]
fn dynamic_switch_preserves_correct_service_under_load() {
    let mut e = ProtocolEngine::new(dve(ReplicaPolicy::Allow), EngineConfig::default());
    let mut f = TestFabric::default();
    let mut t = 0;
    // Mixed traffic under allow.
    for i in 0..200u64 {
        let core = (i % 16) as usize;
        let req = if i % 5 == 0 {
            ReqType::Write
        } else {
            ReqType::Read
        };
        let o = e.access(core, i % 64, req, t, &mut f);
        t = o.complete_at;
    }
    // Switch to deny; dirty home-side lines must be RM-protected.
    e.switch_policy(ReplicaPolicy::Deny, false, t, &mut f);
    for socket in 0..2 {
        let home = socket;
        let replica = 1 - socket;
        for line in 0..64u64 {
            if e.home_of(line) != home {
                continue;
            }
            let entry = e.home_dir(home).entry(line);
            if entry.state.writable() && entry.owner == Some(home) {
                assert!(
                    !e.replica_dir(replica).replica_readable(line),
                    "line {line}: dirty at home but replica readable after switch"
                );
            }
        }
    }
    // Keep running under deny: all operations still complete, time moves.
    for i in 0..200u64 {
        let core = (i % 16) as usize;
        let o = e.access(core, i % 64, ReqType::Read, t, &mut f);
        assert!(o.complete_at >= t);
        t = o.complete_at;
    }
    // And back to allow.
    e.switch_policy(ReplicaPolicy::Allow, true, t, &mut f);
    let o = e.access(0, HOME1, ReqType::Read, t, &mut f);
    assert!(o.complete_at > t);
}

// ---- degraded mode across service levels --------------------------------

#[test]
fn degraded_mode_matches_baseline_service_levels() {
    let mut deg = ProtocolEngine::new(dve(ReplicaPolicy::Deny), EngineConfig::default());
    let mut base = ProtocolEngine::new(Mode::Baseline, EngineConfig::default());
    let mut f1 = TestFabric::default();
    deg.set_degraded(true, 0, &mut f1);
    let mut f2 = TestFabric::default();
    let mut rng = dve_sim::rng::SplitMix64::new(11);
    let mut t = 0;
    for _ in 0..500 {
        let core = rng.next_below(16) as usize;
        let line = rng.next_below(128);
        let req = if rng.chance(0.3) {
            ReqType::Write
        } else {
            ReqType::Read
        };
        let a = deg.access(core, line, req, t, &mut f1);
        let b = base.access(core, line, req, t, &mut f2);
        assert_eq!(a.service, b.service, "line {line}");
        assert_eq!(a.complete_at, b.complete_at, "line {line}");
        t = a.complete_at;
    }
    assert_eq!(deg.stats().replica_reads, 0);
}

// ---- owner-forward chains ------------------------------------------------

#[test]
fn read_chain_through_remote_owner_then_shared() {
    let mut e = ProtocolEngine::new(Mode::Baseline, EngineConfig::default());
    let mut f = TestFabric::default();
    // Socket 1 core dirties a socket-0-homed line.
    let o = e.access(8, HOME0, ReqType::Write, 0, &mut f);
    assert_eq!(o.service, ServiceLevel::RemoteDram);
    // Socket 0 core reads: forwarded to the remote owner (3-hop).
    let o = e.access(0, HOME0, ReqType::Read, 100_000, &mut f);
    assert_eq!(o.service, ServiceLevel::RemoteOwner);
    // Another socket-1 core reads: LLC hit on its socket.
    let o = e.access(9, HOME0, ReqType::Read, 200_000, &mut f);
    assert_eq!(o.service, ServiceLevel::Llc);
    // Now the line is in O at socket 1 and S at socket 0: a fresh
    // socket-0 L1 still hits its LLC.
    let o = e.access(1, HOME0, ReqType::Read, 300_000, &mut f);
    assert_eq!(o.service, ServiceLevel::Llc);
}

#[test]
fn write_after_remote_owner_transfers_ownership() {
    let mut e = ProtocolEngine::new(Mode::Baseline, EngineConfig::default());
    let mut f = TestFabric::default();
    e.access(8, HOME0, ReqType::Write, 0, &mut f); // socket 1 owns
                                                   // Socket 0 writes: FwdGetX — ownership moves with the dirty data.
    let o = e.access(0, HOME0, ReqType::Write, 100_000, &mut f);
    assert_eq!(o.service, ServiceLevel::RemoteOwner);
    let entry = e.home_dir(0).entry(HOME0);
    assert_eq!(entry.owner, Some(0));
    // The old owner was invalidated: its next read goes to the new owner.
    let o = e.access(8, HOME0, ReqType::Read, 200_000, &mut f);
    assert_eq!(o.service, ServiceLevel::RemoteOwner);
}

// ---- inclusive hierarchy --------------------------------------------------

#[test]
fn llc_eviction_back_invalidates_l1() {
    // 1-way LLC with 16 sets: lines 16 apart conflict.
    let cfg = EngineConfig {
        llc_bytes: 1024,
        llc_ways: 1,
        ..Default::default()
    };
    let mut e = ProtocolEngine::new(Mode::Baseline, cfg);
    let mut f = TestFabric::default();
    e.access(0, 0, ReqType::Read, 0, &mut f);
    // Same core: L1 hit confirms residency.
    let o = e.access(0, 0, ReqType::Read, 10_000, &mut f);
    assert_eq!(o.service, ServiceLevel::L1);
    // Conflict line evicts line 0 from the LLC → L1 must be purged too
    // (inclusive), so the next access misses past L1.
    e.access(0, 16, ReqType::Read, 20_000, &mut f);
    let o = e.access(0, 0, ReqType::Read, 30_000, &mut f);
    assert_ne!(
        o.service,
        ServiceLevel::L1,
        "stale L1 copy after LLC eviction"
    );
}

// ---- on-chip directory cache (§V-A) ----------------------------------------

#[test]
fn dir_cache_miss_adds_a_memory_fetch() {
    let cfg = EngineConfig {
        dir_cache_entries: Some(64),
        ..Default::default()
    };
    let mut e = ProtocolEngine::new(Mode::Baseline, cfg);
    let mut f = TestFabric::default();
    // Cold: directory-entry fetch + data read = 2 memory reads at home.
    e.access(0, HOME0, ReqType::Read, 0, &mut f);
    assert_eq!(f.mem_reads[0], 2, "entry fetch + data");
    // A remote core touches the same line: the entry is now on-chip, so
    // only the data read hits memory.
    e.access(8, HOME0, ReqType::Read, 100_000, &mut f);
    assert_eq!(f.mem_reads[0], 3, "warm directory: data only");
}

#[test]
fn ideal_directory_never_fetches_entries() {
    let mut e = ProtocolEngine::new(Mode::Baseline, EngineConfig::default());
    let mut f = TestFabric::default();
    e.access(0, HOME0, ReqType::Read, 0, &mut f);
    assert_eq!(f.mem_reads[0], 1, "all-SRAM directory: data read only");
}

// ---- classification coverage ----------------------------------------------

#[test]
fn all_four_request_classes_observed() {
    let mut e = ProtocolEngine::new(Mode::Baseline, EngineConfig::default());
    let mut f = TestFabric::default();
    e.access(0, HOME0, ReqType::Read, 0, &mut f); // private-read (I)
    e.access(8, HOME0, ReqType::Read, 1_000, &mut f); // read-only (S)
    e.access(8, HOME0, ReqType::Write, 2_000, &mut f); // read/write (S+GETX)
    e.access(0, HOME0, ReqType::Read, 3_000, &mut f); // read/write (M+GETS)
    e.access(0, HOME0 + 1, ReqType::Write, 4_000, &mut f); // private-rw (I+GETX)
    let counts = e.home_dir(0).class_counts();
    for (i, class) in RequestClass::ALL.iter().enumerate() {
        assert!(counts[i] > 0, "{class} never observed");
    }
}

// ---- speculative access bookkeeping ----------------------------------------

#[test]
fn speculation_confirms_clean_and_squashes_dirty() {
    let mut e = ProtocolEngine::new(
        Mode::Dve {
            policy: ReplicaPolicy::Allow,
            speculative: true,
        },
        EngineConfig::default(),
    );
    let mut f = TestFabric::default();
    // Clean line: speculation confirmed, no data response crosses.
    let o = e.access(0, HOME1, ReqType::Read, 0, &mut f);
    assert_eq!(o.service, ServiceLevel::LocalDram);
    // Dirty a different line from the home side, then read it from the
    // replica side: squash.
    e.access(8, HOME1 + 5, ReqType::Write, 50_000, &mut f);
    let o = e.access(0, HOME1 + 5, ReqType::Read, 100_000, &mut f);
    assert_eq!(o.service, ServiceLevel::RemoteOwner);
    let s = e.stats();
    assert_eq!(s.spec_confirmed, 1);
    assert_eq!(s.spec_squashed, 1);
    // A squashed speculation still performed a replica DRAM read
    // (bandwidth cost the paper accepts).
    assert_eq!(f.replica_reads[0], 2);
}

// ---- selective replication (§V-D) ------------------------------------------

#[test]
fn selective_replication_serves_covered_pages_only() {
    use dve_coherence::engine::ReplicationScope;
    // Replicate only page 1 (lines 64..128).
    let mut pages = std::collections::HashSet::new();
    pages.insert(1u64);
    let cfg = EngineConfig {
        replication_scope: ReplicationScope::Pages(pages),
        ..Default::default()
    };
    let mut e = ProtocolEngine::new(dve(ReplicaPolicy::Deny), cfg);
    let mut f = TestFabric::default();
    // A covered line homed on socket 1: served from the local replica.
    let o = e.access(0, HOME1, ReqType::Read, 0, &mut f);
    assert_eq!(o.service, ServiceLevel::LocalDram);
    // An uncovered line homed on socket 1 (page 3): single-copy fallback
    // — full remote access, exactly like baseline NUMA.
    let o = e.access(0, 3 * 64, ReqType::Read, 100_000, &mut f);
    assert_eq!(o.service, ServiceLevel::RemoteDram);
    // Writes to uncovered pages push no RM entries and skip the replica
    // writeback.
    let before = e.stats().rm_installs;
    e.access(8, 3 * 64 + 1, ReqType::Write, 200_000, &mut f);
    assert_eq!(e.stats().rm_installs, before);
    assert_eq!(f.replica_writes, [0, 0]);
}

#[test]
fn selective_replication_covered_writes_stay_consistent() {
    use dve_coherence::engine::ReplicationScope;
    let mut pages = std::collections::HashSet::new();
    pages.insert(1u64);
    let cfg = EngineConfig {
        replication_scope: ReplicationScope::Pages(pages),
        llc_bytes: 1024,
        llc_ways: 1,
        l1_bytes: 512,
        l1_ways: 1,
        ..Default::default()
    };
    let mut e = ProtocolEngine::new(dve(ReplicaPolicy::Deny), cfg);
    let mut f = TestFabric::default();
    // Dirty a covered line, then thrash the tiny caches to force the
    // writeback: both copies must be written.
    e.access(8, HOME1, ReqType::Write, 0, &mut f);
    let mut t = 100_000;
    for i in 1..40u64 {
        e.access(8, HOME1 + i * 16 * 64 * 64, ReqType::Read, t, &mut f);
        t += 100_000;
    }
    assert!(
        f.replica_writes[0] > 0,
        "covered dirty line propagated to the replica"
    );
}
