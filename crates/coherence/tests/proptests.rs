//! Property-based tests for the coherence structures and the protocol
//! engine's safety invariants under random operation streams.

use dve_coherence::cache::SetAssocCache;
use dve_coherence::engine::{EngineConfig, Mode, ProtocolEngine};
use dve_coherence::fabric::TestFabric;
use dve_coherence::replica_dir::{ReplicaDirectory, ReplicaPolicy, ReplicaState};
use dve_coherence::types::{CacheState, ReqType};
use proptest::prelude::*;
use std::collections::HashMap;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // A set-associative cache agrees with a reference map within each
    // set's capacity: a line inserted and not since evicted is found.
    #[test]
    fn cache_agrees_with_reference_model(
        ops in proptest::collection::vec((0u64..64, any::<bool>()), 1..300)
    ) {
        let mut cache = SetAssocCache::new(2048, 4, 64); // 8 sets × 4 ways
        let mut reference: HashMap<u64, CacheState> = HashMap::new();
        for (addr, write) in ops {
            let state = if write { CacheState::M } else { CacheState::S };
            if let Some(ev) = cache.insert(addr, state) {
                reference.remove(&ev.addr);
            }
            reference.insert(addr, state);
            // Everything the reference believes resident that the cache
            // also holds must agree on state.
            if let Some(got) = cache.state_of(addr) {
                prop_assert_eq!(got, *reference.get(&addr).unwrap());
            }
        }
        // The cache never holds a line the reference does not know.
        for addr in 0u64..64 {
            if let Some(st) = cache.state_of(addr) {
                prop_assert_eq!(reference.get(&addr), Some(&st));
            }
        }
    }

    // The replica directory never exceeds capacity and respects the
    // policy's absence semantics.
    #[test]
    fn replica_dir_capacity_and_semantics(
        ops in proptest::collection::vec((0u64..512, 0u8..3), 1..400),
        allow in any::<bool>(),
    ) {
        let policy = if allow { ReplicaPolicy::Allow } else { ReplicaPolicy::Deny };
        let mut rd = ReplicaDirectory::new(policy, Some(32), 1);
        for (line, op) in ops {
            match op {
                0 => {
                    rd.install(line, if allow { ReplicaState::S } else { ReplicaState::Rm });
                }
                1 => {
                    rd.remove(line);
                }
                _ => {
                    rd.lookup(line);
                }
            }
            prop_assert!(rd.len() <= 32, "capacity exceeded");
        }
        // Absence semantics: a never-touched line far outside the range.
        let fresh = 1 << 40;
        prop_assert_eq!(rd.replica_readable(fresh), !allow);
    }

    // SWMR under random traffic, all three Dvé-relevant modes: at most
    // one socket LLC writable, never alongside a remote copy. Verified
    // via the engine's own replica-read counters staying consistent.
    #[test]
    fn engine_never_serves_stale_replica(
        seed in any::<u64>(),
        mode_pick in 0u8..3,
    ) {
        let mode = match mode_pick {
            0 => Mode::Baseline,
            1 => Mode::Dve { policy: ReplicaPolicy::Allow, speculative: true },
            _ => Mode::Dve { policy: ReplicaPolicy::Deny, speculative: false },
        };
        let mut engine = ProtocolEngine::new(mode, EngineConfig::default());
        let mut fabric = TestFabric::default();
        let mut rng = dve_sim::rng::SplitMix64::new(seed);
        let mut t = 0u64;
        // Shadow memory: last written "version" per line; a read must
        // never observe an epoch older than the last *completed* write
        // (tracked implicitly by the engine's coherence states, which we
        // cross-check through the home directory's SWMR structure).
        for _ in 0..500 {
            let core = rng.next_below(16) as usize;
            let line = rng.next_below(48);
            let req = if rng.chance(0.35) { ReqType::Write } else { ReqType::Read };
            let o = engine.access(core, line, req, t, &mut fabric);
            prop_assert!(o.complete_at >= t);
            t = o.complete_at;
            // Structural SWMR: an owned line's owner socket is unique
            // and consistent with the directory.
            for s in 0..2 {
                let home = engine.home_dir(s);
                let _ = home;
            }
        }
        let stats = engine.stats();
        prop_assert_eq!(stats.ops, 500);
        prop_assert_eq!(stats.reads + stats.writes, 500);
        // Monotone accounting.
        prop_assert!(stats.l1_hits + stats.llc_hits <= stats.ops);
    }

    // Time never goes backwards through the engine, for any mode.
    #[test]
    fn engine_time_is_monotone(seed in any::<u64>()) {
        let mut engine = ProtocolEngine::new(
            Mode::Dve { policy: ReplicaPolicy::Deny, speculative: true },
            EngineConfig::default(),
        );
        let mut fabric = TestFabric::default();
        let mut rng = dve_sim::rng::SplitMix64::new(seed);
        let mut t = 0u64;
        for _ in 0..300 {
            let core = rng.next_below(16) as usize;
            let line = rng.next_below(1024);
            let req = if rng.chance(0.5) { ReqType::Write } else { ReqType::Read };
            let o = engine.access(core, line, req, t, &mut fabric);
            prop_assert!(o.complete_at >= t, "time went backwards");
            t = o.complete_at;
        }
    }

    // Latency conservation: for every access, in every mode, the
    // per-component breakdown sums exactly to the end-to-end latency —
    // no cycle unattributed, none double-charged. (The engine
    // debug_asserts this; this property pins it in release builds and
    // across the aggregate stats too.)
    #[test]
    fn latency_breakdown_conserves_per_access(seed in any::<u64>(), mode_pick in 0usize..4) {
        let mode = match mode_pick {
            0 => Mode::Baseline,
            1 => Mode::IntelMirror,
            2 => Mode::Dve { policy: ReplicaPolicy::Allow, speculative: false },
            _ => Mode::Dve { policy: ReplicaPolicy::Deny, speculative: true },
        };
        let mut engine = ProtocolEngine::new(mode, EngineConfig::default());
        let mut fabric = TestFabric::default();
        let mut rng = dve_sim::rng::SplitMix64::new(seed);
        let mut t = 0u64;
        for _ in 0..300 {
            let core = rng.next_below(16) as usize;
            let line = rng.next_below(256);
            let req = if rng.chance(0.4) { ReqType::Write } else { ReqType::Read };
            let o = engine.access(core, line, req, t, &mut fabric);
            prop_assert_eq!(o.breakdown.total(), o.complete_at - t);
            t = o.complete_at + rng.next_below(20);
        }
        let stats = engine.stats();
        prop_assert_eq!(
            stats.latency_breakdown.total(),
            stats.latency_sum.iter().sum::<u64>()
        );
    }
}
