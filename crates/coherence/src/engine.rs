//! The two-socket protocol engine: baseline NUMA MOSI plus Dvé's
//! Coherent Replication (allow- and deny-based families).
//!
//! The engine executes one memory operation at a time (directory
//! transactions are serialized per line, matching §V-C3's statement that
//! concurrent requests are "serialized and coalesced at the directory"),
//! updating every coherence structure and charging latency through a
//! [`Fabric`]:
//!
//! 1. private L1 (1 cycle);
//! 2. socket-shared LLC with its embedded local directory (20 cycles +
//!    mesh), including on-socket L1-to-L1 transfers and invalidations;
//! 3. the *nearest* directory: the home directory for home-side sockets,
//!    the **replica directory** for replica-side sockets under Dvé;
//! 4. DRAM (home copy or local replica copy) or a forward to the owning
//!    LLC, possibly across the inter-socket link.
//!
//! Writebacks of dirty LLC lines go to the home memory *and* the replica
//! memory (synchronous with respect to each other but off the load
//! critical path), keeping the replica strongly consistent (§V-B1).

use crate::cache::SetAssocCache;
use crate::dir_cache::DirCache;
use crate::fabric::Fabric;
use crate::home_dir::HomeDirectory;
use crate::replica_dir::{ReplicaDirectory, ReplicaEviction, ReplicaPolicy, ReplicaState};
use crate::types::{CacheState, LineAddr, ReqType, ServiceLevel, NUM_SOCKETS};
use dve_noc::topology::{PlacementMap, PlacementPolicy};
use dve_noc::traffic::MessageClass;
use dve_sim::latency::{Component, LatencyBreakdown, Stamp};
use std::collections::BTreeSet;

/// Which pages are replicated (§V-D's flexible, RMT-driven mapping).
/// Lines on non-replicated pages "seamlessly fall back to using a single
/// copy" — they take the baseline NUMA path even in Dvé modes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReplicationScope {
    /// Every page is replicated (the fixed-function mapping of §III).
    All,
    /// Only the listed page numbers are replicated (the OS populated the
    /// RMT for these — e.g. a process's failure-resilient data segments).
    Pages(std::collections::HashSet<u64>),
}

impl ReplicationScope {
    /// Whether the page holding `line` is replicated.
    pub fn covers(&self, line: LineAddr, page_lines: u64) -> bool {
        match self {
            ReplicationScope::All => true,
            ReplicationScope::Pages(set) => set.contains(&(line / page_lines)),
        }
    }
}

/// Which system organization the engine models.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Baseline dual-socket NUMA, no replication.
    Baseline,
    /// The paper's improved Intel-mirroring++ comparison point: replicas
    /// on a *second channel of the same socket*, with reads load-balanced
    /// between the two channels. Protocol-wise identical to baseline (the
    /// mirroring is inside the memory controller); the fabric's
    /// `mem_read`/`mem_write` implement the balancing and double-write.
    IntelMirror,
    /// Dvé Coherent Replication.
    Dve {
        /// Allow-based (lazy pull) or deny-based (eager push) family.
        policy: ReplicaPolicy,
        /// Speculative replica access on replica-directory miss (§V-C5).
        speculative: bool,
    },
}

/// Configuration of the engine's structures.
#[derive(Debug, Clone, PartialEq)]
pub struct EngineConfig {
    /// Total cores (Table II: 16).
    pub cores: usize,
    /// Cores per socket (Table II: 8).
    pub cores_per_socket: usize,
    /// L1 size in bytes (64 KB).
    pub l1_bytes: usize,
    /// L1 associativity (8).
    pub l1_ways: usize,
    /// LLC size in bytes per socket (8 MB).
    pub llc_bytes: usize,
    /// LLC associativity (16).
    pub llc_ways: usize,
    /// Line size (64 B).
    pub line_bytes: usize,
    /// Lines per page, for the socket-interleaved home mapping (64 for
    /// 4 KiB pages).
    pub page_lines: u64,
    /// Replica directory entries (`None` = unbounded oracle).
    pub replica_dir_entries: Option<usize>,
    /// Replica directory tracking granularity in lines (1 = per-line).
    pub replica_region_lines: u64,
    /// Fig. 9 oracle: installs cost no latency.
    pub free_installs: bool,
    /// On-chip home-directory cache entries (§V-A: "full directory with
    /// the recently accessed entries cached on-chip"). A miss costs one
    /// extra DRAM access to fetch the entry. `None` models an ideal
    /// all-SRAM directory (the calibrated Table II default).
    pub dir_cache_entries: Option<usize>,
    /// Which pages are replicated in Dvé modes (§V-D).
    pub replication_scope: ReplicationScope,
    /// Number of compute sockets (nodes with cores, caches, a directory
    /// slice, and home memory). The paper's system has 2.
    pub sockets: usize,
    /// Which node holds each line's replica (mirror-2, round-robin
    /// N-way, or two-tier far-memory). [`PlacementPolicy::Mirror2`] on
    /// two sockets reproduces the original hard-wired `1 - home`
    /// arithmetic exactly.
    pub placement: PlacementPolicy,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            cores: 16,
            cores_per_socket: 8,
            l1_bytes: 64 * 1024,
            l1_ways: 8,
            llc_bytes: 8 * 1024 * 1024,
            llc_ways: 16,
            line_bytes: 64,
            page_lines: 64,
            replica_dir_entries: Some(2048),
            replica_region_lines: 1,
            free_installs: false,
            dir_cache_entries: None,
            replication_scope: ReplicationScope::All,
            sockets: NUM_SOCKETS,
            placement: PlacementPolicy::Mirror2,
        }
    }
}

/// A deliberately seeded protocol/accounting bug for harness
/// validation (`dve-conformance`'s mutation-check mode).
///
/// A conformance fuzzer that passes on the real engine is only
/// trustworthy if it *fails* on broken ones. Each variant is a mistake
/// that is easy to make when implementing Coherent Replication in a
/// production state machine — the same philosophy as
/// `dve-verify::mutation`, applied to this engine instead of the small
/// Murφ-style model. Seeding a bug via [`ProtocolEngine::seed_bug`]
/// perturbs exactly one transition; the conformance harness must flag an
/// invariant violation for every variant (and shrink it to a short
/// trace) before its clean runs mean anything.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SeededBug {
    /// Allow protocol treats a replica-directory miss as "readable"
    /// (confusing the two families' absence semantics).
    AllowAbsenceReadable,
    /// Dirty writebacks update only the home copy, skipping the replica
    /// memory and the RM/M metadata clear (breaks §V-B1 strong
    /// consistency).
    SkipReplicaWriteback,
    /// Deny protocol home-side writes "forget" to push the RM entry.
    SkipRmInstall,
    /// Allow protocol home-side writes don't revoke the replica-side
    /// read permission.
    SkipReplicaInvalidate,
    /// A write hitting the socket's M-state LLC keeps sibling L1 copies
    /// alive instead of invalidating them.
    SkipSiblingL1Invalidate,
    /// Forwarding a read to the owning LLC leaves the owner in M
    /// instead of downgrading to O.
    NoOwnerDowngradeOnForward,
    /// Completion timestamps travel backwards by one cycle (an
    /// accounting bug: acks charged before the work they acknowledge).
    TimeTravelCompletion,
}

/// Result of one memory operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessOutcome {
    /// Absolute completion time.
    pub complete_at: u64,
    /// Where the request was serviced.
    pub service: ServiceLevel,
    /// Per-layer attribution of the end-to-end latency: its components
    /// sum to `complete_at - now` (conservation, checked in debug and
    /// property-tested by the conformance harness).
    pub breakdown: LatencyBreakdown,
}

impl AccessOutcome {
    fn from_stamp(t: Stamp, service: ServiceLevel) -> AccessOutcome {
        AccessOutcome {
            complete_at: t.at(),
            service,
            breakdown: t.breakdown(),
        }
    }
}

/// Aggregate engine statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Total operations executed.
    pub ops: u64,
    /// Reads (loads).
    pub reads: u64,
    /// Writes (stores).
    pub writes: u64,
    /// L1 hits.
    pub l1_hits: u64,
    /// LLC hits (including on-socket owner transfers).
    pub llc_hits: u64,
    /// Reads served from the local replica memory.
    pub replica_reads: u64,
    /// Speculative replica reads whose speculation was confirmed.
    pub spec_confirmed: u64,
    /// Speculative replica reads squashed (remote copy was dirty).
    pub spec_squashed: u64,
    /// Dirty LLC writebacks.
    pub writebacks: u64,
    /// RM entries installed (deny) on home-side writes.
    pub rm_installs: u64,
    /// Replica-directory invalidations sent by home-side writes (allow).
    pub replica_invalidations: u64,
    /// Forced downgrades caused by replica-directory capacity evictions.
    pub forced_downgrades: u64,
    /// Requests served per [`ServiceLevel`] (L1, LLC, LocalDram,
    /// RemoteDram, LocalOwner, RemoteOwner).
    pub served: [u64; 6],
    /// Total latency accumulated per service level (same indexing).
    pub latency_sum: [u64; 6],
    /// Per-layer attribution of the total access latency. Its
    /// [`LatencyBreakdown::total`] equals the sum of `latency_sum`
    /// (every charged cycle is attributed to exactly one layer).
    pub latency_breakdown: LatencyBreakdown,
    /// §V-E degraded-state transitions: counted once per actual edge
    /// (enter *or* leave), so a redundant `set_degraded` to the current
    /// state does not inflate it. The chaos harness uses this to prove
    /// a fault schedule really drove the engine through degradation.
    pub degraded_transitions: u64,
}

/// Index of a service level in [`EngineStats::served`].
pub fn service_index(s: ServiceLevel) -> usize {
    match s {
        ServiceLevel::L1 => 0,
        ServiceLevel::Llc => 1,
        ServiceLevel::LocalDram => 2,
        ServiceLevel::RemoteDram => 3,
        ServiceLevel::LocalOwner => 4,
        ServiceLevel::RemoteOwner => 5,
    }
}

/// The protocol engine. See the module docs for the walk of an access.
#[derive(Debug)]
pub struct ProtocolEngine {
    mode: Mode,
    cfg: EngineConfig,
    /// The shared placement arithmetic (home node, replica node per
    /// line), built from `cfg.sockets` / `cfg.placement` /
    /// `cfg.page_lines`.
    place: PlacementMap,
    l1s: Vec<SetAssocCache>,
    llcs: Vec<SetAssocCache>,
    home_dirs: Vec<HomeDirectory>,
    replica_dirs: Vec<ReplicaDirectory>,
    dir_caches: Option<Vec<DirCache>>,
    stats: EngineStats,
    /// §V-E degraded state: the replica copies are out of service (hard
    /// errors, thermal throttling, row-hammer avoidance). Requests
    /// funnel to the single functional copy and writebacks stop
    /// propagating to the dead replica — performance returns to
    /// baseline-NUMA levels while reliability drops to one copy.
    degraded: bool,
    /// Covered lines whose replica copy missed a writeback because it
    /// happened while the system was degraded (§V-E). The replica copy
    /// of such a line is behind the home copy and must not serve reads
    /// until re-synchronized.
    stale_replica: BTreeSet<LineAddr>,
    /// Seeded bug for conformance-harness validation (`None` in all
    /// production paths).
    bug: Option<SeededBug>,
}

impl ProtocolEngine {
    /// Builds an engine for `mode` with the given configuration.
    ///
    /// # Panics
    ///
    /// Panics if `cores` is not `cores_per_socket * sockets`, or if the
    /// placement names more than 8 nodes (the home directory's sharer
    /// vector is one bit per node in a `u8`).
    pub fn new(mode: Mode, cfg: EngineConfig) -> ProtocolEngine {
        assert_eq!(
            cfg.cores,
            cfg.cores_per_socket * cfg.sockets,
            "engine models exactly {} sockets",
            cfg.sockets
        );
        let place = PlacementMap::new(cfg.sockets, cfg.page_lines, cfg.placement);
        let nodes = place.nodes();
        assert!(nodes <= 8, "sharer vector is one bit per node in a u8");
        let l1s = (0..cfg.cores)
            .map(|_| SetAssocCache::new(cfg.l1_bytes, cfg.l1_ways, cfg.line_bytes))
            .collect();
        let llcs = (0..cfg.sockets)
            .map(|_| SetAssocCache::new(cfg.llc_bytes, cfg.llc_ways, cfg.line_bytes))
            .collect();
        let home_dirs = (0..cfg.sockets).map(HomeDirectory::new).collect();
        let policy = match mode {
            Mode::Dve { policy, .. } => policy,
            _ => ReplicaPolicy::Allow,
        };
        // A replica directory per node: far-memory nodes hold replicas
        // (and so a directory slice) even though they run no cores.
        let replica_dirs = (0..nodes)
            .map(|_| {
                ReplicaDirectory::new(policy, cfg.replica_dir_entries, cfg.replica_region_lines)
            })
            .collect();
        let dir_caches = cfg
            .dir_cache_entries
            .map(|n| (0..cfg.sockets).map(|_| DirCache::new(n)).collect());
        ProtocolEngine {
            mode,
            cfg,
            place,
            l1s,
            llcs,
            home_dirs,
            replica_dirs,
            dir_caches,
            stats: EngineStats::default(),
            degraded: false,
            stale_replica: BTreeSet::new(),
            bug: None,
        }
    }

    /// Seeds (or clears) a deliberate protocol bug. Only the
    /// conformance harness's mutation-check mode should call this; see
    /// [`SeededBug`].
    pub fn seed_bug(&mut self, bug: Option<SeededBug>) {
        self.bug = bug;
    }

    fn has_bug(&self, bug: SeededBug) -> bool {
        self.bug == Some(bug)
    }

    // ----- conformance probes -----------------------------------------
    //
    // Read-only views of internal structures, used by `dve-conformance`
    // to cross-check the engine against its golden shadow after every
    // operation. They bypass LRU/stat updates (pure observation).

    /// State of `line` in `core`'s private L1, if resident.
    pub fn l1_state(&self, core: usize, line: LineAddr) -> Option<CacheState> {
        self.l1s[core].state_of(line)
    }

    /// State of `line` in `socket`'s LLC, if resident.
    pub fn llc_state(&self, socket: usize, line: LineAddr) -> Option<CacheState> {
        self.llcs[socket].state_of(line)
    }

    /// The LLC's embedded-directory L1-sharer mask for `line`.
    pub fn llc_l1_sharers(&self, socket: usize, line: LineAddr) -> Option<u16> {
        self.llcs[socket].sharers_of(line)
    }

    /// The engine configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.cfg
    }

    /// Whether `line` currently has a live replica (Dvé mode, healthy,
    /// page inside the replication scope).
    pub fn line_has_replica(&self, line: LineAddr) -> bool {
        self.line_replicated(line)
    }

    /// Whether the engine knows `line`'s replica copy missed a
    /// writeback (it was written back while the replica was out of
    /// service, §V-E) and has not yet been re-synchronized.
    pub fn replica_stale(&self, line: LineAddr) -> bool {
        self.stale_replica.contains(&line)
    }

    /// Charges the home-directory access at `home`: the SRAM latency,
    /// plus a DRAM fetch of the entry when the on-chip directory cache
    /// misses (§V-A).
    fn dir_access(
        &mut self,
        home: usize,
        line: LineAddr,
        t: Stamp,
        fabric: &mut impl Fabric,
    ) -> Stamp {
        let mut t = t.advance(Component::Protocol, fabric.dir_latency());
        if let Some(caches) = &mut self.dir_caches {
            if !caches[home].access(line) {
                t = fabric.mem_read(home, line, t);
            }
        }
        t
    }

    /// Places the system in (or lifts it out of) the §V-E degraded
    /// state: with one working copy, replica reads stop and requests
    /// funnel to the home copy, providing "performance comparable to
    /// baseline NUMA". Entering degraded mode drains the replica
    /// directories (their permissions are meaningless without replicas).
    ///
    /// Recovery (`degraded = false`) must restore the deny family's
    /// safety before replica reads resume: the drained directory's
    /// absence-means-readable default would otherwise serve stale
    /// replica data for lines written while the replica was out of
    /// service. RM entries are re-pushed for every covered line the
    /// home directories record as dirty with a home-side owner, and
    /// lines whose writebacks the dead replica missed stay quarantined
    /// by [`ProtocolEngine::replica_stale`] until a demand re-sync.
    /// (Found by the conformance fuzzer; regression
    /// `degraded_recovery_requarantines_dirty_lines`.)
    pub fn set_degraded(&mut self, degraded: bool, now: u64, fabric: &mut impl Fabric) {
        let was = self.degraded;
        self.degraded = degraded;
        if was != degraded {
            self.stats.degraded_transitions += 1;
        }
        if degraded {
            for rd in &mut self.replica_dirs {
                rd.drain();
            }
        } else if was {
            if let Mode::Dve {
                policy: ReplicaPolicy::Deny,
                ..
            } = self.mode
            {
                self.repush_deny_rm(now, fabric);
            }
        }
    }

    /// Whether the system is running on a single copy.
    pub fn is_degraded(&self) -> bool {
        self.degraded
    }

    /// The engine's mode.
    pub fn mode(&self) -> Mode {
        self.mode
    }

    /// Statistics snapshot.
    pub fn stats(&self) -> EngineStats {
        self.stats
    }

    /// The home directory of `socket` (for Fig. 7 classification).
    pub fn home_dir(&self, socket: usize) -> &HomeDirectory {
        &self.home_dirs[socket]
    }

    /// The replica directory of `socket` (Dvé modes).
    pub fn replica_dir(&self, socket: usize) -> &ReplicaDirectory {
        &self.replica_dirs[socket]
    }

    /// Socket of a core.
    pub fn socket_of(&self, core: usize) -> usize {
        core / self.cfg.cores_per_socket
    }

    /// Home socket of a line.
    pub fn home_of(&self, line: LineAddr) -> usize {
        self.place.home_of(line)
    }

    /// The node holding `line`'s replica under the configured placement.
    pub fn replica_node_of(&self, line: LineAddr) -> usize {
        self.place.replica_node(line)
    }

    /// The placement arithmetic the engine routes by.
    pub fn placement(&self) -> PlacementMap {
        self.place
    }

    /// Total nodes (sockets plus any far-memory pool).
    pub fn num_nodes(&self) -> usize {
        self.place.nodes()
    }

    fn is_dve(&self) -> bool {
        matches!(self.mode, Mode::Dve { .. })
    }

    /// Whether `line` has a replica (Dvé mode, healthy, and its page is
    /// inside the replication scope).
    fn line_replicated(&self, line: LineAddr) -> bool {
        self.is_dve()
            && !self.degraded
            && self.cfg.replication_scope.covers(line, self.cfg.page_lines)
    }

    /// Switches the Dvé protocol family at a phase boundary (the
    /// sampling-based dynamic scheme of §V-C5): drains both replica
    /// directories and swaps the state machines. Returns the number of
    /// entries drained (the drain-phase metadata cost is charged by the
    /// caller; forced downgrades triggered by re-push capacity
    /// evictions are charged through `fabric`).
    ///
    /// # Panics
    ///
    /// Panics if the engine is not in a Dvé mode.
    pub fn switch_policy(
        &mut self,
        policy: ReplicaPolicy,
        speculative: bool,
        now: u64,
        fabric: &mut impl Fabric,
    ) -> usize {
        let Mode::Dve { .. } = self.mode else {
            panic!("switch_policy requires a Dvé mode");
        };
        // Before dropping allow-M / deny-RM knowledge we must make every
        // replica consistent: force-downgrade all writable lines. We
        // approximate the drain by counting entries; dirty lines are
        // still tracked by LLC states and home directories, which remain
        // intact, so safety is preserved by the conservative post-drain
        // defaults (allow: absence = no; deny: re-push below).
        let mut drained = 0;
        for rd in &mut self.replica_dirs {
            drained += rd.drain();
        }
        for rd in &mut self.replica_dirs {
            *rd = ReplicaDirectory::new(
                policy,
                self.cfg.replica_dir_entries,
                self.cfg.replica_region_lines,
            );
        }
        self.mode = Mode::Dve {
            policy,
            speculative,
        };
        // Deny correctness after a drain: absence means "replica
        // readable", but a home-side LLC may hold lines dirty. Re-push
        // RM entries (the warm-up the paper describes as bringing
        // metadata "au courant").
        if policy == ReplicaPolicy::Deny {
            self.repush_deny_rm(now, fabric);
        }
        drained
    }

    /// Rebuilds the deny directories' RM entries from the home
    /// directories after a drain (protocol switch, §V-C5, or degraded
    /// recovery, §V-E): every *covered* line recorded as dirty with a
    /// home-side owner gets an RM entry, because absence would wrongly
    /// mean "replica readable" while the only up-to-date copy sits in
    /// the home socket's caches.
    ///
    /// Two fixes the conformance fuzzer forced over the original
    /// switch-time warm-up live here:
    ///
    /// * the filter is `dirty()` (M **or** O), not `writable()` (M
    ///   only) — a home-owned line downgraded to O by a read forward is
    ///   still ahead of the replica memory copy (regression
    ///   `switch_to_deny_protects_o_state_lines`);
    /// * capacity evictions during the re-push resolve through
    ///   [`ProtocolEngine::resolve_replica_eviction`] exactly as in
    ///   normal operation, instead of being dropped on the floor —
    ///   silently losing an RM entry re-opens the stale-read hole the
    ///   entry existed to close.
    fn repush_deny_rm(&mut self, now: u64, fabric: &mut impl Fabric) {
        if self.degraded {
            return;
        }
        let mut to_install: Vec<(usize, LineAddr)> = Vec::new();
        for home in 0..self.place.sockets() {
            let mut lines: Vec<LineAddr> = self.home_dirs[home]
                .iter_entries()
                .filter(|(l, e)| {
                    // Any dirty owner other than the replica node
                    // itself leaves the replica memory copy behind (at
                    // two sockets this reduces to `owner == home`; with
                    // more nodes a third-party owner counts too).
                    e.state.dirty()
                        && e.owner.is_some_and(|o| o != self.place.replica_node(**l))
                        && self.cfg.replication_scope.covers(**l, self.cfg.page_lines)
                })
                .map(|(l, _)| *l)
                .collect();
            // The directory map iterates in hash order; sort so the
            // RM install sequence (and with it the replica
            // directory's LRU state) is deterministic run-to-run.
            lines.sort_unstable();
            for l in lines {
                to_install.push((self.place.replica_node(l), l));
            }
        }
        for (socket, line) in to_install {
            if let Some(ev) = self.replica_dirs[socket].install(line, ReplicaState::Rm) {
                self.resolve_replica_eviction(socket, ev, Stamp::start(now), fabric);
            }
        }
    }

    // ----- internal helpers -------------------------------------------

    /// Invalidates all on-socket L1 copies of `line` except `keep`.
    fn invalidate_local_l1s(&mut self, socket: usize, line: LineAddr, keep: Option<usize>) {
        let base = socket * self.cfg.cores_per_socket;
        let sharers = self.llcs[socket].sharers_of(line).unwrap_or(0);
        for i in 0..self.cfg.cores_per_socket {
            let core = base + i;
            if Some(core) == keep {
                continue;
            }
            if sharers & (1 << i) != 0 {
                self.l1s[core].invalidate(line);
            }
        }
        let keep_mask = keep
            .map(|c| {
                if c / self.cfg.cores_per_socket == socket {
                    1u16 << (c % self.cfg.cores_per_socket)
                } else {
                    0
                }
            })
            .unwrap_or(0);
        self.llcs[socket].set_sharers(line, sharers & keep_mask);
    }

    /// Downgrades the owning socket's LLC copy of `line` to O after a
    /// read forward (the owner keeps the dirty data and responds to
    /// future requests, MOSI-style).
    ///
    /// The downgrade must reach the owner's private L1s too: an L1 left
    /// in M would absorb the owner's next store silently while the
    /// requester keeps a stale S copy. (Found by the conformance
    /// fuzzer; regression `owner_l1_downgraded_on_cross_socket_read`.)
    fn downgrade_owner_for_forward(&mut self, owner: usize, line: LineAddr) {
        if self.has_bug(SeededBug::NoOwnerDowngradeOnForward) {
            return;
        }
        self.llcs[owner].set_state(line, CacheState::O);
        self.downgrade_dirty_l1s(owner, line, None);
    }

    /// Downgrades any dirty on-socket L1 copy of `line` (other than
    /// `keep`'s) to S. Used whenever socket-level state drops below M
    /// while the data stays resident: a read hitting the LLC in M, or a
    /// forward downgrading the LLC to O. An L1 left in M would complete
    /// later stores silently, leaving every other copy of the line
    /// stale. (Found by the conformance fuzzer; regression
    /// `sibling_l1_downgraded_on_shared_read`.)
    fn downgrade_dirty_l1s(&mut self, socket: usize, line: LineAddr, keep: Option<usize>) {
        let sharers = self.llcs[socket].sharers_of(line).unwrap_or(0);
        let base = socket * self.cfg.cores_per_socket;
        for i in 0..self.cfg.cores_per_socket {
            let core = base + i;
            if Some(core) == keep || sharers & (1 << i) == 0 {
                continue;
            }
            if self.l1s[core].state_of(line).is_some_and(|s| s.dirty()) {
                self.l1s[core].set_state(line, CacheState::S);
            }
        }
    }

    /// Invalidates a whole socket's copy of `line` (LLC + L1s).
    fn invalidate_socket(&mut self, socket: usize, line: LineAddr) -> Option<CacheState> {
        self.invalidate_local_l1s(socket, line, None);
        self.llcs[socket].invalidate(line)
    }

    /// Records a sharer core in the LLC's embedded local directory.
    fn add_l1_sharer(&mut self, socket: usize, line: LineAddr, core: usize) {
        let bit = 1u16 << (core % self.cfg.cores_per_socket);
        let cur = self.llcs[socket].sharers_of(line).unwrap_or(0);
        self.llcs[socket].set_sharers(line, cur | bit);
    }

    /// Writes a dirty line back to memory: home copy always; replica copy
    /// too under Dvé (strong consistency, §V-B1). Off the critical path
    /// but occupies memory banks and the link. Returns the time the last
    /// copy is durable, so callers that must *wait* for the writeback
    /// (e.g. the forced downgrade in a replica-directory Rm eviction)
    /// can sequence their acknowledgement after it.
    fn writeback(
        &mut self,
        from_socket: usize,
        line: LineAddr,
        now: Stamp,
        fabric: &mut impl Fabric,
    ) -> Stamp {
        self.stats.writebacks += 1;
        let home = self.home_of(line);
        // Home copy.
        let t_home = if from_socket == home {
            now
        } else {
            fabric.link_send(from_socket, home, now, MessageClass::Writeback)
        };
        let mut done = fabric.mem_write(home, line, t_home);
        if self.is_dve()
            && self.degraded
            && self.cfg.replication_scope.covers(line, self.cfg.page_lines)
        {
            // §V-E: the replica copy is out of service and misses this
            // writeback — remember that it is now behind the home copy
            // so recovery does not resume serving stale data from it.
            self.stale_replica.insert(line);
        }
        if self.line_replicated(line) && !self.has_bug(SeededBug::SkipReplicaWriteback) {
            let replica = self.place.replica_node(line);
            let t_rep = if from_socket == replica {
                now
            } else {
                fabric.link_send(from_socket, replica, now, MessageClass::Writeback)
            };
            done = done.max(fabric.replica_write(replica, line, t_rep));
            self.stale_replica.remove(&line);
            // The replica is now in sync: clear any RM entry (deny) or
            // stale M entry (allow) covering it.
            if self.replica_dirs[replica].peek(line) == Some(ReplicaState::Rm)
                || self.replica_dirs[replica].peek(line) == Some(ReplicaState::M)
            {
                self.replica_dirs[replica].remove(line);
                if from_socket != replica {
                    fabric.link_send(from_socket, replica, now, MessageClass::ReplicaMaintenance);
                }
            }
        }
        // Update the home directory: the writer gave up ownership.
        let entry = self.home_dirs[home].entry_mut(line);
        if entry.owner == Some(from_socket) {
            entry.owner = None;
            entry.sharers &= !(1 << from_socket);
            entry.state = if entry.sharers == 0 && !entry.replica_shared {
                CacheState::I
            } else {
                CacheState::S
            };
        } else {
            entry.sharers &= !(1 << from_socket);
            if entry.sharers == 0 && entry.owner.is_none() && !entry.replica_shared {
                entry.state = CacheState::I;
            }
        }
        done
    }

    /// Handles an LLC insertion, performing the writeback/invalidation
    /// consequences of any eviction.
    fn llc_insert(
        &mut self,
        socket: usize,
        line: LineAddr,
        state: CacheState,
        now: Stamp,
        fabric: &mut impl Fabric,
    ) {
        if let Some(ev) = self.llcs[socket].insert(line, state) {
            // Back-invalidate L1 copies of the evicted line (inclusive
            // hierarchy).
            let base = socket * self.cfg.cores_per_socket;
            for i in 0..self.cfg.cores_per_socket {
                if ev.sharers & (1 << i) != 0 {
                    self.l1s[base + i].invalidate(ev.addr);
                }
            }
            if ev.state.dirty() {
                self.writeback(socket, ev.addr, now, fabric);
            } else {
                // Silent clean eviction; directory sharer info may go
                // stale (conservatively superset), which is safe.
                let home = self.home_of(ev.addr);
                if matches!(
                    self.mode,
                    Mode::Dve {
                        policy: ReplicaPolicy::Allow,
                        ..
                    }
                ) && socket != home
                {
                    // Keep the allow replica-dir's M entries in sync if
                    // the socket lost a line it owned (cannot happen for
                    // clean lines; S entries may stay — they refer to
                    // replica readability, not LLC residency).
                }
            }
        }
    }

    /// Resolves a replica-directory capacity eviction. An `Rm` or `M`
    /// eviction forces a downgrade/writeback so the conservative default
    /// after removal stays safe.
    fn resolve_replica_eviction(
        &mut self,
        replica_socket: usize,
        ev: ReplicaEviction,
        now: Stamp,
        fabric: &mut impl Fabric,
    ) -> Stamp {
        match ev.state {
            // Allow: absence means "not readable" — dropping an S entry
            // is conservative and free (the next read re-pulls).
            ReplicaState::S => now,
            ReplicaState::Rm => {
                // Deny: absence would mean "readable", but the home side
                // holds the region writable. Force the home-side owner to
                // write back and downgrade before the entry disappears.
                // Regions never span pages (region_lines <= page_lines),
                // so the region's home socket is the counterparty.
                self.stats.forced_downgrades += 1;
                let region = ev.region;
                let lines = self.cfg.replica_region_lines;
                let peer = self.place.home_of(region);
                let mut t =
                    fabric.link_send(replica_socket, peer, now, MessageClass::ReplicaMaintenance);
                t = t.advance(Component::Protocol, fabric.dir_latency());
                // The acknowledgement releasing the directory slot may
                // only travel back once every forced writeback is
                // durable — acking at the request time would let the
                // evicting install reuse the slot while the home side
                // still holds the region writable.
                let mut last_done = t;
                for l in region..region + lines {
                    let home = self.home_of(l);
                    let owner = self.home_dirs[home].entry(l).owner;
                    if let Some(o) = owner {
                        if o != replica_socket
                            && self.llcs[o].state_of(l).is_some_and(|s| s.dirty())
                        {
                            self.llcs[o].set_state(l, CacheState::S);
                            // Downgrade the on-socket L1 copies too: the
                            // writer must re-acquire M for its next store.
                            let sharers = self.llcs[o].sharers_of(l).unwrap_or(0);
                            let base = o * self.cfg.cores_per_socket;
                            for i in 0..self.cfg.cores_per_socket {
                                if sharers & (1 << i) != 0 {
                                    self.l1s[base + i].set_state(l, CacheState::S);
                                }
                            }
                            last_done = last_done.max(self.writeback(o, l, t, fabric));
                            let e = self.home_dirs[home].entry_mut(l);
                            e.owner = None;
                            e.state = CacheState::S;
                            e.sharers |= 1 << o;
                        }
                    }
                }
                fabric.link_send(peer, replica_socket, last_done, MessageClass::Ack)
            }
            ReplicaState::M => {
                // Silent and free: the home directory independently
                // records the owning socket, and any future forward from
                // home reaches the owning LLC regardless of whether the
                // replica directory still holds the entry. Reads from
                // the replica side hit their own (owning) LLC before
                // ever consulting the replica directory.
                now
            }
        }
    }

    // ----- the access path --------------------------------------------

    /// Executes one memory operation for `core` on `line` starting at
    /// `now`. This is the engine's main entry point.
    pub fn access(
        &mut self,
        core: usize,
        line: LineAddr,
        req: ReqType,
        now: u64,
        fabric: &mut impl Fabric,
    ) -> AccessOutcome {
        let mut outcome = self.access_inner(core, line, req, now, fabric);
        let idx = service_index(outcome.service);
        self.stats.served[idx] += 1;
        // Completion can never precede issue; a `saturating_sub` here
        // would silently record a zero latency and hide exactly the
        // kind of accounting bug the conformance fuzzer's monotonicity
        // check exists to catch. Fail loudly in debug instead.
        debug_assert!(
            outcome.complete_at >= now,
            "access completed at {} before issue at {now}",
            outcome.complete_at
        );
        // Latency conservation: the per-layer breakdown must sum to the
        // end-to-end latency. Checked *before* any seeded accounting bug
        // perturbs `complete_at` — the bug models a broken engine, and
        // the conformance harness (running in release) must still catch
        // it downstream.
        debug_assert_eq!(
            outcome.breakdown.total(),
            outcome.complete_at - now,
            "latency breakdown does not conserve: {:?} vs end-to-end {}",
            outcome.breakdown,
            outcome.complete_at - now
        );
        self.stats.latency_sum[idx] += outcome.complete_at - now;
        self.stats.latency_breakdown.merge(&outcome.breakdown);
        if self.has_bug(SeededBug::TimeTravelCompletion) {
            // Accounting bug: the reported completion lands one cycle
            // before the request was issued.
            outcome.complete_at = now.saturating_sub(1);
        }
        outcome
    }

    fn access_inner(
        &mut self,
        core: usize,
        line: LineAddr,
        req: ReqType,
        now: u64,
        fabric: &mut impl Fabric,
    ) -> AccessOutcome {
        assert!(core < self.cfg.cores, "core out of range");
        self.stats.ops += 1;
        match req {
            ReqType::Read => self.stats.reads += 1,
            ReqType::Write => self.stats.writes += 1,
        }
        let socket = self.socket_of(core);
        let mut t = Stamp::start(now).advance(Component::Protocol, fabric.l1_latency());

        // 1. Private L1.
        match (req, self.l1s[core].lookup(line)) {
            (ReqType::Read, Some(s)) if s.readable() => {
                self.stats.l1_hits += 1;
                return AccessOutcome::from_stamp(t, ServiceLevel::L1);
            }
            (ReqType::Write, Some(CacheState::M)) => {
                self.stats.l1_hits += 1;
                return AccessOutcome::from_stamp(t, ServiceLevel::L1);
            }
            _ => {}
        }

        // 2. Socket LLC + local directory (real mesh hops from this
        // core's tile).
        t = t
            .advance(Component::Mesh, fabric.mesh_latency_core(core))
            .advance(Component::Protocol, fabric.llc_latency());
        let llc_state = self.llcs[socket].lookup(line);
        match (req, llc_state) {
            (ReqType::Read, Some(s)) if s.readable() => {
                self.stats.llc_hits += 1;
                // A sibling core may hold the line in M (it wrote and
                // the LLC took M alongside); its L1 must drop to S now
                // that another core keeps a copy, or its next store
                // would complete silently against our stale S.
                self.downgrade_dirty_l1s(socket, line, Some(core));
                self.fill_l1(core, socket, line, CacheState::S, t, fabric);
                self.add_l1_sharer(socket, line, core);
                return AccessOutcome::from_stamp(t, ServiceLevel::Llc);
            }
            (ReqType::Write, Some(CacheState::M)) => {
                // Socket already exclusive: invalidate sibling L1s.
                self.stats.llc_hits += 1;
                if !self.has_bug(SeededBug::SkipSiblingL1Invalidate) {
                    self.invalidate_local_l1s(socket, line, Some(core));
                }
                self.fill_l1(core, socket, line, CacheState::M, t, fabric);
                self.add_l1_sharer(socket, line, core);
                return AccessOutcome::from_stamp(t, ServiceLevel::Llc);
            }
            _ => {}
        }

        // 3. Directory transaction: replicated lines from the socket
        // co-located with the replica go to the replica directory;
        // everything else (baseline modes, degraded state, uncovered
        // pages — §V-D's single-copy fallback, and sockets that are
        // neither home nor replica under N-way placement) orders at the
        // home directory.
        if self.line_replicated(line) && self.place.serves_replica_locally(socket, line) {
            self.replica_side_transaction(core, socket, line, req, t, fabric)
        } else {
            self.home_side_transaction(core, socket, line, req, t, fabric)
        }
    }

    fn fill_l1(
        &mut self,
        core: usize,
        socket: usize,
        line: LineAddr,
        state: CacheState,
        _now: Stamp,
        _fabric: &mut impl Fabric,
    ) {
        let _ = socket;
        // L1 evictions write dirty data into the (inclusive) LLC; no
        // off-socket traffic.
        if let Some(ev) = self.l1s[core].insert(line, state) {
            if ev.state.dirty() {
                let s = self.socket_of(core);
                if self.llcs[s].state_of(ev.addr).is_some() {
                    // Data merges into the LLC copy; state already dirty
                    // at socket level (the LLC took M when the L1 did).
                }
            }
        }
    }

    /// A transaction that goes to the home directory (baseline always;
    /// Dvé when the requester sits on the home socket).
    fn home_side_transaction(
        &mut self,
        core: usize,
        socket: usize,
        line: LineAddr,
        req: ReqType,
        now: Stamp,
        fabric: &mut impl Fabric,
    ) -> AccessOutcome {
        let home = self.home_of(line);
        // Travel to the home directory (on-chip dir-cache miss adds an
        // in-memory directory-entry fetch).
        let t0 = if socket == home {
            now.advance(Component::Mesh, fabric.mesh_latency())
        } else {
            fabric.link_send(socket, home, now, MessageClass::Request)
        };
        let mut t = self.dir_access(home, line, t0, fabric);
        let prior = self.home_dirs[home].entry(line);
        self.home_dirs[home].classify(req, prior.state);

        let service;
        match req {
            ReqType::Read => {
                match prior.state {
                    CacheState::I | CacheState::S => {
                        // Clean in memory: read the home copy.
                        t = fabric.mem_read(home, line, t);
                        service = if socket == home {
                            ServiceLevel::LocalDram
                        } else {
                            ServiceLevel::RemoteDram
                        };
                        if socket != home {
                            t = fabric.link_send(home, socket, t, MessageClass::DataResponse);
                        }
                        let e = self.home_dirs[home].entry_mut(line);
                        e.state = CacheState::S;
                        e.sharers |= 1 << socket;
                    }
                    CacheState::M | CacheState::O => {
                        let owner = prior.owner.expect("dirty line has an owner");
                        if owner == socket || self.llcs[owner].state_of(line).is_none() {
                            // Stale ownership (owner silently lost it) —
                            // fall back to memory.
                            t = fabric.mem_read(home, line, t);
                            service = if socket == home {
                                ServiceLevel::LocalDram
                            } else {
                                ServiceLevel::RemoteDram
                            };
                            if socket != home {
                                t = fabric.link_send(home, socket, t, MessageClass::DataResponse);
                            }
                            let e = self.home_dirs[home].entry_mut(line);
                            e.state = CacheState::S;
                            e.owner = None;
                            e.sharers |= 1 << socket;
                        } else {
                            // Forward to the owner; owner downgrades to O
                            // and responds with data (MOSI: no memory
                            // update).
                            if owner != home {
                                t = fabric.link_send(home, owner, t, MessageClass::Request);
                            }
                            t = t.advance(Component::Protocol, fabric.llc_latency());
                            self.downgrade_owner_for_forward(owner, line);
                            if owner != socket {
                                t = fabric.link_send(owner, socket, t, MessageClass::DataResponse);
                            }
                            service = if owner == socket {
                                ServiceLevel::LocalOwner
                            } else {
                                ServiceLevel::RemoteOwner
                            };
                            let e = self.home_dirs[home].entry_mut(line);
                            e.state = CacheState::O;
                            e.sharers |= 1 << socket;
                        }
                    }
                }
                self.llc_insert(socket, line, CacheState::S, t, fabric);
                self.fill_l1(core, socket, line, CacheState::S, t, fabric);
                self.add_l1_sharer(socket, line, core);
            }
            ReqType::Write => {
                // GETX: invalidate all other sharers, acquire data, take M.
                let mut t_data = t;
                let mut max_ack = t;
                let had_remote_owner = prior.owner.filter(|&o| o != socket);
                // Invalidate every other sharer socket.
                for q in 0..self.place.sockets() {
                    if q == socket || prior.sharers & (1 << q) == 0 {
                        continue;
                    }
                    let t_inv = if q == home {
                        t.advance(Component::Mesh, fabric.mesh_latency())
                    } else {
                        fabric.link_send(home, q, t, MessageClass::Invalidation)
                    };
                    let dirty = self.llcs[q].state_of(line).is_some_and(|s| s.dirty());
                    let was_owner = prior.owner == Some(q);
                    self.invalidate_socket(q, line);
                    if dirty && was_owner {
                        // Dirty data travels with the ack to the
                        // requester (no memory update; MOSI).
                        let t_ack = if q == socket {
                            t_inv
                        } else {
                            fabric.link_send(q, socket, t_inv, MessageClass::DataResponse)
                        };
                        t_data = t_data.max(t_ack);
                        max_ack = max_ack.max(t_ack);
                    } else {
                        let t_ack = if q == socket {
                            t_inv
                        } else {
                            fabric.link_send(q, socket, t_inv, MessageClass::Ack)
                        };
                        max_ack = max_ack.max(t_ack);
                    }
                }
                // Data source if no dirty remote owner supplied it.
                let llc_has = self.llcs[socket].state_of(line).is_some();
                if had_remote_owner.is_none() && !llc_has {
                    let t_mem = fabric.mem_read(home, line, t);
                    let t_arr = if socket == home {
                        t_mem
                    } else {
                        fabric.link_send(home, socket, t_mem, MessageClass::DataResponse)
                    };
                    t_data = t_data.max(t_arr);
                }
                // Dvé extensions: any write from a socket not co-located
                // with the replica must bring the replica directory au
                // courant (at two sockets that is exactly "the home-side
                // write"; under N-way a third socket's write needs it
                // too, or the replica would keep serving stale data).
                if let Mode::Dve { policy, .. } = self.mode {
                    let replica = self.place.replica_node(line);
                    if socket != replica && self.line_replicated(line) {
                        // If an invalidation already went to the replica
                        // socket (it was a sharer), the RM-install /
                        // permission-revoke piggybacks on that message —
                        // the replica directory sits in front of the
                        // replica-side LLCs in the hierarchy (Fig. 4c).
                        let covered = prior.sharers & (1 << replica) != 0;
                        match policy {
                            ReplicaPolicy::Deny if self.has_bug(SeededBug::SkipRmInstall) => {
                                // Seeded bug: forget the eager RM push.
                            }
                            ReplicaPolicy::Deny => {
                                // Eagerly push the RM (deny) entry; the
                                // write completes only after the ack.
                                self.stats.rm_installs += 1;
                                let t_rm = if covered {
                                    t.advance(Component::Protocol, fabric.dir_latency())
                                } else {
                                    fabric
                                        .link_send(
                                            home,
                                            replica,
                                            t,
                                            MessageClass::ReplicaMaintenance,
                                        )
                                        .advance(Component::Protocol, fabric.dir_latency())
                                };
                                if let Some(ev) =
                                    self.replica_dirs[replica].install(line, ReplicaState::Rm)
                                {
                                    let t_ev =
                                        self.resolve_replica_eviction(replica, ev, t_rm, fabric);
                                    max_ack = max_ack.max(t_ev);
                                }
                                if !covered {
                                    let t_ack =
                                        fabric.link_send(replica, socket, t_rm, MessageClass::Ack);
                                    max_ack = max_ack.max(t_ack);
                                }
                            }
                            ReplicaPolicy::Allow => {
                                // If the replica directory holds a read
                                // permission, revoke it before the write
                                // completes.
                                if (prior.replica_shared
                                    || self.replica_dirs[replica].peek(line).is_some())
                                    && !self.has_bug(SeededBug::SkipReplicaInvalidate)
                                {
                                    self.stats.replica_invalidations += 1;
                                    self.replica_dirs[replica].remove(line);
                                    if !covered {
                                        let t_inv = fabric
                                            .link_send(home, replica, t, MessageClass::Invalidation)
                                            .advance(Component::Protocol, fabric.dir_latency());
                                        let t_ack = fabric.link_send(
                                            replica,
                                            socket,
                                            t_inv,
                                            MessageClass::Ack,
                                        );
                                        max_ack = max_ack.max(t_ack);
                                    }
                                }
                            }
                        }
                    }
                }
                t = t_data.max(max_ack);
                service = match had_remote_owner {
                    Some(_) => ServiceLevel::RemoteOwner,
                    None if llc_has => ServiceLevel::Llc,
                    None if socket == home => ServiceLevel::LocalDram,
                    None => ServiceLevel::RemoteDram,
                };
                let e = self.home_dirs[home].entry_mut(line);
                e.state = CacheState::M;
                e.owner = Some(socket);
                e.sharers = 1 << socket;
                e.replica_shared = false;
                self.invalidate_local_l1s(socket, line, Some(core));
                self.llc_insert(socket, line, CacheState::M, t, fabric);
                self.fill_l1(core, socket, line, CacheState::M, t, fabric);
                self.add_l1_sharer(socket, line, core);
                // An allow-mode write from the replica side installs an M
                // entry in its replica directory (Fig. 5 top) — but only
                // while the line actually has a replica. Writes to
                // uncovered pages (§V-D fallback) or while degraded
                // (§V-E) must not pollute the directory with entries for
                // lines it does not govern. (Found by the conformance
                // fuzzer; regression
                // `no_replica_dir_pollution_outside_scope`.)
                if let Mode::Dve {
                    policy: ReplicaPolicy::Allow,
                    ..
                } = self.mode
                {
                    if self.line_replicated(line) && self.place.serves_replica_locally(socket, line)
                    {
                        if let Some(ev) = self.replica_dirs[socket].install(line, ReplicaState::M) {
                            self.resolve_replica_eviction(socket, ev, t, fabric);
                        }
                    }
                }
            }
        }
        AccessOutcome::from_stamp(t, service)
    }

    /// A Dvé transaction from the replica side: consult the replica
    /// directory first; read the local replica when permitted.
    fn replica_side_transaction(
        &mut self,
        core: usize,
        socket: usize,
        line: LineAddr,
        req: ReqType,
        now: Stamp,
        fabric: &mut impl Fabric,
    ) -> AccessOutcome {
        let Mode::Dve {
            policy,
            speculative,
        } = self.mode
        else {
            unreachable!("replica-side path only in Dvé modes");
        };
        let home = self.place.home_of(line);
        let mut t = now
            .advance(Component::Mesh, fabric.mesh_latency())
            .advance(Component::Protocol, fabric.dir_latency());

        if req == ReqType::Write {
            // Writes always order at the home directory. The replica
            // directory is checked/updated on the way (already charged).
            return self.home_side_transaction(core, socket, line, req, t, fabric);
        }

        let entry = self.replica_dirs[socket].lookup(line);
        // A line whose writeback the replica missed while degraded
        // (§V-E) is quarantined regardless of what the directory says —
        // for the deny family "absence" would otherwise mean "readable"
        // the moment the drained directory comes back. (Found by the
        // conformance fuzzer; regression
        // `recovered_replica_requires_resync_before_reads`.)
        let readable = !self.replica_stale(line)
            && match (policy, entry) {
                (ReplicaPolicy::Allow, Some(ReplicaState::S)) => true,
                (ReplicaPolicy::Allow, None) if self.has_bug(SeededBug::AllowAbsenceReadable) => {
                    // Seeded bug: absence treated as permission (the deny
                    // family's semantics applied to the allow directory).
                    true
                }
                (ReplicaPolicy::Allow, _) => false,
                (ReplicaPolicy::Deny, Some(ReplicaState::Rm)) => false,
                (ReplicaPolicy::Deny, _) => true,
            };

        if readable {
            // Serve from the local replica memory. The home directory
            // views the replica directory as a sharer covering this
            // socket's caches, so later invalidations reach us.
            t = fabric.replica_read(socket, line, t);
            self.stats.replica_reads += 1;
            let e = self.home_dirs[home].entry_mut(line);
            if !e.state.dirty() {
                e.state = CacheState::S;
            }
            e.sharers |= 1 << socket;
            e.replica_shared = true;
            self.llc_insert(socket, line, CacheState::S, t, fabric);
            self.fill_l1(core, socket, line, CacheState::S, t, fabric);
            self.add_l1_sharer(socket, line, core);
            return AccessOutcome::from_stamp(t, ServiceLevel::LocalDram);
        }

        // Not provably readable: consult home. Optionally speculate on
        // the local replica in parallel (§V-C5).
        let spec_done = if speculative {
            Some(fabric.replica_read(socket, line, t))
        } else {
            None
        };
        let t_arr = fabric.link_send(socket, home, t, MessageClass::Request);
        let t_req = self.dir_access(home, line, t_arr, fabric);
        let prior = self.home_dirs[home].entry(line);
        self.home_dirs[home].classify(ReqType::Read, prior.state);

        let service;
        let t_done;
        match prior.state {
            CacheState::I | CacheState::S => {
                // Replica was actually fine — home confirms with a
                // control message; the speculative local read supplies
                // the data. A quarantined (stale-replica) line must
                // squash instead: the speculatively read words predate
                // the writeback the dead replica missed.
                if let (Some(spec), false) = (spec_done, self.replica_stale(line)) {
                    self.stats.spec_confirmed += 1;
                    self.stats.replica_reads += 1;
                    let t_ack = fabric.link_send(home, socket, t_req, MessageClass::Ack);
                    t_done = spec.max(t_ack);
                    service = ServiceLevel::LocalDram;
                } else {
                    if spec_done.is_some() {
                        self.stats.spec_squashed += 1;
                    }
                    let t_mem = fabric.mem_read(home, line, t_req);
                    t_done = fabric.link_send(home, socket, t_mem, MessageClass::DataResponse);
                    service = ServiceLevel::RemoteDram;
                }
                let e = self.home_dirs[home].entry_mut(line);
                e.state = CacheState::S;
                e.sharers |= 1 << socket;
                e.replica_shared = true;
            }
            CacheState::M | CacheState::O => {
                if spec_done.is_some() {
                    self.stats.spec_squashed += 1;
                }
                let owner = prior.owner.expect("dirty line has an owner");
                if self.llcs[owner].state_of(line).is_none() || owner == socket {
                    let t_mem = fabric.mem_read(home, line, t_req);
                    t_done = fabric.link_send(home, socket, t_mem, MessageClass::DataResponse);
                    service = ServiceLevel::RemoteDram;
                    let e = self.home_dirs[home].entry_mut(line);
                    e.state = CacheState::S;
                    e.owner = None;
                    e.sharers |= 1 << socket;
                } else {
                    let mut tt = t_req;
                    if owner != home {
                        tt = fabric.link_send(home, owner, tt, MessageClass::Request);
                    }
                    tt = tt.advance(Component::Protocol, fabric.llc_latency());
                    self.downgrade_owner_for_forward(owner, line);
                    if owner != socket {
                        tt = fabric.link_send(owner, socket, tt, MessageClass::DataResponse);
                    }
                    t_done = tt;
                    service = ServiceLevel::RemoteOwner;
                    let e = self.home_dirs[home].entry_mut(line);
                    e.state = CacheState::O;
                    e.sharers |= 1 << socket;
                }
            }
        }
        // §V-E demand re-sync: the fresh data just obtained from the
        // home side is pushed into the local replica copy (off the
        // critical path), lifting the stale-replica quarantine.
        if self.replica_stale(line) {
            fabric.replica_write(socket, line, t_done);
            self.stale_replica.remove(&line);
        }
        // Allow: install the pulled read permission. With coarse-grain
        // tracking, "a full memory block is entered into the replica
        // directory if no cacheline within it is currently in writable
        // state" (§V-C5) — the reproduction reads "writable" as *dirty*
        // (M or O): an O-state line is no longer writable but its only
        // up-to-date copy still sits in a cache, so a region permission
        // spanning it would serve stale replica data for that line.
        // (Found by the conformance fuzzer; regression
        // `coarse_allow_region_install_excludes_o_state`.)
        if policy == ReplicaPolicy::Allow && service != ServiceLevel::RemoteOwner {
            let region_ok = if self.cfg.replica_region_lines > 1 {
                let region = self.replica_dirs[socket].region_of(line);
                (region..region + self.cfg.replica_region_lines).all(|l| {
                    let e = self.home_dirs[self.home_of(l)].entry(l);
                    !e.state.dirty()
                })
            } else {
                true
            };
            if region_ok {
                let install_t = if self.cfg.free_installs { now } else { t_done };
                if let Some(ev) = self.replica_dirs[socket].install(line, ReplicaState::S) {
                    self.resolve_replica_eviction(socket, ev, install_t, fabric);
                }
            }
        }
        self.llc_insert(socket, line, CacheState::S, t_done, fabric);
        self.fill_l1(core, socket, line, CacheState::S, t_done, fabric);
        self.add_l1_sharer(socket, line, core);
        AccessOutcome::from_stamp(t_done, service)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fabric::TestFabric;

    fn engine(mode: Mode) -> ProtocolEngine {
        ProtocolEngine::new(mode, EngineConfig::default())
    }

    fn allow() -> Mode {
        Mode::Dve {
            policy: ReplicaPolicy::Allow,
            speculative: false,
        }
    }

    fn deny() -> Mode {
        Mode::Dve {
            policy: ReplicaPolicy::Deny,
            speculative: false,
        }
    }

    /// Line homed on socket 0 (page 0) / socket 1 (page 1).
    const HOME0: LineAddr = 0;
    const HOME1: LineAddr = 64;

    #[test]
    fn l1_hit_after_first_read() {
        let mut e = engine(Mode::Baseline);
        let mut f = TestFabric::default();
        let first = e.access(0, HOME0, ReqType::Read, 0, &mut f);
        assert_eq!(first.service, ServiceLevel::LocalDram);
        let second = e.access(0, HOME0, ReqType::Read, first.complete_at, &mut f);
        assert_eq!(second.service, ServiceLevel::L1);
        assert_eq!(second.complete_at - first.complete_at, 1);
    }

    #[test]
    fn llc_hit_for_sibling_core() {
        let mut e = engine(Mode::Baseline);
        let mut f = TestFabric::default();
        e.access(0, HOME0, ReqType::Read, 0, &mut f);
        let o = e.access(1, HOME0, ReqType::Read, 1000, &mut f);
        assert_eq!(o.service, ServiceLevel::Llc);
    }

    #[test]
    fn remote_read_crosses_link_in_baseline() {
        let mut e = engine(Mode::Baseline);
        let mut f = TestFabric::default();
        // Core 0 (socket 0) reads a line homed on socket 1.
        let o = e.access(0, HOME1, ReqType::Read, 0, &mut f);
        assert_eq!(o.service, ServiceLevel::RemoteDram);
        assert!(f.traffic.total_messages() >= 2, "request + data response");
    }

    #[test]
    fn dve_deny_serves_remote_home_line_from_local_replica() {
        let mut e = engine(deny());
        let mut f = TestFabric::default();
        // Socket 0 core reads a line homed on socket 1: deny-based Dvé
        // reads the replica on socket 0 without touching the link.
        let o = e.access(0, HOME1, ReqType::Read, 0, &mut f);
        assert_eq!(o.service, ServiceLevel::LocalDram);
        assert_eq!(f.traffic.total_messages(), 0);
        assert_eq!(f.replica_reads[0], 1);
        assert_eq!(e.stats().replica_reads, 1);
    }

    #[test]
    fn dve_allow_first_read_pulls_permission_then_hits_replica() {
        let mut e = engine(allow());
        let mut f = TestFabric::default();
        let o1 = e.access(0, HOME1, ReqType::Read, 0, &mut f);
        // First read: no entry -> goes to home across the link.
        assert_eq!(o1.service, ServiceLevel::RemoteDram);
        assert!(f.traffic.total_messages() > 0);
        // Evict from caches by touching nothing — directly probe the
        // replica directory instead: entry should now exist.
        assert!(e.replica_dir(0).replica_readable(HOME1));
    }

    #[test]
    fn dve_allow_replica_read_after_cache_eviction() {
        let cfg = EngineConfig {
            l1_bytes: 512,
            l1_ways: 1,
            llc_bytes: 1024,
            llc_ways: 1,
            ..Default::default()
        };
        let mut e = ProtocolEngine::new(allow(), cfg);
        let mut f = TestFabric::default();
        e.access(0, HOME1, ReqType::Read, 0, &mut f);
        // Thrash the tiny caches so HOME1 is evicted but the replica-dir
        // entry survives.
        for i in 2..40u64 {
            e.access(0, HOME1 + i * 64 * 64, ReqType::Read, i * 10_000, &mut f);
        }
        let before = e.stats().replica_reads;
        let o = e.access(0, HOME1, ReqType::Read, 10_000_000, &mut f);
        assert_eq!(o.service, ServiceLevel::LocalDram);
        assert_eq!(e.stats().replica_reads, before + 1);
    }

    #[test]
    fn deny_home_write_pushes_rm_and_blocks_replica() {
        let mut e = engine(deny());
        let mut f = TestFabric::default();
        // Core 8 (socket 1) writes a line homed on socket 1.
        let o = e.access(8, HOME1, ReqType::Write, 0, &mut f);
        assert!(
            o.complete_at > 300,
            "RM push round-trip is on the critical path"
        );
        assert_eq!(e.stats().rm_installs, 1);
        assert!(!e.replica_dir(0).replica_readable(HOME1));
        // A socket-0 read now must go remote (to the owner).
        let o2 = e.access(0, HOME1, ReqType::Read, o.complete_at, &mut f);
        assert_eq!(o2.service, ServiceLevel::RemoteOwner);
    }

    #[test]
    fn allow_home_write_clean_line_pays_no_replica_cost() {
        let mut e = engine(allow());
        let mut f = TestFabric::default();
        let o = e.access(8, HOME1, ReqType::Write, 0, &mut f);
        // No replica-dir entry existed: no invalidate round trip.
        assert_eq!(e.stats().replica_invalidations, 0);
        assert_eq!(f.traffic.total_messages(), 0);
        assert_eq!(o.service, ServiceLevel::LocalDram);
    }

    #[test]
    fn allow_home_write_invalidate_replica_permission() {
        let mut e = engine(allow());
        let mut f = TestFabric::default();
        // Socket 0 pulls read permission for HOME1.
        e.access(0, HOME1, ReqType::Read, 0, &mut f);
        assert!(e.replica_dir(0).replica_readable(HOME1));
        // Socket 1 writes: permission must be revoked synchronously.
        e.access(8, HOME1, ReqType::Write, 10_000, &mut f);
        assert_eq!(e.stats().replica_invalidations, 1);
        assert!(!e.replica_dir(0).replica_readable(HOME1));
    }

    #[test]
    fn read_of_dirty_remote_line_forwards_to_owner() {
        let mut e = engine(Mode::Baseline);
        let mut f = TestFabric::default();
        e.access(8, HOME1, ReqType::Write, 0, &mut f); // socket 1 owns M
        let o = e.access(0, HOME1, ReqType::Read, 10_000, &mut f);
        assert_eq!(o.service, ServiceLevel::RemoteOwner);
    }

    #[test]
    fn write_invalidates_remote_sharers() {
        let mut e = engine(Mode::Baseline);
        let mut f = TestFabric::default();
        e.access(0, HOME0, ReqType::Read, 0, &mut f); // socket 0 shares
        e.access(8, HOME0, ReqType::Read, 1000, &mut f); // socket 1 shares
        let before = f
            .traffic
            .messages(dve_noc::traffic::MessageClass::Invalidation);
        e.access(0, HOME0, ReqType::Write, 2000, &mut f);
        let after = f
            .traffic
            .messages(dve_noc::traffic::MessageClass::Invalidation);
        assert_eq!(after - before, 1, "one invalidation to socket 1");
        // Socket 1's copy is gone: its next read misses to the owner.
        let o = e.access(8, HOME0, ReqType::Read, 10_000, &mut f);
        assert_eq!(o.service, ServiceLevel::RemoteOwner);
    }

    #[test]
    fn speculative_replica_read_confirms_on_clean_line() {
        let mut e = engine(Mode::Dve {
            policy: ReplicaPolicy::Allow,
            speculative: true,
        });
        let mut f = TestFabric::default();
        let o = e.access(0, HOME1, ReqType::Read, 0, &mut f);
        // Clean at home: speculation confirmed, served locally.
        assert_eq!(o.service, ServiceLevel::LocalDram);
        assert_eq!(e.stats().spec_confirmed, 1);
        // Response was control-only: no DataResponse crossed the link.
        assert_eq!(
            f.traffic
                .messages(dve_noc::traffic::MessageClass::DataResponse),
            0
        );
    }

    #[test]
    fn speculative_replica_read_squashes_on_dirty_line() {
        let mut e = engine(Mode::Dve {
            policy: ReplicaPolicy::Allow,
            speculative: true,
        });
        let mut f = TestFabric::default();
        e.access(8, HOME1, ReqType::Write, 0, &mut f); // home side dirties
        let o = e.access(0, HOME1, ReqType::Read, 100_000, &mut f);
        assert_eq!(e.stats().spec_squashed, 1);
        assert_eq!(o.service, ServiceLevel::RemoteOwner);
    }

    #[test]
    fn dirty_eviction_writes_back_to_both_copies_under_dve() {
        let cfg = EngineConfig {
            l1_bytes: 512,
            l1_ways: 1,
            llc_bytes: 1024,
            llc_ways: 1,
            ..Default::default()
        };
        let mut e = ProtocolEngine::new(deny(), cfg);
        let mut f = TestFabric::default();
        // Dirty a line homed on socket 0, from socket 0.
        e.access(0, HOME0, ReqType::Write, 0, &mut f);
        // Evict it by filling the 1-way LLC set with conflicting lines.
        let conflict = HOME0 + 16 * 64; // same LLC set (16 sets of 1 way at 1 KiB)
        e.access(0, conflict * 64, ReqType::Read, 100_000, &mut f);
        // Keep pushing lines that map to set 0 until the writeback hits.
        let mut t = 200_000;
        for i in 2..20u64 {
            e.access(0, i * 16 * 64, ReqType::Read, t, &mut f);
            t += 100_000;
        }
        assert!(e.stats().writebacks > 0);
        assert!(f.mem_writes[0] > 0, "home copy written");
        assert!(f.replica_writes[1] > 0, "replica copy written");
    }

    #[test]
    fn classification_happens_at_home() {
        let mut e = engine(Mode::Baseline);
        let mut f = TestFabric::default();
        e.access(0, HOME0, ReqType::Read, 0, &mut f); // private-read
        e.access(8, HOME0, ReqType::Read, 1000, &mut f); // read-only
        e.access(8, HOME0, ReqType::Write, 2000, &mut f); // read/write
        let counts = e.home_dir(0).class_counts();
        assert_eq!(counts[0], 1, "private-read");
        assert_eq!(counts[1], 1, "read-only");
        assert_eq!(counts[2], 1, "read/write");
    }

    #[test]
    fn rm_capacity_eviction_ack_waits_for_writeback() {
        // A deny-family write that evicts an Rm entry from a full
        // replica directory must not complete until the forced
        // downgrade's writeback is durable: the ack travels home →
        // replica only after the last write lands, which costs at
        // least one extra link round-trip over a non-evicting write.
        let cfg = EngineConfig {
            replica_dir_entries: Some(4),
            ..Default::default()
        };
        let mut e = ProtocolEngine::new(deny(), cfg);
        let mut f = TestFabric::default();
        // Three Rm pushes for dirty home-0 lines fill all but one of
        // the directory's 4 entries.
        for (i, line) in (0u64..3).enumerate() {
            e.access(0, line, ReqType::Write, i as u64 * 10_000, &mut f);
        }
        // Fourth fresh-line write: installs into the last free slot.
        let plain = e.access(0, 3, ReqType::Write, 30_000, &mut f);
        let plain_lat = plain.complete_at - 30_000;
        // Fifth, structurally identical write: its Rm install evicts
        // the LRU entry (line 0, dirty at home) and must wait for line
        // 0's forced writeback before the directory slot is reusable.
        let wb_before = e.stats().writebacks;
        let evicting = e.access(0, 4, ReqType::Write, 40_000, &mut f);
        let evicting_lat = evicting.complete_at - 40_000;
        assert_eq!(
            e.stats().forced_downgrades,
            1,
            "fifth install evicts an Rm entry"
        );
        assert!(e.stats().writebacks > wb_before, "downgrade wrote back");
        assert!(
            evicting_lat >= plain_lat + 2 * 150,
            "evicting write ({evicting_lat}) must trail a plain write \
             ({plain_lat}) by at least one link round-trip"
        );
    }

    #[test]
    fn dynamic_switch_drains_and_repushes_rm() {
        let mut e = engine(allow());
        let mut f = TestFabric::default();
        // Socket 1 writes its home line: under allow, no RM entries.
        e.access(8, HOME1, ReqType::Write, 0, &mut f);
        e.access(0, HOME1 + 64 * 64, ReqType::Read, 1000, &mut f); // pull an S entry
        let drained = e.switch_policy(ReplicaPolicy::Deny, false, 2000, &mut f);
        assert!(drained > 0);
        // Post-switch: the dirty home-side line must be RM-protected.
        assert!(!e.replica_dir(0).replica_readable(HOME1));
        assert_eq!(
            e.mode(),
            Mode::Dve {
                policy: ReplicaPolicy::Deny,
                speculative: false
            }
        );
    }

    #[test]
    fn degraded_mode_funnels_to_home_and_stops_replication() {
        let mut e = engine(deny());
        let mut f = TestFabric::default();
        // Healthy: replica read serves locally.
        let o = e.access(0, HOME1, ReqType::Read, 0, &mut f);
        assert_eq!(o.service, ServiceLevel::LocalDram);
        // Replica fails: degraded mode.
        e.set_degraded(true, 5000, &mut f);
        assert!(e.is_degraded());
        assert!(e.replica_dir(0).is_empty(), "replica dirs drained");
        let o = e.access(1, HOME1 + 1, ReqType::Read, 10_000, &mut f);
        assert_eq!(
            o.service,
            ServiceLevel::RemoteDram,
            "funnel to the home copy"
        );
        // Writes no longer push RM entries nor propagate to the replica.
        let before_writes = f.replica_writes.clone();
        let before_rm = e.stats().rm_installs;
        e.access(8, HOME1 + 2, ReqType::Write, 20_000, &mut f);
        assert_eq!(
            e.stats().rm_installs,
            before_rm,
            "no RM pushes while degraded"
        );
        assert_eq!(f.replica_writes, before_writes);
        // Recovery: replication resumes.
        e.set_degraded(false, 25_000, &mut f);
        let o = e.access(2, HOME1 + 3, ReqType::Read, 30_000, &mut f);
        assert_eq!(o.service, ServiceLevel::LocalDram);
        // Both edges counted; redundant sets are not.
        assert_eq!(e.stats().degraded_transitions, 2);
        e.set_degraded(false, 31_000, &mut f);
        assert_eq!(
            e.stats().degraded_transitions,
            2,
            "redundant set_degraded(false) is not a transition"
        );
    }

    #[test]
    fn swmr_no_two_sockets_writable() {
        // Pseudo-random stress: after every operation, at most one LLC
        // holds any line in M, and if one does, no other socket has it.
        let mut e = engine(deny());
        let mut f = TestFabric::default();
        let mut rng = dve_sim::rng::SplitMix64::new(42);
        let lines: Vec<LineAddr> = (0..32).collect();
        let mut t = 0u64;
        for _ in 0..2000 {
            let core = rng.next_below(16) as usize;
            let line = lines[rng.next_below(32) as usize];
            let req = if rng.chance(0.4) {
                ReqType::Write
            } else {
                ReqType::Read
            };
            let o = e.access(core, line, req, t, &mut f);
            t = o.complete_at;
            for &l in &lines {
                let m0 = e.llcs[0].state_of(l) == Some(CacheState::M);
                let m1 = e.llcs[1].state_of(l) == Some(CacheState::M);
                assert!(!(m0 && m1), "SWMR violated on line {l}");
                if m0 {
                    assert_eq!(e.llcs[1].state_of(l), None, "M coexists with remote copy");
                }
                if m1 {
                    assert_eq!(e.llcs[0].state_of(l), None, "M coexists with remote copy");
                }
            }
        }
    }

    #[test]
    fn deny_replica_never_read_while_rm() {
        // Every replica read must happen only when no home-side LLC holds
        // the line modified.
        let mut e = engine(deny());
        let mut f = TestFabric::default();
        let mut rng = dve_sim::rng::SplitMix64::new(7);
        let mut t = 0u64;
        for _ in 0..2000 {
            let core = rng.next_below(16) as usize;
            let line: LineAddr = rng.next_below(64);
            let req = if rng.chance(0.3) {
                ReqType::Write
            } else {
                ReqType::Read
            };
            let before = e.stats().replica_reads;
            let socket = e.socket_of(core);
            let home = e.home_of(line);
            let other_dirty =
                socket != home && e.llcs[home].state_of(line).is_some_and(|s| s.writable());
            let o = e.access(core, line, req, t, &mut f);
            t = o.complete_at;
            if e.stats().replica_reads > before && req == ReqType::Read {
                assert!(
                    !other_dirty,
                    "replica served while home socket held line {line} in M"
                );
            }
        }
    }
}
