//! The on-chip directory cache.
//!
//! §V-A / Table II: "We assume a full directory with the recently
//! accessed entries cached on-chip." The full directory state lives in
//! DRAM (a reserved region); the directory controller caches hot entries
//! in SRAM. A directory-cache miss therefore costs one extra DRAM access
//! to fetch the entry before the transaction can be ordered.
//!
//! [`DirCache`] models exactly that residency set (LRU over line
//! addresses). The engine consults it at every home-directory access
//! when configured; `None` capacity models an ideal all-SRAM directory
//! (the default, matching the calibrated Table II latencies).

use crate::types::LineAddr;
use std::collections::{BTreeMap, HashMap};

/// LRU residency tracker for on-chip directory entries.
///
/// # Example
///
/// ```
/// use dve_coherence::dir_cache::DirCache;
///
/// let mut dc = DirCache::new(2);
/// assert!(!dc.access(0x40)); // cold miss
/// assert!(dc.access(0x40)); // hit
/// dc.access(0x80);
/// dc.access(0xC0); // evicts 0x40
/// assert!(!dc.access(0x40));
/// ```
#[derive(Debug, Clone)]
pub struct DirCache {
    capacity: usize,
    entries: HashMap<LineAddr, u64>,
    lru: BTreeMap<u64, LineAddr>,
    tick: u64,
    hits: u64,
    misses: u64,
}

impl DirCache {
    /// Creates a cache holding `capacity` directory entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> DirCache {
        assert!(capacity > 0, "capacity must be non-zero");
        DirCache {
            capacity,
            entries: HashMap::new(),
            lru: BTreeMap::new(),
            tick: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// Touches the entry for `line`: returns `true` on an on-chip hit,
    /// `false` when the entry must be fetched from the in-memory
    /// directory (and installs it, evicting LRU).
    pub fn access(&mut self, line: LineAddr) -> bool {
        self.tick += 1;
        let tick = self.tick;
        if let Some(old) = self.entries.insert(line, tick) {
            self.lru.remove(&old);
            self.lru.insert(tick, line);
            self.hits += 1;
            return true;
        }
        self.misses += 1;
        if self.entries.len() > self.capacity {
            let (&t, &victim) = self.lru.iter().next().expect("non-empty over capacity");
            self.lru.remove(&t);
            self.entries.remove(&victim);
        }
        self.lru.insert(tick, line);
        false
    }

    /// Hits observed.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Misses observed.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Hit rate in [0, 1].
    pub fn hit_rate(&self) -> f64 {
        let t = self.hits + self.misses;
        if t == 0 {
            0.0
        } else {
            self.hits as f64 / t as f64
        }
    }

    /// Live entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hits_after_install() {
        let mut dc = DirCache::new(4);
        assert!(!dc.access(1));
        assert!(dc.access(1));
        assert!(dc.access(1));
        assert_eq!(dc.hits(), 2);
        assert_eq!(dc.misses(), 1);
        assert!((dc.hit_rate() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn lru_eviction_order() {
        let mut dc = DirCache::new(2);
        dc.access(1);
        dc.access(2);
        dc.access(1); // 2 is now LRU
        dc.access(3); // evicts 2
        assert!(dc.access(1));
        assert!(!dc.access(2));
        assert_eq!(dc.len(), 2);
    }

    #[test]
    fn capacity_never_exceeded() {
        let mut dc = DirCache::new(8);
        for i in 0..1000u64 {
            dc.access(i);
            assert!(dc.len() <= 8);
        }
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_capacity_rejected() {
        DirCache::new(0);
    }
}
