//! The timing abstraction between protocol logic and the platform model.
//!
//! The [`engine::ProtocolEngine`](crate::engine::ProtocolEngine) decides
//! *what* happens (state transitions, which structures are consulted,
//! which messages cross the link); a [`Fabric`] decides *how long* each
//! of those actions takes and accounts for contention. The `dve` crate
//! implements `Fabric` over the real DRAM controllers, mesh and
//! inter-socket link; [`TestFabric`] here provides fixed latencies for
//! protocol unit tests.
//!
//! Time travels through the fabric as a [`Stamp`], not a bare cycle
//! count: every timed service advances the stamp by charging its cycles
//! to a named [`Component`](dve_sim::latency::Component), so the
//! [`LatencyBreakdown`](dve_sim::latency::LatencyBreakdown) an access
//! returns always sums to its end-to-end latency (conservation by
//! construction — the invariant the conformance harness checks on every
//! operation).

use crate::types::LineAddr;
use dve_noc::traffic::MessageClass;
use dve_sim::latency::{Component, Stamp};

/// Platform timing services used by the protocol engine. Stamps carry
/// absolute core cycles plus the per-component attribution.
pub trait Fabric {
    /// Private L1 access latency (Table II: 1 cycle).
    fn l1_latency(&self) -> u64 {
        1
    }

    /// Shared LLC (+ embedded local directory) access latency
    /// (Table II: 20 cycles).
    fn llc_latency(&self) -> u64 {
        20
    }

    /// Global (home/replica) directory access latency (Table II: 20
    /// cycles).
    fn dir_latency(&self) -> u64 {
        20
    }

    /// Mesh traversal between the LLC slice and the directory tile
    /// (non-core-specific hops). The timed fabric colocates the two
    /// agents on the directory tile, so it returns the real (zero-hop)
    /// route; [`TestFabric`] keeps a flat charge for unit tests.
    fn mesh_latency(&self) -> u64;

    /// Mesh traversal from a specific core's tile to its socket's
    /// LLC/directory tile. Defaults to [`Fabric::mesh_latency`]; the
    /// timed fabric routes through the real 2×4 mesh (Table II).
    fn mesh_latency_core(&self, core: usize) -> u64 {
        let _ = core;
        self.mesh_latency()
    }

    /// Sends a message from socket `from` to socket `to` at `t`;
    /// returns the arrival stamp (link cycles charged to
    /// `Component::Link`) and records inter-socket traffic.
    fn link_send(&mut self, from: usize, to: usize, t: Stamp, class: MessageClass) -> Stamp;

    /// Arrival stamp a message would observe, without sending it
    /// (used to cost speculative paths without double-counting traffic).
    fn link_probe(&self, from: usize, to: usize, t: Stamp, class: MessageClass) -> Stamp;

    /// Reads the *home copy* of `line` from `socket`'s memory; returns
    /// the completion stamp (bank queueing and service charged to
    /// `Component::BankQueue` / `Component::BankService`).
    fn mem_read(&mut self, socket: usize, line: LineAddr, t: Stamp) -> Stamp;

    /// Reads the *replica copy* of `line` held on `socket`.
    fn replica_read(&mut self, socket: usize, line: LineAddr, t: Stamp) -> Stamp;

    /// Writes the home copy (writebacks; usually off the critical path).
    fn mem_write(&mut self, socket: usize, line: LineAddr, t: Stamp) -> Stamp;

    /// Writes the replica copy on `socket`.
    fn replica_write(&mut self, socket: usize, line: LineAddr, t: Stamp) -> Stamp;
}

/// Fixed-latency fabric for unit tests: no contention, simple counters.
///
/// # Example
///
/// ```
/// use dve_coherence::fabric::{Fabric, TestFabric};
/// use dve_noc::traffic::MessageClass;
/// use dve_sim::latency::Stamp;
///
/// let mut f = TestFabric::default();
/// let arrive = f.link_send(0, 1, Stamp::start(100), MessageClass::Request);
/// assert_eq!(arrive.at(), 100 + 150);
/// assert_eq!(arrive.breakdown().link, 150);
/// assert_eq!(f.traffic.total_messages(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct TestFabric {
    /// Mesh traversal latency.
    pub mesh: u64,
    /// One-way link latency.
    pub link: u64,
    /// DRAM access latency (flat: all service, no queueing).
    pub dram: u64,
    /// Recorded inter-socket traffic.
    pub traffic: dve_noc::traffic::TrafficStats,
    /// Home-copy reads per node.
    pub mem_reads: Vec<u64>,
    /// Replica-copy reads per node.
    pub replica_reads: Vec<u64>,
    /// Home-copy writes per node.
    pub mem_writes: Vec<u64>,
    /// Replica-copy writes per node.
    pub replica_writes: Vec<u64>,
}

impl Default for TestFabric {
    fn default() -> Self {
        TestFabric::with_nodes(2)
    }
}

impl TestFabric {
    /// A fixed-latency fabric spanning `nodes` nodes (sockets plus any
    /// far-memory pool).
    pub fn with_nodes(nodes: usize) -> TestFabric {
        TestFabric {
            mesh: 2,
            link: 150, // 50 ns at 3 GHz
            dram: 100,
            traffic: dve_noc::traffic::TrafficStats::new(),
            mem_reads: vec![0; nodes],
            replica_reads: vec![0; nodes],
            mem_writes: vec![0; nodes],
            replica_writes: vec![0; nodes],
        }
    }
}

impl Fabric for TestFabric {
    fn mesh_latency(&self) -> u64 {
        self.mesh
    }

    fn link_send(&mut self, _from: usize, _to: usize, t: Stamp, class: MessageClass) -> Stamp {
        self.traffic.record(class);
        t.advance(Component::Link, self.link)
    }

    fn link_probe(&self, _from: usize, _to: usize, t: Stamp, _class: MessageClass) -> Stamp {
        t.advance(Component::Link, self.link)
    }

    fn mem_read(&mut self, socket: usize, _line: LineAddr, t: Stamp) -> Stamp {
        self.mem_reads[socket] += 1;
        t.advance(Component::BankService, self.dram)
    }

    fn replica_read(&mut self, socket: usize, _line: LineAddr, t: Stamp) -> Stamp {
        self.replica_reads[socket] += 1;
        t.advance(Component::BankService, self.dram)
    }

    fn mem_write(&mut self, socket: usize, _line: LineAddr, t: Stamp) -> Stamp {
        self.mem_writes[socket] += 1;
        t.advance(Component::BankService, self.dram)
    }

    fn replica_write(&mut self, socket: usize, _line: LineAddr, t: Stamp) -> Stamp {
        self.replica_writes[socket] += 1;
        t.advance(Component::BankService, self.dram)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_table_ii() {
        let f = TestFabric::default();
        assert_eq!(f.l1_latency(), 1);
        assert_eq!(f.llc_latency(), 20);
        assert_eq!(f.dir_latency(), 20);
        assert_eq!(f.mesh_latency(), 2);
    }

    #[test]
    fn counters_track_operations() {
        let mut f = TestFabric::default();
        let t = Stamp::start(0);
        f.mem_read(0, 1, t);
        f.replica_read(1, 1, t);
        f.mem_write(0, 1, t);
        f.replica_write(1, 1, t);
        assert_eq!(f.mem_reads, [1, 0]);
        assert_eq!(f.replica_reads, [0, 1]);
        assert_eq!(f.mem_writes, [1, 0]);
        assert_eq!(f.replica_writes, [0, 1]);
    }

    #[test]
    fn probe_does_not_record_traffic() {
        let f = TestFabric::default();
        let t = f.link_probe(0, 1, Stamp::start(5), MessageClass::DataResponse);
        assert_eq!(t.at(), 155);
        assert_eq!(f.traffic.total_messages(), 0);
    }

    #[test]
    fn charges_are_attributed() {
        let mut f = TestFabric::default();
        let t = f.mem_read(0, 1, Stamp::start(10));
        assert_eq!(t.breakdown().bank_service, 100);
        assert_eq!(t.elapsed(), 100);
        let t = f.link_send(0, 1, t, MessageClass::DataResponse);
        assert_eq!(t.breakdown().link, 150);
        assert_eq!(t.at(), 10 + 100 + 150);
    }
}
