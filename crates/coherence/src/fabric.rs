//! The timing abstraction between protocol logic and the platform model.
//!
//! The [`engine::ProtocolEngine`](crate::engine::ProtocolEngine) decides
//! *what* happens (state transitions, which structures are consulted,
//! which messages cross the link); a [`Fabric`] decides *how long* each
//! of those actions takes and accounts for contention. The `dve` crate
//! implements `Fabric` over the real DRAM controllers, mesh and
//! inter-socket link; [`TestFabric`] here provides fixed latencies for
//! protocol unit tests.

use crate::types::LineAddr;
use dve_noc::traffic::MessageClass;

/// Platform timing services used by the protocol engine. All times are
/// absolute core cycles.
pub trait Fabric {
    /// Private L1 access latency (Table II: 1 cycle).
    fn l1_latency(&self) -> u64 {
        1
    }

    /// Shared LLC (+ embedded local directory) access latency
    /// (Table II: 20 cycles).
    fn llc_latency(&self) -> u64 {
        20
    }

    /// Global (home/replica) directory access latency (Table II: 20
    /// cycles).
    fn dir_latency(&self) -> u64 {
        20
    }

    /// Mean intra-socket mesh traversal (LLC ↔ directory and other
    /// non-core-specific hops).
    fn mesh_latency(&self) -> u64;

    /// Mesh traversal from a specific core's tile to its socket's
    /// LLC/directory tile. Defaults to the mean; the timed fabric routes
    /// through the real 2×4 mesh (Table II).
    fn mesh_latency_core(&self, core: usize) -> u64 {
        let _ = core;
        self.mesh_latency()
    }

    /// Sends a message from socket `from` to socket `to` at `now`;
    /// returns its arrival time and records inter-socket traffic.
    fn link_send(&mut self, from: usize, to: usize, now: u64, class: MessageClass) -> u64;

    /// Arrival time a message would observe, without sending it
    /// (used to cost speculative paths without double-counting traffic).
    fn link_probe(&self, from: usize, to: usize, now: u64, class: MessageClass) -> u64;

    /// Reads the *home copy* of `line` from `socket`'s memory; returns
    /// completion time (includes bank contention).
    fn mem_read(&mut self, socket: usize, line: LineAddr, now: u64) -> u64;

    /// Reads the *replica copy* of `line` held on `socket`.
    fn replica_read(&mut self, socket: usize, line: LineAddr, now: u64) -> u64;

    /// Writes the home copy (writebacks; usually off the critical path).
    fn mem_write(&mut self, socket: usize, line: LineAddr, now: u64) -> u64;

    /// Writes the replica copy on `socket`.
    fn replica_write(&mut self, socket: usize, line: LineAddr, now: u64) -> u64;
}

/// Fixed-latency fabric for unit tests: no contention, simple counters.
///
/// # Example
///
/// ```
/// use dve_coherence::fabric::{Fabric, TestFabric};
/// use dve_noc::traffic::MessageClass;
///
/// let mut f = TestFabric::default();
/// let arrive = f.link_send(0, 1, 100, MessageClass::Request);
/// assert_eq!(arrive, 100 + 150);
/// assert_eq!(f.traffic.total_messages(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct TestFabric {
    /// Mesh traversal latency.
    pub mesh: u64,
    /// One-way link latency.
    pub link: u64,
    /// DRAM access latency (flat).
    pub dram: u64,
    /// Recorded inter-socket traffic.
    pub traffic: dve_noc::traffic::TrafficStats,
    /// Home-copy reads per socket.
    pub mem_reads: [u64; 2],
    /// Replica-copy reads per socket.
    pub replica_reads: [u64; 2],
    /// Home-copy writes per socket.
    pub mem_writes: [u64; 2],
    /// Replica-copy writes per socket.
    pub replica_writes: [u64; 2],
}

impl Default for TestFabric {
    fn default() -> Self {
        TestFabric {
            mesh: 2,
            link: 150, // 50 ns at 3 GHz
            dram: 100,
            traffic: dve_noc::traffic::TrafficStats::new(),
            mem_reads: [0; 2],
            replica_reads: [0; 2],
            mem_writes: [0; 2],
            replica_writes: [0; 2],
        }
    }
}

impl Fabric for TestFabric {
    fn mesh_latency(&self) -> u64 {
        self.mesh
    }

    fn link_send(&mut self, _from: usize, _to: usize, now: u64, class: MessageClass) -> u64 {
        self.traffic.record(class);
        now + self.link
    }

    fn link_probe(&self, _from: usize, _to: usize, now: u64, _class: MessageClass) -> u64 {
        now + self.link
    }

    fn mem_read(&mut self, socket: usize, _line: LineAddr, now: u64) -> u64 {
        self.mem_reads[socket] += 1;
        now + self.dram
    }

    fn replica_read(&mut self, socket: usize, _line: LineAddr, now: u64) -> u64 {
        self.replica_reads[socket] += 1;
        now + self.dram
    }

    fn mem_write(&mut self, socket: usize, _line: LineAddr, now: u64) -> u64 {
        self.mem_writes[socket] += 1;
        now + self.dram
    }

    fn replica_write(&mut self, socket: usize, _line: LineAddr, now: u64) -> u64 {
        self.replica_writes[socket] += 1;
        now + self.dram
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_table_ii() {
        let f = TestFabric::default();
        assert_eq!(f.l1_latency(), 1);
        assert_eq!(f.llc_latency(), 20);
        assert_eq!(f.dir_latency(), 20);
        assert_eq!(f.mesh_latency(), 2);
    }

    #[test]
    fn counters_track_operations() {
        let mut f = TestFabric::default();
        f.mem_read(0, 1, 0);
        f.replica_read(1, 1, 0);
        f.mem_write(0, 1, 0);
        f.replica_write(1, 1, 0);
        assert_eq!(f.mem_reads, [1, 0]);
        assert_eq!(f.replica_reads, [0, 1]);
        assert_eq!(f.mem_writes, [1, 0]);
        assert_eq!(f.replica_writes, [0, 1]);
    }

    #[test]
    fn probe_does_not_record_traffic() {
        let f = TestFabric::default();
        let t = f.link_probe(0, 1, 5, MessageClass::DataResponse);
        assert_eq!(t, 155);
        assert_eq!(f.traffic.total_messages(), 0);
    }
}
