//! Set-associative cache arrays with true-LRU replacement.
//!
//! Used for the per-core private L1s (64 KB, 8-way in Table II) and the
//! per-socket shared LLC (8 MB, 16-way). Each line carries a coherence
//! state and, for the LLC, a bitmask of on-socket L1 sharers (the "local
//! directory embedded in L2" of Table II).

use crate::types::{CacheState, LineAddr};

/// One resident cache line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Line {
    /// The line address (full address, not just the tag — simpler and
    /// exact at simulation scale).
    pub addr: LineAddr,
    /// Coherence state.
    pub state: CacheState,
    /// LRU timestamp (higher = more recent).
    lru: u64,
    /// On-socket L1 sharer bitmask (meaningful for LLC lines only).
    pub sharers: u16,
}

/// What fell out of the cache on an insertion.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Eviction {
    /// The evicted line address.
    pub addr: LineAddr,
    /// Its state at eviction (dirty states need a writeback).
    pub state: CacheState,
    /// Its L1 sharer mask (the LLC must back-invalidate these).
    pub sharers: u16,
}

/// A set-associative, true-LRU cache keyed by line address.
///
/// # Example
///
/// ```
/// use dve_coherence::cache::SetAssocCache;
/// use dve_coherence::types::CacheState;
///
/// let mut l1 = SetAssocCache::new(64 * 1024, 8, 64); // Table II L1
/// assert_eq!(l1.sets(), 128);
/// l1.insert(0x40, CacheState::S);
/// assert_eq!(l1.state_of(0x40), Some(CacheState::S));
/// ```
#[derive(Debug, Clone)]
pub struct SetAssocCache {
    sets: Vec<Vec<Line>>,
    ways: usize,
    set_mask: u64,
    tick: u64,
    hits: u64,
    misses: u64,
}

impl SetAssocCache {
    /// Creates a cache of `capacity_bytes` with `ways` associativity and
    /// `line_bytes` lines.
    ///
    /// # Panics
    ///
    /// Panics unless the geometry yields a power-of-two number of sets.
    pub fn new(capacity_bytes: usize, ways: usize, line_bytes: usize) -> SetAssocCache {
        assert!(ways > 0 && line_bytes > 0, "invalid geometry");
        let lines = capacity_bytes / line_bytes;
        assert!(lines.is_multiple_of(ways), "capacity not divisible by ways");
        let num_sets = lines / ways;
        assert!(
            num_sets.is_power_of_two(),
            "set count must be a power of two"
        );
        SetAssocCache {
            sets: vec![Vec::with_capacity(ways); num_sets],
            ways,
            set_mask: (num_sets - 1) as u64,
            tick: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// Number of sets.
    pub fn sets(&self) -> usize {
        self.sets.len()
    }

    /// Associativity.
    pub fn ways(&self) -> usize {
        self.ways
    }

    fn set_of(&self, addr: LineAddr) -> usize {
        (addr & self.set_mask) as usize
    }

    /// Looks up `addr`, updating LRU and hit/miss counters. Returns the
    /// state if present.
    pub fn lookup(&mut self, addr: LineAddr) -> Option<CacheState> {
        self.tick += 1;
        let tick = self.tick;
        let set = self.set_of(addr);
        if let Some(line) = self.sets[set].iter_mut().find(|l| l.addr == addr) {
            line.lru = tick;
            self.hits += 1;
            Some(line.state)
        } else {
            self.misses += 1;
            None
        }
    }

    /// Returns the state of `addr` without touching LRU or counters.
    pub fn state_of(&self, addr: LineAddr) -> Option<CacheState> {
        let set = self.set_of(addr);
        self.sets[set]
            .iter()
            .find(|l| l.addr == addr)
            .map(|l| l.state)
    }

    /// Returns the L1-sharer mask of `addr` (LLC use), if resident.
    pub fn sharers_of(&self, addr: LineAddr) -> Option<u16> {
        let set = self.set_of(addr);
        self.sets[set]
            .iter()
            .find(|l| l.addr == addr)
            .map(|l| l.sharers)
    }

    /// Inserts (or updates) `addr` with `state`, evicting the LRU line of
    /// a full set. Returns the eviction, if any.
    pub fn insert(&mut self, addr: LineAddr, state: CacheState) -> Option<Eviction> {
        self.tick += 1;
        let tick = self.tick;
        let set = self.set_of(addr);
        let lines = &mut self.sets[set];
        if let Some(line) = lines.iter_mut().find(|l| l.addr == addr) {
            line.state = state;
            line.lru = tick;
            return None;
        }
        let mut evicted = None;
        if lines.len() == self.ways {
            let victim_idx = lines
                .iter()
                .enumerate()
                .min_by_key(|(_, l)| l.lru)
                .map(|(i, _)| i)
                .expect("full set has a victim");
            let v = lines.swap_remove(victim_idx);
            evicted = Some(Eviction {
                addr: v.addr,
                state: v.state,
                sharers: v.sharers,
            });
        }
        lines.push(Line {
            addr,
            state,
            lru: tick,
            sharers: 0,
        });
        evicted
    }

    /// Changes the state of a resident line. Returns `false` if absent.
    pub fn set_state(&mut self, addr: LineAddr, state: CacheState) -> bool {
        let set = self.set_of(addr);
        if let Some(line) = self.sets[set].iter_mut().find(|l| l.addr == addr) {
            line.state = state;
            true
        } else {
            false
        }
    }

    /// Updates the L1-sharer mask of a resident line (LLC use).
    pub fn set_sharers(&mut self, addr: LineAddr, sharers: u16) -> bool {
        let set = self.set_of(addr);
        if let Some(line) = self.sets[set].iter_mut().find(|l| l.addr == addr) {
            line.sharers = sharers;
            true
        } else {
            false
        }
    }

    /// Removes `addr`, returning its final state.
    pub fn invalidate(&mut self, addr: LineAddr) -> Option<CacheState> {
        let set = self.set_of(addr);
        let lines = &mut self.sets[set];
        lines
            .iter()
            .position(|l| l.addr == addr)
            .map(|i| lines.swap_remove(i).state)
    }

    /// Hit count since construction.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Miss count since construction.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Hit rate in [0, 1]; 0 when no accesses.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> SetAssocCache {
        // 2 sets × 2 ways × 64 B = 256 B.
        SetAssocCache::new(256, 2, 64)
    }

    #[test]
    fn geometry() {
        let l1 = SetAssocCache::new(64 * 1024, 8, 64);
        assert_eq!(l1.sets(), 128);
        assert_eq!(l1.ways(), 8);
        let llc = SetAssocCache::new(8 * 1024 * 1024, 16, 64);
        assert_eq!(llc.sets(), 8192);
    }

    #[test]
    fn hit_after_insert() {
        let mut c = tiny();
        assert_eq!(c.lookup(4), None);
        c.insert(4, CacheState::S);
        assert_eq!(c.lookup(4), Some(CacheState::S));
        assert_eq!(c.hits(), 1);
        assert_eq!(c.misses(), 1);
        assert!((c.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = tiny();
        // Addresses 0, 2, 4 all map to set 0 (even line addresses).
        c.insert(0, CacheState::S);
        c.insert(2, CacheState::S);
        c.lookup(0); // 0 now MRU; 2 is LRU
        let ev = c.insert(4, CacheState::S).expect("eviction");
        assert_eq!(ev.addr, 2);
        assert_eq!(c.state_of(0), Some(CacheState::S));
        assert_eq!(c.state_of(2), None);
    }

    #[test]
    fn insert_existing_updates_in_place() {
        let mut c = tiny();
        c.insert(0, CacheState::S);
        assert!(c.insert(0, CacheState::M).is_none());
        assert_eq!(c.state_of(0), Some(CacheState::M));
    }

    #[test]
    fn eviction_carries_state_and_sharers() {
        let mut c = tiny();
        c.insert(0, CacheState::M);
        c.set_sharers(0, 0b101);
        c.insert(2, CacheState::S);
        let ev = c.insert(4, CacheState::S).unwrap();
        assert_eq!(ev.addr, 0);
        assert_eq!(ev.state, CacheState::M);
        assert_eq!(ev.sharers, 0b101);
    }

    #[test]
    fn invalidate_removes() {
        let mut c = tiny();
        c.insert(8, CacheState::O);
        assert_eq!(c.invalidate(8), Some(CacheState::O));
        assert_eq!(c.invalidate(8), None);
        assert_eq!(c.state_of(8), None);
    }

    #[test]
    fn set_state_and_sharers_require_residency() {
        let mut c = tiny();
        assert!(!c.set_state(0, CacheState::M));
        assert!(!c.set_sharers(0, 1));
        c.insert(0, CacheState::S);
        assert!(c.set_state(0, CacheState::M));
        assert!(c.set_sharers(0, 0b11));
        assert_eq!(c.sharers_of(0), Some(0b11));
    }

    #[test]
    fn different_sets_do_not_interfere() {
        let mut c = tiny();
        c.insert(0, CacheState::S); // set 0
        c.insert(1, CacheState::S); // set 1
        c.insert(2, CacheState::S); // set 0
        c.insert(3, CacheState::S); // set 1
                                    // All four fit: 2 per set.
        for a in 0..4 {
            assert!(c.state_of(a).is_some(), "addr {a}");
        }
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_sets_rejected() {
        SetAssocCache::new(192, 1, 64);
    }
}
