//! Dvé's replica directory — both protocol families of §V-C.
//!
//! Each socket's directory controller is augmented with metadata about
//! the *replica* locations mapped to that socket. Two families govern how
//! read permission for the replica is obtained:
//!
//! * **Allow-based** — permissions are *pulled lazily*: an entry in
//!   [`ReplicaState::S`] explicitly allows reading the replica; *absence
//!   of an entry means "no"* (one of the home-LLCs may hold the line
//!   modified). Suited to workloads with significant private writes.
//! * **Deny-based** — permissions are *pushed eagerly*: the home
//!   directory installs a [`ReplicaState::Rm`] (remote-modified) entry
//!   whenever a home-side LLC takes the line writable; *absence of an
//!   entry means "yes"*. Suited to read-mostly workloads.
//!
//! The structure is finite (a fully-associative 2K-entry table in the
//! paper's default, 4K in the Fig. 9 optimization, unbounded for the
//! oracle) with true-LRU replacement, and optionally tracks coarse
//! regions instead of single lines (§V-C5, "coarse-grained replica
//! directory").

use crate::types::LineAddr;
use std::collections::{BTreeMap, HashMap};

/// Which protocol family this replica directory implements.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ReplicaPolicy {
    /// Lazily pulled allow permissions; absence = not readable.
    Allow,
    /// Eagerly pushed deny permissions; absence = readable.
    Deny,
}

/// State of a replica-directory entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ReplicaState {
    /// Replica readable: the home directory granted read permission
    /// (allow protocol) — the replica directory is a "sharer" at home.
    S,
    /// A replica-side LLC holds the line writable; the replica directory
    /// owns it from the home's perspective.
    M,
    /// Remote (home-side) LLC holds the line writable — replica stale
    /// (deny protocol only).
    Rm,
}

/// An entry evicted to make room, which the protocol engine must handle
/// (an `Rm` eviction requires downgrading the remote writer first; an `M`
/// eviction requires writing back the local owner).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReplicaEviction {
    /// Region key (line address of the region base).
    pub region: LineAddr,
    /// State at eviction.
    pub state: ReplicaState,
}

/// Accumulated replica-directory statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReplicaDirStats {
    /// Lookups that found a usable entry.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Entries installed.
    pub installs: u64,
    /// Entries evicted by capacity pressure.
    pub evictions: u64,
}

/// The replica directory for one socket.
///
/// # Example
///
/// ```
/// use dve_coherence::replica_dir::{ReplicaDirectory, ReplicaPolicy, ReplicaState};
///
/// let mut rd = ReplicaDirectory::new(ReplicaPolicy::Allow, Some(2048), 1);
/// assert_eq!(rd.lookup(0x40), None); // allow: absence = not readable
/// rd.install(0x40, ReplicaState::S);
/// assert_eq!(rd.lookup(0x40), Some(ReplicaState::S));
/// ```
#[derive(Debug, Clone)]
pub struct ReplicaDirectory {
    policy: ReplicaPolicy,
    /// Max entries; `None` = unbounded (the Fig. 9 oracle).
    capacity: Option<usize>,
    /// Lines per tracked region (1 = cache-line granularity).
    region_lines: u64,
    entries: HashMap<LineAddr, (ReplicaState, u64)>,
    lru_index: BTreeMap<u64, LineAddr>,
    tick: u64,
    stats: ReplicaDirStats,
}

impl ReplicaDirectory {
    /// Creates a replica directory.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == Some(0)` or `region_lines == 0`.
    pub fn new(
        policy: ReplicaPolicy,
        capacity: Option<usize>,
        region_lines: u64,
    ) -> ReplicaDirectory {
        assert!(capacity != Some(0), "capacity must be non-zero");
        assert!(region_lines > 0, "region granularity must be non-zero");
        ReplicaDirectory {
            policy,
            capacity,
            region_lines,
            entries: HashMap::new(),
            lru_index: BTreeMap::new(),
            tick: 0,
            stats: ReplicaDirStats::default(),
        }
    }

    /// The paper's default configuration: fully-associative 2K entries,
    /// line granularity.
    pub fn default_config(policy: ReplicaPolicy) -> ReplicaDirectory {
        ReplicaDirectory::new(policy, Some(2048), 1)
    }

    /// The protocol family.
    pub fn policy(&self) -> ReplicaPolicy {
        self.policy
    }

    /// Region key of a line.
    pub fn region_of(&self, line: LineAddr) -> LineAddr {
        line - line % self.region_lines
    }

    /// Lines per region.
    pub fn region_lines(&self) -> u64 {
        self.region_lines
    }

    fn touch(&mut self, region: LineAddr) {
        if let Some((_, old)) = self.entries.get(&region).copied() {
            self.lru_index.remove(&old);
            self.tick += 1;
            let t = self.tick;
            self.lru_index.insert(t, region);
            if let Some(e) = self.entries.get_mut(&region) {
                e.1 = t;
            }
        }
    }

    /// Looks up the entry covering `line`, updating LRU and hit/miss
    /// statistics.
    pub fn lookup(&mut self, line: LineAddr) -> Option<ReplicaState> {
        let region = self.region_of(line);
        let state = self.entries.get(&region).map(|(s, _)| *s);
        if state.is_some() {
            self.stats.hits += 1;
            self.touch(region);
        } else {
            self.stats.misses += 1;
        }
        state
    }

    /// Peeks without touching LRU or statistics.
    pub fn peek(&self, line: LineAddr) -> Option<ReplicaState> {
        self.entries.get(&self.region_of(line)).map(|(s, _)| *s)
    }

    /// Whether a read of `line` may be served from the local replica
    /// right now, per this directory's policy.
    pub fn replica_readable(&self, line: LineAddr) -> bool {
        match (self.policy, self.peek(line)) {
            (ReplicaPolicy::Allow, Some(ReplicaState::S)) => true,
            (ReplicaPolicy::Allow, _) => false,
            (ReplicaPolicy::Deny, Some(ReplicaState::Rm)) => false,
            // Deny: S/M entries or absence → replica (or local LLC) fine.
            (ReplicaPolicy::Deny, _) => true,
        }
    }

    /// Installs (or updates) the entry covering `line`. Returns an entry
    /// evicted by capacity pressure, which the caller must resolve.
    pub fn install(&mut self, line: LineAddr, state: ReplicaState) -> Option<ReplicaEviction> {
        let region = self.region_of(line);
        if self.entries.contains_key(&region) {
            self.touch(region);
            if let Some(e) = self.entries.get_mut(&region) {
                e.0 = state;
            }
            return None;
        }
        let mut evicted = None;
        if let Some(cap) = self.capacity {
            if self.entries.len() >= cap {
                // Evict LRU, but prefer a victim whose eviction is free:
                // S entries (allow: absence is conservative) and M
                // entries (the home directory independently tracks the
                // owner) can be dropped silently, while evicting an RM
                // entry forces a downgrade of the remote writer. Scan a
                // bounded window of the LRU order for a cheap victim
                // before falling back to the true LRU.
                const VICTIM_SCAN: usize = 32;
                let victim_tick = self
                    .lru_index
                    .iter()
                    .take(VICTIM_SCAN)
                    .find(|(_, region)| {
                        !matches!(self.entries.get(region), Some((ReplicaState::Rm, _)))
                    })
                    .map(|(&t, _)| t)
                    .unwrap_or_else(|| {
                        *self.lru_index.keys().next().expect("non-empty at capacity")
                    });
                let victim = self.lru_index.remove(&victim_tick).expect("indexed tick");
                let (vstate, _) = self.entries.remove(&victim).expect("indexed entry");
                self.stats.evictions += 1;
                evicted = Some(ReplicaEviction {
                    region: victim,
                    state: vstate,
                });
            }
        }
        self.tick += 1;
        self.entries.insert(region, (state, self.tick));
        self.lru_index.insert(self.tick, region);
        self.stats.installs += 1;
        evicted
    }

    /// Removes the entry covering `line`, returning its state.
    pub fn remove(&mut self, line: LineAddr) -> Option<ReplicaState> {
        let region = self.region_of(line);
        if let Some((state, tick)) = self.entries.remove(&region) {
            self.lru_index.remove(&tick);
            Some(state)
        } else {
            None
        }
    }

    /// Clears every entry — the *drain phase* used when the sampling
    /// dynamic scheme switches protocol state machines (§V-C5).
    pub fn drain(&mut self) -> usize {
        let n = self.entries.len();
        self.entries.clear();
        self.lru_index.clear();
        n
    }

    /// Live entry count.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the directory is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Statistics snapshot.
    pub fn stats(&self) -> ReplicaDirStats {
        self.stats
    }

    /// Hit rate of lookups in [0, 1].
    pub fn hit_rate(&self) -> f64 {
        let t = self.stats.hits + self.stats.misses;
        if t == 0 {
            0.0
        } else {
            self.stats.hits as f64 / t as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allow_absence_means_no() {
        let rd = ReplicaDirectory::default_config(ReplicaPolicy::Allow);
        assert!(!rd.replica_readable(0x40));
    }

    #[test]
    fn deny_absence_means_yes() {
        let rd = ReplicaDirectory::default_config(ReplicaPolicy::Deny);
        assert!(rd.replica_readable(0x40));
    }

    #[test]
    fn allow_s_entry_grants_access() {
        let mut rd = ReplicaDirectory::default_config(ReplicaPolicy::Allow);
        rd.install(0x40, ReplicaState::S);
        assert!(rd.replica_readable(0x40));
        assert!(!rd.replica_readable(0x80));
    }

    #[test]
    fn deny_rm_entry_blocks_access() {
        let mut rd = ReplicaDirectory::default_config(ReplicaPolicy::Deny);
        rd.install(0x40, ReplicaState::Rm);
        assert!(!rd.replica_readable(0x40));
        rd.remove(0x40);
        assert!(rd.replica_readable(0x40));
    }

    #[test]
    fn capacity_evicts_lru() {
        let mut rd = ReplicaDirectory::new(ReplicaPolicy::Allow, Some(2), 1);
        rd.install(1, ReplicaState::S);
        rd.install(2, ReplicaState::S);
        rd.lookup(1); // 2 becomes LRU
        let ev = rd
            .install(3, ReplicaState::S)
            .expect("eviction at capacity");
        assert_eq!(ev.region, 2);
        assert_eq!(rd.len(), 2);
        assert_eq!(rd.stats().evictions, 1);
        assert!(rd.replica_readable(1));
        assert!(!rd.replica_readable(2));
    }

    #[test]
    fn eviction_prefers_cheap_victims_over_rm() {
        let mut rd = ReplicaDirectory::new(ReplicaPolicy::Deny, Some(3), 1);
        rd.install(1, ReplicaState::Rm);
        rd.install(2, ReplicaState::M); // cheap victim, older than 3
        rd.install(3, ReplicaState::Rm);
        let ev = rd.install(4, ReplicaState::Rm).expect("at capacity");
        assert_eq!(ev.region, 2, "the M entry evicts before any RM entry");
        assert_eq!(ev.state, ReplicaState::M);
        // Now every entry is RM: fall back to true LRU.
        let ev = rd.install(5, ReplicaState::Rm).expect("at capacity");
        assert_eq!(ev.region, 1);
        assert_eq!(ev.state, ReplicaState::Rm);
    }

    #[test]
    fn victim_scan_window_is_bounded() {
        // The cheap-victim scan looks at most 32 positions deep in LRU
        // order. With 64 entries where the only non-Rm entry is the
        // *newest*, it sits outside the window and the true LRU (an Rm
        // entry) must be evicted instead — the scan must not degenerate
        // into a full-table search for a free victim.
        let mut rd = ReplicaDirectory::new(ReplicaPolicy::Deny, Some(64), 1);
        for i in 0..63 {
            rd.install(i, ReplicaState::Rm);
        }
        rd.install(63, ReplicaState::M); // cheap, but 64th in LRU order
        let ev = rd.install(64, ReplicaState::Rm).expect("at capacity");
        assert_eq!(ev.region, 0, "true LRU evicted, not the out-of-window M");
        assert_eq!(ev.state, ReplicaState::Rm);
        assert_eq!(rd.peek(63), Some(ReplicaState::M), "M entry survives");
        // Bring the M entry inside the window by aging everything else:
        // after evictions shrink the Rm population ahead of it, a later
        // install finds it.
        let mut rd = ReplicaDirectory::new(ReplicaPolicy::Deny, Some(33), 1);
        rd.install(0, ReplicaState::M);
        for i in 1..33 {
            rd.install(i, ReplicaState::Rm);
        }
        let ev = rd.install(33, ReplicaState::Rm).expect("at capacity");
        assert_eq!(ev.region, 0, "oldest entry is cheap and in-window");
        assert_eq!(ev.state, ReplicaState::M);
    }

    /// Asserts the two internal indices agree: every entry's LRU tick
    /// maps back to it, and the index holds nothing else.
    fn assert_index_consistent(rd: &ReplicaDirectory) {
        assert_eq!(rd.entries.len(), rd.lru_index.len(), "index size drift");
        for (&region, &(_, tick)) in &rd.entries {
            assert_eq!(
                rd.lru_index.get(&tick),
                Some(&region),
                "entry {region} tick {tick} not indexed"
            );
        }
    }

    #[test]
    fn lru_index_stays_consistent_under_churn() {
        // install/lookup/remove/evict churn across a small capacity,
        // checking after every operation that `entries` and `lru_index`
        // never drift (a dangling tick would make a later eviction
        // panic or pick a phantom victim).
        let mut rd = ReplicaDirectory::new(ReplicaPolicy::Deny, Some(8), 1);
        let mut rng = dve_sim::rng::SplitMix64::new(0xD0E5_2021);
        for _ in 0..4_000 {
            let line = rng.next_below(24);
            match rng.next_below(4) {
                0 => {
                    let state = match rng.next_below(3) {
                        0 => ReplicaState::S,
                        1 => ReplicaState::M,
                        _ => ReplicaState::Rm,
                    };
                    rd.install(line, state);
                }
                1 => {
                    rd.lookup(line);
                }
                2 => {
                    rd.remove(line);
                }
                _ => {
                    rd.peek(line);
                }
            }
            assert!(rd.len() <= 8, "capacity respected");
            assert_index_consistent(&rd);
        }
        assert!(rd.stats().evictions > 0, "churn exercised evictions");
        rd.drain();
        assert_index_consistent(&rd);
    }

    #[test]
    fn unbounded_never_evicts() {
        let mut rd = ReplicaDirectory::new(ReplicaPolicy::Allow, None, 1);
        for i in 0..10_000 {
            assert!(rd.install(i, ReplicaState::S).is_none());
        }
        assert_eq!(rd.len(), 10_000);
        assert_eq!(rd.stats().evictions, 0);
    }

    #[test]
    fn coarse_regions_cover_multiple_lines() {
        let mut rd = ReplicaDirectory::new(ReplicaPolicy::Allow, Some(16), 16);
        rd.install(0, ReplicaState::S);
        for line in 0..16 {
            assert!(rd.replica_readable(line), "line {line}");
        }
        assert!(!rd.replica_readable(16));
        assert_eq!(rd.len(), 1, "one region entry");
        // Removing by any covered line removes the region.
        assert_eq!(rd.remove(7), Some(ReplicaState::S));
        assert!(!rd.replica_readable(0));
    }

    #[test]
    fn lookup_updates_stats() {
        let mut rd = ReplicaDirectory::default_config(ReplicaPolicy::Allow);
        rd.install(0, ReplicaState::S);
        rd.lookup(0);
        rd.lookup(64);
        let s = rd.stats();
        assert_eq!(s.hits, 1);
        assert_eq!(s.misses, 1);
        assert_eq!(s.installs, 1);
        assert!((rd.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn drain_clears_everything() {
        let mut rd = ReplicaDirectory::default_config(ReplicaPolicy::Deny);
        rd.install(0, ReplicaState::Rm);
        rd.install(64, ReplicaState::S);
        assert_eq!(rd.drain(), 2);
        assert!(rd.is_empty());
        assert!(rd.replica_readable(0), "deny after drain: absence = yes");
    }

    #[test]
    fn install_existing_updates_state_without_eviction() {
        let mut rd = ReplicaDirectory::new(ReplicaPolicy::Deny, Some(1), 1);
        rd.install(0, ReplicaState::S);
        assert!(rd.install(0, ReplicaState::Rm).is_none());
        assert_eq!(rd.peek(0), Some(ReplicaState::Rm));
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_capacity_rejected() {
        ReplicaDirectory::new(ReplicaPolicy::Allow, Some(0), 1);
    }
}
