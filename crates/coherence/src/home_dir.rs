//! The global home directory.
//!
//! Table II: a full directory with a *coarse-grain (sockets) sharing
//! vector*, logically centralized but physically distributed — each
//! socket's directory controller owns the lines whose home memory sits on
//! that socket. The directory also performs the request classification
//! the paper uses in Fig. 7 to explain which protocol wins per workload.

use crate::types::{CacheState, LineAddr, ReqType, RequestClass};
use std::collections::HashMap;

/// One home-directory entry: socket-granularity sharer tracking.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HomeEntry {
    /// Socket-level stable state of the line.
    pub state: CacheState,
    /// Owning socket when state is M/O.
    pub owner: Option<usize>,
    /// Bitmask of sockets holding the line.
    pub sharers: u8,
    /// Whether the replica directory is registered as a sharer (the
    /// allow-based protocol's "home directory ... adds the replica
    /// directory as one of its sharers").
    pub replica_shared: bool,
}

impl HomeEntry {
    /// The invalid (absent) entry.
    pub const INVALID: HomeEntry = HomeEntry {
        state: CacheState::I,
        owner: None,
        sharers: 0,
        replica_shared: false,
    };
}

impl Default for HomeEntry {
    fn default() -> Self {
        Self::INVALID
    }
}

/// The home directory for lines homed on one socket.
///
/// # Example
///
/// ```
/// use dve_coherence::home_dir::HomeDirectory;
/// use dve_coherence::types::{CacheState, ReqType, RequestClass};
///
/// let mut dir = HomeDirectory::new(0);
/// let class = dir.classify(ReqType::Read, CacheState::I);
/// assert_eq!(class, RequestClass::PrivateRead);
/// ```
#[derive(Debug, Clone, Default)]
pub struct HomeDirectory {
    socket: usize,
    entries: HashMap<LineAddr, HomeEntry>,
    class_counts: [u64; 4],
}

impl HomeDirectory {
    /// Creates the directory for `socket`.
    pub fn new(socket: usize) -> HomeDirectory {
        HomeDirectory {
            socket,
            entries: HashMap::new(),
            class_counts: [0; 4],
        }
    }

    /// The socket this directory serves.
    pub fn socket(&self) -> usize {
        self.socket
    }

    /// The entry for `line` (INVALID if never touched).
    pub fn entry(&self, line: LineAddr) -> HomeEntry {
        self.entries.get(&line).copied().unwrap_or_default()
    }

    /// Mutable entry, created on demand.
    pub fn entry_mut(&mut self, line: LineAddr) -> &mut HomeEntry {
        self.entries.entry(line).or_default()
    }

    /// Removes an entry (line fully evicted everywhere).
    pub fn remove(&mut self, line: LineAddr) {
        self.entries.remove(&line);
    }

    /// Classifies a request against the pre-transition state (Fig. 7) and
    /// counts it.
    pub fn classify(&mut self, req: ReqType, prior: CacheState) -> RequestClass {
        let class = match (req, prior) {
            (ReqType::Read, CacheState::I) => RequestClass::PrivateRead,
            (ReqType::Read, CacheState::S) => RequestClass::ReadOnly,
            (ReqType::Read, CacheState::M | CacheState::O) => RequestClass::ReadWrite,
            (ReqType::Write, CacheState::I) => RequestClass::PrivateReadWrite,
            (ReqType::Write, _) => RequestClass::ReadWrite,
        };
        let idx = RequestClass::ALL
            .iter()
            .position(|c| *c == class)
            .expect("class in ALL");
        self.class_counts[idx] += 1;
        class
    }

    /// Per-class request counts, in [`RequestClass::ALL`] order.
    pub fn class_counts(&self) -> [u64; 4] {
        self.class_counts
    }

    /// Fraction of requests in each class (Fig. 7's distribution).
    /// Returns zeros when no requests were classified.
    pub fn class_fractions(&self) -> [f64; 4] {
        let total: u64 = self.class_counts.iter().sum();
        if total == 0 {
            return [0.0; 4];
        }
        let mut out = [0.0; 4];
        for (o, &c) in out.iter_mut().zip(&self.class_counts) {
            *o = c as f64 / total as f64;
        }
        out
    }

    /// Iterates all live entries (used by the dynamic-protocol
    /// switch-over to re-push RM entries for modified lines).
    pub fn iter_entries(&self) -> impl Iterator<Item = (&LineAddr, &HomeEntry)> {
        self.entries.iter()
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the directory has no live entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_matches_fig7_definitions() {
        let mut d = HomeDirectory::new(0);
        assert_eq!(
            d.classify(ReqType::Read, CacheState::I),
            RequestClass::PrivateRead
        );
        assert_eq!(
            d.classify(ReqType::Read, CacheState::S),
            RequestClass::ReadOnly
        );
        assert_eq!(
            d.classify(ReqType::Read, CacheState::M),
            RequestClass::ReadWrite
        );
        assert_eq!(
            d.classify(ReqType::Read, CacheState::O),
            RequestClass::ReadWrite
        );
        assert_eq!(
            d.classify(ReqType::Write, CacheState::I),
            RequestClass::PrivateReadWrite
        );
        assert_eq!(
            d.classify(ReqType::Write, CacheState::S),
            RequestClass::ReadWrite
        );
        assert_eq!(
            d.classify(ReqType::Write, CacheState::M),
            RequestClass::ReadWrite
        );
        let counts = d.class_counts();
        assert_eq!(counts, [1, 1, 4, 1]);
        let f = d.class_fractions();
        assert!((f.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn entries_default_invalid() {
        let d = HomeDirectory::new(1);
        assert_eq!(d.entry(42), HomeEntry::INVALID);
        assert!(d.is_empty());
        assert_eq!(d.socket(), 1);
    }

    #[test]
    fn entry_mut_creates_and_mutates() {
        let mut d = HomeDirectory::new(0);
        {
            let e = d.entry_mut(7);
            e.state = CacheState::M;
            e.owner = Some(1);
            e.sharers = 0b10;
        }
        assert_eq!(d.entry(7).state, CacheState::M);
        assert_eq!(d.entry(7).owner, Some(1));
        assert_eq!(d.len(), 1);
        d.remove(7);
        assert_eq!(d.entry(7), HomeEntry::INVALID);
    }

    #[test]
    fn fractions_zero_when_empty() {
        let d = HomeDirectory::new(0);
        assert_eq!(d.class_fractions(), [0.0; 4]);
    }
}
