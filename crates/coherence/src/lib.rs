//! # dve-coherence — caches, directories, and the Coherent Replication
//! protocols
//!
//! The heart of the Dvé reproduction (§V of the paper). The crate
//! provides:
//!
//! * [`cache`] — set-associative cache arrays with LRU replacement, used
//!   for private L1s and the per-socket shared LLC.
//! * [`home_dir`] — the global home directory (coarse socket-grain
//!   sharer vector, MOSI states) including the request-class
//!   classification of Fig. 7 (private-read / read-only / read-write /
//!   private-read-write).
//! * [`replica_dir`] — Dvé's *replica directory*, in both protocol
//!   families of §V-C: **allow-based** (lazily pulled read permissions;
//!   absence of an entry means the replica may NOT be read) and
//!   **deny-based** (eagerly pushed RM entries; absence means the replica
//!   MAY be read), with finite capacity, LRU eviction and optional
//!   coarse-grain (region) tracking (§V-C5).
//! * [`engine`] — the [`engine::ProtocolEngine`]: a functional model of
//!   the full two-socket hierarchy (L1 → LLC+local directory → home or
//!   replica directory → DRAM) that executes each memory operation,
//!   maintains every coherence structure, and charges latency through the
//!   [`fabric::Fabric`] trait so the same protocol logic runs under the
//!   cycle-accounting fabric of the `dve` crate or the fixed-latency test
//!   fabric here.
//! * [`fabric`] — that timing abstraction plus [`fabric::TestFabric`].
//!
//! The engine keeps replicas strongly consistent (dirty LLC evictions are
//! written to home *and* replica memory) and serves reads from the
//! nearest replica whenever the replica directory proves it safe — the
//! two halves of Coherent Replication.
//!
//! Transient-state interleavings are exhaustively model-checked in the
//! separate `dve-verify` crate, mirroring the paper's Murphi approach.

pub mod cache;
pub mod dir_cache;
pub mod engine;
pub mod fabric;
pub mod home_dir;
pub mod replica_dir;
pub mod types;

pub use engine::{EngineStats, Mode, ProtocolEngine, ReplicationScope, SeededBug};
pub use fabric::{Fabric, TestFabric};
pub use types::{LineAddr, ReqType, RequestClass, ServiceLevel};
