//! Shared vocabulary for the coherence subsystem.

use std::fmt;

/// A cache-line address (byte address / 64). All coherence structures
/// work at line granularity.
pub type LineAddr = u64;

/// Number of sockets in the system (the paper evaluates a dual-socket
/// machine; the protocol generalizes but the replica pairing is 1:1).
pub const NUM_SOCKETS: usize = 2;

/// A memory request type as seen by the coherence protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ReqType {
    /// Load — becomes a GETS on a miss.
    Read,
    /// Store — becomes a GETX on a miss/upgrade.
    Write,
}

/// Stable coherence states (MOSI, as in the paper's hierarchical
/// MOESI/MOSI configuration — we keep O so the read/write sharing class
/// of Fig. 7 is observable).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CacheState {
    /// Modified: exclusive, dirty.
    M,
    /// Owned: shared, dirty, this holder responds.
    O,
    /// Shared: clean, read-only.
    S,
    /// Invalid.
    I,
}

impl CacheState {
    /// Whether this state permits reads.
    pub fn readable(self) -> bool {
        !matches!(self, CacheState::I)
    }

    /// Whether this state permits writes.
    pub fn writable(self) -> bool {
        matches!(self, CacheState::M)
    }

    /// Whether the holder is responsible for the dirty data.
    pub fn dirty(self) -> bool {
        matches!(self, CacheState::M | CacheState::O)
    }
}

impl fmt::Display for CacheState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CacheState::M => "M",
            CacheState::O => "O",
            CacheState::S => "S",
            CacheState::I => "I",
        };
        f.write_str(s)
    }
}

/// Where a memory operation was ultimately serviced — the latency class
/// the requester observed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ServiceLevel {
    /// Private L1 hit.
    L1,
    /// Shared LLC hit on the requester's socket.
    Llc,
    /// DRAM on the requester's socket (home memory or, under Dvé, the
    /// local replica).
    LocalDram,
    /// DRAM on the other socket.
    RemoteDram,
    /// Forwarded from the owning LLC on the requester's socket.
    LocalOwner,
    /// Forwarded from the owning LLC on the other socket.
    RemoteOwner,
}

impl ServiceLevel {
    /// Whether servicing crossed the inter-socket link.
    pub fn crossed_link(self) -> bool {
        matches!(self, ServiceLevel::RemoteDram | ServiceLevel::RemoteOwner)
    }
}

/// The paper's Fig. 7 classification of requests arriving at the home
/// directory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RequestClass {
    /// GETS to a line in I state.
    PrivateRead,
    /// GETS to a line in S state.
    ReadOnly,
    /// GETS to a line in M/O state, or GETX to a line in S state.
    ReadWrite,
    /// GETX to a line in I state.
    PrivateReadWrite,
}

impl RequestClass {
    /// All classes in Fig. 7's presentation order.
    pub const ALL: [RequestClass; 4] = [
        RequestClass::PrivateRead,
        RequestClass::ReadOnly,
        RequestClass::ReadWrite,
        RequestClass::PrivateReadWrite,
    ];
}

impl fmt::Display for RequestClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            RequestClass::PrivateRead => "private-read",
            RequestClass::ReadOnly => "read-only",
            RequestClass::ReadWrite => "read/write",
            RequestClass::PrivateReadWrite => "private-read/write",
        };
        f.write_str(s)
    }
}

/// Identifies the home socket of a line: the paper interleaves adjacent
/// pages across memory controllers round-robin (§VI), so the home is the
/// parity of the page number.
pub fn home_socket(line: LineAddr, page_lines: u64) -> usize {
    ((line / page_lines) % NUM_SOCKETS as u64) as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn state_permissions() {
        assert!(CacheState::M.readable() && CacheState::M.writable());
        assert!(CacheState::O.readable() && !CacheState::O.writable());
        assert!(CacheState::S.readable() && !CacheState::S.writable());
        assert!(!CacheState::I.readable() && !CacheState::I.writable());
        assert!(CacheState::M.dirty() && CacheState::O.dirty());
        assert!(!CacheState::S.dirty());
    }

    #[test]
    fn home_interleaves_by_page() {
        let page_lines = 64; // 4 KiB page
        assert_eq!(home_socket(0, page_lines), 0);
        assert_eq!(home_socket(63, page_lines), 0);
        assert_eq!(home_socket(64, page_lines), 1);
        assert_eq!(home_socket(128, page_lines), 0);
    }

    #[test]
    fn service_level_link_crossing() {
        assert!(ServiceLevel::RemoteDram.crossed_link());
        assert!(ServiceLevel::RemoteOwner.crossed_link());
        assert!(!ServiceLevel::LocalDram.crossed_link());
        assert!(!ServiceLevel::L1.crossed_link());
    }

    #[test]
    fn display_strings() {
        assert_eq!(CacheState::M.to_string(), "M");
        assert_eq!(
            RequestClass::PrivateReadWrite.to_string(),
            "private-read/write"
        );
    }
}
