//! End-to-end runs on non-mirror topologies: symmetric N-way and
//! two-tier (local sockets + far-memory pool).
//!
//! The mirror-pair regime is pinned bit-exactly by `goldens.rs`; these
//! tests cover what only exists beyond two nodes — placement spreading
//! homes over N sockets, faults landing on node ids ≥ 2, and the far
//! tier actually absorbing replica traffic.

use dve::chaos::{ChaosConfig, ChaosParams, FaultAction, FaultEvent, FaultSchedule, FaultSite};
use dve::config::{Scheme, SystemConfig, TopologySpec};
use dve::system::{RunResult, System};
use dve_dram::controller::EccProfile;
use dve_workloads::{catalog, WorkloadProfile};

fn backprop() -> WorkloadProfile {
    catalog()
        .into_iter()
        .find(|p| p.name == "backprop")
        .expect("backprop in catalog")
}

fn topo_config(scheme: Scheme, spec: TopologySpec, ops: u64) -> SystemConfig {
    let mut cfg = SystemConfig::table_ii(scheme);
    cfg.set_topology(spec);
    cfg.ops_per_thread = ops;
    cfg.warmup_per_thread = ops / 10;
    cfg
}

fn run(cfg: SystemConfig, seed: u64) -> RunResult {
    System::new(cfg, &backprop(), seed).run()
}

#[test]
fn nway4_run_completes_and_is_deterministic() {
    let p = backprop();
    let cfg = topo_config(Scheme::DveDeny, TopologySpec::Nway(4), 300);
    let a = System::new(cfg.clone(), &p, 42).run();
    let b = System::new(cfg, &p, 42).run();
    assert_eq!(a.mem_ops, 300 * 16);
    assert!(a.cycles > 0);
    // Replicas still serve local reads with homes spread over 4 nodes.
    assert!(a.engine.replica_reads > 0);
    assert_eq!(a.cycles, b.cycles, "same seed must reproduce bit-exactly");
    assert_eq!(a.engine, b.engine);
}

#[test]
fn nway4_spreads_memory_traffic_over_all_four_nodes() {
    let r_cfg = topo_config(Scheme::DveDeny, TopologySpec::Nway(4), 300);
    let sys = {
        let mut s = System::new(r_cfg, &backprop(), 42);
        s.warm_up();
        s.begin_region();
        s.step_ops(300);
        s.finish_region();
        s
    };
    let ctrls = sys.fabric().controllers();
    assert_eq!(ctrls.len(), 4, "one controller group per node");
    for (n, node) in ctrls.iter().enumerate() {
        let accesses: u64 = node
            .iter()
            .map(|c| c.stats().reads + c.stats().writes)
            .sum();
        assert!(accesses > 0, "node {n} saw no DRAM traffic");
    }
}

/// Regression for the mirror-era `socket.min(1)` clamp: a fault
/// scheduled on node 2 of a four-node topology must land on node 2,
/// not be folded onto node 1.
#[test]
fn fault_on_node_two_of_four_lands_and_recovers() {
    let mut cfg = topo_config(Scheme::DveDeny, TopologySpec::Nway(4), 300);
    cfg.ecc = EccProfile::tsd();
    cfg.chaos = Some(ChaosConfig {
        schedule: FaultSchedule::new(vec![FaultEvent {
            at: 0,
            socket: 2,
            channel: 0,
            action: FaultAction::Plant {
                site: FaultSite::Controller,
                transient: true,
            },
        }]),
        ..ChaosConfig::inert()
    });
    let r = run(cfg, 42);
    let led = &r.recovery;
    assert_eq!(led.faults_planted, 1, "the node-2 plant must apply");
    // Node 2 homes one quarter of all pages, so demand reads detect
    // the wipe and the §V-B2 detour repairs it from the survivor.
    assert!(led.detected_reads > 0, "no read ever saw the node-2 fault");
    assert!(led.corrected > 0, "survivor fetch never corrected");
    assert!(led.repaired > 0, "transient wipe was never repaired");
    assert_eq!(led.machine_checks, 0, "replica must cover a single fault");
    assert!(led.consistent(), "ledger partition invariants");
}

#[test]
fn two_tier_far_node_absorbs_replica_writes() {
    let mut cfg = topo_config(Scheme::DveDeny, TopologySpec::TwoTier, 300);
    // Tiny caches so LLC evictions force dirty writebacks — the §V-B1
    // dual-writeback path is what reaches the far tier.
    cfg.engine.l1_bytes = 512;
    cfg.engine.l1_ways = 1;
    cfg.engine.llc_bytes = 1024;
    cfg.engine.llc_ways = 1;
    let mut sys = System::new(cfg, &backprop(), 42);
    sys.warm_up();
    sys.begin_region();
    sys.step_ops(300);
    let r = sys.finish_region();
    assert!(r.cycles > 0);
    assert!(
        r.engine.writebacks > 0,
        "tiny caches must evict dirty lines"
    );
    // The far pool hosts no cores, so no read is ever served
    // replica-locally — the local compressed copies are recovery-only.
    assert_eq!(r.engine.replica_reads, 0);
    let ctrls = sys.fabric().controllers();
    assert_eq!(ctrls.len(), 3, "two sockets + one far-memory pool");
    // Every replica lives on the far node's channel 1; home copies
    // stay on the sockets' channel 0.
    let far_writes = ctrls[2][1].stats().writes;
    assert!(far_writes > 0, "far tier received no replica writes");
    assert_eq!(
        ctrls[2][0].stats().reads + ctrls[2][0].stats().writes,
        0,
        "the far pool's channel 0 holds no home copies"
    );
    for (s, socket) in ctrls.iter().enumerate().take(2) {
        assert_eq!(
            socket[1].stats().writes,
            0,
            "socket {s} channel 1 holds no replicas under two-tier"
        );
    }
}

/// Survivor selection under randomized chaos on a 4-node topology:
/// every detected read either reaches a live copy (corrected /
/// clean-redirect) or escalates to a machine check — the ledger
/// partition proves there is no third, silent outcome.
#[test]
fn random_chaos_on_nway4_keeps_ledger_consistent() {
    for seed in [1u64, 7, 0xDEAD] {
        let mut cfg = topo_config(Scheme::DveDeny, TopologySpec::Nway(4), 200);
        cfg.ecc = EccProfile::tsd();
        cfg.chaos = Some(ChaosConfig::random(
            seed,
            &ChaosParams {
                faults: 6,
                horizon: 60_000,
                transient_fraction: 0.5,
                heal_after: Some(30_000),
                channels_per_socket: 2,
                line_span: 1 << 14,
                nodes: 4,
            },
        ));
        let r = run(cfg, seed);
        assert_eq!(r.mem_ops, 200 * 16, "seed {seed}: run must complete");
        assert!(r.recovery.consistent(), "seed {seed}: ledger partition");
        assert_eq!(
            r.recovery.clean_redirects + r.recovery.corrected + r.recovery.machine_checks,
            r.recovery.detected_reads,
            "seed {seed}: every detection resolves to survivor or MCE"
        );
    }
}

/// Per-edge outage independence at the system level: knocking out a
/// directed edge only perturbs runs whose recovery traffic actually
/// crosses it. Over all 12 directed edges of a 4-node topology, the
/// same faulted run is re-executed with a whole-run outage on exactly
/// one edge: edges the detour uses must surface retries or failed
/// sends, edges it never crosses must leave the run bit-identical —
/// and every perturbed run still resolves each detection to a
/// survivor or a machine check.
#[test]
fn edge_outage_only_perturbs_the_edge_it_names() {
    let base_chaos = |edge: Option<(usize, usize)>| {
        let mut chaos = ChaosConfig {
            schedule: FaultSchedule::new(vec![FaultEvent {
                at: 0,
                socket: 2,
                channel: 0,
                action: FaultAction::Plant {
                    site: FaultSite::Controller,
                    transient: false,
                },
            }]),
            ..ChaosConfig::inert()
        };
        if let Some((from, to)) = edge {
            chaos.edge_outages = vec![(from, to, vec![(0, u64::MAX / 2)])];
        }
        chaos
    };
    let run_with = |edge| {
        let mut cfg = topo_config(Scheme::DveDeny, TopologySpec::Nway(4), 200);
        cfg.ecc = EccProfile::tsd();
        cfg.chaos = Some(base_chaos(edge));
        run(cfg, 42)
    };

    let baseline = run_with(None);
    assert!(baseline.recovery.detected_reads > 0, "fault must be seen");
    assert_eq!(baseline.recovery.link_failed_sends, 0);

    let mut perturbed = 0;
    let mut untouched = 0;
    for from in 0..4 {
        for to in 0..4 {
            if from == to {
                continue;
            }
            let r = run_with(Some((from, to)));
            assert!(r.recovery.consistent(), "edge ({from},{to})");
            assert_eq!(
                r.recovery.clean_redirects + r.recovery.corrected + r.recovery.machine_checks,
                r.recovery.detected_reads,
                "edge ({from},{to}): every detection resolves"
            );
            let touched = r.recovery.link_retries > 0 || r.recovery.link_failed_sends > 0;
            if touched {
                perturbed += 1;
            } else {
                untouched += 1;
                assert_eq!(
                    r.cycles, baseline.cycles,
                    "edge ({from},{to}) carries no recovery traffic, so its \
                     outage must be invisible"
                );
                assert_eq!(r.recovery, baseline.recovery, "edge ({from},{to})");
            }
        }
    }
    assert!(perturbed > 0, "some edge must carry the node-2 detours");
    assert!(untouched > 0, "some edge must be outside every detour");
}

/// A chaos schedule drawn for 4 nodes actually uses node ids ≥ 2.
#[test]
fn four_node_schedules_target_upper_nodes() {
    let p = ChaosParams {
        faults: 32,
        nodes: 4,
        ..ChaosParams::default()
    };
    let sched = FaultSchedule::random(9, &p);
    assert!(
        sched.events().iter().any(|e| e.socket >= 2),
        "32 draws over 4 nodes should hit nodes 2..4"
    );
    assert!(sched.events().iter().all(|e| e.socket < 4));
}
