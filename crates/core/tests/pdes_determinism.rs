//! Cross-thread determinism of the parallel trace supply.
//!
//! The contract under test: `SystemConfig::pdes_workers` changes *who*
//! synthesizes the operation streams, never *what* the simulation
//! computes. A randomized grid over scheme × seed × MSHR depth ×
//! worker count must produce **bit-identical** `RunResult`s against
//! the sequential reference, and every run's latency breakdown must
//! conserve (components sum to the engine's total) at every worker
//! count.

use dve::config::{Scheme, SystemConfig};
use dve::system::{RunResult, System};
use dve_sim::rng::SplitMix64;
use dve_workloads::{catalog, WorkloadProfile};

const SCHEMES: &[Scheme] = &[
    Scheme::BaselineNuma,
    Scheme::IntelMirrorPlus,
    Scheme::DveAllow,
    Scheme::DveDeny,
    Scheme::DveDynamic,
];

fn run(
    profile: &WorkloadProfile,
    scheme: Scheme,
    seed: u64,
    mshrs: usize,
    workers: usize,
) -> RunResult {
    let mut cfg = SystemConfig::table_ii(scheme);
    cfg.ops_per_thread = 400;
    cfg.warmup_per_thread = 40;
    cfg.mshrs = mshrs;
    cfg.pdes_workers = workers;
    System::new(cfg, profile, seed).run()
}

/// Every field that must match bit-for-bit across worker counts.
fn assert_identical(a: &RunResult, b: &RunResult, what: &str) {
    assert_eq!(a.cycles, b.cycles, "{what}: cycles");
    assert_eq!(a.ops, b.ops, "{what}: ops");
    assert_eq!(a.mem_ops, b.mem_ops, "{what}: mem_ops");
    assert_eq!(a.engine, b.engine, "{what}: engine stats");
    assert_eq!(a.latency, b.latency, "{what}: latency breakdown");
    assert_eq!(a.traffic, b.traffic, "{what}: traffic");
    assert_eq!(a.class_fractions, b.class_fractions, "{what}: classes");
    assert_eq!(a.dram_rows, b.dram_rows, "{what}: dram rows");
    assert_eq!(a.dram_queue, b.dram_queue, "{what}: dram queue");
    assert_eq!(
        a.max_row_activations, b.max_row_activations,
        "{what}: row activations"
    );
    assert_eq!(a.latency_tail(), b.latency_tail(), "{what}: tail");
}

#[test]
fn random_grid_parallel_matches_sequential() {
    // SplitMix64-driven random draws over the full configuration grid:
    // each draw picks a scheme, seed, MSHR depth and worker count, and
    // the parallel run must reproduce the sequential one exactly.
    let profiles = catalog();
    let mut rng = SplitMix64::new(0x9DE5_2026);
    for draw in 0..10 {
        let scheme = SCHEMES[rng.next_below(SCHEMES.len() as u64) as usize];
        let profile = &profiles[rng.next_below(profiles.len() as u64) as usize];
        let seed = rng.next_u64();
        let mshrs = [1, 4][rng.next_below(2) as usize];
        let workers = [2, 4, 8][rng.next_below(3) as usize];
        let what = format!(
            "draw {draw}: {} {scheme:?} seed={seed:#x} mshrs={mshrs} workers={workers}",
            profile.name
        );
        let sequential = run(profile, scheme, seed, mshrs, 1);
        let parallel = run(profile, scheme, seed, mshrs, workers);
        assert_identical(&sequential, &parallel, &what);
    }
}

#[test]
fn pinned_goldens_hold_at_every_worker_count() {
    // The pinned golden cycle counts (crates/core/tests/goldens.rs
    // regime: backprop, 500 ops/thread, mshrs=1) must hold verbatim
    // under the parallel supply at every worker count.
    const GOLDENS: &[(u64, Scheme, u64)] = &[
        (42, Scheme::BaselineNuma, 92_408),
        (42, Scheme::DveAllow, 77_905),
        (42, Scheme::DveDeny, 54_962),
        (0x2026_0806, Scheme::BaselineNuma, 91_014),
        (0x2026_0806, Scheme::DveAllow, 79_614),
        (0x2026_0806, Scheme::DveDeny, 54_436),
    ];
    let p = catalog()
        .into_iter()
        .find(|p| p.name == "backprop")
        .unwrap();
    for &(seed, scheme, cycles) in GOLDENS {
        for workers in [2, 8] {
            let mut cfg = SystemConfig::table_ii(scheme);
            cfg.ops_per_thread = 500;
            cfg.warmup_per_thread = 50;
            cfg.pdes_workers = workers;
            let r = System::new(cfg, &p, seed).run();
            assert_eq!(r.mem_ops, 8000, "seed={seed:#x} {scheme:?} w={workers}");
            assert_eq!(
                r.cycles, cycles,
                "seed={seed:#x} {scheme:?} workers={workers}: got {}, golden {cycles}",
                r.cycles
            );
        }
    }
}

#[test]
fn correlated_chaos_is_bit_identical_at_every_worker_count() {
    // Active correlated fault sources (hammer + thermal + aging, all
    // live) on top of a random schedule must not break the worker-count
    // invariance: the sources draw on a fixed sim-time grid and observe
    // deterministic fabric state, so the whole run — ledger included —
    // reproduces bit-for-bit at any `pdes_workers`.
    use dve::chaos::{
        AgingParams, ChaosConfig, ChaosParams, CorrelatedConfig, HammerParams, ThermalParams,
    };
    let p = catalog()
        .into_iter()
        .find(|p| p.name == "backprop")
        .unwrap();
    let run = |workers: usize| {
        let mut cfg = SystemConfig::table_ii(Scheme::DveDeny);
        cfg.ops_per_thread = 400;
        cfg.warmup_per_thread = 40;
        cfg.pdes_workers = workers;
        cfg.ecc = dve_dram::controller::EccProfile::tsd();
        let mut chaos = ChaosConfig::random(
            0xC0E7,
            &ChaosParams {
                faults: 3,
                horizon: 60_000,
                heal_after: Some(30_000),
                ..ChaosParams::default()
            },
        );
        chaos.correlated = Some(CorrelatedConfig {
            seed: 0xC0E7,
            hammer: Some(HammerParams {
                threshold: 10,
                ..HammerParams::inert()
            }),
            thermal: Some(ThermalParams {
                base_rate: 0.2,
                poll_interval: 7_000,
                ..ThermalParams::inert()
            }),
            aging: Some(AgingParams {
                base_rate: 0.05,
                ramp_per_mcycle: 2.0,
                ..AgingParams::inert()
            }),
        });
        cfg.chaos = Some(chaos);
        System::new(cfg, &p, 42).run()
    };
    let reference = run(1);
    assert!(reference.recovery.consistent(), "{:?}", reference.recovery);
    let sourced = reference.recovery.hammer_plants
        + reference.recovery.thermal_plants
        + reference.recovery.aging_plants;
    assert!(
        sourced > 0,
        "scenario must actually fire correlated sources: {:?}",
        reference.recovery
    );
    for workers in [2, 4, 8] {
        let r = run(workers);
        assert_identical(&reference, &r, &format!("correlated workers={workers}"));
        assert_eq!(reference.recovery, r.recovery, "workers={workers}: ledger");
    }
}

#[test]
fn latency_breakdown_conserves_at_all_worker_counts() {
    // Conservation by construction must survive the parallel supply:
    // the per-component totals sum to the breakdown's total, and the
    // histogram sums match the aggregate at every worker count.
    let profiles = catalog();
    let p = profiles.iter().find(|p| p.name == "canneal").unwrap();
    for workers in [1, 2, 4, 8] {
        let r = run(p, Scheme::DveAllow, 77, 4, workers);
        let b = &r.latency;
        let component_sum: u64 = dve_sim::latency::Component::ALL
            .iter()
            .map(|&c| b.get(c))
            .sum();
        assert_eq!(component_sum, b.total(), "workers={workers}: breakdown");
        for c in dve_sim::latency::Component::ALL {
            assert_eq!(
                r.latency_hist.component(c).sum(),
                u128::from(b.get(c)),
                "workers={workers}: hist sum for {c:?}"
            );
        }
    }
}
