//! Property-based tests over the assembled system.

use dve::config::{Scheme, SystemConfig};
use dve::recovery::{RecoverableMemory, RecoveryOutcome};
use dve::system::System;
use dve_dram::fault::FaultDomain;
use dve_workloads::catalog;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    // The full system is deterministic for every scheme and workload.
    #[test]
    fn end_to_end_determinism(
        seed in any::<u64>(),
        profile_idx in 0usize..20,
        scheme_idx in 0usize..5,
    ) {
        let scheme = Scheme::ALL[scheme_idx];
        let p = &catalog()[profile_idx];
        let run = |s| {
            let mut cfg = SystemConfig::table_ii(scheme);
            cfg.ops_per_thread = 400;
            cfg.warmup_per_thread = 40;
            System::new(cfg, p, s).run()
        };
        let a = run(seed);
        let b = run(seed);
        prop_assert_eq!(a.cycles, b.cycles);
        prop_assert_eq!(a.traffic.total_bytes(), b.traffic.total_bytes());
        prop_assert_eq!(a.mem_energy_joules.to_bits(), b.mem_energy_joules.to_bits());
    }

    // Conservation: every issued memory op is accounted for in the
    // engine's service-level buckets.
    #[test]
    fn service_accounting_conserves_ops(seed in any::<u64>(), scheme_idx in 0usize..5) {
        let scheme = Scheme::ALL[scheme_idx];
        let p = &catalog()[0];
        let mut cfg = SystemConfig::table_ii(scheme);
        cfg.ops_per_thread = 500;
        cfg.warmup_per_thread = 50;
        let r = System::new(cfg, p, seed).run();
        let served: u64 = r.engine.served.iter().sum();
        prop_assert_eq!(served, r.engine.ops);
        prop_assert_eq!(r.engine.reads + r.engine.writes, r.engine.ops);
    }

    // Latency conservation at system level: with no warm-up, the
    // measured-region per-component breakdown sums exactly to the
    // engine's total accumulated access latency, for any scheme, seed
    // and MSHR depth.
    #[test]
    fn latency_breakdown_conserves(
        seed in any::<u64>(),
        scheme_idx in 0usize..5,
        mshrs in 1usize..=8,
    ) {
        let scheme = Scheme::ALL[scheme_idx];
        let p = &catalog()[0];
        let mut cfg = SystemConfig::table_ii(scheme);
        cfg.ops_per_thread = 300;
        cfg.warmup_per_thread = 0;
        cfg.mshrs = mshrs;
        let r = System::new(cfg, p, seed).run();
        // Per-layer attribution must conserve.
        prop_assert_eq!(r.latency.total(), r.engine.latency_sum.iter().sum::<u64>());
        // Class fractions stay a well-formed distribution (exercises
        // the monotone class-delta guard on the way).
        let sum: f64 = r.class_fractions.iter().sum();
        prop_assert!(sum == 0.0 || (sum - 1.0).abs() < 1e-9);
    }

    // Recovery: with only the primary faulted, no read ever
    // machine-checks, regardless of the fault domain or access pattern.
    #[test]
    fn single_sided_faults_never_machine_check(
        seed in any::<u64>(),
        fault_pick in 0u8..4,
        addrs in proptest::collection::vec(0u64..(1u64 << 20), 1..50),
    ) {
        let _ = seed;
        let fault = match fault_pick {
            0 => FaultDomain::Controller,
            1 => FaultDomain::Channel { channel: 0 },
            2 => FaultDomain::Chip { channel: 0, rank: 0, chip: 3 },
            _ => FaultDomain::Row { channel: 0, rank: 0, bank: 0, row: 0 },
        };
        let mut mem = RecoverableMemory::new_dve_tsd();
        mem.primary_mut().faults_mut().fail(fault);
        let mut t = 0;
        for addr in addrs {
            let (outcome, done) = mem.read(addr & !63, t);
            prop_assert_ne!(outcome, RecoveryOutcome::MachineCheck);
            prop_assert!(done >= t);
            t = done;
        }
        prop_assert_eq!(mem.stats().machine_checks, 0);
    }

    // The recovery state machine never over-reports repairs
    // (`repaired <= corrected`, with `repaired + degraded == corrected`
    // exactly), keeps the outcome partition
    // (`clean + corrected + machine_checks == reads`), and never
    // degrades an already-degraded line twice — under arbitrary
    // interleavings of fault plants, fault repairs and reads.
    #[test]
    fn recovery_state_machine_invariants(
        ops in proptest::collection::vec((0u64..16, 0u8..4), 1..40),
    ) {
        let mut mem = RecoverableMemory::new_dve_tsd();
        let mut reads = 0u64;
        for (i, &(line, kind)) in ops.iter().enumerate() {
            let d = FaultDomain::Line { channel: 0, line };
            match kind {
                0 => { mem.primary_mut().faults_mut().fail(d); }
                1 => { mem.primary_mut().faults_mut().repair(d); }
                2 => { mem.replica_mut().faults_mut().fail(d); }
                _ => {
                    mem.read(line * 64, i as u64 * 1_000_000);
                    reads += 1;
                }
            }
            let s = mem.stats();
            prop_assert!(s.repaired <= s.corrected);
            prop_assert_eq!(s.repaired + s.degraded, s.corrected);
            prop_assert_eq!(s.clean + s.corrected + s.machine_checks, reads);
        }
        // Re-reading degraded lines redirects; it never re-degrades.
        let degraded_before = mem.stats().degraded;
        for line in 0..16u64 {
            if mem.is_degraded(line * 64) {
                mem.read(line * 64, 1_000_000_000);
            }
        }
        prop_assert_eq!(mem.stats().degraded, degraded_before);
    }

    // Full-system chaos: a randomized seed-derived fault schedule keeps
    // the recovery ledger consistent, completes all scheduled work, and
    // reproduces bit-for-bit when re-run.
    #[test]
    fn random_chaos_keeps_ledger_consistent(seed in any::<u64>(), scheme_idx in 2usize..5) {
        use dve::chaos::{ChaosConfig, ChaosParams};
        let scheme = Scheme::ALL[scheme_idx];
        let p = &catalog()[0];
        let params = ChaosParams {
            faults: 3,
            horizon: 60_000,
            heal_after: Some(30_000),
            ..ChaosParams::default()
        };
        let run = || {
            let mut cfg = SystemConfig::table_ii(scheme);
            cfg.ops_per_thread = 300;
            cfg.warmup_per_thread = 30;
            cfg.ecc = dve_dram::controller::EccProfile::tsd();
            cfg.chaos = Some(ChaosConfig::random(seed, &params));
            System::new(cfg, p, seed).run()
        };
        let r = run();
        // All scheduled work completes despite faults.
        prop_assert_eq!(r.mem_ops, 300 * 16);
        prop_assert!(r.recovery.consistent(), "{:?}", r.recovery);
        let again = run();
        prop_assert_eq!(r.cycles, again.cycles);
        prop_assert_eq!(r.recovery, again.recovery);
    }

    // Correlated sources armed *live* on top of a random schedule: the
    // recovery ledger stays consistent (per-source plant counters
    // bounded by the total), all scheduled work completes, and the run
    // reproduces bit-for-bit.
    #[test]
    fn correlated_chaos_keeps_ledger_consistent(
        seed in any::<u64>(),
        scheme_idx in 2usize..5,
        hammer_threshold in 20u64..200,
        thermal_rate in 0.0f64..0.08,
        aging_ramp in 0.0f64..0.8,
    ) {
        use dve::chaos::{
            AgingParams, ChaosConfig, ChaosParams, CorrelatedConfig, HammerParams, ThermalParams,
        };
        let scheme = Scheme::ALL[scheme_idx];
        let p = &catalog()[0];
        let run = || {
            let mut cfg = SystemConfig::table_ii(scheme);
            cfg.ops_per_thread = 300;
            cfg.warmup_per_thread = 30;
            cfg.ecc = dve_dram::controller::EccProfile::tsd();
            let mut chaos = ChaosConfig::random(seed, &ChaosParams {
                faults: 3,
                horizon: 60_000,
                heal_after: Some(30_000),
                ..ChaosParams::default()
            });
            chaos.correlated = Some(CorrelatedConfig {
                seed,
                hammer: Some(HammerParams { threshold: hammer_threshold, ..HammerParams::inert() }),
                thermal: Some(ThermalParams {
                    base_rate: thermal_rate,
                    poll_interval: 7_000,
                    ..ThermalParams::inert()
                }),
                aging: Some(AgingParams {
                    base_rate: 0.0,
                    ramp_per_mcycle: aging_ramp,
                    poll_interval: 9_000,
                    ..AgingParams::inert()
                }),
            });
            cfg.chaos = Some(chaos);
            System::new(cfg, p, seed).run()
        };
        let r = run();
        prop_assert_eq!(r.mem_ops, 300 * 16);
        prop_assert!(r.recovery.consistent(), "{:?}", r.recovery);
        prop_assert!(
            r.recovery.hammer_plants + r.recovery.thermal_plants + r.recovery.aging_plants
                <= r.recovery.faults_planted
        );
        let again = run();
        prop_assert_eq!(r.cycles, again.cycles);
        prop_assert_eq!(r.recovery, again.recovery);
    }

    // Degraded Dvé tracks baseline NUMA cycle-for-cycle (§V-E).
    #[test]
    fn degraded_equals_baseline(seed in any::<u64>(), profile_idx in 0usize..20) {
        let p = &catalog()[profile_idx];
        let run = |scheme, degraded| {
            let mut cfg = SystemConfig::table_ii(scheme);
            cfg.ops_per_thread = 400;
            cfg.warmup_per_thread = 40;
            cfg.degraded = degraded;
            System::new(cfg, p, seed).run().cycles
        };
        let base = run(Scheme::BaselineNuma, false);
        let degraded = run(Scheme::DveDeny, true);
        // Identical protocol behavior; only the DRAM population differs
        // (2 vs 1 channels/socket keeps bank counts equal per copy), so
        // cycles agree within a small tolerance.
        let ratio = base as f64 / degraded as f64;
        prop_assert!((0.97..=1.03).contains(&ratio), "ratio {ratio}");
    }
}
