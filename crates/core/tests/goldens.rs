//! Pinned-seed golden cycle counts for the timing stack.
//!
//! These pin the **blocking-core regime** (`mshrs = 1`, the Table II
//! default) after the resource-port unification: the link and bank
//! migrations onto shared [`dve_sim::resource::Resource`] ports are
//! timing-neutral by construction, and the one deliberate fidelity
//! change — colocating the LLC home slice with the directory tile so
//! the old `mesh_mean` scalar is retired in favor of real per-core
//! routes — is baked into these numbers.
//!
//! If a refactor moves any of these counts, it changed the model, not
//! just the code: either fix the regression or re-derive the goldens
//! and document why in DESIGN.md §10.

use dve::chaos::{AgingParams, ChaosConfig, CorrelatedConfig, HammerParams, ThermalParams};
use dve::config::{Scheme, SystemConfig, TopologySpec};
use dve::system::{run_workload, System};
use dve_workloads::catalog;
use proptest::prelude::*;

/// (seed, scheme, cycles) for backprop at 500 measured ops/thread
/// (warm-up 50, 8000 measured memory ops total).
const GOLDENS: &[(u64, Scheme, u64)] = &[
    (42, Scheme::BaselineNuma, 92_408),
    (42, Scheme::DveAllow, 77_905),
    (42, Scheme::DveDeny, 54_962),
    (0x2026_0806, Scheme::BaselineNuma, 91_014),
    (0x2026_0806, Scheme::DveAllow, 79_614),
    (0x2026_0806, Scheme::DveDeny, 54_436),
];

#[test]
fn pinned_golden_cycles_mshrs_1() {
    let p = catalog()
        .into_iter()
        .find(|p| p.name == "backprop")
        .unwrap();
    for &(seed, scheme, cycles) in GOLDENS {
        let r = run_workload(&p, scheme, 500, seed);
        assert_eq!(r.mem_ops, 8000, "seed={seed:#x} {scheme:?}");
        assert_eq!(
            r.cycles, cycles,
            "seed={seed:#x} {scheme:?}: got {}, golden {cycles}",
            r.cycles
        );
    }
}

/// (topology, seed, scheme, cycles) — same trace/ops regime as
/// [`GOLDENS`], on the non-mirror topologies.
const TOPOLOGY_GOLDENS: &[(TopologySpec, u64, Scheme, u64)] = &[
    (TopologySpec::Nway(4), 42, Scheme::DveAllow, 96_160),
    (TopologySpec::Nway(4), 42, Scheme::DveDeny, 86_172),
    (TopologySpec::Nway(4), 0x2026_0806, Scheme::DveAllow, 96_703),
    (TopologySpec::Nway(4), 0x2026_0806, Scheme::DveDeny, 90_514),
    (TopologySpec::TwoTier, 42, Scheme::DveAllow, 92_408),
    (TopologySpec::TwoTier, 42, Scheme::DveDeny, 93_525),
    (TopologySpec::TwoTier, 0x2026_0806, Scheme::DveAllow, 91_014),
    (TopologySpec::TwoTier, 0x2026_0806, Scheme::DveDeny, 93_151),
];

/// The explicit mirror-2 topology is a representation change only: it
/// must replay [`GOLDENS`] bit-identically, and the N-way / two-tier
/// placements hold their own pinned counts.
#[test]
fn topology_goldens_pin_every_placement() {
    let p = catalog()
        .into_iter()
        .find(|p| p.name == "backprop")
        .unwrap();
    let run = |spec: TopologySpec, scheme, seed| {
        let mut cfg = SystemConfig::table_ii(scheme);
        cfg.set_topology(spec);
        cfg.ops_per_thread = 500;
        cfg.warmup_per_thread = 50;
        System::new(cfg, &p, seed).run()
    };
    for &(seed, scheme, cycles) in GOLDENS {
        let r = run(TopologySpec::Mirror2, scheme, seed);
        assert_eq!(
            r.cycles, cycles,
            "mirror2 topology must be invisible: seed={seed:#x} {scheme:?}"
        );
    }
    for &(spec, seed, scheme, cycles) in TOPOLOGY_GOLDENS {
        let r = run(spec, scheme, seed);
        assert_eq!(r.mem_ops, 8000, "{spec} seed={seed:#x} {scheme:?}");
        assert_eq!(
            r.cycles, cycles,
            "{spec} seed={seed:#x} {scheme:?}: got {}, golden {cycles}",
            r.cycles
        );
    }
}

/// Builds the armed-but-inert chaos envelope: every correlated source
/// present and polling on its grid, none able to emit a fault.
fn inert_armed(source_seed: u64, hammer: bool, thermal: bool, aging: bool) -> ChaosConfig {
    ChaosConfig {
        correlated: Some(CorrelatedConfig {
            seed: source_seed,
            hammer: hammer.then(HammerParams::inert),
            thermal: thermal.then(ThermalParams::inert),
            aging: aging.then(AgingParams::inert),
        }),
        ..ChaosConfig::inert()
    }
}

/// Arming every correlated fault source in its inert configuration
/// must replay *all* pinned goldens bit-identically: the sources poll
/// the live fabric on their grids but never touch timed state, so the
/// cycle counts cannot move. This is the full deterministic matrix —
/// both seeds, all three schemes, and every pinned topology.
#[test]
fn armed_but_inert_sources_preserve_every_golden() {
    let p = catalog()
        .into_iter()
        .find(|p| p.name == "backprop")
        .unwrap();
    let run = |spec: TopologySpec, scheme, seed| {
        let mut cfg = SystemConfig::table_ii(scheme);
        cfg.set_topology(spec);
        cfg.ops_per_thread = 500;
        cfg.warmup_per_thread = 50;
        cfg.chaos = Some(inert_armed(seed ^ 0xD0E, true, true, true));
        System::new(cfg, &p, seed).run()
    };
    for &(seed, scheme, cycles) in GOLDENS {
        let r = run(TopologySpec::Mirror2, scheme, seed);
        assert_eq!(
            r.cycles, cycles,
            "inert sources moved mirror2 golden: seed={seed:#x} {scheme:?}"
        );
    }
    for &(spec, seed, scheme, cycles) in TOPOLOGY_GOLDENS {
        let r = run(spec, scheme, seed);
        assert_eq!(
            r.cycles, cycles,
            "inert sources moved {spec} golden: seed={seed:#x} {scheme:?}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    // Any nonempty combination of armed-but-inert sources, with any
    // source seed, replays a sampled golden row bit-identically — the
    // property behind the deterministic matrix above.
    #[test]
    fn any_inert_source_combo_replays_goldens(
        mask in 1u8..8,
        pick in 0usize..6,
        source_seed in any::<u64>(),
    ) {
        let (seed, scheme, cycles) = GOLDENS[pick];
        let p = catalog()
            .into_iter()
            .find(|p| p.name == "backprop")
            .unwrap();
        let mut cfg = SystemConfig::table_ii(scheme);
        cfg.ops_per_thread = 500;
        cfg.warmup_per_thread = 50;
        cfg.chaos = Some(inert_armed(
            source_seed,
            mask & 1 != 0,
            mask & 2 != 0,
            mask & 4 != 0,
        ));
        let r = System::new(cfg, &p, seed).run();
        prop_assert_eq!(r.mem_ops, 8000);
        prop_assert_eq!(r.cycles, cycles);
    }
}

#[test]
fn goldens_order_schemes_correctly() {
    // At both pinned seeds: deny < allow < baseline on this read-heavy
    // workload — the paper's Fig. 6 ordering.
    for seed in [42u64, 0x2026_0806] {
        let pick = |s| {
            GOLDENS
                .iter()
                .find(|&&(sd, sc, _)| sd == seed && sc == s)
                .unwrap()
                .2
        };
        assert!(pick(Scheme::DveDeny) < pick(Scheme::DveAllow));
        assert!(pick(Scheme::DveAllow) < pick(Scheme::BaselineNuma));
    }
}
