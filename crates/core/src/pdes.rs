//! Parallel trace supply for the system runner.
//!
//! The sequential runner's one serializing input is
//! [`dve_workloads::TraceGenerator::next_op`]: every operation of every
//! core funnels through one generator on the coordinator thread. The
//! per-core streams are **timing-independent** — a core's operation
//! sequence is a pure function of `(profile, seed, core)`, never of
//! simulated time — so trace synthesis is exactly the part of the
//! pipeline that shards perfectly.
//!
//! [`ShardedSupply`] exploits that: worker threads own contiguous
//! (socket-major) core ranges, run one [`CoreTraceStream`] per owned
//! core, and push pre-generated chunks of operations through bounded
//! per-core channels. The coordinator keeps the exact global commit
//! order (its earliest-core heap is untouched), so results are
//! **bit-identical** to the inline generator at every MSHR depth and
//! worker count — the channels only change *who* computes the next
//! operation, never *which* operation comes next.
//!
//! The timing-critical simulation itself (coherence engine, DRAM,
//! link) still executes on the coordinator: the engine mutates
//! remote-socket state instantaneously, so its commit order is a
//! sequential dependency. The fully-sharded *timed* executive — where
//! whole domains advance in parallel under a conservative lookahead —
//! lives in [`dve_sim::pdes`]; this module is the system-runner
//! integration that parallelizes the portion of the real pipeline that
//! is provably order-free. See `DESIGN.md` §14 for the Amdahl
//! accounting behind that split.

use dve_workloads::{CoreTraceStream, Op, TraceGenerator, WorkloadProfile};
use std::sync::mpsc::{Receiver, SyncSender, TrySendError};
use std::thread::JoinHandle;

/// Operations per channel message. Large enough to amortize channel
/// overhead (a send per 512 ops), small enough that the bounded
/// run-ahead (`CHUNK * BOUND` ops per core) stays cache-friendly.
const CHUNK: usize = 512;

/// Channel capacity in chunks: each core may be pre-generated at most
/// `BOUND * CHUNK` operations ahead of the coordinator.
const BOUND: usize = 4;

/// Where the runner's operations come from: the classic inline
/// generator, or the sharded multi-threaded supply.
#[derive(Debug)]
pub enum TraceSupply {
    /// Single-threaded reference path: one [`TraceGenerator`] advanced
    /// on the coordinator.
    Inline(TraceGenerator),
    /// Worker threads pre-generate per-core streams in parallel.
    Sharded(ShardedSupply),
}

impl TraceSupply {
    /// Builds the supply for `workers` trace threads (`<= 1` selects
    /// the inline path).
    pub fn new(profile: &WorkloadProfile, cores: usize, seed: u64, workers: usize) -> TraceSupply {
        if workers <= 1 {
            TraceSupply::Inline(TraceGenerator::new(profile, cores, seed))
        } else {
            TraceSupply::Sharded(ShardedSupply::new(profile, cores, seed, workers))
        }
    }

    /// The next operation of `core` — identical across both variants
    /// for the same `(profile, cores, seed)`.
    pub fn next_op(&mut self, core: usize) -> Op {
        match self {
            TraceSupply::Inline(g) => g.next_op(core),
            TraceSupply::Sharded(s) => s.next_op(core),
        }
    }
}

/// One core's receive side: the open chunk being consumed plus the
/// channel refilling it.
struct CoreFeed {
    rx: Receiver<Vec<Op>>,
    buf: Vec<Op>,
    cursor: usize,
}

/// The sharded trace supply: trace-synthesis workers feeding the
/// coordinator through bounded per-core channels.
pub struct ShardedSupply {
    feeds: Vec<CoreFeed>,
    /// Joined on drop, after the receivers hang up.
    handles: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for ShardedSupply {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedSupply")
            .field("cores", &self.feeds.len())
            .field("workers", &self.handles.len())
            .finish()
    }
}

impl ShardedSupply {
    /// Spawns `workers` trace threads over `cores` cores, partitioned
    /// contiguously (socket-major core numbering keeps a socket's
    /// cores on one worker).
    pub fn new(
        profile: &WorkloadProfile,
        cores: usize,
        seed: u64,
        workers: usize,
    ) -> ShardedSupply {
        let workers = workers.min(cores).max(1);
        let per = cores.div_ceil(workers);
        let mut txs: Vec<Option<SyncSender<Vec<Op>>>> = Vec::with_capacity(cores);
        let mut feeds = Vec::with_capacity(cores);
        for _ in 0..cores {
            let (tx, rx) = std::sync::mpsc::sync_channel(BOUND);
            txs.push(Some(tx));
            feeds.push(CoreFeed {
                rx,
                buf: Vec::new(),
                cursor: 0,
            });
        }
        let mut handles = Vec::new();
        for w in 0..workers {
            let lo = w * per;
            let hi = cores.min(lo + per);
            if lo >= hi {
                break;
            }
            let mut lanes: Vec<(CoreTraceStream, SyncSender<Vec<Op>>)> = (lo..hi)
                .map(|core| {
                    let stream = CoreTraceStream::new(profile, cores, seed, core);
                    (stream, txs[core].take().expect("core owned once"))
                })
                .collect();
            handles.push(std::thread::spawn(move || {
                // Round-robin over owned cores with non-blocking sends.
                // Never block on one core's full channel: a core the
                // coordinator has finished with keeps a full channel
                // forever, and a blocking send there would starve its
                // sibling cores on this worker. When every owned
                // channel is full the coordinator is behind — back off
                // briefly instead of spinning.
                let mut pending: Vec<Option<Vec<Op>>> = vec![None; lanes.len()];
                loop {
                    let mut sent_any = false;
                    let mut all_dead = true;
                    for (i, (stream, tx)) in lanes.iter_mut().enumerate() {
                        let chunk = pending[i]
                            .take()
                            .unwrap_or_else(|| (0..CHUNK).map(|_| stream.next_op()).collect());
                        match tx.try_send(chunk) {
                            Ok(()) => {
                                sent_any = true;
                                all_dead = false;
                            }
                            Err(TrySendError::Full(chunk)) => {
                                pending[i] = Some(chunk);
                                all_dead = false;
                            }
                            // The coordinator dropped this core's
                            // receiver: the run is over (or the core
                            // retired); stop producing for it.
                            Err(TrySendError::Disconnected(_)) => {}
                        }
                    }
                    if all_dead {
                        return;
                    }
                    if !sent_any {
                        std::thread::sleep(std::time::Duration::from_micros(50));
                    }
                }
            }));
        }
        ShardedSupply { feeds, handles }
    }

    /// The next operation of `core`, blocking (briefly) if its worker
    /// has not produced the next chunk yet.
    pub fn next_op(&mut self, core: usize) -> Op {
        let feed = &mut self.feeds[core];
        if feed.cursor == feed.buf.len() {
            feed.buf = feed
                .rx
                .recv()
                .expect("trace worker died before its core retired");
            feed.cursor = 0;
        }
        let op = feed.buf[feed.cursor];
        feed.cursor += 1;
        op
    }
}

impl Drop for ShardedSupply {
    fn drop(&mut self) {
        // Hang up every channel first so workers observe Disconnected
        // on their next try_send, then reap them.
        self.feeds.clear();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dve_sim::rng::SplitMix64;
    use dve_workloads::catalog;

    #[test]
    fn sharded_supply_matches_inline_generator() {
        let profiles = catalog();
        let profile = profiles.iter().find(|p| p.name == "backprop").unwrap();
        let cores = 16;
        for workers in [2, 4, 8] {
            let mut inline = TraceSupply::new(profile, cores, 42, 1);
            let mut sharded = TraceSupply::new(profile, cores, 42, workers);
            assert!(matches!(sharded, TraceSupply::Sharded(_)));
            // Interleave cores pseudo-randomly — the coordinator's
            // commit order is timing-dependent, so the supply must
            // serve any interleaving identically.
            let mut rng = SplitMix64::new(7);
            for i in 0..40_000 {
                let core = rng.next_below(cores as u64) as usize;
                assert_eq!(
                    inline.next_op(core),
                    sharded.next_op(core),
                    "op {i} core {core} workers {workers}"
                );
            }
        }
    }

    #[test]
    fn sharded_supply_survives_early_drop() {
        // Dropping the supply mid-stream (channels full of unread
        // chunks) must not deadlock or leak the workers.
        let profiles = catalog();
        let profile = profiles.iter().find(|p| p.name == "streamcluster").unwrap();
        for _ in 0..3 {
            let mut s = ShardedSupply::new(profile, 8, 9, 4);
            for core in 0..4 {
                let _ = s.next_op(core);
            }
            drop(s);
        }
    }

    #[test]
    fn worker_count_clamps_to_cores() {
        let profiles = catalog();
        let profile = &profiles[0];
        let mut s = ShardedSupply::new(profile, 2, 1, 16);
        let mut inline = TraceGenerator::new(profile, 2, 1);
        for _ in 0..2_000 {
            assert_eq!(s.next_op(0), inline.next_op(0));
            assert_eq!(s.next_op(1), inline.next_op(1));
        }
    }
}
