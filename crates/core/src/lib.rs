//! # dve — Coherent Replication for DRAM reliability and performance
//!
//! A full-system reproduction of **Dvé (ISCA 2021)**: a hardware-driven
//! replication mechanism in which every replicated cache line has a copy
//! on *each* socket of a dual-socket cache-coherent NUMA machine. The
//! coherence protocol keeps the two copies strongly consistent, errors
//! detected at either memory controller are corrected by reading the
//! other copy, and during fault-free operation reads are served from the
//! *nearest* copy — turning a reliability mechanism into a performance
//! win.
//!
//! This crate is the top of the workspace: it assembles the substrates
//! (`dve-dram`, `dve-noc`, `dve-coherence`, `dve-workloads`,
//! `dve-osmem`) into a runnable system.
//!
//! * [`config`] — Table II system configuration and the scheme catalog
//!   (baseline NUMA, Intel-mirroring++, Dvé allow / deny / dynamic).
//! * [`fabric_impl`] — the cycle-accounting [`coherence
//!   Fabric`](dve_coherence::fabric::Fabric) over real DRAM controllers,
//!   the 2×4 mesh and the inter-socket link.
//! * [`system`] — the event-driven multi-core runner and [`system::RunResult`].
//! * [`recovery`] — the §V-B2 recovery flow: ECC detection at one
//!   controller, correction from the replica, repair-and-reread, and
//!   degraded mode.
//! * [`chaos`] — in-band fault injection: deterministic fault
//!   schedules, link outages, paced patrol scrub, and the recovery
//!   ledger checked by the `chaos` harness.
//! * [`fault_source`] — correlated, workload-coupled fault sources
//!   (row-hammer pressure, Arrhenius-scaled thermal arrivals, aging
//!   ramps) the runner polls in-band alongside the static schedule.
//! * [`metrics`] — the paper's aggregates (geomean over top-10/15/all).
//! * [`pdes`] — the parallel trace supply: worker threads pre-generate
//!   per-core operation streams through bounded channels, bit-identical
//!   to the inline generator (enable via `SystemConfig::pdes_workers`).
//!
//! # Quickstart
//!
//! ```
//! use dve::config::{Scheme, SystemConfig};
//! use dve::system::System;
//! use dve_workloads::catalog;
//!
//! let profile = &catalog()[0]; // backprop
//! let mut cfg = SystemConfig::table_ii(Scheme::DveDeny);
//! cfg.ops_per_thread = 2_000; // tiny run for the doctest
//! let result = System::new(cfg, profile, 42).run();
//! assert!(result.cycles > 0);
//! assert!(result.engine.replica_reads > 0); // Dvé served local replicas
//! ```

pub mod builder;
pub mod chaos;
pub mod config;
pub mod fabric_impl;
pub mod fault_source;
pub mod metrics;
pub mod pdes;
pub mod recovery;
pub mod system;

pub use builder::SystemBuilder;
pub use chaos::{
    ChaosConfig, ChaosParams, CorrelatedConfig, FaultSchedule, FaultSourceKind, RecoveryLedger,
};
pub use config::{Scheme, SystemConfig, TopologySpec};
pub use fault_source::FaultSource;
pub use pdes::{ShardedSupply, TraceSupply};
pub use recovery::{RecoverableMemory, RecoveryEvent, RecoveryOutcome};
pub use system::{RunResult, System};
