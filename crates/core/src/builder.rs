//! Fluent construction of a Dvé system.
//!
//! [`SystemBuilder`] wraps [`SystemConfig`]
//! with a chainable API for the knobs the evaluation harnesses sweep —
//! scheme, link latency, replica-directory geometry, run length — and
//! terminal methods that build a [`System`] or run it directly.

use crate::config::{Scheme, SystemConfig};
use crate::system::{RunResult, System};
use dve_sim::time::Nanos;
use dve_workloads::WorkloadProfile;

/// Builder for a Table II system with selective overrides.
///
/// # Example
///
/// ```
/// use dve::builder::SystemBuilder;
/// use dve::config::Scheme;
/// use dve_workloads::catalog;
///
/// let profile = &catalog()[0];
/// let result = SystemBuilder::new(Scheme::DveDeny)
///     .ops_per_thread(1_000)
///     .link_latency_ns(60)
///     .replica_dir_entries(Some(4096))
///     .run(profile, 42);
/// assert!(result.engine.replica_reads > 0);
/// ```
#[derive(Debug, Clone)]
pub struct SystemBuilder {
    cfg: SystemConfig,
}

impl SystemBuilder {
    /// Starts from the paper's Table II configuration for `scheme`.
    pub fn new(scheme: Scheme) -> SystemBuilder {
        SystemBuilder {
            cfg: SystemConfig::table_ii(scheme),
        }
    }

    /// Measured memory operations per thread (warm-up defaults to 10%).
    pub fn ops_per_thread(mut self, ops: u64) -> SystemBuilder {
        self.cfg.ops_per_thread = ops;
        self.cfg.warmup_per_thread = ops / 10;
        self
    }

    /// Explicit warm-up operations per thread.
    pub fn warmup_per_thread(mut self, ops: u64) -> SystemBuilder {
        self.cfg.warmup_per_thread = ops;
        self
    }

    /// One-way inter-socket link latency in nanoseconds (Fig. 10 sweeps
    /// 30–60).
    pub fn link_latency_ns(mut self, ns: u64) -> SystemBuilder {
        self.cfg.link_latency = Nanos(ns);
        self
    }

    /// Replica-directory capacity (`None` = the Fig. 9 oracle).
    pub fn replica_dir_entries(mut self, entries: Option<usize>) -> SystemBuilder {
        self.cfg.engine.replica_dir_entries = entries;
        self
    }

    /// Replica-directory tracking granularity in lines (16 = the §V-C5
    /// coarse-grain variant).
    pub fn replica_region_lines(mut self, lines: u64) -> SystemBuilder {
        self.cfg.engine.replica_region_lines = lines;
        self
    }

    /// Enables/disables speculative replica access (§V-C5).
    pub fn speculative(mut self, on: bool) -> SystemBuilder {
        self.cfg.speculative = on;
        self
    }

    /// Outstanding misses per core (MSHR ways; 1 = blocking cores).
    pub fn mshrs(mut self, ways: usize) -> SystemBuilder {
        self.cfg.mshrs = ways;
        self
    }

    /// Replication topology: mirror pair (default), symmetric N-way,
    /// or two-tier with a far-memory pool. Re-partitions the engine's
    /// cores over the topology's sockets.
    pub fn topology(mut self, spec: crate::config::TopologySpec) -> SystemBuilder {
        self.cfg.set_topology(spec);
        self
    }

    /// Trace-supply worker threads (1 = sequential reference path;
    /// more shard trace synthesis across threads, bit-identically).
    pub fn pdes_workers(mut self, workers: usize) -> SystemBuilder {
        self.cfg.pdes_workers = workers;
        self
    }

    /// Runs with the replicas out of service (§V-E degraded state).
    pub fn degraded(mut self, on: bool) -> SystemBuilder {
        self.cfg.degraded = on;
        self
    }

    /// ECC capability at every memory controller (chaos runs use the
    /// detect-only profiles to force the §V-B2 replica detour).
    pub fn ecc(mut self, ecc: dve_dram::controller::EccProfile) -> SystemBuilder {
        self.cfg.ecc = ecc;
        self
    }

    /// Arms the in-band chaos layer (fault schedule, link outages,
    /// paced scrub). `None` disarms it.
    pub fn chaos(mut self, chaos: Option<crate::chaos::ChaosConfig>) -> SystemBuilder {
        self.cfg.chaos = chaos;
        self
    }

    /// LLC capacity per socket in bytes (scaling studies).
    pub fn llc_bytes(mut self, bytes: usize) -> SystemBuilder {
        self.cfg.engine.llc_bytes = bytes;
        self
    }

    /// The assembled configuration (for inspection or manual tweaks the
    /// builder does not cover).
    pub fn config(&self) -> &SystemConfig {
        &self.cfg
    }

    /// Builds the system for `profile` with `seed`.
    pub fn build(&self, profile: &WorkloadProfile, seed: u64) -> System {
        System::new(self.cfg.clone(), profile, seed)
    }

    /// Builds and runs in one step.
    pub fn run(&self, profile: &WorkloadProfile, seed: u64) -> RunResult {
        self.build(profile, seed).run()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dve_workloads::catalog;

    #[test]
    fn builder_overrides_apply() {
        let b = SystemBuilder::new(Scheme::DveAllow)
            .ops_per_thread(500)
            .link_latency_ns(30)
            .replica_dir_entries(None)
            .replica_region_lines(16)
            .speculative(false)
            .degraded(true)
            .mshrs(4)
            .pdes_workers(4)
            .llc_bytes(1 << 20);
        let c = b.config();
        assert_eq!(c.ops_per_thread, 500);
        assert_eq!(c.warmup_per_thread, 50);
        assert_eq!(c.link_latency, Nanos(30));
        assert_eq!(c.engine.replica_dir_entries, None);
        assert_eq!(c.engine.replica_region_lines, 16);
        assert!(!c.speculative);
        assert!(c.degraded);
        assert_eq!(c.mshrs, 4);
        assert_eq!(c.pdes_workers, 4);
        assert_eq!(c.engine.llc_bytes, 1 << 20);
    }

    #[test]
    fn builder_runs_match_direct_construction() {
        let p = &catalog()[0];
        let via_builder = SystemBuilder::new(Scheme::DveDeny)
            .ops_per_thread(300)
            .run(p, 7);
        let mut cfg = SystemConfig::table_ii(Scheme::DveDeny);
        cfg.ops_per_thread = 300;
        cfg.warmup_per_thread = 30;
        let direct = System::new(cfg, p, 7).run();
        assert_eq!(via_builder.cycles, direct.cycles);
    }
}
