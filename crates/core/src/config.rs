//! System configuration — the paper's Table II, parameterized.

use crate::chaos::ChaosConfig;
use dve_coherence::engine::{EngineConfig, Mode};
use dve_coherence::replica_dir::ReplicaPolicy;
use dve_dram::config::DramConfig;
use dve_dram::controller::EccProfile;
use dve_noc::topology::{EdgeParams, PlacementPolicy, Topology};
use dve_sim::time::{Frequency, Nanos};

/// The memory-system scheme under evaluation (the bars of Fig. 6).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scheme {
    /// Dual-socket NUMA without replication.
    BaselineNuma,
    /// The paper's improved Intel memory mirroring: replicas on a second
    /// channel of the *same* socket, reads load-balanced across the two
    /// channels ("Intel-mirroring++").
    IntelMirrorPlus,
    /// Dvé with the allow-based (lazy pull) replica protocol.
    DveAllow,
    /// Dvé with the deny-based (eager push) replica protocol.
    DveDeny,
    /// Dvé with the sampling-based dynamic protocol (profiles allow vs
    /// deny each epoch and applies the winner, §V-C5).
    DveDynamic,
}

impl Scheme {
    /// All schemes in Fig. 6's presentation order.
    pub const ALL: [Scheme; 5] = [
        Scheme::BaselineNuma,
        Scheme::IntelMirrorPlus,
        Scheme::DveAllow,
        Scheme::DveDeny,
        Scheme::DveDynamic,
    ];

    /// Short label for reports.
    pub fn label(self) -> &'static str {
        match self {
            Scheme::BaselineNuma => "baseline-numa",
            Scheme::IntelMirrorPlus => "intel-mirror++",
            Scheme::DveAllow => "dve-allow",
            Scheme::DveDeny => "dve-deny",
            Scheme::DveDynamic => "dve-dynamic",
        }
    }

    /// Whether this scheme replicates memory across sockets.
    pub fn is_dve(self) -> bool {
        matches!(
            self,
            Scheme::DveAllow | Scheme::DveDeny | Scheme::DveDynamic
        )
    }
}

impl std::fmt::Display for Scheme {
    /// Renders the stable report label ([`Scheme::label`]); the inverse
    /// of [`Scheme::from_str`], so schemes round-trip through config
    /// text.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

impl std::str::FromStr for Scheme {
    type Err = String;

    /// Parses a scheme from its report label (`dve-deny`, …), so
    /// service/bench configuration is plain text instead of code.
    fn from_str(s: &str) -> Result<Scheme, String> {
        Scheme::ALL
            .into_iter()
            .find(|sch| sch.label() == s)
            .ok_or_else(|| {
                let known: Vec<&str> = Scheme::ALL.iter().map(|sch| sch.label()).collect();
                format!("unknown scheme {s:?}; one of: {}", known.join(", "))
            })
    }
}

/// The node-level shape of the system: how many nodes there are and
/// where replicas land. The paper's machine is [`TopologySpec::Mirror2`]
/// — the golden-preserving default every Table II configuration starts
/// from; the other variants instantiate the topology-generic placement
/// layer (round-robin N-way striping, or a two-socket system backed by
/// a far-memory pool holding the full replicas).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TopologySpec {
    /// Two sockets, mirrored replicas (`replica = 1 - home`).
    Mirror2,
    /// `n` sockets (2 ≤ n ≤ 8) with round-robin replica striping.
    Nway(usize),
    /// Two sockets plus one far-memory node; the coherent full replica
    /// of every line lives on the far node.
    TwoTier,
}

impl TopologySpec {
    /// Compute sockets (nodes with cores; home candidates).
    pub fn sockets(self) -> usize {
        match self {
            TopologySpec::Mirror2 | TopologySpec::TwoTier => 2,
            TopologySpec::Nway(n) => n,
        }
    }

    /// Total nodes, including far-memory pools.
    pub fn nodes(self) -> usize {
        match self {
            TopologySpec::Mirror2 => 2,
            TopologySpec::Nway(n) => n,
            TopologySpec::TwoTier => 3,
        }
    }

    /// The placement policy this topology implies.
    pub fn placement(self) -> PlacementPolicy {
        match self {
            TopologySpec::Mirror2 => PlacementPolicy::Mirror2,
            TopologySpec::Nway(_) => PlacementPolicy::RoundRobin,
            TopologySpec::TwoTier => PlacementPolicy::TwoTier { far: 2 },
        }
    }
}

impl std::fmt::Display for TopologySpec {
    /// Stable config-text form: `mirror2`, `nway:4`, `twotier` (the
    /// inverse of [`TopologySpec::from_str`]).
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TopologySpec::Mirror2 => f.write_str("mirror2"),
            TopologySpec::Nway(n) => write!(f, "nway:{n}"),
            TopologySpec::TwoTier => f.write_str("twotier"),
        }
    }
}

impl std::str::FromStr for TopologySpec {
    type Err = String;

    /// Parses `mirror2`, `nway:<n>` (2 ≤ n ≤ 8) or `twotier`.
    fn from_str(s: &str) -> Result<TopologySpec, String> {
        match s {
            "mirror2" => Ok(TopologySpec::Mirror2),
            "twotier" => Ok(TopologySpec::TwoTier),
            _ => {
                let n = s
                    .strip_prefix("nway:")
                    .ok_or_else(|| {
                        format!("unknown topology {s:?}; one of: mirror2, nway:<n>, twotier")
                    })?
                    .parse::<usize>()
                    .map_err(|e| format!("bad nway socket count in {s:?}: {e}"))?;
                if !(2..=8).contains(&n) {
                    return Err(format!(
                        "nway socket count must be in 2..=8 (sharer vectors are 8 bits), got {n}"
                    ));
                }
                Ok(TopologySpec::Nway(n))
            }
        }
    }
}

/// Full system configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct SystemConfig {
    /// Scheme under evaluation.
    pub scheme: Scheme,
    /// Node-level topology. Set it through
    /// [`SystemConfig::set_topology`] (or the builder's `topology`
    /// method) so the engine's socket count, placement policy and
    /// core partitioning stay consistent with it.
    pub topology: TopologySpec,
    /// Core clock (Table II: 3.0 GHz).
    pub clock: Frequency,
    /// Engine/caches configuration.
    pub engine: EngineConfig,
    /// DRAM timing/geometry.
    pub dram: DramConfig,
    /// One-way inter-socket link latency (Table II: 50 ns; Fig. 10
    /// sweeps 30–60 ns).
    pub link_latency: Nanos,
    /// Link serialization bandwidth (bytes per core cycle).
    pub link_bytes_per_cycle: u64,
    /// Mesh dimensions (Table II: 2×4).
    pub mesh: (usize, usize),
    /// Speculative replica access enabled (default on, §VI).
    pub speculative: bool,
    /// Memory operations executed per thread (after warm-up).
    pub ops_per_thread: u64,
    /// Warm-up operations per thread (caches/structures, not measured).
    pub warmup_per_thread: u64,
    /// Dynamic protocol: operations per profiling window (per the paper:
    /// 100M instructions of each scheme per 1B-instruction epoch —
    /// scaled to our run lengths as a 1:10 ratio).
    pub dynamic_window: u64,
    /// Outstanding misses a core may have in flight (MSHR ways). The
    /// default of 1 reproduces the blocking-core runner cycle-for-cycle
    /// (the pinned-golden regime); larger values let cores overlap
    /// misses and expose memory-level parallelism. Must be ≥ 1.
    pub mshrs: usize,
    /// Trace-supply worker threads (the parallel discrete-event core's
    /// system-runner integration, see `dve::pdes`). The default of 1
    /// keeps everything on the coordinator thread; larger values shard
    /// trace synthesis across that many workers over bounded per-core
    /// channels. Results are bit-identical at every setting — the
    /// replay gate in the `pdes` bench binary pins this.
    pub pdes_workers: usize,
    /// §V-E degraded state: run the Dvé scheme with the replica copies
    /// out of service (single functional copy). Performance should match
    /// baseline NUMA — the `ablation` harness checks this claim.
    pub degraded: bool,
    /// ECC capability at every memory controller. The default
    /// (chipkill) matches the controllers' own default, so configuring
    /// it is behavior-neutral for fault-free runs; chaos runs use the
    /// detect-only DSD/TSD profiles to force the §V-B2 replica detour.
    pub ecc: EccProfile,
    /// In-band fault injection (§V-B2 exercised live): `None` leaves
    /// the demand path untouched; `Some` arms the chaos layer — demand
    /// reads run the controller-edge ECC check and detected errors take
    /// the timed recovery detour. An *inert* chaos config (empty
    /// schedule, no outages, no scrub) is bit-identical to `None`.
    pub chaos: Option<ChaosConfig>,
}

impl SystemConfig {
    /// The Table II configuration for a given scheme.
    pub fn table_ii(scheme: Scheme) -> SystemConfig {
        SystemConfig {
            scheme,
            topology: TopologySpec::Mirror2,
            clock: Frequency::ghz(3.0),
            engine: EngineConfig::default(),
            dram: DramConfig::ddr4_2400(),
            link_latency: Nanos(50),
            link_bytes_per_cycle: 16,
            mesh: (4, 2),
            speculative: true,
            ops_per_thread: 50_000,
            warmup_per_thread: 5_000,
            dynamic_window: 5_000,
            mshrs: 1,
            pdes_workers: 1,
            degraded: false,
            ecc: EccProfile::chipkill(),
            chaos: None,
        }
    }

    /// The coherence-engine mode for this scheme (dynamic starts in
    /// deny; the runner switches per profiling results).
    pub fn engine_mode(&self) -> Mode {
        match self.scheme {
            Scheme::BaselineNuma => Mode::Baseline,
            Scheme::IntelMirrorPlus => Mode::IntelMirror,
            Scheme::DveAllow => Mode::Dve {
                policy: ReplicaPolicy::Allow,
                speculative: self.speculative,
            },
            Scheme::DveDeny | Scheme::DveDynamic => Mode::Dve {
                policy: ReplicaPolicy::Deny,
                speculative: self.speculative,
            },
        }
    }

    /// Switches the node-level topology, rewiring the engine geometry
    /// that depends on it: socket count, placement policy, and the
    /// per-socket core partition. [`TopologySpec::Mirror2`] leaves a
    /// Table II configuration exactly as constructed (the engine
    /// defaults already describe the paper's two-socket machine).
    ///
    /// # Panics
    ///
    /// Panics if the core count does not divide evenly across the
    /// topology's sockets.
    pub fn set_topology(&mut self, spec: TopologySpec) {
        assert!(
            self.engine.cores.is_multiple_of(spec.sockets()),
            "{} cores do not partition over {} sockets",
            self.engine.cores,
            spec.sockets()
        );
        self.topology = spec;
        self.engine.sockets = spec.sockets();
        self.engine.placement = spec.placement();
        self.engine.cores_per_socket = self.engine.cores / spec.sockets();
    }

    /// Total nodes in the topology (sockets plus far-memory pools).
    pub fn nodes(&self) -> usize {
        self.topology.nodes()
    }

    /// The link-level topology graph: every socket-socket edge carries
    /// the configured inter-socket link parameters; edges touching a
    /// far-memory node use the CXL-class far-tier parameters.
    pub fn topology_graph(&self) -> Topology {
        let edge = EdgeParams {
            latency: self.link_latency,
            bytes_per_cycle: self.link_bytes_per_cycle,
        };
        match self.topology {
            TopologySpec::Mirror2 => Topology::mirror2(edge),
            TopologySpec::Nway(n) => Topology::symmetric(n, edge),
            TopologySpec::TwoTier => Topology::two_tier(edge, EdgeParams::far_tier()),
        }
    }

    /// DRAM channels per socket for this scheme (Table II: baseline 1,
    /// replicated/mirrored 2).
    pub fn channels_per_socket(&self) -> usize {
        match self.scheme {
            Scheme::BaselineNuma => 1,
            _ => 2,
        }
    }

    /// Total DRAM ranks in the system (for energy accounting: baseline
    /// 2× 8 GB DIMMs, replicated 4× — scaled by the topology's node
    /// count beyond the paper's two).
    pub fn total_ranks(&self) -> usize {
        self.nodes() * self.channels_per_socket() * self.dram.ranks_per_channel
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_ii_defaults() {
        let c = SystemConfig::table_ii(Scheme::BaselineNuma);
        assert_eq!(c.engine.cores, 16);
        assert_eq!(c.engine.cores_per_socket, 8);
        assert_eq!(c.mesh, (4, 2));
        assert_eq!(c.link_latency, Nanos(50));
        assert_eq!(c.channels_per_socket(), 1);
        assert_eq!(c.total_ranks(), 2);
        assert_eq!(c.mshrs, 1, "blocking cores by default");
        assert_eq!(c.pdes_workers, 1, "sequential trace supply by default");
    }

    #[test]
    fn replicated_memory_doubles_channels() {
        for s in [
            Scheme::DveAllow,
            Scheme::DveDeny,
            Scheme::DveDynamic,
            Scheme::IntelMirrorPlus,
        ] {
            let c = SystemConfig::table_ii(s);
            assert_eq!(c.channels_per_socket(), 2, "{s:?}");
            assert_eq!(c.total_ranks(), 4);
        }
    }

    #[test]
    fn engine_modes() {
        use dve_coherence::engine::Mode;
        assert_eq!(
            SystemConfig::table_ii(Scheme::BaselineNuma).engine_mode(),
            Mode::Baseline
        );
        assert_eq!(
            SystemConfig::table_ii(Scheme::IntelMirrorPlus).engine_mode(),
            Mode::IntelMirror
        );
        assert!(matches!(
            SystemConfig::table_ii(Scheme::DveAllow).engine_mode(),
            Mode::Dve {
                policy: ReplicaPolicy::Allow,
                speculative: true
            }
        ));
    }

    #[test]
    fn scheme_display_from_str_round_trips() {
        for s in Scheme::ALL {
            let text = s.to_string();
            assert_eq!(text, s.label());
            assert_eq!(text.parse::<Scheme>(), Ok(s), "{text}");
        }
        let err = "dve-maybe".parse::<Scheme>().unwrap_err();
        assert!(err.contains("unknown scheme"), "{err}");
        assert!(err.contains("dve-deny"), "lists the valid labels: {err}");
    }

    #[test]
    fn topology_display_from_str_round_trips() {
        for t in [
            TopologySpec::Mirror2,
            TopologySpec::Nway(2),
            TopologySpec::Nway(4),
            TopologySpec::Nway(8),
            TopologySpec::TwoTier,
        ] {
            let text = t.to_string();
            assert_eq!(text.parse::<TopologySpec>(), Ok(t), "{text}");
        }
        assert!("nway:1".parse::<TopologySpec>().is_err(), "needs a peer");
        assert!("nway:9".parse::<TopologySpec>().is_err(), "sharer bits");
        assert!("nway:x".parse::<TopologySpec>().is_err());
        assert!("ring"
            .parse::<TopologySpec>()
            .unwrap_err()
            .contains("mirror2"));
    }

    #[test]
    fn set_topology_rewires_engine_geometry() {
        let mut c = SystemConfig::table_ii(Scheme::DveDeny);
        let mirror_engine = c.engine.clone();
        // Mirror2 is a no-op on a Table II config.
        c.set_topology(TopologySpec::Mirror2);
        assert_eq!(c.engine, mirror_engine, "golden-preserving default");
        assert_eq!(c.nodes(), 2);
        // N-way re-partitions the 16 cores.
        c.set_topology(TopologySpec::Nway(4));
        assert_eq!(c.engine.sockets, 4);
        assert_eq!(c.engine.cores_per_socket, 4);
        assert_eq!(c.nodes(), 4);
        assert_eq!(c.total_ranks(), 8);
        // Two-tier keeps two compute sockets but adds the far node.
        c.set_topology(TopologySpec::TwoTier);
        assert_eq!(c.engine.sockets, 2);
        assert_eq!(c.engine.cores_per_socket, 8);
        assert_eq!(c.nodes(), 3);
        let g = c.topology_graph();
        assert_eq!(g.nodes(), 3);
        assert!(
            g.edge(0, 2).latency > g.edge(0, 1).latency,
            "far hop slower"
        );
    }

    #[test]
    fn scheme_labels_unique() {
        let mut seen = std::collections::HashSet::new();
        for s in Scheme::ALL {
            assert!(seen.insert(s.label()));
        }
        assert!(Scheme::DveAllow.is_dve());
        assert!(!Scheme::IntelMirrorPlus.is_dve());
    }
}
