//! The cycle-accounting fabric: protocol actions → platform latencies.
//!
//! Implements [`Fabric`] over the real substrates: per-socket DRAM
//! controllers (one channel in the baseline, two when replication or
//! mirroring doubles capacity), the intra-socket mesh, and the
//! inter-socket link with serialization/occupancy. This is where the
//! scheme-specific memory layouts live:
//!
//! * **Baseline NUMA** — the home copy is the only copy, on channel 0 of
//!   the home socket.
//! * **Intel-mirroring++** — channel 1 of the *same* socket mirrors
//!   channel 0; reads round-robin across the two channels (the paper's
//!   "actively load balancing reads"), writes go to both.
//! * **Dvé** — the home copy lives on channel 0 of the home node and
//!   the replica on channel 1 of the node the placement map assigns
//!   (the other socket under the paper's mirror, a striped peer under
//!   round-robin N-way, the far-memory pool under two-tier).
//!
//! Every timed service advances the caller's [`Stamp`] by charging its
//! cycles to the right [`Component`]: mesh hops to `Mesh`, link wire
//! time to `Link`, and DRAM accesses split into `BankQueue` (arrival →
//! first command issue, read off [`AccessResult::issued_at`]) and
//! `BankService` (issue → data transfer complete). The breakdown an
//! access accumulates therefore always sums to its end-to-end latency.
//!
//! # The in-band recovery detour (§V-B2)
//!
//! When the chaos layer is armed ([`SystemConfig::chaos`]), demand
//! reads run the controller-edge ECC check. A detected-uncorrectable
//! read takes the full recovery detour *in simulated time*: request to
//! the surviving copy (across the inter-node link for Dvé, the
//! sibling channel for mirroring), remote bank read, data return,
//! repair write + re-read at the failed controller. Every cycle after
//! detection is charged to [`Component::Recovery`], so the Stamp
//! conservation invariant extends through the detour unchanged. Hard
//! failures record the copy in `degraded_lines` (later reads redirect
//! straight to the survivor) and raise `pending_degrade`, which the
//! runner turns into the coherence engine's §V-E degraded state.
//! Detection is timing-neutral, so a run with an *inert* chaos config
//! is bit-identical to one with the layer disarmed.
//!
//! Link outage windows gate the *recovery-class* sends through the
//! link's bounded-retry backoff ([`transfer_resilient`]); ordinary
//! protocol traffic rides the link's residual service. The §V-E
//! fallback to local-copy-only operation is driven by the runner,
//! which degrades the engine for the duration of the window and
//! re-syncs (deny-RM re-push + stale-replica quarantine) on recovery.
//!
//! [`transfer_resilient`]: LinkTable::transfer_resilient

use crate::chaos::{FaultAction, FaultEvent, FaultSourceKind, RecoveryLedger};
use crate::config::SystemConfig;
use dve_coherence::engine::Mode;
use dve_coherence::fabric::Fabric;
use dve_coherence::types::LineAddr;
use dve_dram::config::DramConfig;
use dve_dram::controller::{AccessKind, AccessResult, MemoryController};
use dve_dram::fault::FaultDomain;
use dve_dram::scrub::Scrubber;
use dve_noc::link::{LinkSendOutcome, LinkTable};
use dve_noc::mesh::Mesh;
use dve_noc::topology::PlacementMap;
use dve_noc::traffic::{MessageClass, TrafficStats};
use dve_sim::latency::{Component, Stamp};
use dve_sim::time::Cycles;
use std::collections::{BTreeSet, HashSet};

/// Mesh node hosting the directory + memory controller tile. The LLC
/// home slice for a line is colocated with its directory entry on this
/// tile, so the slice→directory route is zero hops — the per-core tile
/// route ([`Fabric::mesh_latency_core`]) carries the real traversal.
const DIR_NODE: usize = 2;

/// The timed platform fabric.
#[derive(Debug)]
pub struct SystemFabric {
    mode: Mode,
    mesh: Mesh,
    cores_per_socket: usize,
    /// Per-edge point-to-point links over the configured topology (one
    /// pipelined port per ordered node pair; cycle-identical to the
    /// original two-socket pair link at N = 2).
    link: LinkTable,
    /// The placement map the engine shares: line → home node / replica
    /// node. Drives line-aware survivor selection in the §V-B2 detour.
    place: PlacementMap,
    /// `ctrls[node][channel]`. Socket nodes run the configured DRAM;
    /// far-memory nodes (two-tier) run the far-tier preset.
    ctrls: Vec<Vec<MemoryController>>,
    traffic: TrafficStats,
    mirror_rr: u64,
    line_bytes: u64,
    /// Whether the chaos layer is armed ([`SystemConfig::chaos`] was
    /// `Some`). When `false`, demand reads take the unchecked fast path
    /// and none of the recovery state below is ever touched.
    chaos: bool,
    /// Copies taken out of service by a hard failure:
    /// `(socket, channel, global line)`. Reads of these redirect to the
    /// survivor without touching the dead copy.
    degraded_lines: BTreeSet<(usize, usize, u64)>,
    /// Fault domains planted as *transient* (`[socket][channel]`): the
    /// §V-B2 repair write clears them. Hard faults never enter here.
    transients: Vec<Vec<HashSet<FaultDomain>>>,
    /// Paced patrol scrubbers, `[socket][channel]`; empty when scrub is
    /// not configured.
    scrubbers: Vec<Vec<Scrubber>>,
    /// Run-wide recovery accounting.
    ledger: RecoveryLedger,
    /// Set when a read hard-degrades a copy; the runner consumes it
    /// ([`take_pending_degrade`]) and drives the engine's §V-E state.
    ///
    /// [`take_pending_degrade`]: SystemFabric::take_pending_degrade
    pending_degrade: bool,
}

impl SystemFabric {
    /// Builds the fabric for a system configuration.
    pub fn new(cfg: &SystemConfig) -> SystemFabric {
        let mesh = Mesh::new(cfg.mesh.0, cfg.mesh.1);
        let cores_per_socket = cfg.engine.cores_per_socket;
        let nodes = cfg.nodes();
        let mut link = LinkTable::new(&cfg.topology_graph(), cfg.clock);
        let place = PlacementMap::new(
            cfg.engine.sockets,
            cfg.engine.page_lines,
            cfg.engine.placement,
        );
        let channels = cfg.channels_per_socket();
        let mut ctrls: Vec<Vec<MemoryController>> = (0..nodes)
            .map(|n| {
                // Far-memory pools (node ids past the sockets) run the
                // CXL-class far-tier DRAM; sockets run Table II DDR4.
                let dram = if n < cfg.engine.sockets {
                    cfg.dram.clone()
                } else {
                    DramConfig::far_tier()
                };
                (0..channels)
                    .map(|ch| MemoryController::new(n * channels + ch, dram.clone()))
                    .collect()
            })
            .collect();
        for socket in &mut ctrls {
            for c in socket.iter_mut() {
                c.set_ecc(cfg.ecc);
            }
        }
        let mut scrubbers = Vec::new();
        if let Some(chaos) = &cfg.chaos {
            if !chaos.link_outages.is_empty() {
                link.set_outages(
                    chaos.link_outages.clone(),
                    chaos.retry_base,
                    chaos.max_retries,
                );
            }
            for (from, to, windows) in &chaos.edge_outages {
                link.set_edge_outages(*from, *to, windows.clone());
            }
            if let Some(scrub) = &chaos.scrub {
                scrubbers = (0..nodes)
                    .map(|_| {
                        (0..channels)
                            .map(|_| Scrubber::new(scrub.region_bytes))
                            .collect()
                    })
                    .collect();
            }
        }
        SystemFabric {
            mode: cfg.engine_mode(),
            mesh,
            cores_per_socket,
            link,
            place,
            ctrls,
            traffic: TrafficStats::new(),
            mirror_rr: 0,
            line_bytes: cfg.dram.line_bytes as u64,
            chaos: cfg.chaos.is_some(),
            degraded_lines: BTreeSet::new(),
            transients: (0..nodes)
                .map(|_| (0..channels).map(|_| HashSet::new()).collect())
                .collect(),
            scrubbers,
            ledger: RecoveryLedger::default(),
            pending_degrade: false,
        }
    }

    /// Inter-socket traffic recorded so far.
    pub fn traffic(&self) -> &TrafficStats {
        &self.traffic
    }

    /// The memory controllers, `[node][channel]`.
    pub fn controllers(&self) -> &[Vec<MemoryController>] {
        &self.ctrls
    }

    /// The per-edge inter-node link table (occupancy, outages).
    pub fn link_table(&self) -> &LinkTable {
        &self.link
    }

    /// The page-granular placement map driving replica homes.
    pub fn placement(&self) -> PlacementMap {
        self.place
    }

    /// Sums DRAM energy across all controllers into one model.
    pub fn total_energy(&self) -> dve_dram::energy::EnergyModel {
        let mut total = dve_dram::energy::EnergyModel::new(0);
        for socket in &self.ctrls {
            for c in socket {
                total.merge(c.energy());
            }
        }
        total
    }

    fn byte_addr(&self, line: LineAddr) -> u64 {
        line * self.line_bytes
    }

    /// Charges a DRAM access onto `t`, splitting the elapsed time into
    /// bank queueing (arrival → first command issue) and bank service
    /// (issue → transfer complete) using [`AccessResult::issued_at`].
    fn charge_dram(t: Stamp, r: &AccessResult) -> Stamp {
        let queued = r.issued_at.raw() - t.at();
        let service = r.complete_at.raw() - r.issued_at.raw();
        t.advance(Component::BankQueue, queued)
            .advance(Component::BankService, service)
    }

    // ----- the in-band recovery detour (§V-B2) ------------------------

    /// Charges a DRAM access made *inside the recovery detour* onto
    /// `t`. The bank still occupies real queue + service time — the
    /// access went through the controller's normal timed path — but
    /// every cycle is attributed to [`Component::Recovery`] so the
    /// breakdown separates "time lost to the fault" from ordinary
    /// memory time.
    fn charge_dram_recovery(t: Stamp, r: &AccessResult) -> Stamp {
        t.advance(Component::Recovery, r.complete_at.raw() - t.at())
    }

    /// The surviving copy for a failed `(node, channel)` holding
    /// `line`, per the scheme's memory layout. `None` means the failed
    /// copy was the only one (baseline NUMA, or an N-node placement
    /// that stores no second copy at that controller) — detection
    /// escalates straight to a machine check.
    fn survivor_of(&self, socket: usize, channel: usize, line: LineAddr) -> Option<(usize, usize)> {
        match self.mode {
            Mode::Baseline => None,
            // The mirror pair lives on the sibling channel of the same
            // socket — no link crossing.
            Mode::IntelMirror => Some((socket, 1 - channel)),
            // Dvé: the placement map pins the home copy at
            // ctrls[home][0] and the replica at ctrls[replica][1], so
            // each copy's survivor is the other.
            Mode::Dve { .. } => {
                let home = self.place.home_of(line);
                let replica = self.place.replica_node(line);
                if socket == home && channel == 0 {
                    Some((replica, 1))
                } else if socket == replica && channel == 1 {
                    Some((home, 0))
                } else if self.place.nodes() == 2 {
                    // Two-node mirror placement keeps both copies in
                    // lockstep across the pair, so even a combination
                    // the map doesn't place (e.g. a scrub probe of the
                    // unused channel) pairs with its diagonal.
                    Some((1 - socket, 1 - channel))
                } else {
                    None
                }
            }
        }
    }

    /// Sends one recovery-class message from socket `from` to `to` at
    /// `now`, riding the link's outage-aware bounded-retry path.
    /// Same-socket legs (mirroring) are free. Returns the arrival time,
    /// or `None` when the retry budget is exhausted (caller escalates).
    fn send_recovery(
        &mut self,
        from: usize,
        to: usize,
        now: u64,
        class: MessageClass,
    ) -> Option<u64> {
        if from == to {
            return Some(now);
        }
        match self
            .link
            .transfer_resilient(from, to, Cycles(now), class.bytes())
        {
            LinkSendOutcome::Delivered { arrival, retries } => {
                self.traffic.record(class);
                if retries > 0 {
                    self.ledger.link_retries += 1;
                }
                Some(arrival.raw())
            }
            LinkSendOutcome::Failed { .. } => {
                self.ledger.link_failed_sends += 1;
                None
            }
        }
    }

    /// A demand read under the armed chaos layer: run the
    /// controller-edge ECC check and, on detection, take the timed
    /// recovery detour. Detection itself is timing-neutral — a clean
    /// read charges exactly what [`charge_dram`] would, so an inert
    /// chaos config reproduces the fault-free goldens bit-for-bit.
    ///
    /// [`charge_dram`]: SystemFabric::charge_dram
    fn checked_read(&mut self, socket: usize, channel: usize, line: LineAddr, t: Stamp) -> Stamp {
        if self.degraded_lines.contains(&(socket, channel, line)) {
            self.ledger.detected_reads += 1;
            return self.redirect(socket, channel, line, t);
        }
        let addr = self.byte_addr(line);
        let (r, outcome) = self.ctrls[socket][channel].read_with_check(addr, Cycles(t.at()));
        let t = Self::charge_dram(t, &r);
        if outcome.is_good() {
            return t;
        }
        self.ledger.detected_reads += 1;
        self.detour(socket, channel, line, t)
    }

    /// The full §V-B2 detour after a detected-uncorrectable read at
    /// `(socket, channel)`: request to the survivor, remote bank read,
    /// data return, repair write + verify re-read at the failed
    /// controller. A good re-read means the fault was transient
    /// (`repaired`); a still-bad re-read hard-degrades the copy
    /// (`degraded` + [`pending_degrade`]); no survivor or a dead link
    /// means a machine check. Every cycle is charged to
    /// [`Component::Recovery`].
    ///
    /// [`pending_degrade`]: SystemFabric::take_pending_degrade
    fn detour(&mut self, socket: usize, channel: usize, line: LineAddr, t: Stamp) -> Stamp {
        let Some((rs, rc)) = self.survivor_of(socket, channel, line) else {
            self.ledger.machine_checks += 1;
            return t;
        };
        let addr = self.byte_addr(line);
        // Request leg to the surviving copy.
        let Some(t1) = self.send_recovery(socket, rs, t.at(), MessageClass::Request) else {
            self.ledger.machine_checks += 1;
            return t;
        };
        let mut t = t.advance(Component::Recovery, t1 - t.at());
        // Survivor bank read (checked — the other copy may be bad too).
        let (r, outcome) = self.ctrls[rs][rc].read_with_check(addr, Cycles(t.at()));
        t = Self::charge_dram_recovery(t, &r);
        if !outcome.is_good() {
            // Both copies failed: notify the requester, raise an MCE.
            if let Some(t2) = self.send_recovery(rs, socket, t.at(), MessageClass::Request) {
                t = t.advance(Component::Recovery, t2 - t.at());
            }
            self.ledger.machine_checks += 1;
            return t;
        }
        // Data return leg.
        let Some(t2) = self.send_recovery(rs, socket, t.at(), MessageClass::DataResponse) else {
            self.ledger.machine_checks += 1;
            return t;
        };
        t = t.advance(Component::Recovery, t2 - t.at());
        self.ledger.corrected += 1;
        // Repair write at the failed controller, which clears transient
        // damage covering the line...
        let w = self.ctrls[socket][channel].access(addr, AccessKind::Write, Cycles(t.at()));
        t = Self::charge_dram_recovery(t, &w);
        self.clear_transients_at(socket, channel, addr);
        // ...then verify with a re-read.
        let (rr, re) = self.ctrls[socket][channel].read_with_check(addr, Cycles(t.at()));
        t = Self::charge_dram_recovery(t, &rr);
        if re.is_good() {
            self.ledger.repaired += 1;
        } else {
            self.ledger.degraded += 1;
            let inserted = self.degraded_lines.insert((socket, channel, line));
            debug_assert!(inserted, "a copy must never degrade twice");
            self.pending_degrade = true;
        }
        t
    }

    /// A read of an already-degraded copy: go straight to the survivor
    /// (no pointless read of the dead copy, no repair attempt). The
    /// caller has already counted `detected_reads`.
    fn redirect(&mut self, socket: usize, channel: usize, line: LineAddr, t: Stamp) -> Stamp {
        let Some((rs, rc)) = self.survivor_of(socket, channel, line) else {
            self.ledger.machine_checks += 1;
            return t;
        };
        let addr = self.byte_addr(line);
        let Some(t1) = self.send_recovery(socket, rs, t.at(), MessageClass::Request) else {
            self.ledger.machine_checks += 1;
            return t;
        };
        let mut t = t.advance(Component::Recovery, t1 - t.at());
        let (r, outcome) = self.ctrls[rs][rc].read_with_check(addr, Cycles(t.at()));
        t = Self::charge_dram_recovery(t, &r);
        if !outcome.is_good() {
            self.ledger.machine_checks += 1;
            return t;
        }
        let Some(t2) = self.send_recovery(rs, socket, t.at(), MessageClass::DataResponse) else {
            self.ledger.machine_checks += 1;
            return t;
        };
        t = t.advance(Component::Recovery, t2 - t.at());
        self.ledger.clean_redirects += 1;
        t
    }

    /// Removes every *transient* fault domain covering `addr` from the
    /// controller — the semantics of the §V-B2 repair write. Hard
    /// faults (not in the transient set) survive and fail the re-read.
    fn clear_transients_at(&mut self, socket: usize, channel: usize, addr: u64) {
        for d in self.ctrls[socket][channel].faulty_domains_at(addr) {
            if self.transients[socket][channel].remove(&d) {
                let repaired = self.ctrls[socket][channel].faults_mut().repair(d);
                debug_assert!(repaired, "transient ledger out of sync with FaultState");
            }
        }
    }

    /// Applies one scheduled fault event. Channels are clamped to what
    /// the scheme actually has (a schedule drawn for two channels stays
    /// valid on baseline's single channel). Idempotent per the
    /// [`FaultState`](dve_dram::fault::FaultState) edge contract:
    /// double-plants and spurious heals are not counted.
    pub fn apply_fault_event(&mut self, ev: &FaultEvent) {
        self.apply_sourced_event(ev, None);
    }

    /// [`apply_fault_event`](SystemFabric::apply_fault_event), with the
    /// plant attributed to a correlated [`FaultSourceKind`] bucket of
    /// the ledger. Attribution follows the same edge contract: a
    /// double-plant that does not land is not counted anywhere.
    pub fn apply_sourced_event(&mut self, ev: &FaultEvent, source: Option<FaultSourceKind>) {
        let socket = ev.socket.min(self.ctrls.len() - 1);
        let channel = ev.channel % self.ctrls[socket].len();
        let gch = self.ctrls[socket][channel].channel();
        match ev.action {
            FaultAction::Plant { site, transient } => {
                let d = site.domain(gch);
                if self.ctrls[socket][channel].faults_mut().fail(d) {
                    self.ledger.faults_planted += 1;
                    match source {
                        Some(FaultSourceKind::Hammer) => self.ledger.hammer_plants += 1,
                        Some(FaultSourceKind::Thermal) => self.ledger.thermal_plants += 1,
                        Some(FaultSourceKind::Aging) => self.ledger.aging_plants += 1,
                        None => {}
                    }
                    if transient {
                        self.transients[socket][channel].insert(d);
                    }
                }
            }
            FaultAction::Heal { site } => {
                let d = site.domain(gch);
                if self.ctrls[socket][channel].faults_mut().repair(d) {
                    self.ledger.faults_healed += 1;
                    self.transients[socket][channel].remove(&d);
                    self.revalidate_degraded(socket, channel);
                }
            }
        }
    }

    /// After a heal, lifts degradations the healed domain was causing:
    /// a `(socket, channel, line)` entry stays only while the
    /// controller would still detect an error there.
    fn revalidate_degraded(&mut self, socket: usize, channel: usize) {
        let ctrl = &self.ctrls[socket][channel];
        let line_bytes = self.line_bytes;
        self.degraded_lines.retain(|&(s, c, line)| {
            s != socket || c != channel || ctrl.would_detect(line * line_bytes)
        });
    }

    /// Runs one paced patrol-scrub slice on `(socket, channel)` at
    /// `now`, reading up to `max_lines` lines through the controller's
    /// normal timed path (scrub reads occupy banks and contend with
    /// demand traffic). Detected-uncorrectable lines are escalated
    /// proactively through the same §V-B2 detour demand reads take.
    /// Returns the time the slice (plus any escalations) finished.
    ///
    /// # Panics
    ///
    /// Panics if scrub was not configured ([`ChaosConfig::scrub`] was
    /// `None`).
    ///
    /// [`ChaosConfig::scrub`]: crate::chaos::ChaosConfig::scrub
    pub fn scrub_tick(&mut self, socket: usize, channel: usize, now: u64, max_lines: u64) -> u64 {
        assert!(!self.scrubbers.is_empty(), "scrub not configured");
        let slice =
            self.scrubbers[socket][channel].slice(&mut self.ctrls[socket][channel], now, max_lines);
        self.ledger.scrub_slices += 1;
        self.ledger.scrub_lines += slice.report.lines;
        self.ledger.scrub_corrected += slice.report.corrected;
        self.ledger.scrub_detected += slice.report.detected;
        let mut end = slice.end;
        for addr in slice.detected_addrs {
            let line = addr / self.line_bytes;
            if self.degraded_lines.contains(&(socket, channel, line)) {
                continue; // already redirected; nothing left to repair
            }
            self.ledger.scrub_escalations += 1;
            self.ledger.detected_reads += 1;
            end = self.detour(socket, channel, line, Stamp::start(end)).at();
        }
        end
    }

    /// Whether the chaos layer is armed.
    pub fn chaos_enabled(&self) -> bool {
        self.chaos
    }

    /// The recovery ledger accumulated so far.
    pub fn ledger(&self) -> RecoveryLedger {
        self.ledger
    }

    /// If `now` falls inside a link outage window, the window's end.
    pub fn link_outage_until(&self, now: u64) -> Option<u64> {
        self.link.outage_until(Cycles(now)).map(|c| c.raw())
    }

    /// Consumes the hard-degradation edge flag (set by the detour when
    /// a post-repair re-read still fails). The runner turns it into the
    /// engine's §V-E degraded state.
    pub fn take_pending_degrade(&mut self) -> bool {
        std::mem::take(&mut self.pending_degrade)
    }

    /// Whether any copy is currently hard-degraded.
    pub fn has_degraded_lines(&self) -> bool {
        !self.degraded_lines.is_empty()
    }

    /// Number of copies currently out of service.
    pub fn degraded_line_count(&self) -> usize {
        self.degraded_lines.len()
    }
}

impl Fabric for SystemFabric {
    /// LLC-slice → directory route. The two agents are colocated on the
    /// directory tile ([`DIR_NODE`]), so this is the real zero-hop
    /// route; the per-core traversal is carried by
    /// [`Fabric::mesh_latency_core`] instead. (This retired the old
    /// `mesh_mean` scalar, which double-charged an average traversal on
    /// top of the per-core one.)
    fn mesh_latency(&self) -> u64 {
        let dir = DIR_NODE % self.mesh.nodes();
        self.mesh.latency_cycles(dir, dir)
    }

    fn mesh_latency_core(&self, core: usize) -> u64 {
        // Core tiles occupy the socket's mesh nodes in order; the
        // directory/memory-controller tile sits at DIR_NODE.
        let tile = core % self.cores_per_socket % self.mesh.nodes();
        self.mesh.latency_cycles(tile, DIR_NODE % self.mesh.nodes())
    }

    fn link_send(&mut self, from: usize, to: usize, t: Stamp, class: MessageClass) -> Stamp {
        self.traffic.record(class);
        let arrive = self.link.transfer(from, to, Cycles(t.at()), class.bytes());
        t.advance(Component::Link, arrive.raw() - t.at())
    }

    fn link_probe(&self, from: usize, to: usize, t: Stamp, class: MessageClass) -> Stamp {
        let arrive = self.link.probe(from, to, Cycles(t.at()), class.bytes());
        t.advance(Component::Link, arrive.raw() - t.at())
    }

    fn mem_read(&mut self, socket: usize, line: LineAddr, t: Stamp) -> Stamp {
        let channel = if matches!(self.mode, Mode::IntelMirror) {
            // Load-balance reads across the mirrored channels.
            self.mirror_rr = self.mirror_rr.wrapping_add(1);
            (self.mirror_rr % 2) as usize
        } else {
            0
        };
        if self.chaos {
            return self.checked_read(socket, channel, line, t);
        }
        let addr = self.byte_addr(line);
        let r = self.ctrls[socket][channel].access(addr, AccessKind::Read, Cycles(t.at()));
        Self::charge_dram(t, &r)
    }

    fn replica_read(&mut self, socket: usize, line: LineAddr, t: Stamp) -> Stamp {
        // The replica always lives on the socket's second channel.
        if self.chaos {
            return self.checked_read(socket, 1, line, t);
        }
        let addr = self.byte_addr(line);
        let r = self.ctrls[socket][1].access(addr, AccessKind::Read, Cycles(t.at()));
        Self::charge_dram(t, &r)
    }

    fn mem_write(&mut self, socket: usize, line: LineAddr, t: Stamp) -> Stamp {
        let addr = self.byte_addr(line);
        let r0 = self.ctrls[socket][0].access(addr, AccessKind::Write, Cycles(t.at()));
        if matches!(self.mode, Mode::IntelMirror) {
            // Mirrored write: both channels, lock-step; the write
            // completes when the slower channel does, so charge the
            // later-completing access's queue/service split.
            let r1 = self.ctrls[socket][1].access(addr, AccessKind::Write, Cycles(t.at()));
            if r1.complete_at > r0.complete_at {
                Self::charge_dram(t, &r1)
            } else {
                Self::charge_dram(t, &r0)
            }
        } else {
            Self::charge_dram(t, &r0)
        }
    }

    fn replica_write(&mut self, socket: usize, line: LineAddr, t: Stamp) -> Stamp {
        let addr = self.byte_addr(line);
        let r = self.ctrls[socket][1].access(addr, AccessKind::Write, Cycles(t.at()));
        Self::charge_dram(t, &r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Scheme;

    #[test]
    fn baseline_has_one_channel_per_socket() {
        let f = SystemFabric::new(&SystemConfig::table_ii(Scheme::BaselineNuma));
        assert_eq!(f.controllers()[0].len(), 1);
        assert_eq!(f.controllers()[1].len(), 1);
    }

    #[test]
    fn dve_has_two_channels_per_socket() {
        let f = SystemFabric::new(&SystemConfig::table_ii(Scheme::DveDeny));
        assert_eq!(f.controllers()[0].len(), 2);
    }

    #[test]
    fn mirror_reads_alternate_channels() {
        let mut f = SystemFabric::new(&SystemConfig::table_ii(Scheme::IntelMirrorPlus));
        for i in 0..10 {
            f.mem_read(0, i, Stamp::start(0));
        }
        let r0 = f.controllers()[0][0].stats().reads;
        let r1 = f.controllers()[0][1].stats().reads;
        assert_eq!(r0, 5);
        assert_eq!(r1, 5);
    }

    #[test]
    fn mirror_writes_hit_both_channels() {
        let mut f = SystemFabric::new(&SystemConfig::table_ii(Scheme::IntelMirrorPlus));
        f.mem_write(0, 1, Stamp::start(0));
        assert_eq!(f.controllers()[0][0].stats().writes, 1);
        assert_eq!(f.controllers()[0][1].stats().writes, 1);
    }

    #[test]
    fn dve_replica_ops_use_second_channel() {
        let mut f = SystemFabric::new(&SystemConfig::table_ii(Scheme::DveAllow));
        f.replica_read(1, 5, Stamp::start(0));
        f.replica_write(1, 5, Stamp::start(0));
        assert_eq!(f.controllers()[1][1].stats().reads, 1);
        assert_eq!(f.controllers()[1][1].stats().writes, 1);
        assert_eq!(f.controllers()[1][0].stats().reads, 0);
    }

    #[test]
    fn per_core_mesh_latency_varies_with_tile() {
        let f = SystemFabric::new(&SystemConfig::table_ii(Scheme::BaselineNuma));
        // Core at the directory tile pays 0 hops; the far corner pays 4.
        assert_eq!(f.mesh_latency_core(2), 0);
        assert_eq!(f.mesh_latency_core(7), 2); // node 7 = (3,1) -> (2,0): 2 hops
                                               // Cores on the two sockets with the same tile index match.
        assert_eq!(f.mesh_latency_core(1), f.mesh_latency_core(9));
        // All within mesh diameter.
        for c in 0..16 {
            assert!(f.mesh_latency_core(c) <= 4);
        }
    }

    #[test]
    fn link_send_records_traffic_and_charges_link() {
        let mut f = SystemFabric::new(&SystemConfig::table_ii(Scheme::BaselineNuma));
        let t = f.link_send(0, 1, Stamp::start(0), MessageClass::DataResponse);
        assert!(t.at() >= 150, "50 ns at 3 GHz plus serialization");
        assert_eq!(t.breakdown().link, t.at(), "all time charged to the link");
        assert_eq!(f.traffic().total_messages(), 1);
    }

    #[test]
    fn llc_and_directory_are_colocated() {
        // The LLC home slice and the directory share the DIR_NODE tile,
        // so the slice->directory route is the real zero-hop route; the
        // per-core route carries the traversal instead.
        let f = SystemFabric::new(&SystemConfig::table_ii(Scheme::BaselineNuma));
        assert_eq!(f.mesh_latency(), 0);
        assert!(f.mesh_latency_core(0) > 0);
    }

    #[test]
    fn dram_charge_splits_queue_and_service() {
        let mut f = SystemFabric::new(&SystemConfig::table_ii(Scheme::BaselineNuma));
        // First read: idle bank, no queueing.
        let t1 = f.mem_read(0, 1, Stamp::start(0));
        assert_eq!(t1.breakdown().bank_queue, 0);
        assert_eq!(t1.breakdown().bank_service, t1.elapsed());
        // Second read to the same bank while busy: queueing appears,
        // and the breakdown still sums to the end-to-end latency.
        let t2 = f.mem_read(0, 1, Stamp::start(1));
        assert!(t2.breakdown().bank_queue > 0, "busy bank must queue");
        assert_eq!(
            t2.breakdown().bank_queue + t2.breakdown().bank_service,
            t2.elapsed()
        );
    }

    fn plant(f: &mut SystemFabric, socket: usize, channel: usize, line: u64, transient: bool) {
        f.apply_fault_event(&FaultEvent {
            at: 0,
            socket,
            channel,
            action: FaultAction::Plant {
                site: crate::chaos::FaultSite::Line { line },
                transient,
            },
        });
    }

    fn chaos_cfg(scheme: Scheme) -> SystemConfig {
        let mut cfg = SystemConfig::table_ii(scheme);
        cfg.chaos = Some(crate::chaos::ChaosConfig::inert());
        cfg
    }

    #[test]
    fn inert_chaos_reads_are_bit_identical() {
        let mut plain = SystemFabric::new(&SystemConfig::table_ii(Scheme::DveDeny));
        let mut armed = SystemFabric::new(&chaos_cfg(Scheme::DveDeny));
        for i in 0..20 {
            let a = plain.mem_read(0, i % 5, Stamp::start(i * 3));
            let b = armed.mem_read(0, i % 5, Stamp::start(i * 3));
            assert_eq!(a.at(), b.at());
            assert_eq!(a.breakdown(), b.breakdown());
        }
        assert!(!armed.ledger().any_activity());
    }

    #[test]
    fn transient_fault_takes_detour_and_repairs() {
        let mut f = SystemFabric::new(&chaos_cfg(Scheme::DveDeny));
        plant(&mut f, 0, 0, 7, true);
        let t = f.mem_read(0, 7, Stamp::start(0));
        let l = f.ledger();
        assert_eq!(l.detected_reads, 1);
        assert_eq!(l.corrected, 1);
        assert_eq!(l.repaired, 1, "repair write clears a transient fault");
        assert_eq!(l.degraded, 0);
        assert!(
            t.breakdown().recovery > 0,
            "the detour costs simulated time"
        );
        assert_eq!(t.at(), t.breakdown().total(), "conservation holds");
        // Survivor = the replica on the other socket's second channel.
        assert_eq!(f.controllers()[1][1].stats().reads, 1);
        // The repaired copy now reads clean — no second detour.
        let t2 = f.mem_read(0, 7, Stamp::start(t.at()));
        assert_eq!(t2.breakdown().recovery, 0);
        assert_eq!(f.ledger().detected_reads, 1);
        assert!(f.ledger().consistent());
    }

    #[test]
    fn hard_fault_degrades_then_redirects() {
        let mut f = SystemFabric::new(&chaos_cfg(Scheme::DveDeny));
        plant(&mut f, 0, 0, 9, false);
        f.mem_read(0, 9, Stamp::start(0));
        let l = f.ledger();
        assert_eq!(l.corrected, 1);
        assert_eq!(l.degraded, 1, "hard fault survives the repair write");
        assert!(f.take_pending_degrade(), "runner sees the degrade edge");
        assert!(!f.take_pending_degrade(), "edge flag is consumed");
        assert_eq!(f.degraded_line_count(), 1);
        // Later reads skip the dead copy and go straight to the survivor.
        let t = f.mem_read(0, 9, Stamp::start(1_000));
        assert_eq!(f.ledger().clean_redirects, 1);
        assert!(t.breakdown().recovery > 0);
        assert_eq!(t.breakdown().bank_queue + t.breakdown().bank_service, 0);
        assert!(f.ledger().consistent());
    }

    #[test]
    fn baseline_detection_is_a_machine_check() {
        let mut f = SystemFabric::new(&chaos_cfg(Scheme::BaselineNuma));
        plant(&mut f, 0, 0, 3, false);
        f.mem_read(0, 3, Stamp::start(0));
        let l = f.ledger();
        assert_eq!(l.machine_checks, 1, "no second copy to recover from");
        assert_eq!(l.corrected, 0);
        assert!(l.consistent());
    }

    #[test]
    fn both_copies_bad_is_a_machine_check() {
        let mut f = SystemFabric::new(&chaos_cfg(Scheme::DveDeny));
        plant(&mut f, 0, 0, 11, false); // home copy
        plant(&mut f, 1, 1, 11, false); // replica (the survivor)
        f.mem_read(0, 11, Stamp::start(0));
        let l = f.ledger();
        assert_eq!(l.machine_checks, 1);
        assert_eq!(l.corrected, 0);
        assert!(l.consistent());
    }

    #[test]
    fn mirror_detour_stays_on_socket() {
        let mut f = SystemFabric::new(&chaos_cfg(Scheme::IntelMirrorPlus));
        // Read 1 lands on channel 1 (rr starts there); fault channel 1.
        plant(&mut f, 0, 1, 5, true);
        let before = f.traffic().total_messages();
        f.mem_read(0, 5, Stamp::start(0));
        assert_eq!(f.ledger().repaired, 1);
        assert_eq!(
            f.traffic().total_messages(),
            before,
            "mirror recovery never crosses the link"
        );
        assert_eq!(
            f.controllers()[0][0].stats().reads,
            1,
            "sibling channel served"
        );
    }

    #[test]
    fn heal_lifts_degradation() {
        let mut f = SystemFabric::new(&chaos_cfg(Scheme::DveDeny));
        plant(&mut f, 0, 0, 9, false);
        f.mem_read(0, 9, Stamp::start(0));
        assert_eq!(f.degraded_line_count(), 1);
        f.apply_fault_event(&FaultEvent {
            at: 10,
            socket: 0,
            channel: 0,
            action: FaultAction::Heal {
                site: crate::chaos::FaultSite::Line { line: 9 },
            },
        });
        assert_eq!(f.ledger().faults_healed, 1);
        assert_eq!(f.degraded_line_count(), 0, "heal lifts the degradation");
        // And the copy serves demand reads again, clean.
        let t = f.mem_read(0, 9, Stamp::start(2_000));
        assert_eq!(t.breakdown().recovery, 0);
    }

    #[test]
    fn double_plant_and_spurious_heal_not_counted() {
        let mut f = SystemFabric::new(&chaos_cfg(Scheme::DveDeny));
        plant(&mut f, 0, 0, 4, false);
        plant(&mut f, 0, 0, 4, false);
        assert_eq!(f.ledger().faults_planted, 1);
        f.apply_fault_event(&FaultEvent {
            at: 0,
            socket: 1,
            channel: 0,
            action: FaultAction::Heal {
                site: crate::chaos::FaultSite::Line { line: 4 },
            },
        });
        assert_eq!(f.ledger().faults_healed, 0, "nothing to heal there");
    }

    #[test]
    fn scrub_tick_counts_lines_and_escalates_detections() {
        let mut cfg = chaos_cfg(Scheme::DveDeny);
        cfg.chaos.as_mut().unwrap().scrub = Some(crate::chaos::ScrubConfig {
            region_bytes: 1 << 12, // 64 lines
            lines_per_slice: 16,
            interval: 1_000,
        });
        let mut f = SystemFabric::new(&cfg);
        plant(&mut f, 0, 0, 5, true); // inside the scrubbed region
        let mut t = 0;
        for _ in 0..4 {
            t = f.scrub_tick(0, 0, t, 16);
        }
        let l = f.ledger();
        assert_eq!(l.scrub_slices, 4);
        assert_eq!(l.scrub_lines, 64, "one full pass");
        assert_eq!(l.scrub_detected, 1);
        assert_eq!(l.scrub_escalations, 1, "detection escalated to §V-B2");
        assert_eq!(l.repaired, 1, "transient fault scrubbed away");
        assert!(l.consistent());
        // The next pass reads clean.
        for _ in 0..4 {
            t = f.scrub_tick(0, 0, t, 16);
        }
        assert_eq!(f.ledger().scrub_detected, 1);
    }

    #[test]
    fn energy_aggregates_all_controllers() {
        let mut f = SystemFabric::new(&SystemConfig::table_ii(Scheme::DveDeny));
        f.mem_read(0, 1, Stamp::start(0));
        f.replica_write(1, 1, Stamp::start(0));
        let e = f.total_energy();
        assert_eq!(e.reads(), 1);
        assert_eq!(e.writes(), 1);
    }
}
