//! The cycle-accounting fabric: protocol actions → platform latencies.
//!
//! Implements [`Fabric`] over the real substrates: per-socket DRAM
//! controllers (one channel in the baseline, two when replication or
//! mirroring doubles capacity), the intra-socket mesh, and the
//! inter-socket link with serialization/occupancy. This is where the
//! scheme-specific memory layouts live:
//!
//! * **Baseline NUMA** — the home copy is the only copy, on channel 0 of
//!   the home socket.
//! * **Intel-mirroring++** — channel 1 of the *same* socket mirrors
//!   channel 0; reads round-robin across the two channels (the paper's
//!   "actively load balancing reads"), writes go to both.
//! * **Dvé** — the home copy lives on channel 0 of the home socket and
//!   the replica on channel 1 of the *other* socket.
//!
//! Every timed service advances the caller's [`Stamp`] by charging its
//! cycles to the right [`Component`]: mesh hops to `Mesh`, link wire
//! time to `Link`, and DRAM accesses split into `BankQueue` (arrival →
//! first command issue, read off [`AccessResult::issued_at`]) and
//! `BankService` (issue → data transfer complete). The breakdown an
//! access accumulates therefore always sums to its end-to-end latency.

use crate::config::SystemConfig;
use dve_coherence::engine::Mode;
use dve_coherence::fabric::Fabric;
use dve_coherence::types::LineAddr;
use dve_dram::controller::{AccessKind, AccessResult, MemoryController};
use dve_noc::link::InterSocketLink;
use dve_noc::mesh::Mesh;
use dve_noc::traffic::{MessageClass, TrafficStats};
use dve_sim::latency::{Component, Stamp};
use dve_sim::time::Cycles;

/// Mesh node hosting the directory + memory controller tile. The LLC
/// home slice for a line is colocated with its directory entry on this
/// tile, so the slice→directory route is zero hops — the per-core tile
/// route ([`Fabric::mesh_latency_core`]) carries the real traversal.
const DIR_NODE: usize = 2;

/// The timed platform fabric.
#[derive(Debug)]
pub struct SystemFabric {
    mode: Mode,
    mesh: Mesh,
    cores_per_socket: usize,
    link: InterSocketLink,
    /// `ctrls[socket][channel]`.
    ctrls: Vec<Vec<MemoryController>>,
    traffic: TrafficStats,
    mirror_rr: u64,
    line_bytes: u64,
}

impl SystemFabric {
    /// Builds the fabric for a system configuration.
    pub fn new(cfg: &SystemConfig) -> SystemFabric {
        let mesh = Mesh::new(cfg.mesh.0, cfg.mesh.1);
        let cores_per_socket = cfg.engine.cores_per_socket;
        let link = InterSocketLink::new(cfg.link_latency, cfg.clock, cfg.link_bytes_per_cycle);
        let channels = cfg.channels_per_socket();
        let ctrls = (0..2)
            .map(|s| {
                (0..channels)
                    .map(|ch| MemoryController::new(s * channels + ch, cfg.dram.clone()))
                    .collect()
            })
            .collect();
        SystemFabric {
            mode: cfg.engine_mode(),
            mesh,
            cores_per_socket,
            link,
            ctrls,
            traffic: TrafficStats::new(),
            mirror_rr: 0,
            line_bytes: cfg.dram.line_bytes as u64,
        }
    }

    /// Inter-socket traffic recorded so far.
    pub fn traffic(&self) -> &TrafficStats {
        &self.traffic
    }

    /// The memory controllers, `[socket][channel]`.
    pub fn controllers(&self) -> &[Vec<MemoryController>] {
        &self.ctrls
    }

    /// Sums DRAM energy across all controllers into one model.
    pub fn total_energy(&self) -> dve_dram::energy::EnergyModel {
        let mut total = dve_dram::energy::EnergyModel::new(0);
        for socket in &self.ctrls {
            for c in socket {
                total.merge(c.energy());
            }
        }
        total
    }

    fn byte_addr(&self, line: LineAddr) -> u64 {
        line * self.line_bytes
    }

    /// Charges a DRAM access onto `t`, splitting the elapsed time into
    /// bank queueing (arrival → first command issue) and bank service
    /// (issue → transfer complete) using [`AccessResult::issued_at`].
    fn charge_dram(t: Stamp, r: &AccessResult) -> Stamp {
        let queued = r.issued_at.raw() - t.at();
        let service = r.complete_at.raw() - r.issued_at.raw();
        t.advance(Component::BankQueue, queued)
            .advance(Component::BankService, service)
    }
}

impl Fabric for SystemFabric {
    /// LLC-slice → directory route. The two agents are colocated on the
    /// directory tile ([`DIR_NODE`]), so this is the real zero-hop
    /// route; the per-core traversal is carried by
    /// [`Fabric::mesh_latency_core`] instead. (This retired the old
    /// `mesh_mean` scalar, which double-charged an average traversal on
    /// top of the per-core one.)
    fn mesh_latency(&self) -> u64 {
        let dir = DIR_NODE % self.mesh.nodes();
        self.mesh.latency_cycles(dir, dir)
    }

    fn mesh_latency_core(&self, core: usize) -> u64 {
        // Core tiles occupy the socket's mesh nodes in order; the
        // directory/memory-controller tile sits at DIR_NODE.
        let tile = core % self.cores_per_socket % self.mesh.nodes();
        self.mesh.latency_cycles(tile, DIR_NODE % self.mesh.nodes())
    }

    fn link_send(&mut self, from: usize, to: usize, t: Stamp, class: MessageClass) -> Stamp {
        self.traffic.record(class);
        let arrive = self.link.transfer(from, to, Cycles(t.at()), class.bytes());
        t.advance(Component::Link, arrive.raw() - t.at())
    }

    fn link_probe(&self, from: usize, to: usize, t: Stamp, class: MessageClass) -> Stamp {
        let arrive = self.link.probe(from, to, Cycles(t.at()), class.bytes());
        t.advance(Component::Link, arrive.raw() - t.at())
    }

    fn mem_read(&mut self, socket: usize, line: LineAddr, t: Stamp) -> Stamp {
        let addr = self.byte_addr(line);
        let channel = if matches!(self.mode, Mode::IntelMirror) {
            // Load-balance reads across the mirrored channels.
            self.mirror_rr = self.mirror_rr.wrapping_add(1);
            (self.mirror_rr % 2) as usize
        } else {
            0
        };
        let r = self.ctrls[socket][channel].access(addr, AccessKind::Read, Cycles(t.at()));
        Self::charge_dram(t, &r)
    }

    fn replica_read(&mut self, socket: usize, line: LineAddr, t: Stamp) -> Stamp {
        let addr = self.byte_addr(line);
        // The replica always lives on the socket's second channel.
        let r = self.ctrls[socket][1].access(addr, AccessKind::Read, Cycles(t.at()));
        Self::charge_dram(t, &r)
    }

    fn mem_write(&mut self, socket: usize, line: LineAddr, t: Stamp) -> Stamp {
        let addr = self.byte_addr(line);
        let r0 = self.ctrls[socket][0].access(addr, AccessKind::Write, Cycles(t.at()));
        if matches!(self.mode, Mode::IntelMirror) {
            // Mirrored write: both channels, lock-step; the write
            // completes when the slower channel does, so charge the
            // later-completing access's queue/service split.
            let r1 = self.ctrls[socket][1].access(addr, AccessKind::Write, Cycles(t.at()));
            if r1.complete_at > r0.complete_at {
                Self::charge_dram(t, &r1)
            } else {
                Self::charge_dram(t, &r0)
            }
        } else {
            Self::charge_dram(t, &r0)
        }
    }

    fn replica_write(&mut self, socket: usize, line: LineAddr, t: Stamp) -> Stamp {
        let addr = self.byte_addr(line);
        let r = self.ctrls[socket][1].access(addr, AccessKind::Write, Cycles(t.at()));
        Self::charge_dram(t, &r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Scheme;

    #[test]
    fn baseline_has_one_channel_per_socket() {
        let f = SystemFabric::new(&SystemConfig::table_ii(Scheme::BaselineNuma));
        assert_eq!(f.controllers()[0].len(), 1);
        assert_eq!(f.controllers()[1].len(), 1);
    }

    #[test]
    fn dve_has_two_channels_per_socket() {
        let f = SystemFabric::new(&SystemConfig::table_ii(Scheme::DveDeny));
        assert_eq!(f.controllers()[0].len(), 2);
    }

    #[test]
    fn mirror_reads_alternate_channels() {
        let mut f = SystemFabric::new(&SystemConfig::table_ii(Scheme::IntelMirrorPlus));
        for i in 0..10 {
            f.mem_read(0, i, Stamp::start(0));
        }
        let r0 = f.controllers()[0][0].stats().reads;
        let r1 = f.controllers()[0][1].stats().reads;
        assert_eq!(r0, 5);
        assert_eq!(r1, 5);
    }

    #[test]
    fn mirror_writes_hit_both_channels() {
        let mut f = SystemFabric::new(&SystemConfig::table_ii(Scheme::IntelMirrorPlus));
        f.mem_write(0, 1, Stamp::start(0));
        assert_eq!(f.controllers()[0][0].stats().writes, 1);
        assert_eq!(f.controllers()[0][1].stats().writes, 1);
    }

    #[test]
    fn dve_replica_ops_use_second_channel() {
        let mut f = SystemFabric::new(&SystemConfig::table_ii(Scheme::DveAllow));
        f.replica_read(1, 5, Stamp::start(0));
        f.replica_write(1, 5, Stamp::start(0));
        assert_eq!(f.controllers()[1][1].stats().reads, 1);
        assert_eq!(f.controllers()[1][1].stats().writes, 1);
        assert_eq!(f.controllers()[1][0].stats().reads, 0);
    }

    #[test]
    fn per_core_mesh_latency_varies_with_tile() {
        let f = SystemFabric::new(&SystemConfig::table_ii(Scheme::BaselineNuma));
        // Core at the directory tile pays 0 hops; the far corner pays 4.
        assert_eq!(f.mesh_latency_core(2), 0);
        assert_eq!(f.mesh_latency_core(7), 2); // node 7 = (3,1) -> (2,0): 2 hops
                                               // Cores on the two sockets with the same tile index match.
        assert_eq!(f.mesh_latency_core(1), f.mesh_latency_core(9));
        // All within mesh diameter.
        for c in 0..16 {
            assert!(f.mesh_latency_core(c) <= 4);
        }
    }

    #[test]
    fn link_send_records_traffic_and_charges_link() {
        let mut f = SystemFabric::new(&SystemConfig::table_ii(Scheme::BaselineNuma));
        let t = f.link_send(0, 1, Stamp::start(0), MessageClass::DataResponse);
        assert!(t.at() >= 150, "50 ns at 3 GHz plus serialization");
        assert_eq!(t.breakdown().link, t.at(), "all time charged to the link");
        assert_eq!(f.traffic().total_messages(), 1);
    }

    #[test]
    fn llc_and_directory_are_colocated() {
        // The LLC home slice and the directory share the DIR_NODE tile,
        // so the slice->directory route is the real zero-hop route; the
        // per-core route carries the traversal instead.
        let f = SystemFabric::new(&SystemConfig::table_ii(Scheme::BaselineNuma));
        assert_eq!(f.mesh_latency(), 0);
        assert!(f.mesh_latency_core(0) > 0);
    }

    #[test]
    fn dram_charge_splits_queue_and_service() {
        let mut f = SystemFabric::new(&SystemConfig::table_ii(Scheme::BaselineNuma));
        // First read: idle bank, no queueing.
        let t1 = f.mem_read(0, 1, Stamp::start(0));
        assert_eq!(t1.breakdown().bank_queue, 0);
        assert_eq!(t1.breakdown().bank_service, t1.elapsed());
        // Second read to the same bank while busy: queueing appears,
        // and the breakdown still sums to the end-to-end latency.
        let t2 = f.mem_read(0, 1, Stamp::start(1));
        assert!(t2.breakdown().bank_queue > 0, "busy bank must queue");
        assert_eq!(
            t2.breakdown().bank_queue + t2.breakdown().bank_service,
            t2.elapsed()
        );
    }

    #[test]
    fn energy_aggregates_all_controllers() {
        let mut f = SystemFabric::new(&SystemConfig::table_ii(Scheme::DveDeny));
        f.mem_read(0, 1, Stamp::start(0));
        f.replica_write(1, 1, Stamp::start(0));
        let e = f.total_energy();
        assert_eq!(e.reads(), 1);
        assert_eq!(e.writes(), 1);
    }
}
