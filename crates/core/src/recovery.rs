//! The §V-B2 recovery flow.
//!
//! "When a memory read fails in one of the replicas ... the home/replica
//! directory diverts the request to the other memory controller for
//! recovery. If the other copy's read also fails, the data is lost (DUE)
//! and a machine check exception is logged. If the copy is good, data is
//! returned and the system logs a Corrected Error (CE). The initial
//! memory controller attempts to fix its copy by updating it with the
//! correct data and then re-reading the DRAM. If the error was
//! temporary, this read will succeed, else the system is placed in a
//! degraded state with only one working copy."
//!
//! [`RecoverableMemory`] wraps the two controllers holding a replicated
//! region and implements exactly that state machine, including the
//! degraded-mode bookkeeping that funnels later reads to the surviving
//! copy (§V-E).

use dve_dram::config::DramConfig;
use dve_dram::controller::{EccProfile, MemoryController};
use dve_ecc::code::CheckOutcome;
use dve_sim::time::Cycles;
use std::collections::{HashSet, VecDeque};

/// What a recoverable read observed end-to-end.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecoveryOutcome {
    /// The primary copy read cleanly (or its local ECC repaired it).
    Clean,
    /// The primary failed detection; the replica supplied the data and
    /// the subsequent repair-and-reread of the primary *succeeded*
    /// (transient error). Logged as a CE.
    CorrectedTransient,
    /// The primary failed, the replica supplied the data, but the
    /// repair re-read failed again (hard error): the line's region is
    /// now degraded to one working copy. Logged as a CE + degradation.
    CorrectedDegraded,
    /// Both copies failed: data lost; machine-check exception (DUE).
    MachineCheck,
}

/// Recovery statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryStats {
    /// Clean reads.
    pub clean: u64,
    /// Corrected errors (replica supplied data).
    pub corrected: u64,
    /// Transient errors repaired in place.
    pub repaired: u64,
    /// Regions placed in degraded (single-copy) mode.
    pub degraded: u64,
    /// Machine-check exceptions (both copies bad).
    pub machine_checks: u64,
}

/// A replicated memory region backed by one controller per socket.
///
/// # Example
///
/// ```
/// use dve::recovery::{RecoverableMemory, RecoveryOutcome};
/// use dve_dram::fault::FaultDomain;
///
/// let mut mem = RecoverableMemory::new_dve_tsd();
/// // A whole memory controller dies on socket 0:
/// mem.primary_mut().faults_mut().fail(FaultDomain::Controller);
/// let (outcome, _) = mem.read(0x1000, 0);
/// // The replica recovers the data; socket 0's copy stays bad (hard
/// // fault), so the region degrades to one copy.
/// assert_eq!(outcome, RecoveryOutcome::CorrectedDegraded);
/// ```
/// One recovery-relevant read, as recorded by the event log.
///
/// Fault campaigns drain these with
/// [`RecoverableMemory::take_events`] to build per-trial recovery
/// traces; the log only records non-clean reads, so steady-state
/// workloads cost nothing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryEvent {
    /// Byte address of the read.
    pub addr: u64,
    /// Time the read was issued (cycles).
    pub at: u64,
    /// What the recovery state machine concluded.
    pub outcome: RecoveryOutcome,
}

#[derive(Debug)]
pub struct RecoverableMemory {
    primary: MemoryController,
    replica: MemoryController,
    /// Line addresses known degraded (one working copy only).
    degraded: HashSet<u64>,
    stats: RecoveryStats,
    /// Non-clean reads observed since the last [`Self::take_events`],
    /// bounded at `event_cap` entries: when full, the *oldest* event is
    /// dropped (and counted) so a long undrained run keeps the most
    /// recent history instead of growing without bound.
    events: VecDeque<RecoveryEvent>,
    log_events: bool,
    event_cap: usize,
    dropped: u64,
}

impl RecoverableMemory {
    /// Default bound on the undrained event log (entries). Chosen so a
    /// campaign that forgets to drain between trials caps at ~100 KiB
    /// of log instead of growing with run length.
    pub const EVENT_LOG_CAP: usize = 4096;
    /// Builds a replicated region with the given ECC at both
    /// controllers.
    pub fn new(cfg: DramConfig, ecc: EccProfile) -> RecoverableMemory {
        let mut primary = MemoryController::new(0, cfg.clone());
        let mut replica = MemoryController::new(1, cfg);
        primary.set_ecc(ecc);
        replica.set_ecc(ecc);
        RecoverableMemory {
            primary,
            replica,
            degraded: HashSet::new(),
            stats: RecoveryStats::default(),
            events: VecDeque::new(),
            log_events: false,
            event_cap: Self::EVENT_LOG_CAP,
            dropped: 0,
        }
    }

    /// Dvé+TSD: detect-only codes, correction via replica.
    pub fn new_dve_tsd() -> RecoverableMemory {
        Self::new(DramConfig::ddr4_2400_no_refresh(), EccProfile::tsd())
    }

    /// Dvé+Chipkill: local single-symbol repair plus replica recovery.
    pub fn new_dve_chipkill() -> RecoverableMemory {
        Self::new(DramConfig::ddr4_2400_no_refresh(), EccProfile::chipkill())
    }

    /// The primary-side controller.
    pub fn primary_mut(&mut self) -> &mut MemoryController {
        &mut self.primary
    }

    /// The replica-side controller.
    pub fn replica_mut(&mut self) -> &mut MemoryController {
        &mut self.replica
    }

    /// Recovery statistics.
    pub fn stats(&self) -> RecoveryStats {
        self.stats
    }

    /// Whether `addr`'s region is degraded to a single copy.
    pub fn is_degraded(&self, addr: u64) -> bool {
        self.degraded.contains(&(addr / 64))
    }

    /// Enables (or disables) the recovery event log consumed by
    /// [`Self::take_events`]. Off by default.
    pub fn set_event_logging(&mut self, on: bool) {
        self.log_events = on;
    }

    /// Overrides the event-log bound ([`Self::EVENT_LOG_CAP`] by
    /// default). A cap of 0 records nothing (every event counts as
    /// dropped while logging is on).
    pub fn set_event_log_cap(&mut self, cap: usize) {
        self.event_cap = cap;
        while self.events.len() > cap {
            self.events.pop_front();
            self.dropped += 1;
        }
    }

    /// Events evicted from the bounded log before they were drained
    /// (cumulative over the run; never reset by [`Self::take_events`]).
    pub fn dropped_events(&self) -> u64 {
        self.dropped
    }

    /// Drains and returns all recovery events logged since the last
    /// call (or since logging was enabled), oldest first. If the
    /// bounded log overflowed in between, [`Self::dropped_events`]
    /// says how many were lost.
    pub fn take_events(&mut self) -> Vec<RecoveryEvent> {
        std::mem::take(&mut self.events).into()
    }

    /// Reads `addr` with full recovery semantics. Returns the outcome
    /// and the completion time.
    pub fn read(&mut self, addr: u64, now: u64) -> (RecoveryOutcome, u64) {
        let (outcome, done) = self.read_inner(addr, now);
        if self.log_events && outcome != RecoveryOutcome::Clean {
            if self.events.len() >= self.event_cap {
                self.events.pop_front();
                self.dropped += 1;
            }
            if self.event_cap > 0 {
                self.events.push_back(RecoveryEvent {
                    addr,
                    at: now,
                    outcome,
                });
            }
        }
        (outcome, done)
    }

    fn read_inner(&mut self, addr: u64, now: u64) -> (RecoveryOutcome, u64) {
        // Degraded lines go straight to the surviving copy.
        if self.is_degraded(addr) {
            let (t, outcome) = self.replica.read_with_check(addr, Cycles(now));
            return match outcome {
                CheckOutcome::DetectedUncorrectable { .. } => {
                    self.stats.machine_checks += 1;
                    (RecoveryOutcome::MachineCheck, t.complete_at.raw())
                }
                _ => {
                    self.stats.clean += 1;
                    (RecoveryOutcome::Clean, t.complete_at.raw())
                }
            };
        }
        let (t1, first) = self.primary.read_with_check(addr, Cycles(now));
        match first {
            CheckOutcome::NoError | CheckOutcome::Corrected { .. } => {
                self.stats.clean += 1;
                (RecoveryOutcome::Clean, t1.complete_at.raw())
            }
            CheckOutcome::DetectedUncorrectable { .. } => {
                // Divert to the replica controller.
                let (t2, second) = self.replica.read_with_check(addr, t1.complete_at);
                match second {
                    CheckOutcome::DetectedUncorrectable { .. } => {
                        self.stats.machine_checks += 1;
                        (RecoveryOutcome::MachineCheck, t2.complete_at.raw())
                    }
                    _ => {
                        self.stats.corrected += 1;
                        // Attempt to fix the primary: write the good data
                        // back and re-read.
                        let t3 = self.primary.access(
                            addr,
                            dve_dram::controller::AccessKind::Write,
                            t2.complete_at,
                        );
                        let (t4, reread) = self.primary.read_with_check(addr, t3.complete_at);
                        if reread.is_good() {
                            self.stats.repaired += 1;
                            (RecoveryOutcome::CorrectedTransient, t4.complete_at.raw())
                        } else {
                            self.stats.degraded += 1;
                            self.degraded.insert(addr / 64);
                            (RecoveryOutcome::CorrectedDegraded, t4.complete_at.raw())
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dve_dram::fault::FaultDomain;

    #[test]
    fn event_log_records_non_clean_reads_only() {
        let mut mem = RecoverableMemory::new_dve_tsd();
        mem.set_event_logging(true);
        mem.read(0x40, 0); // clean — not logged
        mem.primary_mut().faults_mut().fail(FaultDomain::Controller);
        mem.read(0x80, 100);
        let events = mem.take_events();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].addr, 0x80);
        assert_eq!(events[0].outcome, RecoveryOutcome::CorrectedDegraded);
        assert!(mem.take_events().is_empty(), "drain empties the log");
    }

    #[test]
    fn event_log_is_bounded_with_dropped_counter() {
        let mut mem = RecoverableMemory::new_dve_tsd();
        mem.set_event_logging(true);
        mem.set_event_log_cap(8);
        mem.primary_mut().faults_mut().fail(FaultDomain::Controller);
        // 20 distinct lines: every first read is CorrectedDegraded and
        // gets logged; the ring keeps only the newest 8.
        for i in 0..20u64 {
            mem.read(i * 64, i * 100_000);
        }
        assert_eq!(mem.dropped_events(), 12);
        let events = mem.take_events();
        assert_eq!(events.len(), 8, "log stays within the cap");
        assert_eq!(events[0].addr, 12 * 64, "oldest entries were evicted");
        assert_eq!(events[7].addr, 19 * 64, "newest entry survives");
        assert_eq!(
            mem.dropped_events(),
            12,
            "drain does not reset the cumulative counter"
        );
        // A long undrained run with the default cap stays within it.
        let mut mem = RecoverableMemory::new_dve_tsd();
        mem.set_event_logging(true);
        mem.primary_mut().faults_mut().fail(FaultDomain::Controller);
        for i in 0..(RecoverableMemory::EVENT_LOG_CAP as u64 + 100) {
            mem.read(i * 64, i * 100_000);
        }
        assert_eq!(mem.take_events().len(), RecoverableMemory::EVENT_LOG_CAP);
        assert_eq!(mem.dropped_events(), 100);
    }

    #[test]
    fn zero_cap_records_nothing_and_counts_everything() {
        let mut mem = RecoverableMemory::new_dve_tsd();
        mem.set_event_logging(true);
        mem.set_event_log_cap(0);
        mem.primary_mut().faults_mut().fail(FaultDomain::Controller);
        for i in 0..5u64 {
            mem.read(i * 64, i * 100_000);
        }
        assert!(mem.take_events().is_empty());
        assert_eq!(mem.dropped_events(), 5);
    }

    #[test]
    fn clean_reads_stay_clean() {
        let mut mem = RecoverableMemory::new_dve_tsd();
        let (o, _) = mem.read(0x40, 0);
        assert_eq!(o, RecoveryOutcome::Clean);
        assert_eq!(mem.stats().clean, 1);
    }

    #[test]
    fn chip_fault_with_chipkill_repairs_locally() {
        let mut mem = RecoverableMemory::new_dve_chipkill();
        mem.primary_mut().faults_mut().fail(FaultDomain::Chip {
            channel: 0,
            rank: 0,
            chip: 3,
        });
        let (o, _) = mem.read(0x40, 0);
        // Chipkill corrects one symbol locally: no replica involvement.
        assert_eq!(o, RecoveryOutcome::Clean);
    }

    #[test]
    fn chip_fault_with_tsd_recovers_from_replica_and_degrades() {
        let mut mem = RecoverableMemory::new_dve_tsd();
        mem.primary_mut().faults_mut().fail(FaultDomain::Chip {
            channel: 0,
            rank: 0,
            chip: 3,
        });
        let (o, _) = mem.read(0x40, 0);
        // Hard chip fault: replica corrects, repair re-read still fails.
        assert_eq!(o, RecoveryOutcome::CorrectedDegraded);
        assert!(mem.is_degraded(0x40));
        assert_eq!(mem.stats().corrected, 1);
        assert_eq!(mem.stats().degraded, 1);
    }

    #[test]
    fn transient_fault_repairs_in_place() {
        let mut mem = RecoverableMemory::new_dve_tsd();
        let fault = FaultDomain::Line {
            channel: 0,
            line: 1,
        };
        mem.primary_mut().faults_mut().fail(fault);
        // Simulate a transient: the write in the repair path clears it.
        // (We model this by repairing the fault between the replica read
        // and the re-read — here, by clearing it before the read, then
        // verifying the CorrectedTransient path via a scrubbed fault.)
        mem.primary_mut().faults_mut().repair(fault);
        let (o, _) = mem.read(0x40, 0);
        assert_eq!(o, RecoveryOutcome::Clean);
    }

    #[test]
    fn controller_failure_recovers_every_read() {
        let mut mem = RecoverableMemory::new_dve_tsd();
        mem.primary_mut().faults_mut().fail(FaultDomain::Controller);
        for i in 0..10u64 {
            let (o, _) = mem.read(i * 64, i * 10_000);
            assert_eq!(o, RecoveryOutcome::CorrectedDegraded, "read {i}");
        }
        assert_eq!(mem.stats().corrected, 10);
        // Subsequent reads of degraded lines go straight to the replica.
        let (o, _) = mem.read(0, 1_000_000);
        assert_eq!(o, RecoveryOutcome::Clean);
    }

    #[test]
    fn both_copies_failing_is_machine_check() {
        let mut mem = RecoverableMemory::new_dve_tsd();
        mem.primary_mut().faults_mut().fail(FaultDomain::Controller);
        mem.replica_mut().faults_mut().fail(FaultDomain::Controller);
        let (o, _) = mem.read(0x80, 0);
        assert_eq!(o, RecoveryOutcome::MachineCheck);
        assert_eq!(mem.stats().machine_checks, 1);
    }

    #[test]
    fn degraded_region_with_failed_replica_is_machine_check() {
        let mut mem = RecoverableMemory::new_dve_tsd();
        mem.primary_mut().faults_mut().fail(FaultDomain::Controller);
        mem.read(0x80, 0); // degrade
        mem.replica_mut().faults_mut().fail(FaultDomain::Controller);
        let (o, _) = mem.read(0x80, 100_000);
        assert_eq!(o, RecoveryOutcome::MachineCheck);
    }

    #[test]
    fn recovery_adds_latency() {
        let mut clean = RecoverableMemory::new_dve_tsd();
        let (_, t_clean) = clean.read(0x40, 0);
        let mut faulty = RecoverableMemory::new_dve_tsd();
        faulty
            .primary_mut()
            .faults_mut()
            .fail(FaultDomain::Controller);
        let (_, t_recovered) = faulty.read(0x40, 0);
        assert!(t_recovered > t_clean, "recovery path must cost more");
    }
}
