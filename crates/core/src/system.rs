//! The event-driven multi-core system runner.
//!
//! Sixteen cores replay their synthesized trace streams concurrently:
//! the runner always advances the core with the earliest local clock
//! (a deterministic discrete-event order), so inter-thread interleaving
//! — and with it coherence contention, bank conflicts and link occupancy
//! — emerges naturally. Each core issues memory operations through a
//! bank of MSHRs ([`SystemConfig::mshrs`] ways, default 1): with one
//! way the core blocks on every miss exactly as the original runner
//! did; with more ways it runs ahead while up to that many misses are
//! in flight, stalling only when all ways are occupied or at a sync
//! point. The dynamic Dvé scheme additionally runs the paper's sampling
//! procedure: each epoch starts with a profiling phase that tries the
//! allow and deny state machines back-to-back and applies the winner
//! for the rest of the epoch (§V-C5).

use crate::chaos::{FaultEvent, FaultSourceKind, RecoveryLedger, ScrubConfig};
use crate::config::{Scheme, SystemConfig};
use crate::fabric_impl::SystemFabric;
use crate::fault_source::{build_sources, FaultSource};
use crate::pdes::TraceSupply;
use dve_coherence::engine::{EngineStats, ProtocolEngine};
use dve_coherence::replica_dir::ReplicaPolicy;
use dve_coherence::types::ReqType;
use dve_dram::energy::EnergyParams;
use dve_noc::traffic::TrafficStats;
use dve_sim::event::EventQueue;
use dve_sim::latency::{Component, LatencyBreakdown, LatencyHists};
use dve_sim::resource::Resource;
use dve_sim::time::Cycles;
use dve_workloads::op::{MemReq, Op};
use dve_workloads::WorkloadProfile;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Results of one run.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Scheme that produced this result.
    pub scheme: Scheme,
    /// Workload name.
    pub workload: String,
    /// Wall-clock cycles of the measured region (max over cores).
    pub cycles: u64,
    /// Total operations executed in the measured region.
    pub ops: u64,
    /// Memory operations in the measured region.
    pub mem_ops: u64,
    /// Engine (coherence) statistics.
    pub engine: EngineStats,
    /// Per-component attribution of the total memory-access latency over
    /// the *measured region* (mesh, link, bank queue, bank service,
    /// protocol). Its [`LatencyBreakdown::total`] equals the sum of the
    /// per-class latencies the engine accumulated over the same region —
    /// conservation by construction.
    pub latency: LatencyBreakdown,
    /// Inter-socket traffic in the measured region.
    pub traffic: TrafficStats,
    /// Fig. 7 classification fractions (summed over both home dirs).
    pub class_fractions: [f64; 4],
    /// DRAM energy over the measured region, joules.
    pub mem_energy_joules: f64,
    /// Execution time in seconds.
    pub seconds: f64,
    /// Memory energy-delay product (J·s).
    pub mem_edp: f64,
    /// Aggregated DRAM row-buffer statistics over the whole run
    /// (including warm-up): (hits, misses, conflicts).
    pub dram_rows: (u64, u64, u64),
    /// (total accesses, total bank queuing delay) over the whole run.
    pub dram_queue: (u64, u64),
    /// Worst-case per-row activation count within one refresh window
    /// across all controllers — the row-hammer exposure metric (§III).
    pub max_row_activations: u64,
    /// In-band recovery accounting over the *whole run* (faults do not
    /// respect measurement regions). All-zero when the chaos layer is
    /// disarmed or inert.
    pub recovery: RecoveryLedger,
    /// Per-op latency distributions over the measured region (total +
    /// per component). Sum-conserves against [`RunResult::latency`]:
    /// each component histogram's exact sum equals the cycles the
    /// aggregate breakdown charged to that component.
    pub latency_hist: LatencyHists,
}

impl RunResult {
    /// Speedup of this run relative to a baseline run of the same
    /// workload (same op counts): baseline cycles / this run's cycles.
    pub fn speedup_over(&self, baseline: &RunResult) -> f64 {
        assert_eq!(
            self.workload, baseline.workload,
            "speedup across different workloads"
        );
        baseline.cycles as f64 / self.cycles as f64
    }

    /// (p50, p99, p999) upper bounds of the per-op end-to-end latency
    /// over the measured region. This is *the* way bench binaries
    /// report percentiles — no ad-hoc sample collection and sorting.
    pub fn latency_tail(&self) -> (u64, u64, u64) {
        self.latency_hist.total.tail()
    }

    /// (p50, p99, p999) upper bounds of one component's per-op latency
    /// over the measured region.
    pub fn component_tail(&self, c: Component) -> (u64, u64, u64) {
        self.latency_hist.component(c).tail()
    }
}

/// One externally supplied operation for [`System::run_batch`]: the
/// serving front end (dve-service) maps client sessions onto cores and
/// drives the live system one epoch at a time with these.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClientOp {
    /// Core that issues the operation (`< SystemConfig.engine.cores`).
    pub core: usize,
    /// Cache-line address (byte address / 64).
    pub line: u64,
    /// Load or store.
    pub req: MemReq,
}

/// Per-op completion returned by [`System::run_batch`], carrying the
/// engine's latency stamps for this operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpCompletion {
    /// Simulated issue time.
    pub issued_at: u64,
    /// Simulated completion time.
    pub complete_at: u64,
    /// Per-layer attribution; its components sum to
    /// `complete_at - issued_at` (conservation by construction).
    pub breakdown: LatencyBreakdown,
    /// Recovery-path entries this op's accesses caused (detected
    /// errors or redirects of degraded copies) — the delta of the
    /// ledger's `detected_reads` across this op. Scrub-driven
    /// detections between ops are deliberately not attributed.
    pub detected_reads: u64,
    /// Machine-check exceptions this op's accesses raised (every copy
    /// failed) — the per-tenant exposure metric.
    pub machine_checks: u64,
}

/// Snapshot of the cumulative counters at [`System::begin_region`],
/// plus the region's work accumulators that
/// [`System::step_ops`]/[`System::run_batch`] maintain.
#[derive(Debug)]
struct RegionStart {
    traffic: TrafficStats,
    dyn_joules: f64,
    breakdown: LatencyBreakdown,
    class: Vec<[u64; 4]>,
    cycles: u64,
    ops: u64,
    mem_ops: u64,
}

/// The assembled system: engine + fabric + trace streams.
#[derive(Debug)]
pub struct System {
    cfg: SystemConfig,
    engine: ProtocolEngine,
    fabric: SystemFabric,
    /// The operation source: inline generator, or the sharded
    /// multi-threaded supply when `cfg.pdes_workers > 1` (bit-identical
    /// either way).
    supply: TraceSupply,
    workload: String,
    /// Per-core local clocks.
    core_time: Vec<u64>,
    /// Per-core MSHR banks: one occupancy way per outstanding miss a
    /// core may have in flight. With `cfg.mshrs == 1` every memory
    /// operation blocks the core until it completes (the original
    /// runner's semantics, cycle-for-cycle); with more ways the core
    /// issues and runs ahead until the ways are exhausted.
    mshrs: Vec<Resource>,
    /// Whether the chaos layer is armed ([`SystemConfig::chaos`]).
    chaos_active: bool,
    /// The fault schedule, time-sorted; `chaos_cursor` indexes the next
    /// event not yet applied.
    chaos_events: Vec<FaultEvent>,
    chaos_cursor: usize,
    /// Correlated fault sources ([`ChaosConfig::correlated`]), polled
    /// in-band on their own sim-time grids.
    ///
    /// [`ChaosConfig::correlated`]: crate::chaos::ChaosConfig::correlated
    sources: Vec<Box<dyn FaultSource>>,
    /// Pending paced scrub slices: `(socket, channel)` scheduled on the
    /// simulation's event queue, rescheduled `interval` cycles after
    /// each slice finishes (the patrol never overlaps itself).
    scrub_queue: EventQueue<(usize, usize)>,
    scrub_cfg: Option<ScrubConfig>,
    /// §V-E fallback: the inter-socket link is inside an outage window,
    /// so the engine runs local-copy-only until the window closes.
    outage_degraded: bool,
    /// §V-B2 aftermath: a hard fault took a copy out of service; the
    /// engine stays degraded until a heal lifts the last degradation.
    fault_degraded: bool,
    /// Per-op latency distributions recorded since the last
    /// [`System::begin_region`] (warm-up samples are discarded there).
    lat_hists: LatencyHists,
    /// The open measurement region, if any.
    region: Option<RegionStart>,
}

impl System {
    /// Builds a system for `cfg` running `profile` with `seed`.
    pub fn new(cfg: SystemConfig, profile: &WorkloadProfile, seed: u64) -> System {
        let mut engine = ProtocolEngine::new(cfg.engine_mode(), cfg.engine.clone());
        let mut fabric = SystemFabric::new(&cfg);
        if cfg.degraded {
            engine.set_degraded(true, 0, &mut fabric);
        }
        let supply = TraceSupply::new(profile, cfg.engine.cores, seed, cfg.pdes_workers);
        let cores = cfg.engine.cores;
        let ways = cfg.mshrs;
        let chaos_active = cfg.chaos.is_some();
        let mut chaos_events = Vec::new();
        let mut scrub_cfg = None;
        let mut scrub_queue = EventQueue::new();
        let mut sources: Vec<Box<dyn FaultSource>> = Vec::new();
        if let Some(chaos) = &cfg.chaos {
            chaos.validate();
            chaos_events = chaos.schedule.events().to_vec();
            scrub_cfg = chaos.scrub;
            if let Some(scrub) = &chaos.scrub {
                for s in 0..cfg.nodes() {
                    for ch in 0..cfg.channels_per_socket() {
                        scrub_queue.push(scrub.interval, (s, ch));
                    }
                }
            }
            if let Some(correlated) = &chaos.correlated {
                sources = build_sources(correlated, &fabric);
            }
        }
        System {
            cfg,
            engine,
            fabric,
            supply,
            workload: profile.name.to_string(),
            core_time: vec![0; cores],
            mshrs: (0..cores).map(|_| Resource::new(ways)).collect(),
            chaos_active,
            chaos_events,
            chaos_cursor: 0,
            sources,
            scrub_queue,
            scrub_cfg,
            outage_degraded: false,
            fault_degraded: false,
            lat_hists: LatencyHists::new(),
            region: None,
        }
    }

    /// Number of cores in the system (the valid [`ClientOp::core`]
    /// range).
    pub fn cores(&self) -> usize {
        self.core_time.len()
    }

    /// Current simulated time: the latest core-local clock.
    pub fn now(&self) -> u64 {
        *self.core_time.iter().max().expect("cores")
    }

    /// The configuration this system was built with.
    pub fn config(&self) -> &SystemConfig {
        &self.cfg
    }

    /// Cumulative engine statistics (whole run so far).
    pub fn engine_stats(&self) -> EngineStats {
        self.engine.stats()
    }

    /// In-band recovery accounting so far.
    pub fn recovery_ledger(&self) -> RecoveryLedger {
        self.fabric.ledger()
    }

    /// The memory fabric: controllers, inter-node link table, and the
    /// placement map (telemetry endpoints read per-node/per-edge
    /// occupancy from here).
    pub fn fabric(&self) -> &SystemFabric {
        &self.fabric
    }

    /// Live replica-directory entry count per node — the `/metrics`
    /// per-node replica gauge (far-pool nodes host entries too: their
    /// directories track lines replicated into the pool).
    pub fn node_replica_entries(&self) -> Vec<u64> {
        (0..self.engine.num_nodes())
            .map(|n| self.engine.replica_dir(n).len() as u64)
            .collect()
    }

    /// Per-op latency distributions recorded since the last
    /// [`System::begin_region`] (or construction).
    pub fn latency_hists(&self) -> &LatencyHists {
        &self.lat_hists
    }

    /// Forces (or lifts) §V-E degraded operation at the current
    /// simulated time, as if flipped by an operator. The engine only
    /// sees real edges, and chaos-driven degradation sources still
    /// apply on top — lifting the forced flag while a hard fault is
    /// outstanding keeps the engine degraded.
    pub fn set_forced_degraded(&mut self, on: bool) {
        self.cfg.degraded = on;
        let now = self.now();
        self.apply_degraded(now);
    }

    /// Advances the chaos layer to simulated time `now`: applies due
    /// fault events, runs due patrol-scrub slices, and tracks the two
    /// degradation sources (link outage windows and hard-degraded
    /// copies) into the engine's §V-E state. A no-op when the chaos
    /// layer is disarmed — and cheap enough to sit on the scheduler's
    /// hot path either way.
    fn advance_chaos(&mut self, now: u64) {
        if !self.chaos_active {
            return;
        }
        // Due fault plants/heals.
        while self.chaos_cursor < self.chaos_events.len()
            && self.chaos_events[self.chaos_cursor].at <= now
        {
            let ev = self.chaos_events[self.chaos_cursor];
            self.fabric.apply_fault_event(&ev);
            self.chaos_cursor += 1;
        }
        // Correlated sources: poll each one that is due on its grid
        // (observation only — an armed-but-inert source never perturbs
        // timed state), then apply what they emitted, attributed per
        // source in the ledger.
        if !self.sources.is_empty() {
            let mut emitted: Vec<(FaultSourceKind, FaultEvent)> = Vec::new();
            for src in &mut self.sources {
                if src.next_poll() <= now {
                    let kind = src.kind();
                    emitted.extend(src.poll(now, &self.fabric).into_iter().map(|e| (kind, e)));
                }
            }
            for (kind, ev) in &emitted {
                self.fabric.apply_sourced_event(ev, Some(*kind));
            }
        }
        // Due scrub slices: each runs through the controllers' timed
        // path (contending with demand traffic) and reschedules itself
        // `interval` cycles after it finished.
        if let Some(scrub) = self.scrub_cfg {
            while self.scrub_queue.peek_time().is_some_and(|t| t <= now) {
                let (at, (s, ch)) = self.scrub_queue.pop().expect("peeked");
                let end = self.fabric.scrub_tick(s, ch, at, scrub.lines_per_slice);
                self.scrub_queue.push(end.max(at) + scrub.interval, (s, ch));
            }
        }
        // §V-E edges. A link outage forces local-copy-only service for
        // the duration of the window; leaving it re-syncs the replicas
        // (deny-RM re-push inside `set_degraded`). A hard-degraded copy
        // keeps the engine degraded until a heal lifts the last one.
        let in_outage = self.fabric.link_outage_until(now).is_some();
        let mut changed = in_outage != self.outage_degraded;
        self.outage_degraded = in_outage;
        if self.fabric.take_pending_degrade() {
            changed |= !self.fault_degraded;
            self.fault_degraded = true;
        } else if self.fault_degraded && !self.fabric.has_degraded_lines() {
            self.fault_degraded = false;
            changed = true;
        }
        if changed {
            self.apply_degraded(now);
        }
    }

    /// Reconciles the engine's degraded state with the three sources
    /// that demand it (the §V-E config knob, an open link outage
    /// window, a hard-degraded copy). Only actual edges reach
    /// [`ProtocolEngine::set_degraded`], so the engine's
    /// `degraded_transitions` counter counts real transitions.
    fn apply_degraded(&mut self, now: u64) {
        let want = self.cfg.degraded || self.outage_degraded || self.fault_degraded;
        if want != self.engine.is_degraded() {
            self.engine.set_degraded(want, now, &mut self.fabric);
        }
    }

    /// Executes `mem_ops_per_core` memory operations on every core
    /// (compute/sync ops execute in between without counting), returning
    /// the wall time consumed and ops executed.
    fn run_ops(&mut self, mem_ops_per_core: u64) -> (u64, u64, u64) {
        // A zero budget means "run nothing": without this guard the
        // `remaining[core] -= 1` below underflows on the first memory
        // op (debug builds panic; release builds wrap to u64::MAX and
        // the loop effectively never terminates).
        if mem_ops_per_core == 0 {
            return (0, 0, 0);
        }
        let cores = self.core_time.len();
        let start_max = *self.core_time.iter().max().expect("cores");
        let mut heap: BinaryHeap<(Reverse<u64>, usize)> = (0..cores)
            .map(|c| (Reverse(self.core_time[c]), c))
            .collect();
        let mut remaining: Vec<u64> = vec![mem_ops_per_core; cores];
        let mut live = cores;
        let mut total_ops = 0u64;
        let mut total_mem = 0u64;
        while live > 0 {
            let (Reverse(now), core) = heap.pop().expect("live cores remain");
            self.advance_chaos(now);
            let op = self.supply.next_op(core);
            total_ops += 1;
            let next = match op {
                Op::Compute(c) => now + c as u64,
                // A synchronization point (barrier/lock) first drains
                // every outstanding miss on this core, then pays the
                // sync cost.
                Op::Sync => self.mshrs[core].drained_at().max(now) + Op::SYNC_CYCLES as u64,
                Op::Mem { line, req } => {
                    total_mem += 1;
                    remaining[core] -= 1;
                    let r = match req {
                        MemReq::Read => ReqType::Read,
                        MemReq::Write => ReqType::Write,
                    };
                    // Every memory operation is simulated in detail,
                    // matching the paper's SynchroTrace/gem5 replay.
                    // (What §V-E keeps off the critical path — the
                    // propagation of writebacks to the replica memory —
                    // is handled as background work inside the engine.)
                    let outcome = self.engine.access(core, line, r, now, &mut self.fabric);
                    self.lat_hists.record(&outcome.breakdown);
                    let done = outcome.complete_at;
                    // The miss occupies an MSHR way from issue to
                    // completion. The scheduler never advances a core
                    // past the next way's free time, so a way is always
                    // available here — acquisition must not queue.
                    let grant = self.mshrs[core].acquire(now, done - now);
                    debug_assert_eq!(grant.queued, 0, "core issued without a free MSHR");
                    // The core occupies its issue slot for one cycle,
                    // then runs ahead — but no earlier than the next
                    // free MSHR way. With a single way this is exactly
                    // `done` (the transaction always outlives the issue
                    // cycle), i.e. the blocking-core semantics.
                    (now + 1).max(self.mshrs[core].earliest_available())
                }
            };
            self.core_time[core] = next;
            if remaining[core] == 0 {
                live -= 1;
            } else {
                heap.push((Reverse(next), core));
            }
        }
        // Region barrier: the region only ends once every core's
        // outstanding misses have drained, so warm-up, profiling windows
        // and the measured region never leak in-flight work into each
        // other. (A single-way core is always drained by construction.)
        for (t, m) in self.core_time.iter_mut().zip(&self.mshrs) {
            *t = (*t).max(m.drained_at());
        }
        let end_max = *self.core_time.iter().max().expect("cores");
        (end_max - start_max, total_ops, total_mem)
    }

    /// Runs the warm-up region (not measured). A no-op when
    /// `warmup_per_thread` is zero. Part of the epoch-stepping API:
    /// `run` is exactly `warm_up` → `begin_region` → steps →
    /// `finish_region`, and external callers (the dve-service epoch
    /// runner) may compose the same phases without consuming the
    /// system.
    pub fn warm_up(&mut self) {
        if self.cfg.warmup_per_thread > 0 {
            self.run_ops(self.cfg.warmup_per_thread);
        }
    }

    /// Opens a measurement region: snapshots the cumulative counters
    /// and clears the per-op latency histograms, so the eventual
    /// [`System::finish_region`] reports deltas over exactly the work
    /// stepped in between.
    pub fn begin_region(&mut self) {
        self.lat_hists = LatencyHists::new();
        self.region = Some(RegionStart {
            traffic: self.fabric.traffic().clone(),
            dyn_joules: self.fabric.total_energy().dynamic_joules(),
            breakdown: self.engine.stats().latency_breakdown,
            class: (0..self.cfg.engine.sockets)
                .map(|s| self.engine.home_dir(s).class_counts())
                .collect(),
            cycles: 0,
            ops: 0,
            mem_ops: 0,
        });
    }

    /// Executes `mem_ops_per_core` trace operations on every core — one
    /// epoch of the synthesized workload — without consuming the
    /// system. Returns `(wall cycles, ops, mem ops)` for this step and
    /// accumulates them into the open region, if any. Stepping a run in
    /// epochs is cycle-exact with running it whole at `mshrs = 1` (the
    /// pinned-golden regime): the inter-epoch MSHR drain barrier is a
    /// no-op for blocking cores.
    pub fn step_ops(&mut self, mem_ops_per_core: u64) -> (u64, u64, u64) {
        let (cycles, ops, mems) = self.run_ops(mem_ops_per_core);
        if let Some(region) = &mut self.region {
            region.cycles += cycles;
            region.ops += ops;
            region.mem_ops += mems;
        }
        (cycles, ops, mems)
    }

    /// Executes one epoch of externally supplied operations against the
    /// live system and returns per-op completions (indexed like `ops`).
    ///
    /// Each core executes its assigned ops in slice order; across
    /// cores, the scheduler advances the core with the earliest local
    /// clock, exactly like the trace runner — so coherence contention,
    /// bank conflicts, chaos events and link occupancy all apply to
    /// client traffic. The epoch ends with the same MSHR drain barrier
    /// the trace runner uses between regions. Deterministic: the same
    /// batch against the same system state reproduces bit-for-bit.
    pub fn run_batch(&mut self, ops: &[ClientOp]) -> Vec<OpCompletion> {
        let cores = self.core_time.len();
        let start_max = self.now();
        // Per-core FIFO of indices into `ops`, preserving slice order.
        let mut queues: Vec<Vec<usize>> = vec![Vec::new(); cores];
        for (i, op) in ops.iter().enumerate() {
            assert!(
                op.core < cores,
                "ClientOp.core {} out of range ({} cores)",
                op.core,
                cores
            );
            queues[op.core].push(i);
        }
        let mut cursor = vec![0usize; cores];
        let mut heap: BinaryHeap<(Reverse<u64>, usize)> = (0..cores)
            .filter(|&c| !queues[c].is_empty())
            .map(|c| (Reverse(self.core_time[c]), c))
            .collect();
        let mut completions: Vec<Option<OpCompletion>> = vec![None; ops.len()];
        while let Some((Reverse(now), core)) = heap.pop() {
            self.advance_chaos(now);
            let idx = queues[core][cursor[core]];
            cursor[core] += 1;
            let op = &ops[idx];
            let r = match op.req {
                MemReq::Read => ReqType::Read,
                MemReq::Write => ReqType::Write,
            };
            // Snapshot the recovery counters after chaos advanced but
            // before this access: the delta across the access is this
            // op's own recovery exposure (scrub activity between ops
            // stays unattributed by construction).
            let before = self.fabric.ledger();
            let outcome = self.engine.access(core, op.line, r, now, &mut self.fabric);
            let after = self.fabric.ledger();
            self.lat_hists.record(&outcome.breakdown);
            let done = outcome.complete_at;
            completions[idx] = Some(OpCompletion {
                issued_at: now,
                complete_at: done,
                breakdown: outcome.breakdown,
                detected_reads: after.detected_reads - before.detected_reads,
                machine_checks: after.machine_checks - before.machine_checks,
            });
            // Same MSHR semantics as the trace runner: the miss holds a
            // way from issue to completion and the core never runs past
            // the next free way.
            let grant = self.mshrs[core].acquire(now, done - now);
            debug_assert_eq!(grant.queued, 0, "core issued without a free MSHR");
            let next = (now + 1).max(self.mshrs[core].earliest_available());
            self.core_time[core] = next;
            if cursor[core] < queues[core].len() {
                heap.push((Reverse(next), core));
            }
        }
        // Epoch barrier: drain outstanding misses so epochs never leak
        // in-flight work into each other.
        for (t, m) in self.core_time.iter_mut().zip(&self.mshrs) {
            *t = (*t).max(m.drained_at());
        }
        let end_max = *self.core_time.iter().max().expect("cores");
        if let Some(region) = &mut self.region {
            region.cycles += end_max - start_max;
            region.ops += ops.len() as u64;
            region.mem_ops += ops.len() as u64;
        }
        completions
            .into_iter()
            .map(|c| c.expect("every submitted op completes"))
            .collect()
    }

    /// Closes the measurement region opened by
    /// [`System::begin_region`] and collects a [`RunResult`] over the
    /// work stepped in between, without consuming the system (a new
    /// region may be opened afterwards).
    ///
    /// # Panics
    ///
    /// Panics if no region is open.
    pub fn finish_region(&mut self) -> RunResult {
        let region = self
            .region
            .take()
            .expect("begin_region before finish_region");
        let cycles = region.cycles;
        let ops = region.ops;
        let mem_ops = region.mem_ops;

        // Deltas over the measured region.
        let traffic = self.fabric.traffic().saturating_sub(&region.traffic);
        let latency = self
            .engine
            .stats()
            .latency_breakdown
            .delta_since(&region.breakdown);
        let dyn_joules = self.fabric.total_energy().dynamic_joules() - region.dyn_joules;
        let seconds = self.cfg.clock.nanos_for(Cycles(cycles)) * 1e-9;
        // Background power of the full DIMM population over the region
        // (same per-rank standby figure the DRAM energy model uses).
        let background = EnergyParams::background_joules(self.cfg.total_ranks(), seconds);
        let mem_energy = dyn_joules + background;

        let mut counts = [0u64; 4];
        for (s, before) in region.class.iter().enumerate() {
            let after = self.engine.home_dir(s).class_counts();
            for (c, (a, b)) in counts.iter_mut().zip(after.iter().zip(before)) {
                // Class counters only ever increment; a snapshot taken
                // before the measured region can never exceed one taken
                // after. A raw-u64 subtraction would wrap silently on a
                // violation, so fail loudly in debug builds instead.
                debug_assert!(
                    a >= b,
                    "class counter went backwards over the measured region: {a} < {b}"
                );
                *c += a - b;
            }
        }
        let total: u64 = counts.iter().sum();
        let mut fractions = [0.0; 4];
        if total > 0 {
            for (f, &c) in fractions.iter_mut().zip(&counts) {
                *f = c as f64 / total as f64;
            }
        }

        let mut rows = (0u64, 0u64, 0u64);
        let mut queue = (0u64, 0u64);
        let mut max_row_activations = 0u64;
        for socket in self.fabric.controllers() {
            for c in socket {
                let st = c.stats();
                rows.0 += st.row_hits;
                rows.1 += st.row_misses;
                rows.2 += st.row_conflicts;
                queue.0 += st.reads + st.writes;
                queue.1 += st.queue_delay_sum;
                max_row_activations = max_row_activations.max(c.rowhammer().max_activations());
            }
        }
        RunResult {
            scheme: self.cfg.scheme,
            workload: self.workload.clone(),
            cycles,
            ops,
            mem_ops,
            engine: self.engine.stats(),
            latency,
            traffic,
            class_fractions: fractions,
            mem_energy_joules: mem_energy,
            seconds,
            mem_edp: mem_energy * seconds,
            dram_rows: rows,
            dram_queue: queue,
            max_row_activations,
            recovery: self.fabric.ledger(),
            latency_hist: self.lat_hists.clone(),
        }
    }

    /// Runs warm-up + the measured region and collects results. For the
    /// dynamic scheme this includes the per-epoch profiling procedure.
    /// Exactly equivalent to composing the epoch-stepping API:
    /// [`System::warm_up`], [`System::begin_region`],
    /// [`System::step_ops`], [`System::finish_region`].
    pub fn run(mut self) -> RunResult {
        self.warm_up();
        self.begin_region();
        if self.cfg.scheme == Scheme::DveDynamic {
            self.run_dynamic();
        } else {
            self.step_ops(self.cfg.ops_per_thread);
        }
        self.finish_region()
    }

    /// The sampling-based dynamic protocol: per epoch, profile both
    /// state machines on a window, then run the remainder with the
    /// winner. Work accounting accumulates into the open region via
    /// [`System::step_ops`].
    fn run_dynamic(&mut self) {
        let total = self.cfg.ops_per_thread;
        let window = self.cfg.dynamic_window.max(1);
        // One epoch = 2 profiling windows + 8 windows of the winner
        // (the paper's 100M-per-1B ratio, scaled).
        let epoch_body = window * 8;
        let mut done = 0u64;
        let spec = self.cfg.speculative;
        while done < total {
            // Profile allow.
            let now = self.now();
            self.engine
                .switch_policy(ReplicaPolicy::Allow, spec, now, &mut self.fabric);
            let w = window.min(total - done);
            let (c_allow, _, _) = self.step_ops(w);
            done += w;
            if done >= total {
                break;
            }
            // Profile deny.
            let now = self.now();
            self.engine
                .switch_policy(ReplicaPolicy::Deny, spec, now, &mut self.fabric);
            let w = window.min(total - done);
            let (c_deny, _, _) = self.step_ops(w);
            done += w;
            if done >= total {
                break;
            }
            // Apply the winner for the epoch body.
            let winner = if c_allow < c_deny {
                ReplicaPolicy::Allow
            } else {
                ReplicaPolicy::Deny
            };
            let now = self.now();
            self.engine
                .switch_policy(winner, spec, now, &mut self.fabric);
            let w = epoch_body.min(total - done);
            self.step_ops(w);
            done += w;
        }
    }
}

/// Convenience: run one workload under one scheme with Table II config.
pub fn run_workload(
    profile: &WorkloadProfile,
    scheme: Scheme,
    ops_per_thread: u64,
    seed: u64,
) -> RunResult {
    let mut cfg = SystemConfig::table_ii(scheme);
    cfg.ops_per_thread = ops_per_thread;
    cfg.warmup_per_thread = ops_per_thread / 10;
    System::new(cfg, profile, seed).run()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dve_workloads::catalog;

    fn small_run(scheme: Scheme, workload: &str, ops: u64) -> RunResult {
        let p = catalog().into_iter().find(|p| p.name == workload).unwrap();
        run_workload(&p, scheme, ops, 42)
    }

    #[test]
    fn zero_op_budget_terminates_with_empty_result() {
        // `run_ops(0)` used to decrement `remaining[core]` straight to
        // u64::MAX on the first memory op: a panic in debug builds and
        // an effectively infinite loop in release. A zero budget (and
        // the zero warmup it implies via `run_workload`) must instead
        // run nothing and return immediately.
        for scheme in [Scheme::BaselineNuma, Scheme::DveDeny, Scheme::DveDynamic] {
            let r = small_run(scheme, "backprop", 0);
            assert_eq!(r.cycles, 0, "{scheme:?}: no cycles simulated");
            assert_eq!(r.ops, 0, "{scheme:?}: no ops executed");
            assert_eq!(r.mem_ops, 0, "{scheme:?}: no memory ops executed");
        }
    }

    #[test]
    fn zero_warmup_measures_from_cold_caches() {
        // warmup_per_thread == 0 must skip the warm-up region entirely
        // (not attempt a zero-budget run) and still measure correctly.
        let p = catalog()
            .into_iter()
            .find(|p| p.name == "backprop")
            .unwrap();
        let mut cfg = SystemConfig::table_ii(Scheme::BaselineNuma);
        cfg.ops_per_thread = 300;
        cfg.warmup_per_thread = 0;
        let r = System::new(cfg, &p, 7).run();
        assert_eq!(r.mem_ops, 300 * 16);
        assert!(r.cycles > 0);
    }

    #[test]
    fn baseline_run_completes_deterministically() {
        let a = small_run(Scheme::BaselineNuma, "backprop", 500);
        let b = small_run(Scheme::BaselineNuma, "backprop", 500);
        assert_eq!(a.cycles, b.cycles, "bit-for-bit reproducible");
        assert_eq!(a.traffic.total_bytes(), b.traffic.total_bytes());
        assert!(a.cycles > 0);
        assert_eq!(a.mem_ops, 500 * 16);
    }

    #[test]
    fn deny_beats_baseline_on_read_heavy_workload() {
        let base = small_run(Scheme::BaselineNuma, "backprop", 1500);
        let deny = small_run(Scheme::DveDeny, "backprop", 1500);
        let speedup = deny.speedup_over(&base);
        assert!(speedup > 1.0, "speedup = {speedup:.3}");
        assert!(deny.engine.replica_reads > 0);
    }

    #[test]
    fn deny_cuts_inter_socket_traffic_on_read_heavy_workload() {
        let base = small_run(Scheme::BaselineNuma, "backprop", 1500);
        let deny = small_run(Scheme::DveDeny, "backprop", 1500);
        let norm = deny.traffic.normalized_to(&base.traffic);
        assert!(norm < 0.9, "normalized traffic = {norm:.3}");
    }

    #[test]
    fn allow_beats_deny_on_private_write_heavy_workload() {
        // Long enough that the write-allocation effect dominates the
        // trace-synthesis noise (short runs sit within ~0.5% of parity).
        let allow = small_run(Scheme::DveAllow, "lbm", 6000);
        let deny = small_run(Scheme::DveDeny, "lbm", 6000);
        assert!(
            allow.cycles < deny.cycles,
            "allow {} vs deny {}",
            allow.cycles,
            deny.cycles
        );
    }

    #[test]
    fn deny_beats_allow_on_read_heavy_workload() {
        let allow = small_run(Scheme::DveAllow, "xsbench", 1500);
        let deny = small_run(Scheme::DveDeny, "xsbench", 1500);
        assert!(
            deny.cycles < allow.cycles,
            "deny {} vs allow {}",
            deny.cycles,
            allow.cycles
        );
    }

    #[test]
    fn class_fractions_reflect_profile() {
        let r = small_run(Scheme::BaselineNuma, "lbm", 1000);
        // lbm is dominated by private read/write.
        assert!(
            r.class_fractions[3] > 0.3,
            "private-rw fraction = {:.3}",
            r.class_fractions[3]
        );
        let sum: f64 = r.class_fractions.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn dynamic_scheme_runs_and_is_competitive() {
        let base = small_run(Scheme::BaselineNuma, "backprop", 2000);
        let dynamic = small_run(Scheme::DveDynamic, "backprop", 2000);
        let speedup = dynamic.speedup_over(&base);
        assert!(speedup > 0.95, "dynamic speedup = {speedup:.3}");
    }

    #[test]
    fn mirror_scheme_runs() {
        let r = small_run(Scheme::IntelMirrorPlus, "fft", 500);
        assert!(r.cycles > 0);
        assert_eq!(
            r.engine.replica_reads, 0,
            "mirroring is not coherent replication"
        );
    }

    #[test]
    fn energy_accounting_positive() {
        let r = small_run(Scheme::DveDeny, "fft", 500);
        assert!(r.mem_energy_joules > 0.0);
        assert!(r.mem_edp > 0.0);
        assert!(r.seconds > 0.0);
    }

    #[test]
    fn background_energy_uses_model_constant() {
        // Satellite check: the runner's background-power term must come
        // from the DRAM energy model's named constant, not a stray
        // literal. A zero-op run has no dynamic energy, so total energy
        // is exactly the background term.
        let r = small_run(Scheme::BaselineNuma, "fft", 0);
        assert_eq!(r.mem_energy_joules, 0.0, "no cycles, no background");
        let r = small_run(Scheme::DveDeny, "fft", 300);
        let cfg = SystemConfig::table_ii(Scheme::DveDeny);
        let background =
            dve_dram::energy::EnergyParams::background_joules(cfg.total_ranks(), r.seconds);
        assert!(
            r.mem_energy_joules > background,
            "dynamic energy on top of background"
        );
        // And the documented constant matches the model's default.
        assert_eq!(
            dve_dram::energy::EnergyParams::BACKGROUND_MW_PER_RANK,
            dve_dram::energy::EnergyParams::default().background_mw_per_rank
        );
    }

    #[test]
    fn latency_breakdown_conserves_and_attributes() {
        // With no warm-up, the measured-region breakdown is the whole
        // run's, and conservation pins it to the engine's per-class
        // latency sums exactly.
        let p = catalog()
            .into_iter()
            .find(|p| p.name == "backprop")
            .unwrap();
        let mut cfg = SystemConfig::table_ii(Scheme::DveDeny);
        cfg.ops_per_thread = 300;
        cfg.warmup_per_thread = 0;
        let r = System::new(cfg, &p, 7).run();
        let engine_total: u64 = r.engine.latency_sum.iter().sum();
        assert_eq!(r.latency.total(), engine_total, "conservation");
        assert!(r.latency.protocol > 0, "cache/directory lookups charged");
        assert!(r.latency.bank_service > 0, "DRAM service charged");
        assert!(r.latency.link > 0, "remote traffic charged");
        // Fractions are well-formed.
        let sum: f64 = dve_sim::latency::Component::ALL
            .iter()
            .map(|&c| r.latency.fraction(c))
            .sum();
        assert!((sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn class_fraction_deltas_are_monotone() {
        // Satellite check for the measured-region class-count deltas:
        // the warm-up region inflates the "before" snapshot, and the
        // debug_assert in `run()` verifies after >= before per class.
        // A run with both regions exercises that guard; the fractions
        // it produces must be a valid distribution.
        let r = small_run(Scheme::DveDeny, "backprop", 800);
        for (i, f) in r.class_fractions.iter().enumerate() {
            assert!((0.0..=1.0).contains(f), "class {i} fraction {f}");
        }
        let sum: f64 = r.class_fractions.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn single_mshr_blocks_and_more_ways_overlap() {
        let p = catalog()
            .into_iter()
            .find(|p| p.name == "backprop")
            .unwrap();
        let run_with = |m: usize| {
            let mut cfg = SystemConfig::table_ii(Scheme::DveDeny);
            cfg.ops_per_thread = 500;
            cfg.warmup_per_thread = 50;
            cfg.mshrs = m;
            System::new(cfg, &p, 42).run()
        };
        let blocking = run_with(1);
        let overlapped = run_with(4);
        assert_eq!(blocking.mem_ops, overlapped.mem_ops, "same work");
        assert!(
            overlapped.cycles < blocking.cycles,
            "4 MSHRs must overlap misses: {} vs {}",
            overlapped.cycles,
            blocking.cycles
        );
        // Overlapped runs stay deterministic.
        let again = run_with(4);
        assert_eq!(overlapped.cycles, again.cycles);
    }

    #[test]
    fn inert_chaos_is_bit_identical_to_disarmed() {
        use crate::chaos::ChaosConfig;
        let p = catalog()
            .into_iter()
            .find(|p| p.name == "backprop")
            .unwrap();
        for scheme in [Scheme::BaselineNuma, Scheme::DveAllow, Scheme::DveDeny] {
            let mut cfg = SystemConfig::table_ii(scheme);
            cfg.ops_per_thread = 500;
            cfg.warmup_per_thread = 50;
            let plain = System::new(cfg.clone(), &p, 42).run();
            cfg.chaos = Some(ChaosConfig::inert());
            let armed = System::new(cfg, &p, 42).run();
            assert_eq!(plain.cycles, armed.cycles, "{scheme:?}: cycle-exact");
            assert_eq!(plain.latency, armed.latency, "{scheme:?}: same breakdown");
            assert_eq!(
                plain.traffic.total_bytes(),
                armed.traffic.total_bytes(),
                "{scheme:?}: same traffic"
            );
            assert!(
                !armed.recovery.any_activity(),
                "{scheme:?}: inert means inert"
            );
            assert_eq!(armed.latency.recovery, 0, "{scheme:?}: no recovery time");
        }
    }

    fn chaos_run(
        scheme: Scheme,
        chaos: crate::chaos::ChaosConfig,
        ops: u64,
        seed: u64,
    ) -> RunResult {
        let p = catalog()
            .into_iter()
            .find(|p| p.name == "backprop")
            .unwrap();
        let mut cfg = SystemConfig::table_ii(scheme);
        cfg.ops_per_thread = ops;
        cfg.warmup_per_thread = ops / 10;
        cfg.chaos = Some(chaos);
        System::new(cfg, &p, seed).run()
    }

    #[test]
    fn transient_controller_fault_is_repaired_in_band() {
        use crate::chaos::{ChaosConfig, FaultAction, FaultEvent, FaultSchedule, FaultSite};
        let chaos = ChaosConfig {
            schedule: FaultSchedule::new(vec![FaultEvent {
                at: 1_000,
                socket: 0,
                channel: 0,
                action: FaultAction::Plant {
                    site: FaultSite::Controller,
                    transient: true,
                },
            }]),
            ..ChaosConfig::inert()
        };
        let r = chaos_run(Scheme::DveDeny, chaos, 500, 42);
        assert_eq!(r.recovery.faults_planted, 1);
        assert_eq!(r.recovery.repaired, 1, "first detected read repairs it");
        assert_eq!(r.recovery.degraded, 0);
        assert!(r.recovery.consistent(), "{:?}", r.recovery);
        assert_eq!(
            r.engine.degraded_transitions, 0,
            "a repaired transient never degrades the engine"
        );
    }

    #[test]
    fn hard_fault_degrades_engine_and_heal_restores_it() {
        use crate::chaos::{ChaosConfig, FaultAction, FaultEvent, FaultSchedule, FaultSite};
        let chaos = ChaosConfig {
            schedule: FaultSchedule::new(vec![
                FaultEvent {
                    at: 1_000,
                    socket: 0,
                    channel: 0,
                    action: FaultAction::Plant {
                        site: FaultSite::Controller,
                        transient: false,
                    },
                },
                FaultEvent {
                    at: 25_000,
                    socket: 0,
                    channel: 0,
                    action: FaultAction::Heal {
                        site: FaultSite::Controller,
                    },
                },
            ]),
            ..ChaosConfig::inert()
        };
        let r = chaos_run(Scheme::DveDeny, chaos, 500, 42);
        assert!(r.recovery.degraded > 0, "hard fault degrades copies");
        assert_eq!(r.recovery.faults_healed, 1);
        assert!(
            r.engine.degraded_transitions >= 2,
            "entered and left §V-E degraded state: {}",
            r.engine.degraded_transitions
        );
        assert!(r.recovery.consistent(), "{:?}", r.recovery);
        assert!(r.latency.recovery > 0, "detours cost measured time");
        // Determinism: the same chaos run reproduces bit-for-bit.
        let chaos2 = crate::chaos::ChaosConfig {
            schedule: crate::chaos::FaultSchedule::new(vec![
                FaultEvent {
                    at: 1_000,
                    socket: 0,
                    channel: 0,
                    action: FaultAction::Plant {
                        site: FaultSite::Controller,
                        transient: false,
                    },
                },
                FaultEvent {
                    at: 25_000,
                    socket: 0,
                    channel: 0,
                    action: FaultAction::Heal {
                        site: FaultSite::Controller,
                    },
                },
            ]),
            ..crate::chaos::ChaosConfig::inert()
        };
        let again = chaos_run(Scheme::DveDeny, chaos2, 500, 42);
        assert_eq!(r.cycles, again.cycles);
        assert_eq!(r.recovery, again.recovery);
    }

    #[test]
    fn link_outage_window_forces_and_lifts_degraded_mode() {
        use crate::chaos::ChaosConfig;
        let chaos = ChaosConfig {
            link_outages: vec![(2_000, 12_000)],
            ..ChaosConfig::inert()
        };
        let r = chaos_run(Scheme::DveDeny, chaos, 500, 42);
        assert_eq!(
            r.engine.degraded_transitions, 2,
            "one §V-E round trip for the outage window"
        );
        assert_eq!(r.mem_ops, 500 * 16, "all work still completes");
        assert!(r.recovery.consistent());
    }

    #[test]
    fn paced_scrub_runs_and_contends_without_faults() {
        use crate::chaos::{ChaosConfig, ScrubConfig};
        let chaos = ChaosConfig {
            scrub: Some(ScrubConfig {
                region_bytes: 1 << 14,
                lines_per_slice: 16,
                interval: 5_000,
            }),
            ..ChaosConfig::inert()
        };
        let r = chaos_run(Scheme::DveDeny, chaos, 500, 42);
        assert!(r.recovery.scrub_slices > 0, "the patrol ran");
        assert_eq!(
            r.recovery.scrub_lines,
            r.recovery.scrub_slices * 16,
            "fault-free slices never clip early"
        );
        assert_eq!(r.recovery.scrub_detected, 0);
        assert_eq!(r.recovery.detected_reads, 0, "no demand detour");
        assert!(r.recovery.consistent());
    }

    #[test]
    fn epoch_stepping_composes_run_exactly() {
        // `run` is exactly warm_up → begin_region → step_ops(total) →
        // finish_region; composing the public phases by hand must be
        // bit-identical (this is the decomposition the pinned goldens
        // ride on).
        let p = catalog()
            .into_iter()
            .find(|p| p.name == "backprop")
            .unwrap();
        for scheme in [Scheme::BaselineNuma, Scheme::DveAllow, Scheme::DveDeny] {
            let mut cfg = SystemConfig::table_ii(scheme);
            cfg.ops_per_thread = 500;
            cfg.warmup_per_thread = 50;
            let whole = System::new(cfg.clone(), &p, 42).run();
            let mut sys = System::new(cfg.clone(), &p, 42);
            sys.warm_up();
            sys.begin_region();
            sys.step_ops(500);
            let stepped = sys.finish_region();
            assert_eq!(stepped.cycles, whole.cycles, "{scheme:?}");
            assert_eq!(stepped.mem_ops, whole.mem_ops, "{scheme:?}");
            assert_eq!(stepped.latency, whole.latency, "{scheme:?}");
            assert_eq!(stepped.latency_hist, whole.latency_hist, "{scheme:?}");
            assert_eq!(
                stepped.traffic.total_bytes(),
                whole.traffic.total_bytes(),
                "{scheme:?}"
            );
        }
    }

    #[test]
    fn epoch_stepping_is_deterministic_and_conserving_at_any_split() {
        // Finer epoch splits re-order how the engine *processes*
        // concurrent accesses (each step is a scheduling barrier), so
        // they are not required to be cycle-identical to the whole run
        // — but every split must be deterministic under replay, run
        // all the work, and keep the latency histograms conserving
        // against the region aggregate.
        let p = catalog()
            .into_iter()
            .find(|p| p.name == "backprop")
            .unwrap();
        let run_split = |epoch: u64| {
            let mut cfg = SystemConfig::table_ii(Scheme::DveDeny);
            cfg.ops_per_thread = 500;
            cfg.warmup_per_thread = 50;
            let mut sys = System::new(cfg, &p, 42);
            sys.warm_up();
            sys.begin_region();
            let mut left = 500u64;
            while left > 0 {
                let w = epoch.min(left);
                sys.step_ops(w);
                left -= w;
            }
            sys.finish_region()
        };
        for epoch in [7u64, 50, 125] {
            let a = run_split(epoch);
            let b = run_split(epoch);
            assert_eq!(a.cycles, b.cycles, "epoch={epoch}: replay bit-identical");
            assert_eq!(a.latency_hist, b.latency_hist, "epoch={epoch}");
            assert_eq!(a.mem_ops, 500 * 16, "epoch={epoch}: all work ran");
            assert!(a.latency_hist.conserves(&a.latency), "epoch={epoch}");
        }
    }

    #[test]
    fn run_result_latency_hist_conserves_and_reports_tails() {
        let p = catalog()
            .into_iter()
            .find(|p| p.name == "backprop")
            .unwrap();
        let mut cfg = SystemConfig::table_ii(Scheme::DveDeny);
        cfg.ops_per_thread = 400;
        cfg.warmup_per_thread = 40;
        let r = System::new(cfg, &p, 7).run();
        // The measured-region histograms sum-conserve against the
        // measured-region aggregate breakdown, component by component.
        assert!(r.latency_hist.conserves(&r.latency));
        assert_eq!(r.latency_hist.count(), r.mem_ops);
        let (p50, p99, p999) = r.latency_tail();
        assert!(p50 > 0 && p50 <= p99 && p99 <= p999, "{p50}/{p99}/{p999}");
        assert!(
            p999 as u128 <= r.latency_hist.total.sum(),
            "sane upper bound"
        );
        let (b50, _, b999) = r.component_tail(Component::BankService);
        assert!(b50 <= b999);
    }

    fn client_batch(seed: u64, n: usize, cores: usize) -> Vec<ClientOp> {
        let mut rng = dve_sim::rng::SplitMix64::new(seed);
        (0..n)
            .map(|_| ClientOp {
                core: rng.next_below(cores as u64) as usize,
                line: rng.next_below(1 << 14),
                req: if rng.chance(0.7) {
                    MemReq::Read
                } else {
                    MemReq::Write
                },
            })
            .collect()
    }

    #[test]
    fn run_batch_completes_every_op_deterministically() {
        let p = catalog()
            .into_iter()
            .find(|p| p.name == "backprop")
            .unwrap();
        let mut cfg = SystemConfig::table_ii(Scheme::DveDeny);
        cfg.warmup_per_thread = 0;
        let run_once = || {
            let mut sys = System::new(cfg.clone(), &p, 42);
            sys.begin_region();
            let mut all = Vec::new();
            for epoch in 0..4u64 {
                let batch = client_batch(epoch, 800, sys.cores());
                all.extend(sys.run_batch(&batch));
            }
            (all, sys.finish_region())
        };
        let (a, ra) = run_once();
        let (b, rb) = run_once();
        assert_eq!(a, b, "bit-identical completions on replay");
        assert_eq!(ra.cycles, rb.cycles);
        assert_eq!(a.len(), 4 * 800);
        // Per-op stamps conserve and the region histograms cover
        // exactly the batched ops.
        for c in &a {
            assert_eq!(
                c.breakdown.total(),
                c.complete_at - c.issued_at,
                "per-op conservation"
            );
        }
        assert_eq!(ra.mem_ops, 4 * 800);
        assert_eq!(ra.latency_hist.count(), 4 * 800);
        assert!(ra.latency_hist.conserves(&ra.latency));
    }

    #[test]
    fn run_batch_respects_mshr_width() {
        // Same batch, wider cores: overlapped misses can only shrink
        // the epoch's wall time, and determinism holds either way.
        let p = catalog()
            .into_iter()
            .find(|p| p.name == "backprop")
            .unwrap();
        let run_with = |mshrs: usize| {
            let mut cfg = SystemConfig::table_ii(Scheme::DveDeny);
            cfg.warmup_per_thread = 0;
            cfg.mshrs = mshrs;
            let mut sys = System::new(cfg, &p, 42);
            let batch = client_batch(1, 2000, sys.cores());
            sys.begin_region();
            sys.run_batch(&batch);
            sys.finish_region().cycles
        };
        let blocking = run_with(1);
        let overlapped = run_with(4);
        assert!(
            overlapped < blocking,
            "4 MSHRs must overlap client misses: {overlapped} vs {blocking}"
        );
    }

    #[test]
    fn forced_degraded_flip_reaches_engine_and_lifts() {
        let p = catalog()
            .into_iter()
            .find(|p| p.name == "backprop")
            .unwrap();
        let mut cfg = SystemConfig::table_ii(Scheme::DveDeny);
        cfg.warmup_per_thread = 0;
        let mut sys = System::new(cfg, &p, 42);
        let batch = client_batch(2, 500, sys.cores());
        sys.run_batch(&batch);
        assert_eq!(sys.engine_stats().degraded_transitions, 0);
        sys.set_forced_degraded(true);
        sys.run_batch(&batch);
        assert_eq!(sys.engine_stats().degraded_transitions, 1, "entered §V-E");
        sys.set_forced_degraded(true); // redundant flip: no edge
        assert_eq!(sys.engine_stats().degraded_transitions, 1);
        sys.set_forced_degraded(false);
        sys.run_batch(&batch);
        assert_eq!(sys.engine_stats().degraded_transitions, 2, "left §V-E");
    }

    #[test]
    fn mshr_scaling_is_monotone_on_backprop() {
        let p = catalog()
            .into_iter()
            .find(|p| p.name == "backprop")
            .unwrap();
        let mut last = u64::MAX;
        for m in [1usize, 2, 4, 8] {
            let mut cfg = SystemConfig::table_ii(Scheme::BaselineNuma);
            cfg.ops_per_thread = 400;
            cfg.warmup_per_thread = 40;
            cfg.mshrs = m;
            let r = System::new(cfg, &p, 42).run();
            assert!(
                r.cycles <= last,
                "mshrs={m} slower than previous: {} > {last}",
                r.cycles
            );
            last = r.cycles;
        }
    }
}
