//! The event-driven multi-core system runner.
//!
//! Sixteen cores replay their synthesized trace streams concurrently:
//! the runner always advances the core with the earliest local clock
//! (a deterministic discrete-event order), so inter-thread interleaving
//! — and with it coherence contention, bank conflicts and link occupancy
//! — emerges naturally. Each core issues memory operations through a
//! bank of MSHRs ([`SystemConfig::mshrs`] ways, default 1): with one
//! way the core blocks on every miss exactly as the original runner
//! did; with more ways it runs ahead while up to that many misses are
//! in flight, stalling only when all ways are occupied or at a sync
//! point. The dynamic Dvé scheme additionally runs the paper's sampling
//! procedure: each epoch starts with a profiling phase that tries the
//! allow and deny state machines back-to-back and applies the winner
//! for the rest of the epoch (§V-C5).

use crate::config::{Scheme, SystemConfig};
use crate::fabric_impl::SystemFabric;
use dve_coherence::engine::{EngineStats, ProtocolEngine};
use dve_coherence::replica_dir::ReplicaPolicy;
use dve_coherence::types::ReqType;
use dve_dram::energy::EnergyParams;
use dve_noc::traffic::TrafficStats;
use dve_sim::latency::LatencyBreakdown;
use dve_sim::resource::Resource;
use dve_sim::time::Cycles;
use dve_workloads::op::{MemReq, Op};
use dve_workloads::{TraceGenerator, WorkloadProfile};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Results of one run.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Scheme that produced this result.
    pub scheme: Scheme,
    /// Workload name.
    pub workload: String,
    /// Wall-clock cycles of the measured region (max over cores).
    pub cycles: u64,
    /// Total operations executed in the measured region.
    pub ops: u64,
    /// Memory operations in the measured region.
    pub mem_ops: u64,
    /// Engine (coherence) statistics.
    pub engine: EngineStats,
    /// Per-component attribution of the total memory-access latency over
    /// the *measured region* (mesh, link, bank queue, bank service,
    /// protocol). Its [`LatencyBreakdown::total`] equals the sum of the
    /// per-class latencies the engine accumulated over the same region —
    /// conservation by construction.
    pub latency: LatencyBreakdown,
    /// Inter-socket traffic in the measured region.
    pub traffic: TrafficStats,
    /// Fig. 7 classification fractions (summed over both home dirs).
    pub class_fractions: [f64; 4],
    /// DRAM energy over the measured region, joules.
    pub mem_energy_joules: f64,
    /// Execution time in seconds.
    pub seconds: f64,
    /// Memory energy-delay product (J·s).
    pub mem_edp: f64,
    /// Aggregated DRAM row-buffer statistics over the whole run
    /// (including warm-up): (hits, misses, conflicts).
    pub dram_rows: (u64, u64, u64),
    /// (total accesses, total bank queuing delay) over the whole run.
    pub dram_queue: (u64, u64),
    /// Worst-case per-row activation count within one refresh window
    /// across all controllers — the row-hammer exposure metric (§III).
    pub max_row_activations: u64,
}

impl RunResult {
    /// Speedup of this run relative to a baseline run of the same
    /// workload (same op counts): baseline cycles / this run's cycles.
    pub fn speedup_over(&self, baseline: &RunResult) -> f64 {
        assert_eq!(
            self.workload, baseline.workload,
            "speedup across different workloads"
        );
        baseline.cycles as f64 / self.cycles as f64
    }
}

/// The assembled system: engine + fabric + trace streams.
#[derive(Debug)]
pub struct System {
    cfg: SystemConfig,
    engine: ProtocolEngine,
    fabric: SystemFabric,
    gen: TraceGenerator,
    workload: String,
    /// Per-core local clocks.
    core_time: Vec<u64>,
    /// Per-core MSHR banks: one occupancy way per outstanding miss a
    /// core may have in flight. With `cfg.mshrs == 1` every memory
    /// operation blocks the core until it completes (the original
    /// runner's semantics, cycle-for-cycle); with more ways the core
    /// issues and runs ahead until the ways are exhausted.
    mshrs: Vec<Resource>,
}

impl System {
    /// Builds a system for `cfg` running `profile` with `seed`.
    pub fn new(cfg: SystemConfig, profile: &WorkloadProfile, seed: u64) -> System {
        let mut engine = ProtocolEngine::new(cfg.engine_mode(), cfg.engine.clone());
        let mut fabric = SystemFabric::new(&cfg);
        if cfg.degraded {
            engine.set_degraded(true, 0, &mut fabric);
        }
        let gen = TraceGenerator::new(profile, cfg.engine.cores, seed);
        let cores = cfg.engine.cores;
        let ways = cfg.mshrs;
        System {
            cfg,
            engine,
            fabric,
            gen,
            workload: profile.name.to_string(),
            core_time: vec![0; cores],
            mshrs: (0..cores).map(|_| Resource::new(ways)).collect(),
        }
    }

    /// Executes `mem_ops_per_core` memory operations on every core
    /// (compute/sync ops execute in between without counting), returning
    /// the wall time consumed and ops executed.
    fn run_ops(&mut self, mem_ops_per_core: u64) -> (u64, u64, u64) {
        // A zero budget means "run nothing": without this guard the
        // `remaining[core] -= 1` below underflows on the first memory
        // op (debug builds panic; release builds wrap to u64::MAX and
        // the loop effectively never terminates).
        if mem_ops_per_core == 0 {
            return (0, 0, 0);
        }
        let cores = self.core_time.len();
        let start_max = *self.core_time.iter().max().expect("cores");
        let mut heap: BinaryHeap<(Reverse<u64>, usize)> = (0..cores)
            .map(|c| (Reverse(self.core_time[c]), c))
            .collect();
        let mut remaining: Vec<u64> = vec![mem_ops_per_core; cores];
        let mut live = cores;
        let mut total_ops = 0u64;
        let mut total_mem = 0u64;
        while live > 0 {
            let (Reverse(now), core) = heap.pop().expect("live cores remain");
            let op = self.gen.next_op(core);
            total_ops += 1;
            let next = match op {
                Op::Compute(c) => now + c as u64,
                // A synchronization point (barrier/lock) first drains
                // every outstanding miss on this core, then pays the
                // sync cost.
                Op::Sync => self.mshrs[core].drained_at().max(now) + Op::SYNC_CYCLES as u64,
                Op::Mem { line, req } => {
                    total_mem += 1;
                    remaining[core] -= 1;
                    let r = match req {
                        MemReq::Read => ReqType::Read,
                        MemReq::Write => ReqType::Write,
                    };
                    // Every memory operation is simulated in detail,
                    // matching the paper's SynchroTrace/gem5 replay.
                    // (What §V-E keeps off the critical path — the
                    // propagation of writebacks to the replica memory —
                    // is handled as background work inside the engine.)
                    let done = self
                        .engine
                        .access(core, line, r, now, &mut self.fabric)
                        .complete_at;
                    // The miss occupies an MSHR way from issue to
                    // completion. The scheduler never advances a core
                    // past the next way's free time, so a way is always
                    // available here — acquisition must not queue.
                    let grant = self.mshrs[core].acquire(now, done - now);
                    debug_assert_eq!(grant.queued, 0, "core issued without a free MSHR");
                    // The core occupies its issue slot for one cycle,
                    // then runs ahead — but no earlier than the next
                    // free MSHR way. With a single way this is exactly
                    // `done` (the transaction always outlives the issue
                    // cycle), i.e. the blocking-core semantics.
                    (now + 1).max(self.mshrs[core].earliest_available())
                }
            };
            self.core_time[core] = next;
            if remaining[core] == 0 {
                live -= 1;
            } else {
                heap.push((Reverse(next), core));
            }
        }
        // Region barrier: the region only ends once every core's
        // outstanding misses have drained, so warm-up, profiling windows
        // and the measured region never leak in-flight work into each
        // other. (A single-way core is always drained by construction.)
        for (t, m) in self.core_time.iter_mut().zip(&self.mshrs) {
            *t = (*t).max(m.drained_at());
        }
        let end_max = *self.core_time.iter().max().expect("cores");
        (end_max - start_max, total_ops, total_mem)
    }

    /// Runs warm-up + the measured region and collects results. For the
    /// dynamic scheme this includes the per-epoch profiling procedure.
    pub fn run(mut self) -> RunResult {
        // Warm-up (not measured).
        if self.cfg.warmup_per_thread > 0 {
            self.run_ops(self.cfg.warmup_per_thread);
        }
        let traffic_before = self.fabric.traffic().clone();
        let energy_before = self.fabric.total_energy();
        let breakdown_before = self.engine.stats().latency_breakdown;
        let class_before = [
            self.engine.home_dir(0).class_counts(),
            self.engine.home_dir(1).class_counts(),
        ];

        let (cycles, ops, mem_ops) = if self.cfg.scheme == Scheme::DveDynamic {
            self.run_dynamic()
        } else {
            self.run_ops(self.cfg.ops_per_thread)
        };

        // Deltas over the measured region.
        let traffic = self.fabric.traffic().saturating_sub(&traffic_before);
        let latency = self
            .engine
            .stats()
            .latency_breakdown
            .delta_since(&breakdown_before);
        let energy_after = self.fabric.total_energy();
        let dyn_joules = energy_after.dynamic_joules() - energy_before.dynamic_joules();
        let seconds = self.cfg.clock.nanos_for(Cycles(cycles)) * 1e-9;
        // Background power of the full DIMM population over the region
        // (same per-rank standby figure the DRAM energy model uses).
        let background = EnergyParams::background_joules(self.cfg.total_ranks(), seconds);
        let mem_energy = dyn_joules + background;

        let mut counts = [0u64; 4];
        for (s, before) in class_before.iter().enumerate() {
            let after = self.engine.home_dir(s).class_counts();
            for (c, (a, b)) in counts.iter_mut().zip(after.iter().zip(before)) {
                // Class counters only ever increment; a snapshot taken
                // before the measured region can never exceed one taken
                // after. A raw-u64 subtraction would wrap silently on a
                // violation, so fail loudly in debug builds instead.
                debug_assert!(
                    a >= b,
                    "class counter went backwards over the measured region: {a} < {b}"
                );
                *c += a - b;
            }
        }
        let total: u64 = counts.iter().sum();
        let mut fractions = [0.0; 4];
        if total > 0 {
            for (f, &c) in fractions.iter_mut().zip(&counts) {
                *f = c as f64 / total as f64;
            }
        }

        let mut rows = (0u64, 0u64, 0u64);
        let mut queue = (0u64, 0u64);
        let mut max_row_activations = 0u64;
        for socket in self.fabric.controllers() {
            for c in socket {
                let st = c.stats();
                rows.0 += st.row_hits;
                rows.1 += st.row_misses;
                rows.2 += st.row_conflicts;
                queue.0 += st.reads + st.writes;
                queue.1 += st.queue_delay_sum;
                max_row_activations = max_row_activations.max(c.rowhammer().max_activations());
            }
        }
        RunResult {
            scheme: self.cfg.scheme,
            workload: self.workload.clone(),
            cycles,
            ops,
            mem_ops,
            engine: self.engine.stats(),
            latency,
            traffic,
            class_fractions: fractions,
            mem_energy_joules: mem_energy,
            seconds,
            mem_edp: mem_energy * seconds,
            dram_rows: rows,
            dram_queue: queue,
            max_row_activations,
        }
    }

    /// The sampling-based dynamic protocol: per epoch, profile both
    /// state machines on a window, then run the remainder with the
    /// winner.
    fn run_dynamic(&mut self) -> (u64, u64, u64) {
        let total = self.cfg.ops_per_thread;
        let window = self.cfg.dynamic_window.max(1);
        // One epoch = 2 profiling windows + 8 windows of the winner
        // (the paper's 100M-per-1B ratio, scaled).
        let epoch_body = window * 8;
        let mut done = 0u64;
        let mut cycles = 0u64;
        let mut ops = 0u64;
        let mut mems = 0u64;
        let spec = self.cfg.speculative;
        while done < total {
            // Profile allow.
            let now = *self.core_time.iter().max().expect("cores");
            self.engine
                .switch_policy(ReplicaPolicy::Allow, spec, now, &mut self.fabric);
            let w = window.min(total - done);
            let (c_allow, o1, m1) = self.run_ops(w);
            done += w;
            cycles += c_allow;
            ops += o1;
            mems += m1;
            if done >= total {
                break;
            }
            // Profile deny.
            let now = *self.core_time.iter().max().expect("cores");
            self.engine
                .switch_policy(ReplicaPolicy::Deny, spec, now, &mut self.fabric);
            let w = window.min(total - done);
            let (c_deny, o2, m2) = self.run_ops(w);
            done += w;
            cycles += c_deny;
            ops += o2;
            mems += m2;
            if done >= total {
                break;
            }
            // Apply the winner for the epoch body.
            let winner = if c_allow < c_deny {
                ReplicaPolicy::Allow
            } else {
                ReplicaPolicy::Deny
            };
            let now = *self.core_time.iter().max().expect("cores");
            self.engine
                .switch_policy(winner, spec, now, &mut self.fabric);
            let w = epoch_body.min(total - done);
            let (c, o, m) = self.run_ops(w);
            done += w;
            cycles += c;
            ops += o;
            mems += m;
        }
        (cycles, ops, mems)
    }
}

/// Convenience: run one workload under one scheme with Table II config.
pub fn run_workload(
    profile: &WorkloadProfile,
    scheme: Scheme,
    ops_per_thread: u64,
    seed: u64,
) -> RunResult {
    let mut cfg = SystemConfig::table_ii(scheme);
    cfg.ops_per_thread = ops_per_thread;
    cfg.warmup_per_thread = ops_per_thread / 10;
    System::new(cfg, profile, seed).run()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dve_workloads::catalog;

    fn small_run(scheme: Scheme, workload: &str, ops: u64) -> RunResult {
        let p = catalog().into_iter().find(|p| p.name == workload).unwrap();
        run_workload(&p, scheme, ops, 42)
    }

    #[test]
    fn zero_op_budget_terminates_with_empty_result() {
        // `run_ops(0)` used to decrement `remaining[core]` straight to
        // u64::MAX on the first memory op: a panic in debug builds and
        // an effectively infinite loop in release. A zero budget (and
        // the zero warmup it implies via `run_workload`) must instead
        // run nothing and return immediately.
        for scheme in [Scheme::BaselineNuma, Scheme::DveDeny, Scheme::DveDynamic] {
            let r = small_run(scheme, "backprop", 0);
            assert_eq!(r.cycles, 0, "{scheme:?}: no cycles simulated");
            assert_eq!(r.ops, 0, "{scheme:?}: no ops executed");
            assert_eq!(r.mem_ops, 0, "{scheme:?}: no memory ops executed");
        }
    }

    #[test]
    fn zero_warmup_measures_from_cold_caches() {
        // warmup_per_thread == 0 must skip the warm-up region entirely
        // (not attempt a zero-budget run) and still measure correctly.
        let p = catalog()
            .into_iter()
            .find(|p| p.name == "backprop")
            .unwrap();
        let mut cfg = SystemConfig::table_ii(Scheme::BaselineNuma);
        cfg.ops_per_thread = 300;
        cfg.warmup_per_thread = 0;
        let r = System::new(cfg, &p, 7).run();
        assert_eq!(r.mem_ops, 300 * 16);
        assert!(r.cycles > 0);
    }

    #[test]
    fn baseline_run_completes_deterministically() {
        let a = small_run(Scheme::BaselineNuma, "backprop", 500);
        let b = small_run(Scheme::BaselineNuma, "backprop", 500);
        assert_eq!(a.cycles, b.cycles, "bit-for-bit reproducible");
        assert_eq!(a.traffic.total_bytes(), b.traffic.total_bytes());
        assert!(a.cycles > 0);
        assert_eq!(a.mem_ops, 500 * 16);
    }

    #[test]
    fn deny_beats_baseline_on_read_heavy_workload() {
        let base = small_run(Scheme::BaselineNuma, "backprop", 1500);
        let deny = small_run(Scheme::DveDeny, "backprop", 1500);
        let speedup = deny.speedup_over(&base);
        assert!(speedup > 1.0, "speedup = {speedup:.3}");
        assert!(deny.engine.replica_reads > 0);
    }

    #[test]
    fn deny_cuts_inter_socket_traffic_on_read_heavy_workload() {
        let base = small_run(Scheme::BaselineNuma, "backprop", 1500);
        let deny = small_run(Scheme::DveDeny, "backprop", 1500);
        let norm = deny.traffic.normalized_to(&base.traffic);
        assert!(norm < 0.9, "normalized traffic = {norm:.3}");
    }

    #[test]
    fn allow_beats_deny_on_private_write_heavy_workload() {
        // Long enough that the write-allocation effect dominates the
        // trace-synthesis noise (short runs sit within ~0.5% of parity).
        let allow = small_run(Scheme::DveAllow, "lbm", 6000);
        let deny = small_run(Scheme::DveDeny, "lbm", 6000);
        assert!(
            allow.cycles < deny.cycles,
            "allow {} vs deny {}",
            allow.cycles,
            deny.cycles
        );
    }

    #[test]
    fn deny_beats_allow_on_read_heavy_workload() {
        let allow = small_run(Scheme::DveAllow, "xsbench", 1500);
        let deny = small_run(Scheme::DveDeny, "xsbench", 1500);
        assert!(
            deny.cycles < allow.cycles,
            "deny {} vs allow {}",
            deny.cycles,
            allow.cycles
        );
    }

    #[test]
    fn class_fractions_reflect_profile() {
        let r = small_run(Scheme::BaselineNuma, "lbm", 1000);
        // lbm is dominated by private read/write.
        assert!(
            r.class_fractions[3] > 0.3,
            "private-rw fraction = {:.3}",
            r.class_fractions[3]
        );
        let sum: f64 = r.class_fractions.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn dynamic_scheme_runs_and_is_competitive() {
        let base = small_run(Scheme::BaselineNuma, "backprop", 2000);
        let dynamic = small_run(Scheme::DveDynamic, "backprop", 2000);
        let speedup = dynamic.speedup_over(&base);
        assert!(speedup > 0.95, "dynamic speedup = {speedup:.3}");
    }

    #[test]
    fn mirror_scheme_runs() {
        let r = small_run(Scheme::IntelMirrorPlus, "fft", 500);
        assert!(r.cycles > 0);
        assert_eq!(
            r.engine.replica_reads, 0,
            "mirroring is not coherent replication"
        );
    }

    #[test]
    fn energy_accounting_positive() {
        let r = small_run(Scheme::DveDeny, "fft", 500);
        assert!(r.mem_energy_joules > 0.0);
        assert!(r.mem_edp > 0.0);
        assert!(r.seconds > 0.0);
    }

    #[test]
    fn background_energy_uses_model_constant() {
        // Satellite check: the runner's background-power term must come
        // from the DRAM energy model's named constant, not a stray
        // literal. A zero-op run has no dynamic energy, so total energy
        // is exactly the background term.
        let r = small_run(Scheme::BaselineNuma, "fft", 0);
        assert_eq!(r.mem_energy_joules, 0.0, "no cycles, no background");
        let r = small_run(Scheme::DveDeny, "fft", 300);
        let cfg = SystemConfig::table_ii(Scheme::DveDeny);
        let background =
            dve_dram::energy::EnergyParams::background_joules(cfg.total_ranks(), r.seconds);
        assert!(
            r.mem_energy_joules > background,
            "dynamic energy on top of background"
        );
        // And the documented constant matches the model's default.
        assert_eq!(
            dve_dram::energy::EnergyParams::BACKGROUND_MW_PER_RANK,
            dve_dram::energy::EnergyParams::default().background_mw_per_rank
        );
    }

    #[test]
    fn latency_breakdown_conserves_and_attributes() {
        // With no warm-up, the measured-region breakdown is the whole
        // run's, and conservation pins it to the engine's per-class
        // latency sums exactly.
        let p = catalog()
            .into_iter()
            .find(|p| p.name == "backprop")
            .unwrap();
        let mut cfg = SystemConfig::table_ii(Scheme::DveDeny);
        cfg.ops_per_thread = 300;
        cfg.warmup_per_thread = 0;
        let r = System::new(cfg, &p, 7).run();
        let engine_total: u64 = r.engine.latency_sum.iter().sum();
        assert_eq!(r.latency.total(), engine_total, "conservation");
        assert!(r.latency.protocol > 0, "cache/directory lookups charged");
        assert!(r.latency.bank_service > 0, "DRAM service charged");
        assert!(r.latency.link > 0, "remote traffic charged");
        // Fractions are well-formed.
        let sum: f64 = dve_sim::latency::Component::ALL
            .iter()
            .map(|&c| r.latency.fraction(c))
            .sum();
        assert!((sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn class_fraction_deltas_are_monotone() {
        // Satellite check for the measured-region class-count deltas:
        // the warm-up region inflates the "before" snapshot, and the
        // debug_assert in `run()` verifies after >= before per class.
        // A run with both regions exercises that guard; the fractions
        // it produces must be a valid distribution.
        let r = small_run(Scheme::DveDeny, "backprop", 800);
        for (i, f) in r.class_fractions.iter().enumerate() {
            assert!((0.0..=1.0).contains(f), "class {i} fraction {f}");
        }
        let sum: f64 = r.class_fractions.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn single_mshr_blocks_and_more_ways_overlap() {
        let p = catalog()
            .into_iter()
            .find(|p| p.name == "backprop")
            .unwrap();
        let run_with = |m: usize| {
            let mut cfg = SystemConfig::table_ii(Scheme::DveDeny);
            cfg.ops_per_thread = 500;
            cfg.warmup_per_thread = 50;
            cfg.mshrs = m;
            System::new(cfg, &p, 42).run()
        };
        let blocking = run_with(1);
        let overlapped = run_with(4);
        assert_eq!(blocking.mem_ops, overlapped.mem_ops, "same work");
        assert!(
            overlapped.cycles < blocking.cycles,
            "4 MSHRs must overlap misses: {} vs {}",
            overlapped.cycles,
            blocking.cycles
        );
        // Overlapped runs stay deterministic.
        let again = run_with(4);
        assert_eq!(overlapped.cycles, again.cycles);
    }

    #[test]
    fn mshr_scaling_is_monotone_on_backprop() {
        let p = catalog()
            .into_iter()
            .find(|p| p.name == "backprop")
            .unwrap();
        let mut last = u64::MAX;
        for m in [1usize, 2, 4, 8] {
            let mut cfg = SystemConfig::table_ii(Scheme::BaselineNuma);
            cfg.ops_per_thread = 400;
            cfg.warmup_per_thread = 40;
            cfg.mshrs = m;
            let r = System::new(cfg, &p, 42).run();
            assert!(
                r.cycles <= last,
                "mshrs={m} slower than previous: {} > {last}",
                r.cycles
            );
            last = r.cycles;
        }
    }
}
