//! The paper's evaluation aggregates.
//!
//! §VI: "We order the workloads in descending order of L2 MPKI and
//! report the geometric mean of speedup as an aggregate statistic for
//! the top-10 (high MPKI), top-15 and all 20 benchmarks."

use dve_sim::stats::geomean;

/// Geometric-mean speedups over the paper's three groups. Input must be
/// ordered by descending MPKI (the order of
/// [`dve_workloads::catalog()`]).
///
/// # Example
///
/// ```
/// use dve::metrics::GroupedSpeedups;
///
/// let speedups: Vec<f64> = (0..20).map(|i| 1.0 + i as f64 * 0.01).collect();
/// let g = GroupedSpeedups::from_ordered(&speedups);
/// assert!(g.top10 < g.all20); // later entries are larger here
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GroupedSpeedups {
    /// Geomean over the 10 highest-MPKI workloads.
    pub top10: f64,
    /// Geomean over the 15 highest-MPKI workloads.
    pub top15: f64,
    /// Geomean over all 20 workloads.
    pub all20: f64,
}

impl GroupedSpeedups {
    /// Computes the three geomeans from MPKI-ordered speedups.
    ///
    /// # Panics
    ///
    /// Panics unless exactly 20 values are provided.
    pub fn from_ordered(speedups: &[f64]) -> GroupedSpeedups {
        assert_eq!(
            speedups.len(),
            20,
            "the paper's grouping needs all 20 workloads"
        );
        GroupedSpeedups {
            top10: geomean(&speedups[..10]),
            top15: geomean(&speedups[..15]),
            all20: geomean(speedups),
        }
    }
}

/// Formats a speedup as the percentage improvement the paper quotes
/// ("28%" for 1.28×).
pub fn pct(speedup: f64) -> String {
    format!("{:+.1}%", (speedup - 1.0) * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groups_use_prefixes() {
        let mut v = vec![2.0; 10];
        v.extend(vec![1.0; 10]);
        let g = GroupedSpeedups::from_ordered(&v);
        assert!((g.top10 - 2.0).abs() < 1e-12);
        assert!((g.all20 - 2.0_f64.sqrt()).abs() < 1e-12);
        assert!(g.top15 > g.all20);
    }

    #[test]
    fn pct_formatting() {
        assert_eq!(pct(1.28), "+28.0%");
        assert_eq!(pct(0.95), "-5.0%");
    }

    #[test]
    #[should_panic(expected = "20 workloads")]
    fn wrong_count_rejected() {
        GroupedSpeedups::from_ordered(&[1.0; 19]);
    }
}
