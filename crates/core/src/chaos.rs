//! In-band fault injection: deterministic fault schedules and the
//! recovery ledger.
//!
//! The paper's §V-B2 claim is *operational*: a detected-uncorrectable
//! DRAM error is corrected **online** from the other socket's replica,
//! and hard failures degrade the region to one copy instead of
//! crashing. Exercising that claim needs faults that arrive while the
//! timed system is running — not out-of-band unit fixtures. This
//! module provides the pieces the [`System`](crate::system::System)
//! runner orchestrates:
//!
//! * [`FaultSchedule`] — a deterministic, seed-derived (via
//!   [`dve_sim::rng::derive_seed`]) sequence of [`FaultEvent`]s that
//!   plant transient or hard faults into specific controllers mid-run
//!   (and optionally heal them later).
//! * [`ChaosConfig`] — the full chaos envelope: the schedule,
//!   inter-socket link outage windows with bounded-retry backoff
//!   parameters, and paced patrol-scrub configuration.
//! * [`RecoveryLedger`] — the run-wide accounting of every read that
//!   took the recovery detour, with a [`consistent`] invariant the
//!   chaos harness checks after every run:
//!   `clean_redirects + corrected + machine_checks == detected_reads`
//!   and `repaired + degraded == corrected`.
//!
//! [`consistent`]: RecoveryLedger::consistent
//!
//! Zero-fault discipline: a `ChaosConfig` with an empty schedule, no
//! outages and no scrub leaves every demand access bit-identical to a
//! run without chaos at all — the detection check is timing-neutral,
//! so the pinned cycle-exact goldens must reproduce. The chaos harness
//! (`cargo run -p dve-bench --bin chaos`) gates on exactly that.

use dve_dram::fault::FaultDomain;
use dve_sim::rng::{derive_seed, SplitMix64};

/// RNG stream id for chaos schedules under [`derive_seed`] (one stream
/// per subsystem; campaigns, benches and workloads use their own).
pub const CHAOS_STREAM: u64 = 0xC4A0;

/// RNG stream id for the *correlated* fault sources
/// ([`CorrelatedConfig`]): thermal and aging draws hang off this stream
/// so they never collide with the static schedule sharing the seed.
pub const CORRELATED_STREAM: u64 = 0xC0E7;

/// Where a fault lands, relative to one controller. The fabric
/// materializes this into a [`FaultDomain`] using the controller's
/// *global* channel index (`socket * channels_per_socket + channel`),
/// so schedules stay valid across schemes with different channel
/// counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultSite {
    /// The whole controller (every read detects; the §V-B2 showcase).
    Controller,
    /// The controller's channel circuitry (same blast radius here —
    /// one controller owns one channel).
    Channel,
    /// One DRAM device: corrupts one symbol of every codeword in the
    /// rank (detected by DSD/TSD, corrected in place by chipkill).
    Chip {
        /// Rank within the channel.
        rank: usize,
        /// Device index within the rank.
        chip: usize,
    },
    /// One row in one bank (wordline / row-hammer class).
    Row {
        /// Rank within the channel.
        rank: usize,
        /// Bank within the rank.
        bank: usize,
        /// Row index.
        row: u64,
    },
    /// A single cache line, by *global* line address (the byte address
    /// is `line * 64` at every controller holding a copy).
    Line {
        /// Global line address.
        line: u64,
    },
}

impl FaultSite {
    /// Materializes the site into a [`FaultDomain`] for a controller
    /// with global channel index `global_channel`.
    pub fn domain(self, global_channel: usize) -> FaultDomain {
        match self {
            FaultSite::Controller => FaultDomain::Controller,
            FaultSite::Channel => FaultDomain::Channel {
                channel: global_channel,
            },
            FaultSite::Chip { rank, chip } => FaultDomain::Chip {
                channel: global_channel,
                rank,
                chip,
            },
            FaultSite::Row { rank, bank, row } => FaultDomain::Row {
                channel: global_channel,
                rank,
                bank,
                row,
            },
            FaultSite::Line { line } => FaultDomain::Line {
                channel: global_channel,
                line,
            },
        }
    }
}

/// What a [`FaultEvent`] does when it fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// Plant a fault. `transient` faults are cleared by the §V-B2
    /// repair write (or a scrub rewrite); hard faults survive repair
    /// and degrade the copy.
    Plant {
        /// Where the fault lands.
        site: FaultSite,
        /// Whether the repair write clears it.
        transient: bool,
    },
    /// Heal a fault (field replacement / retraining): removes the
    /// domain and lets the runner lift any degradation it caused.
    Heal {
        /// Where the fault was.
        site: FaultSite,
    },
}

/// One scheduled fault action against one controller.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultEvent {
    /// Simulated cycle at (or after) which the action applies.
    pub at: u64,
    /// Target node (`0..nodes`; the fabric clamps out-of-range ids so
    /// a schedule drawn for a wide topology stays valid on a narrow
    /// one).
    pub socket: usize,
    /// Target channel *within* the socket.
    pub channel: usize,
    /// What happens.
    pub action: FaultAction,
}

/// A deterministic, time-sorted fault schedule.
///
/// # Example
///
/// ```
/// use dve::chaos::{ChaosParams, FaultSchedule};
///
/// let a = FaultSchedule::random(42, &ChaosParams::default());
/// let b = FaultSchedule::random(42, &ChaosParams::default());
/// assert_eq!(a, b, "seed-derived schedules are reproducible");
/// assert!(FaultSchedule::empty().is_empty());
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultSchedule {
    events: Vec<FaultEvent>,
}

/// Parameters for [`FaultSchedule::random`].
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosParams {
    /// Number of faults to plant.
    pub faults: usize,
    /// Plant times are drawn uniformly from `[0, horizon)` cycles.
    pub horizon: u64,
    /// Fraction of planted faults that are transient (repair-clearable).
    pub transient_fraction: f64,
    /// If set, every *hard* fault is healed this many cycles after it
    /// was planted (bounded damage; lets runs exercise recovery).
    pub heal_after: Option<u64>,
    /// Channels per socket to target (2 for replicated schemes).
    pub channels_per_socket: usize,
    /// Line-site faults are drawn from `[0, line_span)` global lines.
    pub line_span: u64,
    /// Nodes to spread faults over (2 for the classic mirror pair; an
    /// N-node topology passes its node count so faults land on every
    /// node, not just the first two).
    pub nodes: usize,
}

impl Default for ChaosParams {
    fn default() -> ChaosParams {
        ChaosParams {
            faults: 4,
            horizon: 2_000_000,
            transient_fraction: 0.5,
            heal_after: Some(1_000_000),
            channels_per_socket: 2,
            line_span: 1 << 14,
            nodes: 2,
        }
    }
}

impl ChaosParams {
    /// Validates the parameters.
    ///
    /// # Panics
    ///
    /// Panics on a zero horizon, a transient fraction outside `[0, 1]`,
    /// a zero heal delay (a heal scheduled at the plant instant is a
    /// no-op plant, never intended), or zero channel/line/node spans.
    pub fn validate(&self) {
        assert!(self.horizon > 0, "chaos horizon must be non-zero");
        assert!(
            (0.0..=1.0).contains(&self.transient_fraction),
            "transient fraction out of [0, 1]: {}",
            self.transient_fraction
        );
        assert!(
            self.heal_after != Some(0),
            "heal delay must be non-zero (use None for no heals)"
        );
        assert!(self.channels_per_socket > 0, "need at least one channel");
        assert!(self.line_span > 0, "line span must be non-zero");
        assert!(self.nodes > 0, "need at least one node");
    }
}

impl FaultSchedule {
    /// An empty schedule (the zero-fault golden gate).
    pub fn empty() -> FaultSchedule {
        FaultSchedule::default()
    }

    /// Builds a schedule from explicit events, sorting them by time
    /// (stable, so same-cycle events keep their given order).
    pub fn new(mut events: Vec<FaultEvent>) -> FaultSchedule {
        events.sort_by_key(|e| e.at);
        FaultSchedule { events }
    }

    /// Generates a randomized schedule, fully determined by `seed`:
    /// each event draws its parameters from an independent child
    /// generator obtained through [`derive_seed`]`(seed, CHAOS_STREAM,
    /// i)`, so schedules never correlate with workload or bench
    /// streams sharing the master seed.
    ///
    /// Random sites are drawn from the localized classes (line, row,
    /// chip) — controller/channel wipes are for directed tests, not
    /// background chaos.
    ///
    /// # Panics
    ///
    /// Panics if `p` fails [`ChaosParams::validate`].
    pub fn random(seed: u64, p: &ChaosParams) -> FaultSchedule {
        p.validate();
        let mut events = Vec::with_capacity(p.faults * 2);
        for i in 0..p.faults {
            let mut rng = SplitMix64::new(derive_seed(seed, CHAOS_STREAM, i as u64));
            let at = rng.next_below(p.horizon.max(1));
            let socket = rng.next_below(p.nodes.max(2) as u64) as usize;
            let channel = rng.next_below(p.channels_per_socket.max(1) as u64) as usize;
            let site = match rng.next_below(4) {
                0 | 1 => FaultSite::Line {
                    line: rng.next_below(p.line_span.max(1)),
                },
                2 => FaultSite::Row {
                    rank: rng.next_below(2) as usize,
                    bank: rng.next_below(16) as usize,
                    row: rng.next_below(256),
                },
                _ => FaultSite::Chip {
                    rank: rng.next_below(2) as usize,
                    chip: rng.next_below(16) as usize,
                },
            };
            let transient = rng.chance(p.transient_fraction);
            events.push(FaultEvent {
                at,
                socket,
                channel,
                action: FaultAction::Plant { site, transient },
            });
            if !transient {
                if let Some(heal_after) = p.heal_after {
                    events.push(FaultEvent {
                        at: at.saturating_add(heal_after),
                        socket,
                        channel,
                        action: FaultAction::Heal { site },
                    });
                }
            }
        }
        FaultSchedule::new(events)
    }

    /// The events, sorted by time.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Whether the schedule has no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of events (plants + heals).
    pub fn len(&self) -> usize {
        self.events.len()
    }
}

/// Paced patrol-scrub configuration: the scrubber walks
/// `lines_per_slice` lines of the first `region_bytes` of every
/// channel each `interval` cycles, through the controllers' normal
/// timed path (scrub reads occupy banks and contend with demand
/// traffic).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScrubConfig {
    /// Bytes of each channel covered by the patrol.
    pub region_bytes: u64,
    /// Lines read per slice.
    pub lines_per_slice: u64,
    /// Cycles between slice starts (a slice that overruns the interval
    /// delays the next one — the patrol never overlaps itself).
    pub interval: u64,
}

impl Default for ScrubConfig {
    fn default() -> ScrubConfig {
        ScrubConfig {
            region_bytes: 1 << 20,
            lines_per_slice: 32,
            interval: 100_000,
        }
    }
}

impl ScrubConfig {
    /// Validates the patrol parameters.
    ///
    /// # Panics
    ///
    /// Panics if any field is zero (a zero-length patrol region, empty
    /// slice, or zero interval silently degenerates the patrol).
    pub fn validate(&self) {
        assert!(self.region_bytes > 0, "scrub region must be non-zero");
        assert!(self.lines_per_slice > 0, "scrub slice must be non-empty");
        assert!(self.interval > 0, "scrub interval must be non-zero");
    }
}

/// Outage windows scoped to single directed edges of the topology
/// graph: `(from, to, windows)` tuples.
pub type EdgeOutages = Vec<(usize, usize, Vec<(u64, u64)>)>;

/// Validates one outage-window list: every window non-empty half-open
/// `[start, end)`, sorted, non-overlapping.
///
/// # Panics
///
/// Panics with `what` in the message on the first violation.
fn validate_windows(what: &str, windows: &[(u64, u64)]) {
    for &(start, end) in windows {
        assert!(start < end, "{what}: zero-length window [{start}, {end})");
    }
    for w in windows.windows(2) {
        assert!(
            w[0].1 <= w[1].0,
            "{what}: windows [{}, {}) and [{}, {}) overlap or are unsorted",
            w[0].0,
            w[0].1,
            w[1].0,
            w[1].1
        );
    }
}

/// Which correlated source planted a fault — the key the
/// [`RecoveryLedger`] per-source counters partition over.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultSourceKind {
    /// Row-hammer pressure crossing the activation threshold.
    Hammer,
    /// Arrhenius-scaled thermal arrivals.
    Thermal,
    /// Wear-out arrivals ramping over simulated time.
    Aging,
}

/// Row-hammer fault source: watches the controllers' own
/// [`RowHammerMonitor`](dve_dram::rowhammer::RowHammerMonitor)s (fed by
/// real demand activations) and plants bit-flips in the blast radius of
/// any row whose in-window activation count crosses `threshold`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HammerParams {
    /// Activation-count trip point (`rows_over(threshold)`); inert at
    /// `u64::MAX`.
    pub threshold: u64,
    /// Whether the planted flips are transient (repair-clearable) or
    /// hard (the copy degrades).
    pub transient: bool,
    /// Also plant the same rows on the survivor node — both copies bad
    /// is the machine-check rung of the severity ladder.
    pub both_copies: bool,
    /// Cycles between monitor polls.
    pub poll_interval: u64,
}

impl HammerParams {
    /// Armed but inert: polls run, the threshold is never crossed.
    pub fn inert() -> HammerParams {
        HammerParams {
            threshold: u64::MAX,
            transient: true,
            both_copies: false,
            poll_interval: 5_000,
        }
    }

    /// Validates the parameters.
    ///
    /// # Panics
    ///
    /// Panics on a zero poll interval or zero threshold (every row
    /// would trip on its first activation — use a directed schedule for
    /// that).
    pub fn validate(&self) {
        assert!(
            self.poll_interval > 0,
            "hammer poll interval must be non-zero"
        );
        assert!(self.threshold > 0, "hammer threshold must be non-zero");
    }
}

/// Thermal fault source: per-rank Bernoulli arrivals whose rates are
/// Arrhenius-scaled from the live
/// [`ThermalProfile`](dve_dram::thermal::ThermalProfile) — hotter ranks
/// fail proportionally more often, referenced to the coolest rank.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThermalParams {
    /// Per-poll-interval fault probability at the *coolest* rank; every
    /// other rank scales it up by its Arrhenius risk factor. Inert at
    /// `0.0`.
    pub base_rate: f64,
    /// Arrhenius activation energy in eV (typical DRAM wear-out is
    /// 0.5–1.1 eV).
    pub ea_ev: f64,
    /// Fraction of thermal plants that are transient.
    pub transient_fraction: f64,
    /// Cycles between arrival draws.
    pub poll_interval: u64,
}

impl ThermalParams {
    /// Armed but inert: draws run, the rate is zero.
    pub fn inert() -> ThermalParams {
        ThermalParams {
            base_rate: 0.0,
            ea_ev: 0.6,
            transient_fraction: 0.5,
            poll_interval: 10_000,
        }
    }

    /// Validates the parameters.
    ///
    /// # Panics
    ///
    /// Panics on a base rate or transient fraction outside `[0, 1]`, a
    /// negative activation energy, or a zero poll interval.
    pub fn validate(&self) {
        assert!(
            (0.0..=1.0).contains(&self.base_rate),
            "thermal base rate out of [0, 1]: {}",
            self.base_rate
        );
        assert!(self.ea_ev >= 0.0, "activation energy must be non-negative");
        assert!(
            (0.0..=1.0).contains(&self.transient_fraction),
            "thermal transient fraction out of [0, 1]: {}",
            self.transient_fraction
        );
        assert!(
            self.poll_interval > 0,
            "thermal poll interval must be non-zero"
        );
    }
}

/// Aging fault source: hard line faults whose per-interval arrival
/// probability ramps linearly with simulated time (FIT grows as the
/// device wears out).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AgingParams {
    /// Per-poll-interval plant probability at `t = 0`. Inert at `0.0`
    /// with a zero ramp.
    pub base_rate: f64,
    /// Probability added per million simulated cycles of age.
    pub ramp_per_mcycle: f64,
    /// Line faults are drawn from `[0, line_span)` global lines.
    pub line_span: u64,
    /// Cycles between arrival draws.
    pub poll_interval: u64,
}

impl AgingParams {
    /// Armed but inert: draws run, the rate stays zero forever.
    pub fn inert() -> AgingParams {
        AgingParams {
            base_rate: 0.0,
            ramp_per_mcycle: 0.0,
            line_span: 1 << 14,
            poll_interval: 10_000,
        }
    }

    /// Validates the parameters.
    ///
    /// # Panics
    ///
    /// Panics on a base rate outside `[0, 1]`, a negative or
    /// non-finite ramp, or zero line span / poll interval.
    pub fn validate(&self) {
        assert!(
            (0.0..=1.0).contains(&self.base_rate),
            "aging base rate out of [0, 1]: {}",
            self.base_rate
        );
        assert!(
            self.ramp_per_mcycle.is_finite() && self.ramp_per_mcycle >= 0.0,
            "aging ramp must be finite and non-negative"
        );
        assert!(self.line_span > 0, "aging line span must be non-zero");
        assert!(
            self.poll_interval > 0,
            "aging poll interval must be non-zero"
        );
    }
}

/// The correlated-source arm of the chaos envelope: which workload- and
/// environment-coupled fault sources run alongside the static schedule,
/// and the seed their stochastic draws derive from (via
/// [`CORRELATED_STREAM`], so they never alias the schedule's stream).
#[derive(Debug, Clone, PartialEq)]
pub struct CorrelatedConfig {
    /// Master seed for the sources' own RNG streams.
    pub seed: u64,
    /// Row-hammer source, if armed.
    pub hammer: Option<HammerParams>,
    /// Thermal source, if armed.
    pub thermal: Option<ThermalParams>,
    /// Aging source, if armed.
    pub aging: Option<AgingParams>,
}

impl CorrelatedConfig {
    /// All three sources armed but inert — the golden-preservation
    /// configuration: polls and draws run on the sim-time grid yet no
    /// fault is ever planted, so pinned cycle counts must reproduce.
    pub fn inert(seed: u64) -> CorrelatedConfig {
        CorrelatedConfig {
            seed,
            hammer: Some(HammerParams::inert()),
            thermal: Some(ThermalParams::inert()),
            aging: Some(AgingParams::inert()),
        }
    }

    /// Validates every armed source.
    ///
    /// # Panics
    ///
    /// Panics if any armed source fails its own validation.
    pub fn validate(&self) {
        if let Some(h) = &self.hammer {
            h.validate();
        }
        if let Some(t) = &self.thermal {
            t.validate();
        }
        if let Some(a) = &self.aging {
            a.validate();
        }
    }
}

/// The full chaos envelope for one run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ChaosConfig {
    /// The fault schedule.
    pub schedule: FaultSchedule,
    /// Inter-socket link outage windows, sorted, non-overlapping,
    /// half-open `[start, end)` in cycles. While a window is open the
    /// engine falls back to local-copy-only service (§V-E) and
    /// re-syncs on recovery.
    pub link_outages: Vec<(u64, u64)>,
    /// Per-edge outage windows `(from, to, windows)` — same format as
    /// [`ChaosConfig::link_outages`] but scoped to one directed edge of
    /// the topology graph. Outages on one edge never gate sends on any
    /// other edge (the independence property the topology tests pin).
    pub edge_outages: EdgeOutages,
    /// Backoff base for link retries (retry `k` waits
    /// `retry_base * (2^k - 1)` cycles).
    pub retry_base: u64,
    /// Maximum link retries before a send fails over to local-only.
    pub max_retries: u32,
    /// Paced patrol scrub, if enabled.
    pub scrub: Option<ScrubConfig>,
    /// Correlated fault sources (hammer / thermal / aging), if armed.
    pub correlated: Option<CorrelatedConfig>,
}

impl ChaosConfig {
    /// A chaos layer that is *armed but inert*: no faults, no outages,
    /// no scrub. Runs configured with this must be bit-identical to
    /// runs without any chaos config — the golden gate.
    pub fn inert() -> ChaosConfig {
        ChaosConfig {
            schedule: FaultSchedule::empty(),
            link_outages: Vec::new(),
            edge_outages: Vec::new(),
            retry_base: 64,
            max_retries: 6,
            scrub: None,
            correlated: None,
        }
    }

    /// Randomized chaos: a seed-derived schedule plus defaults for the
    /// retry policy.
    pub fn random(seed: u64, params: &ChaosParams) -> ChaosConfig {
        ChaosConfig {
            schedule: FaultSchedule::random(seed, params),
            ..ChaosConfig::inert()
        }
    }

    /// Validates the whole envelope: outage windows (link and per-edge)
    /// must be non-empty, sorted and non-overlapping; scrub and every
    /// armed correlated source must pass their own validation. The
    /// system runner calls this when chaos is armed.
    ///
    /// # Panics
    ///
    /// Panics on the first violation.
    pub fn validate(&self) {
        validate_windows("link outages", &self.link_outages);
        for (from, to, windows) in &self.edge_outages {
            validate_windows(&format!("edge ({from} -> {to}) outages"), windows);
        }
        if let Some(s) = &self.scrub {
            s.validate();
        }
        if let Some(c) = &self.correlated {
            c.validate();
        }
    }
}

/// Run-wide accounting of the in-band recovery machinery. Every
/// counter is cumulative over the run (warm-up included — faults do
/// not respect measurement regions).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryLedger {
    /// Demand reads that entered the recovery path: the local read
    /// reported detected-uncorrectable, or the copy was already
    /// degraded and the read was redirected to the survivor.
    pub detected_reads: u64,
    /// Redirected reads of already-degraded copies that the survivor
    /// served cleanly.
    pub clean_redirects: u64,
    /// Detected reads the other copy corrected (CE): the §V-B2 remote
    /// fetch succeeded.
    pub corrected: u64,
    /// Corrected reads whose repair-and-reread succeeded — the fault
    /// was transient (`CorrectedTransient`).
    pub repaired: u64,
    /// Corrected reads whose re-read still failed — the copy is hard
    /// dead and the line degraded to single-copy service
    /// (`CorrectedDegraded`).
    pub degraded: u64,
    /// Reads where every copy failed (DUE → machine-check exception).
    pub machine_checks: u64,
    /// Scrub slices executed.
    pub scrub_slices: u64,
    /// Lines patrol-read by the scrubber.
    pub scrub_lines: u64,
    /// Scrub reads corrected in place by local ECC.
    pub scrub_corrected: u64,
    /// Scrub reads that detected an uncorrectable error.
    pub scrub_detected: u64,
    /// Scrub detections escalated through the §V-B2 remote-correction
    /// path proactively.
    pub scrub_escalations: u64,
    /// Link sends that needed at least one backoff retry.
    pub link_retries: u64,
    /// Link sends that exhausted the retry budget (fell back to
    /// local-copy-only service).
    pub link_failed_sends: u64,
    /// Fault domains actually planted (double-plants not counted).
    pub faults_planted: u64,
    /// Fault domains actually healed (spurious heals not counted).
    pub faults_healed: u64,
    /// Plants attributed to the row-hammer source (subset of
    /// `faults_planted`).
    pub hammer_plants: u64,
    /// Plants attributed to the thermal source (subset of
    /// `faults_planted`).
    pub thermal_plants: u64,
    /// Plants attributed to the aging source (subset of
    /// `faults_planted`).
    pub aging_plants: u64,
}

impl RecoveryLedger {
    /// The ledger-consistency invariant the chaos harness checks after
    /// every run:
    ///
    /// * every detected-path read resolves exactly one way:
    ///   `clean_redirects + corrected + machine_checks ==
    ///   detected_reads`;
    /// * every correction either repaired the copy or degraded it:
    ///   `repaired + degraded == corrected` (which implies the paper's
    ///   weaker `degraded <= corrected`);
    /// * the scrub report partition holds:
    ///   `scrub_escalations <= scrub_detected <= scrub_lines`;
    /// * source-attributed plants partition into the planted total:
    ///   `hammer_plants + thermal_plants + aging_plants <=
    ///   faults_planted` (the remainder came from the static schedule).
    pub fn consistent(&self) -> bool {
        self.clean_redirects + self.corrected + self.machine_checks == self.detected_reads
            && self.repaired + self.degraded == self.corrected
            && self.scrub_escalations <= self.scrub_detected
            && self.scrub_detected <= self.scrub_lines
            && self.hammer_plants + self.thermal_plants + self.aging_plants <= self.faults_planted
    }

    /// Whether any recovery activity happened at all (zero-fault runs
    /// must report `false`).
    pub fn any_activity(&self) -> bool {
        self.detected_reads > 0
            || self.scrub_detected > 0
            || self.scrub_corrected > 0
            || self.link_retries > 0
            || self.link_failed_sends > 0
            || self.faults_planted > 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedules_are_seed_deterministic_and_sorted() {
        let p = ChaosParams::default();
        let a = FaultSchedule::random(7, &p);
        let b = FaultSchedule::random(7, &p);
        assert_eq!(a, b);
        assert!(a.events().windows(2).all(|w| w[0].at <= w[1].at));
        let c = FaultSchedule::random(8, &p);
        assert_ne!(a, c, "different seeds, different schedules");
    }

    #[test]
    fn hard_faults_get_heals_when_requested() {
        let p = ChaosParams {
            faults: 16,
            transient_fraction: 0.0,
            heal_after: Some(500),
            ..ChaosParams::default()
        };
        let s = FaultSchedule::random(3, &p);
        let plants = s
            .events()
            .iter()
            .filter(|e| matches!(e.action, FaultAction::Plant { .. }))
            .count();
        let heals = s
            .events()
            .iter()
            .filter(|e| matches!(e.action, FaultAction::Heal { .. }))
            .count();
        assert_eq!(plants, 16);
        assert_eq!(heals, 16, "every hard fault is healed");
        // Each heal matches a plant's site + offset.
        for e in s.events() {
            if let FaultAction::Heal { site } = e.action {
                assert!(s.events().iter().any(|p_ev| matches!(
                    p_ev.action,
                    FaultAction::Plant { site: ps, transient: false } if ps == site
                        && p_ev.at + 500 == e.at
                        && p_ev.socket == e.socket
                        && p_ev.channel == e.channel
                )));
            }
        }
    }

    #[test]
    fn transient_faults_are_never_healed_by_schedule() {
        let p = ChaosParams {
            faults: 16,
            transient_fraction: 1.0,
            heal_after: Some(500),
            ..ChaosParams::default()
        };
        let s = FaultSchedule::random(3, &p);
        assert!(s.events().iter().all(|e| matches!(
            e.action,
            FaultAction::Plant {
                transient: true,
                ..
            }
        )));
    }

    #[test]
    fn site_materializes_with_global_channel() {
        assert_eq!(
            FaultSite::Chip { rank: 1, chip: 3 }.domain(3),
            FaultDomain::Chip {
                channel: 3,
                rank: 1,
                chip: 3
            }
        );
        assert_eq!(
            FaultSite::Line { line: 42 }.domain(1),
            FaultDomain::Line {
                channel: 1,
                line: 42
            }
        );
        assert_eq!(FaultSite::Controller.domain(0), FaultDomain::Controller);
    }

    #[test]
    fn ledger_consistency_invariant() {
        let mut l = RecoveryLedger::default();
        assert!(l.consistent(), "empty ledger is consistent");
        assert!(!l.any_activity());
        l.detected_reads = 10;
        l.clean_redirects = 2;
        l.corrected = 7;
        l.repaired = 4;
        l.degraded = 3;
        l.machine_checks = 1;
        assert!(l.consistent());
        assert!(l.any_activity());
        l.degraded = 4; // repaired + degraded > corrected
        assert!(!l.consistent());
        l.degraded = 3;
        l.machine_checks = 2; // partition broken
        assert!(!l.consistent());
    }

    #[test]
    fn inert_chaos_has_nothing_scheduled() {
        let c = ChaosConfig::inert();
        assert!(c.schedule.is_empty());
        assert!(c.link_outages.is_empty());
        assert!(c.scrub.is_none());
        assert!(c.correlated.is_none());
        c.validate();
    }

    #[test]
    #[should_panic(expected = "horizon must be non-zero")]
    fn zero_horizon_rejected() {
        FaultSchedule::random(
            1,
            &ChaosParams {
                horizon: 0,
                ..ChaosParams::default()
            },
        );
    }

    #[test]
    #[should_panic(expected = "transient fraction out of [0, 1]")]
    fn out_of_range_transient_fraction_rejected() {
        ChaosParams {
            transient_fraction: 1.5,
            ..ChaosParams::default()
        }
        .validate();
    }

    #[test]
    #[should_panic(expected = "heal delay must be non-zero")]
    fn zero_heal_delay_rejected() {
        ChaosParams {
            heal_after: Some(0),
            ..ChaosParams::default()
        }
        .validate();
    }

    #[test]
    #[should_panic(expected = "line span must be non-zero")]
    fn zero_line_span_rejected() {
        ChaosParams {
            line_span: 0,
            ..ChaosParams::default()
        }
        .validate();
    }

    #[test]
    #[should_panic(expected = "zero-length window")]
    fn zero_length_outage_window_rejected() {
        ChaosConfig {
            link_outages: vec![(500, 500)],
            ..ChaosConfig::inert()
        }
        .validate();
    }

    #[test]
    #[should_panic(expected = "overlap or are unsorted")]
    fn overlapping_edge_outages_rejected() {
        ChaosConfig {
            edge_outages: vec![(0, 1, vec![(100, 300), (200, 400)])],
            ..ChaosConfig::inert()
        }
        .validate();
    }

    #[test]
    #[should_panic(expected = "scrub interval must be non-zero")]
    fn zero_scrub_interval_rejected() {
        ChaosConfig {
            scrub: Some(ScrubConfig {
                interval: 0,
                ..ScrubConfig::default()
            }),
            ..ChaosConfig::inert()
        }
        .validate();
    }

    #[test]
    #[should_panic(expected = "thermal base rate out of [0, 1]")]
    fn thermal_rate_above_one_rejected() {
        ThermalParams {
            base_rate: 1.2,
            ..ThermalParams::inert()
        }
        .validate();
    }

    #[test]
    #[should_panic(expected = "aging base rate out of [0, 1]")]
    fn negative_aging_rate_rejected() {
        AgingParams {
            base_rate: -0.1,
            ..AgingParams::inert()
        }
        .validate();
    }

    #[test]
    #[should_panic(expected = "hammer poll interval must be non-zero")]
    fn zero_hammer_poll_rejected() {
        HammerParams {
            poll_interval: 0,
            ..HammerParams::inert()
        }
        .validate();
    }

    #[test]
    fn inert_correlated_sources_validate_and_compare() {
        let a = CorrelatedConfig::inert(42);
        let b = CorrelatedConfig::inert(42);
        assert_eq!(a, b);
        a.validate();
        ChaosConfig {
            correlated: Some(a),
            ..ChaosConfig::inert()
        }
        .validate();
    }

    #[test]
    fn per_source_plants_bound_by_total() {
        let mut l = RecoveryLedger {
            faults_planted: 5,
            hammer_plants: 2,
            thermal_plants: 2,
            aging_plants: 1,
            ..RecoveryLedger::default()
        };
        assert!(l.consistent());
        l.aging_plants = 2; // attributed > planted
        assert!(!l.consistent());
    }
}
