//! In-band fault injection: deterministic fault schedules and the
//! recovery ledger.
//!
//! The paper's §V-B2 claim is *operational*: a detected-uncorrectable
//! DRAM error is corrected **online** from the other socket's replica,
//! and hard failures degrade the region to one copy instead of
//! crashing. Exercising that claim needs faults that arrive while the
//! timed system is running — not out-of-band unit fixtures. This
//! module provides the pieces the [`System`](crate::system::System)
//! runner orchestrates:
//!
//! * [`FaultSchedule`] — a deterministic, seed-derived (via
//!   [`dve_sim::rng::derive_seed`]) sequence of [`FaultEvent`]s that
//!   plant transient or hard faults into specific controllers mid-run
//!   (and optionally heal them later).
//! * [`ChaosConfig`] — the full chaos envelope: the schedule,
//!   inter-socket link outage windows with bounded-retry backoff
//!   parameters, and paced patrol-scrub configuration.
//! * [`RecoveryLedger`] — the run-wide accounting of every read that
//!   took the recovery detour, with a [`consistent`] invariant the
//!   chaos harness checks after every run:
//!   `clean_redirects + corrected + machine_checks == detected_reads`
//!   and `repaired + degraded == corrected`.
//!
//! [`consistent`]: RecoveryLedger::consistent
//!
//! Zero-fault discipline: a `ChaosConfig` with an empty schedule, no
//! outages and no scrub leaves every demand access bit-identical to a
//! run without chaos at all — the detection check is timing-neutral,
//! so the pinned cycle-exact goldens must reproduce. The chaos harness
//! (`cargo run -p dve-bench --bin chaos`) gates on exactly that.

use dve_dram::fault::FaultDomain;
use dve_sim::rng::{derive_seed, SplitMix64};

/// RNG stream id for chaos schedules under [`derive_seed`] (one stream
/// per subsystem; campaigns, benches and workloads use their own).
pub const CHAOS_STREAM: u64 = 0xC4A0;

/// Where a fault lands, relative to one controller. The fabric
/// materializes this into a [`FaultDomain`] using the controller's
/// *global* channel index (`socket * channels_per_socket + channel`),
/// so schedules stay valid across schemes with different channel
/// counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultSite {
    /// The whole controller (every read detects; the §V-B2 showcase).
    Controller,
    /// The controller's channel circuitry (same blast radius here —
    /// one controller owns one channel).
    Channel,
    /// One DRAM device: corrupts one symbol of every codeword in the
    /// rank (detected by DSD/TSD, corrected in place by chipkill).
    Chip {
        /// Rank within the channel.
        rank: usize,
        /// Device index within the rank.
        chip: usize,
    },
    /// One row in one bank (wordline / row-hammer class).
    Row {
        /// Rank within the channel.
        rank: usize,
        /// Bank within the rank.
        bank: usize,
        /// Row index.
        row: u64,
    },
    /// A single cache line, by *global* line address (the byte address
    /// is `line * 64` at every controller holding a copy).
    Line {
        /// Global line address.
        line: u64,
    },
}

impl FaultSite {
    /// Materializes the site into a [`FaultDomain`] for a controller
    /// with global channel index `global_channel`.
    pub fn domain(self, global_channel: usize) -> FaultDomain {
        match self {
            FaultSite::Controller => FaultDomain::Controller,
            FaultSite::Channel => FaultDomain::Channel {
                channel: global_channel,
            },
            FaultSite::Chip { rank, chip } => FaultDomain::Chip {
                channel: global_channel,
                rank,
                chip,
            },
            FaultSite::Row { rank, bank, row } => FaultDomain::Row {
                channel: global_channel,
                rank,
                bank,
                row,
            },
            FaultSite::Line { line } => FaultDomain::Line {
                channel: global_channel,
                line,
            },
        }
    }
}

/// What a [`FaultEvent`] does when it fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// Plant a fault. `transient` faults are cleared by the §V-B2
    /// repair write (or a scrub rewrite); hard faults survive repair
    /// and degrade the copy.
    Plant {
        /// Where the fault lands.
        site: FaultSite,
        /// Whether the repair write clears it.
        transient: bool,
    },
    /// Heal a fault (field replacement / retraining): removes the
    /// domain and lets the runner lift any degradation it caused.
    Heal {
        /// Where the fault was.
        site: FaultSite,
    },
}

/// One scheduled fault action against one controller.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultEvent {
    /// Simulated cycle at (or after) which the action applies.
    pub at: u64,
    /// Target node (`0..nodes`; the fabric clamps out-of-range ids so
    /// a schedule drawn for a wide topology stays valid on a narrow
    /// one).
    pub socket: usize,
    /// Target channel *within* the socket.
    pub channel: usize,
    /// What happens.
    pub action: FaultAction,
}

/// A deterministic, time-sorted fault schedule.
///
/// # Example
///
/// ```
/// use dve::chaos::{ChaosParams, FaultSchedule};
///
/// let a = FaultSchedule::random(42, &ChaosParams::default());
/// let b = FaultSchedule::random(42, &ChaosParams::default());
/// assert_eq!(a, b, "seed-derived schedules are reproducible");
/// assert!(FaultSchedule::empty().is_empty());
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultSchedule {
    events: Vec<FaultEvent>,
}

/// Parameters for [`FaultSchedule::random`].
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosParams {
    /// Number of faults to plant.
    pub faults: usize,
    /// Plant times are drawn uniformly from `[0, horizon)` cycles.
    pub horizon: u64,
    /// Fraction of planted faults that are transient (repair-clearable).
    pub transient_fraction: f64,
    /// If set, every *hard* fault is healed this many cycles after it
    /// was planted (bounded damage; lets runs exercise recovery).
    pub heal_after: Option<u64>,
    /// Channels per socket to target (2 for replicated schemes).
    pub channels_per_socket: usize,
    /// Line-site faults are drawn from `[0, line_span)` global lines.
    pub line_span: u64,
    /// Nodes to spread faults over (2 for the classic mirror pair; an
    /// N-node topology passes its node count so faults land on every
    /// node, not just the first two).
    pub nodes: usize,
}

impl Default for ChaosParams {
    fn default() -> ChaosParams {
        ChaosParams {
            faults: 4,
            horizon: 2_000_000,
            transient_fraction: 0.5,
            heal_after: Some(1_000_000),
            channels_per_socket: 2,
            line_span: 1 << 14,
            nodes: 2,
        }
    }
}

impl FaultSchedule {
    /// An empty schedule (the zero-fault golden gate).
    pub fn empty() -> FaultSchedule {
        FaultSchedule::default()
    }

    /// Builds a schedule from explicit events, sorting them by time
    /// (stable, so same-cycle events keep their given order).
    pub fn new(mut events: Vec<FaultEvent>) -> FaultSchedule {
        events.sort_by_key(|e| e.at);
        FaultSchedule { events }
    }

    /// Generates a randomized schedule, fully determined by `seed`:
    /// each event draws its parameters from an independent child
    /// generator obtained through [`derive_seed`]`(seed, CHAOS_STREAM,
    /// i)`, so schedules never correlate with workload or bench
    /// streams sharing the master seed.
    ///
    /// Random sites are drawn from the localized classes (line, row,
    /// chip) — controller/channel wipes are for directed tests, not
    /// background chaos.
    pub fn random(seed: u64, p: &ChaosParams) -> FaultSchedule {
        let mut events = Vec::with_capacity(p.faults * 2);
        for i in 0..p.faults {
            let mut rng = SplitMix64::new(derive_seed(seed, CHAOS_STREAM, i as u64));
            let at = rng.next_below(p.horizon.max(1));
            let socket = rng.next_below(p.nodes.max(2) as u64) as usize;
            let channel = rng.next_below(p.channels_per_socket.max(1) as u64) as usize;
            let site = match rng.next_below(4) {
                0 | 1 => FaultSite::Line {
                    line: rng.next_below(p.line_span.max(1)),
                },
                2 => FaultSite::Row {
                    rank: rng.next_below(2) as usize,
                    bank: rng.next_below(16) as usize,
                    row: rng.next_below(256),
                },
                _ => FaultSite::Chip {
                    rank: rng.next_below(2) as usize,
                    chip: rng.next_below(16) as usize,
                },
            };
            let transient = rng.chance(p.transient_fraction);
            events.push(FaultEvent {
                at,
                socket,
                channel,
                action: FaultAction::Plant { site, transient },
            });
            if !transient {
                if let Some(heal_after) = p.heal_after {
                    events.push(FaultEvent {
                        at: at.saturating_add(heal_after),
                        socket,
                        channel,
                        action: FaultAction::Heal { site },
                    });
                }
            }
        }
        FaultSchedule::new(events)
    }

    /// The events, sorted by time.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Whether the schedule has no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of events (plants + heals).
    pub fn len(&self) -> usize {
        self.events.len()
    }
}

/// Paced patrol-scrub configuration: the scrubber walks
/// `lines_per_slice` lines of the first `region_bytes` of every
/// channel each `interval` cycles, through the controllers' normal
/// timed path (scrub reads occupy banks and contend with demand
/// traffic).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScrubConfig {
    /// Bytes of each channel covered by the patrol.
    pub region_bytes: u64,
    /// Lines read per slice.
    pub lines_per_slice: u64,
    /// Cycles between slice starts (a slice that overruns the interval
    /// delays the next one — the patrol never overlaps itself).
    pub interval: u64,
}

impl Default for ScrubConfig {
    fn default() -> ScrubConfig {
        ScrubConfig {
            region_bytes: 1 << 20,
            lines_per_slice: 32,
            interval: 100_000,
        }
    }
}

/// Outage windows scoped to single directed edges of the topology
/// graph: `(from, to, windows)` tuples.
pub type EdgeOutages = Vec<(usize, usize, Vec<(u64, u64)>)>;

/// The full chaos envelope for one run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ChaosConfig {
    /// The fault schedule.
    pub schedule: FaultSchedule,
    /// Inter-socket link outage windows, sorted, non-overlapping,
    /// half-open `[start, end)` in cycles. While a window is open the
    /// engine falls back to local-copy-only service (§V-E) and
    /// re-syncs on recovery.
    pub link_outages: Vec<(u64, u64)>,
    /// Per-edge outage windows `(from, to, windows)` — same format as
    /// [`ChaosConfig::link_outages`] but scoped to one directed edge of
    /// the topology graph. Outages on one edge never gate sends on any
    /// other edge (the independence property the topology tests pin).
    pub edge_outages: EdgeOutages,
    /// Backoff base for link retries (retry `k` waits
    /// `retry_base * (2^k - 1)` cycles).
    pub retry_base: u64,
    /// Maximum link retries before a send fails over to local-only.
    pub max_retries: u32,
    /// Paced patrol scrub, if enabled.
    pub scrub: Option<ScrubConfig>,
}

impl ChaosConfig {
    /// A chaos layer that is *armed but inert*: no faults, no outages,
    /// no scrub. Runs configured with this must be bit-identical to
    /// runs without any chaos config — the golden gate.
    pub fn inert() -> ChaosConfig {
        ChaosConfig {
            schedule: FaultSchedule::empty(),
            link_outages: Vec::new(),
            edge_outages: Vec::new(),
            retry_base: 64,
            max_retries: 6,
            scrub: None,
        }
    }

    /// Randomized chaos: a seed-derived schedule plus defaults for the
    /// retry policy.
    pub fn random(seed: u64, params: &ChaosParams) -> ChaosConfig {
        ChaosConfig {
            schedule: FaultSchedule::random(seed, params),
            ..ChaosConfig::inert()
        }
    }
}

/// Run-wide accounting of the in-band recovery machinery. Every
/// counter is cumulative over the run (warm-up included — faults do
/// not respect measurement regions).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryLedger {
    /// Demand reads that entered the recovery path: the local read
    /// reported detected-uncorrectable, or the copy was already
    /// degraded and the read was redirected to the survivor.
    pub detected_reads: u64,
    /// Redirected reads of already-degraded copies that the survivor
    /// served cleanly.
    pub clean_redirects: u64,
    /// Detected reads the other copy corrected (CE): the §V-B2 remote
    /// fetch succeeded.
    pub corrected: u64,
    /// Corrected reads whose repair-and-reread succeeded — the fault
    /// was transient (`CorrectedTransient`).
    pub repaired: u64,
    /// Corrected reads whose re-read still failed — the copy is hard
    /// dead and the line degraded to single-copy service
    /// (`CorrectedDegraded`).
    pub degraded: u64,
    /// Reads where every copy failed (DUE → machine-check exception).
    pub machine_checks: u64,
    /// Scrub slices executed.
    pub scrub_slices: u64,
    /// Lines patrol-read by the scrubber.
    pub scrub_lines: u64,
    /// Scrub reads corrected in place by local ECC.
    pub scrub_corrected: u64,
    /// Scrub reads that detected an uncorrectable error.
    pub scrub_detected: u64,
    /// Scrub detections escalated through the §V-B2 remote-correction
    /// path proactively.
    pub scrub_escalations: u64,
    /// Link sends that needed at least one backoff retry.
    pub link_retries: u64,
    /// Link sends that exhausted the retry budget (fell back to
    /// local-copy-only service).
    pub link_failed_sends: u64,
    /// Fault domains actually planted (double-plants not counted).
    pub faults_planted: u64,
    /// Fault domains actually healed (spurious heals not counted).
    pub faults_healed: u64,
}

impl RecoveryLedger {
    /// The ledger-consistency invariant the chaos harness checks after
    /// every run:
    ///
    /// * every detected-path read resolves exactly one way:
    ///   `clean_redirects + corrected + machine_checks ==
    ///   detected_reads`;
    /// * every correction either repaired the copy or degraded it:
    ///   `repaired + degraded == corrected` (which implies the paper's
    ///   weaker `degraded <= corrected`);
    /// * the scrub report partition holds:
    ///   `scrub_escalations <= scrub_detected <= scrub_lines`.
    pub fn consistent(&self) -> bool {
        self.clean_redirects + self.corrected + self.machine_checks == self.detected_reads
            && self.repaired + self.degraded == self.corrected
            && self.scrub_escalations <= self.scrub_detected
            && self.scrub_detected <= self.scrub_lines
    }

    /// Whether any recovery activity happened at all (zero-fault runs
    /// must report `false`).
    pub fn any_activity(&self) -> bool {
        self.detected_reads > 0
            || self.scrub_detected > 0
            || self.scrub_corrected > 0
            || self.link_retries > 0
            || self.link_failed_sends > 0
            || self.faults_planted > 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedules_are_seed_deterministic_and_sorted() {
        let p = ChaosParams::default();
        let a = FaultSchedule::random(7, &p);
        let b = FaultSchedule::random(7, &p);
        assert_eq!(a, b);
        assert!(a.events().windows(2).all(|w| w[0].at <= w[1].at));
        let c = FaultSchedule::random(8, &p);
        assert_ne!(a, c, "different seeds, different schedules");
    }

    #[test]
    fn hard_faults_get_heals_when_requested() {
        let p = ChaosParams {
            faults: 16,
            transient_fraction: 0.0,
            heal_after: Some(500),
            ..ChaosParams::default()
        };
        let s = FaultSchedule::random(3, &p);
        let plants = s
            .events()
            .iter()
            .filter(|e| matches!(e.action, FaultAction::Plant { .. }))
            .count();
        let heals = s
            .events()
            .iter()
            .filter(|e| matches!(e.action, FaultAction::Heal { .. }))
            .count();
        assert_eq!(plants, 16);
        assert_eq!(heals, 16, "every hard fault is healed");
        // Each heal matches a plant's site + offset.
        for e in s.events() {
            if let FaultAction::Heal { site } = e.action {
                assert!(s.events().iter().any(|p_ev| matches!(
                    p_ev.action,
                    FaultAction::Plant { site: ps, transient: false } if ps == site
                        && p_ev.at + 500 == e.at
                        && p_ev.socket == e.socket
                        && p_ev.channel == e.channel
                )));
            }
        }
    }

    #[test]
    fn transient_faults_are_never_healed_by_schedule() {
        let p = ChaosParams {
            faults: 16,
            transient_fraction: 1.0,
            heal_after: Some(500),
            ..ChaosParams::default()
        };
        let s = FaultSchedule::random(3, &p);
        assert!(s.events().iter().all(|e| matches!(
            e.action,
            FaultAction::Plant {
                transient: true,
                ..
            }
        )));
    }

    #[test]
    fn site_materializes_with_global_channel() {
        assert_eq!(
            FaultSite::Chip { rank: 1, chip: 3 }.domain(3),
            FaultDomain::Chip {
                channel: 3,
                rank: 1,
                chip: 3
            }
        );
        assert_eq!(
            FaultSite::Line { line: 42 }.domain(1),
            FaultDomain::Line {
                channel: 1,
                line: 42
            }
        );
        assert_eq!(FaultSite::Controller.domain(0), FaultDomain::Controller);
    }

    #[test]
    fn ledger_consistency_invariant() {
        let mut l = RecoveryLedger::default();
        assert!(l.consistent(), "empty ledger is consistent");
        assert!(!l.any_activity());
        l.detected_reads = 10;
        l.clean_redirects = 2;
        l.corrected = 7;
        l.repaired = 4;
        l.degraded = 3;
        l.machine_checks = 1;
        assert!(l.consistent());
        assert!(l.any_activity());
        l.degraded = 4; // repaired + degraded > corrected
        assert!(!l.consistent());
        l.degraded = 3;
        l.machine_checks = 2; // partition broken
        assert!(!l.consistent());
    }

    #[test]
    fn inert_chaos_has_nothing_scheduled() {
        let c = ChaosConfig::inert();
        assert!(c.schedule.is_empty());
        assert!(c.link_outages.is_empty());
        assert!(c.scrub.is_none());
    }
}
