//! Correlated, workload-coupled fault sources.
//!
//! The static [`FaultSchedule`](crate::chaos::FaultSchedule) injects
//! faults obliviously — useful for directed tests, but real DRAM
//! failures correlate with what the machine is doing. This module
//! supplies the [`FaultSource`] trait and the three correlated sources
//! the [`System`](crate::system::System) runner polls in-band:
//!
//! * [`HammerSource`] — watches the controllers' own
//!   [`RowHammerMonitor`](dve_dram::rowhammer::RowHammerMonitor)s (fed
//!   by real demand activations) and plants bit-flips across the blast
//!   radius of any row whose in-window activation count crosses the
//!   configured threshold. Entirely demand-driven: no RNG at all.
//! * [`ThermalSource`] — per-rank Bernoulli fault arrivals whose rates
//!   are Arrhenius-scaled from the controllers'
//!   [`ThermalProfile`](dve_dram::thermal::ThermalProfile) (hotter
//!   ranks fail proportionally more often).
//! * [`AgingSource`] — hard line faults whose arrival probability ramps
//!   linearly with simulated time (wear-out FIT growth).
//!
//! # Determinism
//!
//! Correlated runs must be bit-reproducible at any
//! [`pdes_workers`](crate::config::SystemConfig::pdes_workers) count.
//! Two properties guarantee it:
//!
//! 1. **Fixed draw grid.** The stochastic sources (thermal, aging)
//!    partition simulated time into fixed `poll_interval` windows and
//!    seed an independent child generator per *interval index* via
//!    [`derive_seed`]`(source_master, CORRELATED_STREAM, k)`. A poll at
//!    time `now` processes every whole interval that elapsed since the
//!    previous poll, so the draw sequence depends only on the sim-time
//!    grid — never on how often the runner happened to poll.
//! 2. **Observation-only coupling.** [`HammerSource`] reads monitor
//!    state the deterministic run already produced; the trace supply is
//!    bit-identical at every worker count (DESIGN.md §14), so the
//!    observed activation counts are too.
//!
//! Armed-but-inert sources (threshold `u64::MAX`, rates `0.0`) poll on
//! the same grid but never emit an event, and polling never touches the
//! timed state — so every pinned golden replays bit-identically, which
//! the goldens suite and the `chaos` harness both gate.

use std::collections::HashSet;

use dve_dram::thermal::ThermalProfile;
use dve_sim::rng::{derive_seed, SplitMix64};

use crate::chaos::{
    AgingParams, CorrelatedConfig, FaultAction, FaultEvent, FaultSite, FaultSourceKind,
    HammerParams, ThermalParams, CORRELATED_STREAM,
};
use crate::fabric_impl::SystemFabric;

/// A correlated fault source the system runner polls in-band.
///
/// Sources observe the fabric (read-only) and emit [`FaultEvent`]s the
/// runner applies through the same path as scheduled chaos, tagged with
/// their [`FaultSourceKind`] so the recovery ledger attributes the
/// plants per source.
pub trait FaultSource: std::fmt::Debug + Send {
    /// Short stable name (reports, telemetry).
    fn name(&self) -> &'static str;

    /// Which ledger bucket this source's plants land in.
    fn kind(&self) -> FaultSourceKind;

    /// The next simulated cycle at which the source wants to be polled.
    fn next_poll(&self) -> u64;

    /// Polls the source at `now` (`>= next_poll`), observing the fabric
    /// and returning the fault events to apply. Implementations must
    /// advance [`next_poll`](FaultSource::next_poll) strictly past
    /// `now` and must process *every* grid interval that elapsed, so
    /// the emitted sequence is independent of the poll cadence.
    fn poll(&mut self, now: u64, fabric: &SystemFabric) -> Vec<FaultEvent>;
}

/// Builds the armed sources of a [`CorrelatedConfig`] against the
/// fabric's actual geometry (node count, channels per node, ranks and
/// devices per channel are read from the live controllers).
pub fn build_sources(cc: &CorrelatedConfig, fabric: &SystemFabric) -> Vec<Box<dyn FaultSource>> {
    cc.validate();
    let mut v: Vec<Box<dyn FaultSource>> = Vec::new();
    if let Some(h) = cc.hammer {
        v.push(Box::new(HammerSource::new(h)));
    }
    if let Some(t) = cc.thermal {
        v.push(Box::new(ThermalSource::new(t, cc.seed, fabric)));
    }
    if let Some(a) = cc.aging {
        v.push(Box::new(AgingSource::new(a, cc.seed, fabric)));
    }
    v
}

/// Row-hammer source: plants bit-flips when demand traffic hammers a
/// row past the threshold. See the module docs for the coupling model.
#[derive(Debug)]
pub struct HammerSource {
    params: HammerParams,
    next_poll: u64,
    /// Rows already planted this run (`(node, channel, flat_bank,
    /// row)`), so a row that stays hot does not re-plant every poll.
    planted: HashSet<(usize, usize, usize, u64)>,
}

impl HammerSource {
    /// Creates the source.
    pub fn new(params: HammerParams) -> HammerSource {
        params.validate();
        HammerSource {
            next_poll: params.poll_interval,
            params,
            planted: HashSet::new(),
        }
    }
}

impl FaultSource for HammerSource {
    fn name(&self) -> &'static str {
        "hammer"
    }

    fn kind(&self) -> FaultSourceKind {
        FaultSourceKind::Hammer
    }

    fn next_poll(&self) -> u64 {
        self.next_poll
    }

    fn poll(&mut self, now: u64, fabric: &SystemFabric) -> Vec<FaultEvent> {
        // Snap the poll grid past `now`. The monitor holds cumulative
        // in-window counts, so evaluating once at `now` is equivalent
        // to evaluating at each elapsed boundary.
        let step = self.params.poll_interval;
        self.next_poll = (now / step + 1) * step;
        let mut events = Vec::new();
        if self.params.threshold == u64::MAX {
            return events; // inert: never read as "over".
        }
        let nodes = fabric.controllers().len();
        for node in 0..nodes {
            for (ch, ctrl) in fabric.controllers()[node].iter().enumerate() {
                let banks_per_rank = ctrl.config().banks_per_rank;
                for (flat, row) in ctrl.rowhammer().rows_over(self.params.threshold) {
                    if !self.planted.insert((node, ch, flat, row)) {
                        continue;
                    }
                    let rank = flat / banks_per_rank;
                    let bank = flat % banks_per_rank;
                    // Blast radius: the victims are the physical
                    // neighbours, and the aggressor row itself is
                    // included so the very traffic that caused the
                    // trip observes the damage.
                    let lo = row.saturating_sub(1);
                    for r in lo..=row + 1 {
                        let site = FaultSite::Row { rank, bank, row: r };
                        // `both_copies` plants the same rows at every
                        // controller — a line's copies live at
                        // *different* channel indices across nodes
                        // (home at channel 0, replica at channel 1),
                        // so hitting every (node, channel) is what
                        // kills the survivor too: the machine-check
                        // rung of the severity ladder. Otherwise only
                        // the hammered controller's copy is hit and
                        // the survivor corrects (§V-B2).
                        if self.params.both_copies {
                            for (socket, ctrls) in fabric.controllers().iter().enumerate() {
                                for channel in 0..ctrls.len() {
                                    events.push(FaultEvent {
                                        at: now,
                                        socket,
                                        channel,
                                        action: FaultAction::Plant {
                                            site,
                                            transient: self.params.transient,
                                        },
                                    });
                                }
                            }
                        } else {
                            events.push(FaultEvent {
                                at: now,
                                socket: node,
                                channel: ch,
                                action: FaultAction::Plant {
                                    site,
                                    transient: self.params.transient,
                                },
                            });
                        }
                    }
                }
            }
        }
        events
    }
}

/// Thermal source: Arrhenius-scaled per-rank arrivals. See the module
/// docs for the determinism argument.
#[derive(Debug)]
pub struct ThermalSource {
    params: ThermalParams,
    /// Per-interval child seeds derive from this.
    master: u64,
    /// First interval index not yet processed.
    interval: u64,
    nodes: usize,
    channels: usize,
    devices: usize,
    /// Per-rank arrival probability per interval (base rate × Arrhenius
    /// risk referenced to the coolest rank), clamped to 1.
    rank_rates: Vec<f64>,
}

impl ThermalSource {
    /// Sub-stream index separating thermal draws from aging draws.
    const SUBSTREAM: u64 = 1;

    /// Creates the source, reading the rank/device geometry from the
    /// fabric's controllers and scaling the per-rank rates from the
    /// paper's thermal profile.
    pub fn new(params: ThermalParams, seed: u64, fabric: &SystemFabric) -> ThermalSource {
        params.validate();
        let ctrl = &fabric.controllers()[0][0];
        let ranks = ctrl.config().ranks_per_channel;
        let profile = ThermalProfile::paper_default(ranks);
        let rank_rates = profile
            .rank_risks(params.ea_ev)
            .iter()
            .map(|risk| (params.base_rate * risk).min(1.0))
            .collect();
        ThermalSource {
            master: derive_seed(seed, CORRELATED_STREAM, Self::SUBSTREAM),
            interval: 0,
            nodes: fabric.controllers().len(),
            channels: fabric.controllers()[0].len(),
            devices: ctrl.config().devices_per_rank,
            params,
            rank_rates,
        }
    }
}

impl FaultSource for ThermalSource {
    fn name(&self) -> &'static str {
        "thermal"
    }

    fn kind(&self) -> FaultSourceKind {
        FaultSourceKind::Thermal
    }

    fn next_poll(&self) -> u64 {
        (self.interval + 1) * self.params.poll_interval
    }

    fn poll(&mut self, now: u64, _fabric: &SystemFabric) -> Vec<FaultEvent> {
        let step = self.params.poll_interval;
        let mut events = Vec::new();
        // Process every whole interval that elapsed — one child RNG per
        // interval index, so the draw sequence depends only on the
        // sim-time grid.
        while (self.interval + 1) * step <= now {
            let k = self.interval;
            self.interval += 1;
            if self.params.base_rate == 0.0 {
                continue; // inert: the grid advances, no draws needed.
            }
            let mut rng = SplitMix64::new(derive_seed(self.master, CORRELATED_STREAM, k));
            let at = (k + 1) * step;
            for node in 0..self.nodes {
                for ch in 0..self.channels {
                    for (rank, &rate) in self.rank_rates.iter().enumerate() {
                        if rng.chance(rate) {
                            let chip = rng.next_below(self.devices.max(1) as u64) as usize;
                            let transient = rng.chance(self.params.transient_fraction);
                            events.push(FaultEvent {
                                at,
                                socket: node,
                                channel: ch,
                                action: FaultAction::Plant {
                                    site: FaultSite::Chip { rank, chip },
                                    transient,
                                },
                            });
                        }
                    }
                }
            }
        }
        events
    }
}

/// Aging source: wear-out line faults ramping over simulated time. See
/// the module docs for the determinism argument.
#[derive(Debug)]
pub struct AgingSource {
    params: AgingParams,
    master: u64,
    interval: u64,
    nodes: usize,
    channels: usize,
}

impl AgingSource {
    /// Sub-stream index separating aging draws from thermal draws.
    const SUBSTREAM: u64 = 2;

    /// Creates the source.
    pub fn new(params: AgingParams, seed: u64, fabric: &SystemFabric) -> AgingSource {
        params.validate();
        AgingSource {
            master: derive_seed(seed, CORRELATED_STREAM, Self::SUBSTREAM),
            interval: 0,
            nodes: fabric.controllers().len(),
            channels: fabric.controllers()[0].len(),
            params,
        }
    }

    /// The per-interval arrival probability at interval index `k`
    /// (age measured at the interval's start).
    fn rate_at(&self, k: u64) -> f64 {
        let age_mcycles = (k * self.params.poll_interval) as f64 / 1.0e6;
        (self.params.base_rate + self.params.ramp_per_mcycle * age_mcycles).min(1.0)
    }
}

impl FaultSource for AgingSource {
    fn name(&self) -> &'static str {
        "aging"
    }

    fn kind(&self) -> FaultSourceKind {
        FaultSourceKind::Aging
    }

    fn next_poll(&self) -> u64 {
        (self.interval + 1) * self.params.poll_interval
    }

    fn poll(&mut self, now: u64, _fabric: &SystemFabric) -> Vec<FaultEvent> {
        let step = self.params.poll_interval;
        let mut events = Vec::new();
        let inert = self.params.base_rate == 0.0 && self.params.ramp_per_mcycle == 0.0;
        while (self.interval + 1) * step <= now {
            let k = self.interval;
            self.interval += 1;
            if inert {
                continue;
            }
            let mut rng = SplitMix64::new(derive_seed(self.master, CORRELATED_STREAM, k));
            if rng.chance(self.rate_at(k)) {
                let socket = rng.next_below(self.nodes as u64) as usize;
                let channel = rng.next_below(self.channels as u64) as usize;
                let line = rng.next_below(self.params.line_span);
                events.push(FaultEvent {
                    at: (k + 1) * step,
                    socket,
                    channel,
                    action: FaultAction::Plant {
                        site: FaultSite::Line { line },
                        // Wear-out is permanent: aging plants are hard.
                        transient: false,
                    },
                });
            }
        }
        events
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{Scheme, SystemConfig};

    fn fabric() -> SystemFabric {
        let mut cfg = SystemConfig::table_ii(Scheme::DveDeny);
        cfg.chaos = Some(crate::chaos::ChaosConfig::inert());
        SystemFabric::new(&cfg)
    }

    #[test]
    fn inert_sources_emit_nothing_on_any_grid() {
        let f = fabric();
        let mut sources = build_sources(&CorrelatedConfig::inert(42), &f);
        assert_eq!(sources.len(), 3);
        for src in &mut sources {
            for now in [5_000u64, 10_000, 123_456, 1_000_000] {
                assert!(src.poll(now, &f).is_empty(), "{} emitted", src.name());
                assert!(src.next_poll() > now);
            }
        }
    }

    #[test]
    fn stochastic_draws_depend_only_on_the_grid() {
        // One poll at t=100k emits the same events as ten polls at 10k
        // steps: the per-interval child RNGs make the draw sequence a
        // function of the sim-time grid alone.
        let f = fabric();
        let params = ThermalParams {
            base_rate: 0.2,
            ..ThermalParams::inert()
        };
        let mut coarse = ThermalSource::new(params, 7, &f);
        let mut fine = ThermalSource::new(params, 7, &f);
        let all = coarse.poll(100_000, &f);
        let mut stepped = Vec::new();
        for t in (10_000..=100_000).step_by(10_000) {
            stepped.extend(fine.poll(t, &f));
        }
        assert_eq!(all, stepped);
        assert!(!all.is_empty(), "rate 0.2 over 10 intervals must fire");
    }

    #[test]
    fn aging_rate_ramps_and_saturates() {
        let f = fabric();
        let src = AgingSource::new(
            AgingParams {
                base_rate: 0.1,
                ramp_per_mcycle: 0.5,
                ..AgingParams::inert()
            },
            1,
            &f,
        );
        assert!(src.rate_at(0) < src.rate_at(100));
        assert_eq!(src.rate_at(1_000_000), 1.0, "clamped at certainty");
    }

    #[test]
    fn thermal_rates_scale_with_rank_temperature() {
        let profile = ThermalProfile::paper_default(4);
        let risks = profile.rank_risks(0.6);
        // Rank 0 sits nearest the processor (hottest): strictly riskier
        // than the coolest, so the source's per-rank rates differ.
        assert!(risks[0] > risks[3]);
    }
}
