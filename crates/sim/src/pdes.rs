//! Conservative parallel discrete-event simulation over sharded queues.
//!
//! The simulation is partitioned into **domains** (per-socket memory
//! controllers in the Dvé topology), each owning a private
//! [`EventQueue`] slice plus whatever timed state it models. Domains
//! advance in fixed **lookahead windows**: within a window every domain
//! processes its own events independently — in parallel when run
//! threaded — and cross-domain traffic is exchanged only at window
//! boundaries through ordered inter-domain channels.
//!
//! The conservative correctness argument is the classic one (Chandy–
//! Misra–Bryant, specialized to a barrier executive): if every
//! cross-domain message carries a delivery latency of at least the
//! lookahead `L` — in Dvé, the one-way inter-socket link latency, the
//! *minimum* time any remote effect needs to become visible — then a
//! message sent at time `t` inside window `[w·L, (w+1)·L)` delivers at
//! `t + latency ≥ w·L + L = (w+1)·L`, i.e. never inside the sender's
//! own window. Exchanging all in-flight messages at the barrier
//! therefore gives every domain its complete event horizon for the
//! next window before that window begins: no straggler can arrive in a
//! domain's past, and no rollback machinery is needed.
//!
//! Determinism does not ride on thread scheduling. Each domain's
//! in-window execution is serial over its own queue (whose `(time,
//! seq)` order is fixed by push order), and boundary messages are
//! inserted in the total order `(deliver_time, source domain, channel
//! sequence)` — a pure function of the computation, not of which
//! worker thread routed them first. [`Executive::run_inline`] and
//! [`Executive::run_threaded`] are therefore **bit-identical**, which
//! is what the replay gate in `dve-bench`'s `pdes` binary pins.

use crate::event::{EventQueue, Time};
use crate::resource::Resource;
use crate::rng::{derive_seed, SplitMix64};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Barrier, Mutex};

/// A simulation domain: one shard of the model, owning its slice of
/// the event space. `handle` runs serially per domain, so it may
/// freely mutate domain state; cross-domain effects go through
/// [`Ctx::send`] and are delivered no earlier than one lookahead away.
pub trait Domain: Send {
    /// The event vocabulary this model shards.
    type Event: Send;

    /// Executes one local event at `time`. Schedule follow-up local
    /// work with [`Ctx::schedule`]; emit cross-domain messages with
    /// [`Ctx::send`].
    fn handle(&mut self, time: Time, event: Self::Event, ctx: &mut Ctx<'_, Self::Event>);
}

/// One in-flight cross-domain message.
struct Envelope<E> {
    dst: usize,
    deliver: Time,
    src: usize,
    /// Per-`(src, dst)` channel sequence number: the channels are
    /// FIFO-ordered, and `(deliver, src, seq)` totally orders every
    /// message bound for one destination regardless of which worker
    /// thread routed it.
    seq: u64,
    event: E,
}

/// The per-event execution context handed to [`Domain::handle`].
pub struct Ctx<'a, E> {
    now: Time,
    lookahead: Time,
    src: usize,
    domains: usize,
    queue: &'a mut EventQueue<E>,
    /// Next sequence number per destination channel (index = dst).
    seqs: &'a mut [u64],
    out: &'a mut Vec<Envelope<E>>,
    sent: u64,
}

impl<E> Ctx<'_, E> {
    /// The executing event's timestamp.
    pub fn now(&self) -> Time {
        self.now
    }

    /// This domain's index.
    pub fn domain(&self) -> usize {
        self.src
    }

    /// Number of domains in the executive.
    pub fn domains(&self) -> usize {
        self.domains
    }

    /// The conservative lookahead (minimum cross-domain latency).
    pub fn lookahead(&self) -> Time {
        self.lookahead
    }

    /// Schedules a local event `delay` ticks from now. Intra-domain
    /// lookahead is zero: any non-negative delay is fine, including
    /// landing inside the current window.
    pub fn schedule(&mut self, delay: Time, event: E) {
        self.queue.push(self.now.saturating_add(delay), event);
    }

    /// Sends `event` to domain `dst`, delivered `latency` ticks from
    /// now over the ordered inter-domain channel.
    ///
    /// # Panics
    ///
    /// Panics if `dst` is this domain or out of range, or if `latency`
    /// is below the lookahead — a sub-lookahead channel would let a
    /// message land inside the sender's own window, breaking the
    /// conservative horizon the executive synchronizes on.
    pub fn send(&mut self, dst: usize, latency: Time, event: E) {
        assert!(dst != self.src, "self-sends must use schedule()");
        assert!(dst < self.seqs.len(), "domain {dst} out of range");
        assert!(
            latency >= self.lookahead,
            "cross-domain latency {latency} below lookahead {}",
            self.lookahead
        );
        let seq = self.seqs[dst];
        self.seqs[dst] += 1;
        self.sent += 1;
        self.out.push(Envelope {
            dst,
            deliver: self.now.saturating_add(latency),
            src: self.src,
            seq,
            event,
        });
    }
}

/// One domain with its queue shard and channel sequence counters.
struct Slot<D: Domain> {
    domain: D,
    queue: EventQueue<D::Event>,
    seqs: Vec<u64>,
    events: u64,
    sent: u64,
}

/// Aggregate execution statistics of one run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExecStats {
    /// Lookahead windows executed (barrier rounds when threaded).
    pub windows: u64,
    /// Events processed across all domains.
    pub events: u64,
    /// Cross-domain messages exchanged.
    pub messages: u64,
    /// Timestamp of the last processed event.
    pub end_time: Time,
}

/// The conservative-lookahead executive over a set of domains.
///
/// # Example
///
/// ```
/// use dve_sim::pdes::{Ctx, Domain, Executive};
///
/// struct Counter(u64);
/// impl Domain for Counter {
///     type Event = u32;
///     fn handle(&mut self, _t: u64, hops: u32, ctx: &mut Ctx<'_, u32>) {
///         self.0 += 1;
///         if hops > 0 {
///             let peer = (ctx.domain() + 1) % ctx.domains();
///             ctx.send(peer, ctx.lookahead(), hops - 1);
///         }
///     }
/// }
///
/// let mut exec = Executive::new(vec![Counter(0), Counter(0)], 100);
/// exec.seed(0, 0, 5); // a token bouncing 5 hops between the domains
/// let stats = exec.run_inline();
/// assert_eq!(stats.events, 6);
/// assert_eq!(stats.messages, 5);
/// assert_eq!(exec.domains()[0].0 + exec.domains()[1].0, 6);
/// ```
pub struct Executive<D: Domain> {
    slots: Vec<Slot<D>>,
    lookahead: Time,
}

impl<D: Domain> Executive<D> {
    /// Builds an executive over `domains` with conservative lookahead
    /// `lookahead` (every cross-domain channel's minimum latency).
    ///
    /// # Panics
    ///
    /// Panics if `domains` is empty or `lookahead` is zero.
    pub fn new(domains: Vec<D>, lookahead: Time) -> Executive<D> {
        assert!(!domains.is_empty(), "need at least one domain");
        assert!(lookahead > 0, "lookahead must be positive");
        let n = domains.len();
        Executive {
            slots: domains
                .into_iter()
                .map(|domain| Slot {
                    domain,
                    queue: EventQueue::new(),
                    seqs: vec![0; n],
                    events: 0,
                    sent: 0,
                })
                .collect(),
            lookahead,
        }
    }

    /// Seeds an initial event into `domain`'s queue at absolute `time`.
    pub fn seed(&mut self, domain: usize, time: Time, event: D::Event) {
        self.slots[domain].queue.push(time, event);
    }

    /// The domains, in index order (for post-run inspection).
    pub fn domains(&self) -> Vec<&D> {
        self.slots.iter().map(|s| &s.domain).collect()
    }

    /// Consumes the executive, returning the domains.
    pub fn into_domains(self) -> Vec<D> {
        self.slots.into_iter().map(|s| s.domain).collect()
    }

    /// First window boundary at or before the earliest pending event,
    /// across all domains. `None` when every queue is empty.
    fn next_window(&self, lookahead: Time) -> Option<Time> {
        self.slots
            .iter()
            .filter_map(|s| s.queue.peek_time())
            .min()
            .map(|t| (t / lookahead) * lookahead)
    }

    /// Runs sequentially until every queue drains. This is the
    /// reference path: [`Executive::run_threaded`] must match it
    /// bit-for-bit.
    pub fn run_inline(&mut self) -> ExecStats {
        let lookahead = self.lookahead;
        let n = self.slots.len();
        let mut stats = ExecStats::default();
        let mut mail: Vec<Vec<Envelope<D::Event>>> = (0..n).map(|_| Vec::new()).collect();
        while let Some(window_start) = self.next_window(lookahead) {
            let window_end = window_start + lookahead;
            stats.windows += 1;
            let mut outbox = Vec::new();
            for (i, slot) in self.slots.iter_mut().enumerate() {
                stats.end_time = stats.end_time.max(drain_window(
                    i,
                    slot,
                    window_end,
                    lookahead,
                    n,
                    &mut outbox,
                ));
            }
            stats.messages += outbox.len() as u64;
            for env in outbox {
                mail[env.dst].push(env);
            }
            for (slot, inbox) in self.slots.iter_mut().zip(&mut mail) {
                deliver(slot, inbox);
            }
        }
        stats.events = self.slots.iter().map(|s| s.events).sum();
        stats
    }

    /// Runs the same computation on `workers` threads under the
    /// window barrier. Results (domain states, queues, statistics) are
    /// bit-identical to [`Executive::run_inline`].
    ///
    /// `workers` is clamped to the domain count; `workers <= 1` simply
    /// runs inline.
    pub fn run_threaded(&mut self, workers: usize) -> ExecStats {
        let lookahead = self.lookahead;
        let n = self.slots.len();
        let workers = workers.min(n);
        if workers <= 1 {
            return self.run_inline();
        }
        let Some(first_window) = self.next_window(lookahead) else {
            return ExecStats::default();
        };

        // Contiguous partition: worker w owns slots [w*per, ...). With
        // socket-major domain layouts this keeps a socket's controllers
        // on one worker.
        let per = n.div_ceil(workers);
        let barrier = Barrier::new(workers);
        // Mailboxes, one per destination domain. Senders append under
        // the lock during the window; owners drain between barriers.
        // Arrival order is irrelevant: delivery sorts by
        // (deliver, src, seq) before insertion.
        let mail: Vec<Mutex<Vec<Envelope<D::Event>>>> =
            (0..n).map(|_| Mutex::new(Vec::new())).collect();
        // Per-worker window agreement: each publishes the earliest
        // pending event time over its own domains (u64::MAX = idle),
        // and after the barrier every worker derives the same global
        // next window.
        let mins: Vec<AtomicU64> = (0..workers).map(|_| AtomicU64::new(u64::MAX)).collect();
        let counters: Vec<AtomicU64> = (0..3).map(|_| AtomicU64::new(0)).collect();

        std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for (w, chunk) in self.slots.chunks_mut(per).enumerate() {
                let barrier = &barrier;
                let mail = &mail;
                let mins = &mins;
                let counters = &counters;
                handles.push(scope.spawn(move || {
                    let base = w * per;
                    let mut window_start = first_window;
                    let mut outbox = Vec::new();
                    let mut end_time = 0u64;
                    let mut windows = 0u64;
                    loop {
                        let window_end = window_start + lookahead;
                        windows += 1;
                        for (k, slot) in chunk.iter_mut().enumerate() {
                            end_time = end_time.max(drain_window(
                                base + k,
                                slot,
                                window_end,
                                lookahead,
                                n,
                                &mut outbox,
                            ));
                        }
                        for env in outbox.drain(..) {
                            mail[env.dst].lock().expect("mailbox poisoned").push(env);
                        }
                        // Barrier A: every message of this window is in
                        // its destination mailbox.
                        barrier.wait();
                        let mut local_min = u64::MAX;
                        for (k, slot) in chunk.iter_mut().enumerate() {
                            let mut inbox = std::mem::take(
                                &mut *mail[base + k].lock().expect("mailbox poisoned"),
                            );
                            deliver(slot, &mut inbox);
                            if let Some(t) = slot.queue.peek_time() {
                                local_min = local_min.min(t);
                            }
                        }
                        mins[w].store(local_min, Ordering::SeqCst);
                        // Barrier B: all minima published; every worker
                        // computes the identical next window (or quits).
                        barrier.wait();
                        let global_min = mins
                            .iter()
                            .map(|m| m.load(Ordering::SeqCst))
                            .min()
                            .unwrap_or(u64::MAX);
                        if global_min == u64::MAX {
                            break;
                        }
                        window_start = (global_min / lookahead) * lookahead;
                    }
                    counters[0].fetch_max(end_time, Ordering::SeqCst);
                    counters[1].fetch_max(windows, Ordering::SeqCst);
                }));
            }
            for h in handles {
                h.join().expect("pdes worker panicked");
            }
        });

        let events: u64 = self.slots.iter().map(|s| s.events).sum();
        let messages: u64 = self.slots.iter().map(|s| s.sent).sum();
        ExecStats {
            windows: counters[1].load(Ordering::SeqCst),
            events,
            messages,
            end_time: counters[0].load(Ordering::SeqCst),
        }
    }
}

/// Processes every event of `slot` with `time < window_end`,
/// collecting cross-domain sends into `outbox`. Returns the timestamp
/// of the last processed event (0 if none).
fn drain_window<D: Domain>(
    index: usize,
    slot: &mut Slot<D>,
    window_end: Time,
    lookahead: Time,
    domains: usize,
    outbox: &mut Vec<Envelope<D::Event>>,
) -> Time {
    let mut last = 0;
    while slot.queue.peek_time().is_some_and(|t| t < window_end) {
        let (time, event) = slot.queue.pop().expect("peeked");
        last = time;
        slot.events += 1;
        let mut ctx = Ctx {
            now: time,
            lookahead,
            src: index,
            domains,
            queue: &mut slot.queue,
            seqs: &mut slot.seqs,
            out: outbox,
            sent: 0,
        };
        slot.domain.handle(time, event, &mut ctx);
        slot.sent += ctx.sent;
    }
    last
}

/// Inserts a window's worth of boundary messages into `slot`'s queue
/// in the canonical `(deliver, src, seq)` order, emptying `inbox`.
fn deliver<D: Domain>(slot: &mut Slot<D>, inbox: &mut Vec<Envelope<D::Event>>) {
    inbox.sort_by_key(|e| (e.deliver, e.src, e.seq));
    for env in inbox.drain(..) {
        slot.queue.push(env.deliver, env.event);
    }
}

// ---- synthetic memory-domain model ---------------------------------

/// Seed stream id for the synthetic memory domains.
const PDES_STREAM: u64 = 0x7065_6465; // "pede"

/// Event vocabulary of the [`SyntheticMemoryDomain`] model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemEvent {
    /// A local closed-loop stream issues its next access.
    Issue { stream: usize },
    /// A local bank access completed.
    Done { stream: usize, issued: Time },
    /// A remote read request arrived from `src` on behalf of its
    /// stream.
    RemoteReq {
        src: usize,
        stream: usize,
        issued: Time,
    },
    /// The reply to a remote request arrived back home.
    RemoteResp { stream: usize, issued: Time },
}

/// A self-driving memory-controller domain for stress tests and the
/// scaling bench: `streams` closed-loop requestors per domain, each
/// access either hitting the domain-local bank group or taking a
/// round trip to a uniformly chosen remote domain over the
/// lookahead-bounded channel. The model exists to exercise the
/// executive — domain-sharded queues, ordered channels, barrier
/// windows — with a realistic mix of local work and cross-domain
/// traffic whose statistics the tests can audit.
#[derive(Debug)]
pub struct SyntheticMemoryDomain {
    /// This domain's index.
    index: usize,
    /// Domain-local bank group.
    bank: Resource,
    rng: SplitMix64,
    /// Remaining accesses each closed-loop stream may issue.
    budget: Vec<u64>,
    /// Probability an access is remote.
    remote_frac: f64,
    /// One-way channel latency (≥ the executive's lookahead).
    link_latency: Time,
    /// Bank service time per access.
    service: Time,
    /// Think time between a completion and the stream's next issue.
    think: Time,
    /// Completed accesses.
    pub completed: u64,
    /// Completed remote round trips.
    pub remote_completed: u64,
    /// Summed end-to-end latency of completed accesses.
    pub total_latency: u64,
}

impl SyntheticMemoryDomain {
    /// Builds domain `index` with `streams` closed-loop requestors
    /// issuing `ops_per_stream` accesses each.
    pub fn new(
        index: usize,
        seed: u64,
        streams: usize,
        ops_per_stream: u64,
        remote_frac: f64,
        link_latency: Time,
    ) -> SyntheticMemoryDomain {
        SyntheticMemoryDomain {
            index,
            bank: Resource::new(4),
            rng: SplitMix64::new(derive_seed(seed, PDES_STREAM, index as u64)),
            budget: vec![ops_per_stream; streams],
            remote_frac,
            link_latency,
            service: 24,
            think: 8,
            completed: 0,
            remote_completed: 0,
            total_latency: 0,
        }
    }

    /// Seeds every stream's first issue into `exec` at staggered
    /// start times (so banks don't see a thundering herd at t=0).
    pub fn prime(exec: &mut Executive<SyntheticMemoryDomain>) {
        let counts: Vec<usize> = exec.domains().iter().map(|d| d.budget.len()).collect();
        for (d, streams) in counts.into_iter().enumerate() {
            for s in 0..streams {
                exec.seed(d, s as Time, MemEvent::Issue { stream: s });
            }
        }
    }

    fn finish(
        &mut self,
        now: Time,
        issued: Time,
        remote: bool,
        stream: usize,
        ctx: &mut Ctx<'_, MemEvent>,
    ) {
        self.completed += 1;
        self.remote_completed += u64::from(remote);
        self.total_latency += now - issued;
        if self.budget[stream] > 0 {
            ctx.schedule(self.think, MemEvent::Issue { stream });
        }
    }
}

impl Domain for SyntheticMemoryDomain {
    type Event = MemEvent;

    fn handle(&mut self, now: Time, event: MemEvent, ctx: &mut Ctx<'_, MemEvent>) {
        match event {
            MemEvent::Issue { stream } => {
                if self.budget[stream] == 0 {
                    return;
                }
                self.budget[stream] -= 1;
                let n = ctx.domains();
                if n > 1 && self.rng.chance(self.remote_frac) {
                    // Uniform peer choice excluding self.
                    let mut dst = self.rng.next_below((n - 1) as u64) as usize;
                    if dst >= self.index {
                        dst += 1;
                    }
                    ctx.send(
                        dst,
                        self.link_latency,
                        MemEvent::RemoteReq {
                            src: self.index,
                            stream,
                            issued: now,
                        },
                    );
                } else {
                    let grant = self.bank.acquire(now, self.service);
                    ctx.schedule(
                        grant.complete_at - now,
                        MemEvent::Done {
                            stream,
                            issued: now,
                        },
                    );
                }
            }
            MemEvent::Done { stream, issued } => {
                self.finish(now, issued, false, stream, ctx);
            }
            MemEvent::RemoteReq {
                src,
                stream,
                issued,
            } => {
                // Serve from the local bank, then ship the reply back.
                // The reply leaves when service completes; latency is
                // service + link, always ≥ lookahead.
                let grant = self.bank.acquire(now, self.service);
                ctx.send(
                    src,
                    (grant.complete_at - now) + self.link_latency,
                    MemEvent::RemoteResp { stream, issued },
                );
            }
            MemEvent::RemoteResp { stream, issued } => {
                self.finish(now, issued, true, stream, ctx);
            }
        }
    }
}

/// Builds and primes a synthetic-memory executive: `domains` domains,
/// `streams` closed-loop requestors each issuing `ops_per_stream`
/// accesses, `remote_frac` of them remote over a channel of exactly
/// `lookahead` cycles.
pub fn synthetic_executive(
    domains: usize,
    streams: usize,
    ops_per_stream: u64,
    remote_frac: f64,
    lookahead: Time,
    seed: u64,
) -> Executive<SyntheticMemoryDomain> {
    let doms = (0..domains)
        .map(|i| {
            SyntheticMemoryDomain::new(i, seed, streams, ops_per_stream, remote_frac, lookahead)
        })
        .collect();
    let mut exec = Executive::new(doms, lookahead);
    SyntheticMemoryDomain::prime(&mut exec);
    exec
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Fingerprint of a synthetic run for bit-identity comparisons.
    fn fingerprint(exec: &Executive<SyntheticMemoryDomain>) -> Vec<(u64, u64, u64)> {
        exec.domains()
            .iter()
            .map(|d| (d.completed, d.remote_completed, d.total_latency))
            .collect()
    }

    #[test]
    fn inline_completes_every_access() {
        let mut exec = synthetic_executive(4, 8, 50, 0.3, 150, 42);
        let stats = exec.run_inline();
        let total: u64 = exec.domains().iter().map(|d| d.completed).sum();
        assert_eq!(total, 4 * 8 * 50);
        assert!(stats.events > total, "each access takes >1 event");
        assert!(stats.messages > 0, "remote traffic must flow");
        assert!(stats.end_time > 0);
    }

    #[test]
    fn threaded_matches_inline_bit_for_bit() {
        for workers in [2, 3, 4, 8] {
            let mut a = synthetic_executive(8, 6, 40, 0.35, 150, 7);
            let mut b = synthetic_executive(8, 6, 40, 0.35, 150, 7);
            let sa = a.run_inline();
            let sb = b.run_threaded(workers);
            assert_eq!(fingerprint(&a), fingerprint(&b), "{workers} workers");
            assert_eq!(sa.events, sb.events, "{workers} workers");
            assert_eq!(sa.messages, sb.messages, "{workers} workers");
            assert_eq!(sa.end_time, sb.end_time, "{workers} workers");
        }
    }

    #[test]
    fn threaded_is_deterministic_run_to_run() {
        let run = || {
            let mut e = synthetic_executive(6, 5, 60, 0.4, 200, 11);
            e.run_threaded(3);
            fingerprint(&e)
        };
        let first = run();
        for _ in 0..5 {
            assert_eq!(run(), first);
        }
    }

    #[test]
    fn remote_fraction_materializes() {
        let mut exec = synthetic_executive(4, 8, 200, 0.25, 150, 3);
        exec.run_inline();
        let total: u64 = exec.domains().iter().map(|d| d.completed).sum();
        let remote: u64 = exec.domains().iter().map(|d| d.remote_completed).sum();
        let frac = remote as f64 / total as f64;
        assert!((frac - 0.25).abs() < 0.05, "remote fraction {frac}");
    }

    #[test]
    fn remote_latency_includes_two_link_crossings() {
        // With 100% remote traffic every access pays at least
        // 2 × link + service.
        let mut exec = synthetic_executive(2, 2, 30, 1.0, 150, 5);
        exec.run_inline();
        for d in exec.domains() {
            let mean = d.total_latency as f64 / d.completed as f64;
            assert!(mean >= (2 * 150 + 24) as f64, "mean remote latency {mean}");
        }
    }

    #[test]
    fn sub_lookahead_send_is_rejected() {
        struct Bad;
        impl Domain for Bad {
            type Event = ();
            fn handle(&mut self, _t: Time, _e: (), ctx: &mut Ctx<'_, ()>) {
                ctx.send(1, ctx.lookahead() - 1, ());
            }
        }
        let mut exec = Executive::new(vec![Bad, Bad], 100);
        exec.seed(0, 0, ());
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| exec.run_inline()));
        assert!(err.is_err(), "sub-lookahead send must panic");
    }

    #[test]
    fn boundary_messages_deliver_in_canonical_order() {
        // Two source domains fire same-deliver-time messages at domain
        // 2 in reverse index order; the receiver must still see src 0
        // before src 1, and FIFO within each channel.
        #[derive(Default)]
        struct Recorder {
            log: Vec<(Time, usize, u32)>,
        }
        #[derive(Clone, Copy)]
        enum Ev {
            Fire { tag: u32 },
            Note { src: usize, tag: u32 },
        }
        impl Domain for Recorder {
            type Event = Ev;
            fn handle(&mut self, now: Time, e: Ev, ctx: &mut Ctx<'_, Ev>) {
                match e {
                    Ev::Fire { tag } => {
                        let src = ctx.domain();
                        ctx.send(2, ctx.lookahead(), Ev::Note { src, tag });
                        ctx.send(2, ctx.lookahead(), Ev::Note { src, tag: tag + 10 });
                    }
                    Ev::Note { src, tag } => self.log.push((now, src, tag)),
                }
            }
        }
        let mut exec = Executive::new(
            vec![
                Recorder::default(),
                Recorder::default(),
                Recorder::default(),
            ],
            50,
        );
        // Seed src 1 *before* src 0 at the same time: insertion order
        // into different domains must not matter.
        exec.seed(1, 10, Ev::Fire { tag: 100 });
        exec.seed(0, 10, Ev::Fire { tag: 0 });
        exec.run_inline();
        assert_eq!(
            exec.domains()[2].log,
            vec![(60, 0, 0), (60, 0, 10), (60, 1, 100), (60, 1, 110)],
        );
    }

    #[test]
    fn idle_windows_are_skipped() {
        // Two events 10^6 apart must not cost 10^6/lookahead windows.
        struct Quiet;
        impl Domain for Quiet {
            type Event = ();
            fn handle(&mut self, _t: Time, _e: (), _ctx: &mut Ctx<'_, ()>) {}
        }
        let mut exec = Executive::new(vec![Quiet], 100);
        exec.seed(0, 5, ());
        exec.seed(0, 1_000_000, ());
        let stats = exec.run_inline();
        assert_eq!(stats.events, 2);
        assert!(stats.windows <= 3, "{} windows for 2 events", stats.windows);
    }

    #[test]
    fn single_worker_threaded_falls_back_inline() {
        let mut a = synthetic_executive(3, 4, 25, 0.2, 150, 9);
        let mut b = synthetic_executive(3, 4, 25, 0.2, 150, 9);
        let sa = a.run_inline();
        let sb = b.run_threaded(1);
        assert_eq!(sa, sb);
        assert_eq!(fingerprint(&a), fingerprint(&b));
    }

    #[test]
    fn channel_stress_many_windows_many_messages() {
        // High remote fraction and many domains: thousands of boundary
        // exchanges, still bit-identical across worker counts.
        let mk = || synthetic_executive(12, 4, 80, 0.8, 150, 0xBEEF);
        let mut reference = mk();
        let rs = reference.run_inline();
        assert!(
            rs.messages > 5_000,
            "stress wants traffic, got {}",
            rs.messages
        );
        for workers in [2, 4, 6, 12] {
            let mut e = mk();
            let s = e.run_threaded(workers);
            assert_eq!(s, rs, "{workers} workers");
            assert_eq!(
                fingerprint(&e),
                fingerprint(&reference),
                "{workers} workers"
            );
        }
    }
}
