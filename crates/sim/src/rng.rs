//! Minimal deterministic pseudo-random number generation.
//!
//! Simulation substrates (bank conflicts jitter, fault injection sites,
//! sampling epochs) need cheap, seedable randomness whose sequence is
//! stable across platforms and releases. [`SplitMix64`] is the standard
//! 64-bit mixer by Steele et al.; it is tiny, passes BigCrush for these
//! purposes, and keeps the core simulation crates dependency-free.
//!
//! [`derive_seed`] is the one sanctioned way to turn a master experiment
//! seed plus a structured index (trial number, thread id, workload slot)
//! into an independent child seed: every consumer that seeds from
//! `(master, index)` goes through it, so fault campaigns, trace
//! generators and benches cannot accidentally correlate their streams by
//! XOR-ing ad-hoc constants.

/// SplitMix64 pseudo-random generator.
///
/// # Example
///
/// ```
/// use dve_sim::rng::SplitMix64;
///
/// let mut a = SplitMix64::new(42);
/// let mut b = SplitMix64::new(42);
/// assert_eq!(a.next_u64(), b.next_u64()); // fully deterministic
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)` using Lemire's multiply-shift
    /// reduction (unbiased enough for simulation purposes).
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be non-zero");
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli draw with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    pub fn chance(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0,1]");
        self.next_f64() < p
    }

    /// Forks a statistically independent child generator, leaving `self`
    /// advanced by one step. Useful for giving each simulated core its own
    /// stream derived from one experiment seed.
    pub fn fork(&mut self) -> SplitMix64 {
        SplitMix64::new(self.next_u64())
    }
}

/// Derives an independent child seed from a `master` seed and a
/// structured `stream`/`index` pair.
///
/// `stream` partitions consumers (e.g. one stream id per subsystem:
/// trials, workload threads, fault values), and `index` selects the
/// instance within the stream (trial number, thread id). Two full
/// SplitMix64 mixing rounds separate the inputs, so nearby `(stream,
/// index)` pairs yield uncorrelated seeds — unlike `master ^ index`
/// style mixing, which preserves affine structure.
///
/// # Example
///
/// ```
/// use dve_sim::rng::{derive_seed, SplitMix64};
///
/// let a = derive_seed(42, 0, 0);
/// let b = derive_seed(42, 0, 1);
/// assert_ne!(a, b);
/// // Deterministic: same inputs, same child seed.
/// assert_eq!(a, derive_seed(42, 0, 0));
/// let _rng = SplitMix64::new(a);
/// ```
pub fn derive_seed(master: u64, stream: u64, index: u64) -> u64 {
    let mut r = SplitMix64::new(master ^ stream.wrapping_mul(0xA076_1D64_78BD_642F));
    let first = r.next_u64();
    let mut r2 = SplitMix64::new(first ^ index.wrapping_mul(0xE703_7ED1_A0B4_28DB));
    r2.next_u64()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_sequence() {
        let mut r = SplitMix64::new(0);
        // Known first outputs of SplitMix64 with seed 0.
        assert_eq!(r.next_u64(), 0xE220_A839_7B1D_CDAF);
        assert_eq!(r.next_u64(), 0x6E78_9E6A_A1B9_65F4);
    }

    #[test]
    fn bounded_values_in_range() {
        let mut r = SplitMix64::new(123);
        for _ in 0..10_000 {
            assert!(r.next_below(17) < 17);
        }
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = SplitMix64::new(7);
        for _ in 0..10_000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn chance_extremes() {
        let mut r = SplitMix64::new(9);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
    }

    #[test]
    fn chance_roughly_calibrated() {
        let mut r = SplitMix64::new(1);
        let hits = (0..100_000).filter(|_| r.chance(0.25)).count();
        assert!((20_000..30_000).contains(&hits), "hits = {hits}");
    }

    #[test]
    fn fork_diverges_from_parent() {
        let mut a = SplitMix64::new(5);
        let mut child = a.fork();
        // Parent and child should produce different streams.
        assert_ne!(a.next_u64(), child.next_u64());
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_bound_rejected() {
        SplitMix64::new(0).next_below(0);
    }

    #[test]
    fn derived_seeds_distinct_across_streams_and_indices() {
        let mut seen = std::collections::HashSet::new();
        for stream in 0..8u64 {
            for index in 0..256u64 {
                assert!(
                    seen.insert(derive_seed(0xDEAD_BEEF, stream, index)),
                    "collision at stream={stream} index={index}"
                );
            }
        }
    }

    #[test]
    fn derived_seeds_deterministic() {
        assert_eq!(derive_seed(1, 2, 3), derive_seed(1, 2, 3));
        assert_ne!(derive_seed(1, 2, 3), derive_seed(2, 2, 3));
        assert_ne!(derive_seed(1, 2, 3), derive_seed(1, 3, 3));
        assert_ne!(derive_seed(1, 2, 3), derive_seed(1, 2, 4));
    }

    #[test]
    fn derived_seeds_break_affine_structure() {
        // XOR-style mixing would give a ^ b == c ^ d for consecutive
        // indices; the two-round mixer must not.
        let a = derive_seed(7, 0, 0);
        let b = derive_seed(7, 0, 1);
        let c = derive_seed(7, 0, 2);
        let d = derive_seed(7, 0, 3);
        assert_ne!(a ^ b, c ^ d);
    }
}
