//! Minimal deterministic pseudo-random number generation.
//!
//! Simulation substrates (bank conflicts jitter, fault injection sites,
//! sampling epochs) need cheap, seedable randomness whose sequence is
//! stable across platforms and releases. [`SplitMix64`] is the standard
//! 64-bit mixer by Steele et al.; it is tiny, passes BigCrush for these
//! purposes, and keeps the core simulation crates dependency-free.
//! (Workload *synthesis* uses the `rand` crate in `dve-workloads`.)

/// SplitMix64 pseudo-random generator.
///
/// # Example
///
/// ```
/// use dve_sim::rng::SplitMix64;
///
/// let mut a = SplitMix64::new(42);
/// let mut b = SplitMix64::new(42);
/// assert_eq!(a.next_u64(), b.next_u64()); // fully deterministic
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)` using Lemire's multiply-shift
    /// reduction (unbiased enough for simulation purposes).
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be non-zero");
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli draw with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    pub fn chance(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0,1]");
        self.next_f64() < p
    }

    /// Forks a statistically independent child generator, leaving `self`
    /// advanced by one step. Useful for giving each simulated core its own
    /// stream derived from one experiment seed.
    pub fn fork(&mut self) -> SplitMix64 {
        SplitMix64::new(self.next_u64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_sequence() {
        let mut r = SplitMix64::new(0);
        // Known first outputs of SplitMix64 with seed 0.
        assert_eq!(r.next_u64(), 0xE220_A839_7B1D_CDAF);
        assert_eq!(r.next_u64(), 0x6E78_9E6A_A1B9_65F4);
    }

    #[test]
    fn bounded_values_in_range() {
        let mut r = SplitMix64::new(123);
        for _ in 0..10_000 {
            assert!(r.next_below(17) < 17);
        }
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = SplitMix64::new(7);
        for _ in 0..10_000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn chance_extremes() {
        let mut r = SplitMix64::new(9);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
    }

    #[test]
    fn chance_roughly_calibrated() {
        let mut r = SplitMix64::new(1);
        let hits = (0..100_000).filter(|_| r.chance(0.25)).count();
        assert!((20_000..30_000).contains(&hits), "hits = {hits}");
    }

    #[test]
    fn fork_diverges_from_parent() {
        let mut a = SplitMix64::new(5);
        let mut child = a.fork();
        // Parent and child should produce different streams.
        assert_ne!(a.next_u64(), child.next_u64());
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_bound_rejected() {
        SplitMix64::new(0).next_below(0);
    }
}
