//! Structured latency accounting: where did the cycles go?
//!
//! The paper's performance story (Fig. 6–8, the Fig. 10 link sweep) is
//! an attribution claim — local replica reads spend their cycles in
//! different places than remote home accesses. A single end-to-end
//! cycle count cannot check that claim; a [`LatencyBreakdown`] can.
//! Every timed layer charges its cycles to a named [`Component`], and a
//! conservation invariant (the components sum to the end-to-end
//! latency) is enforced *by construction* through the [`Stamp`] type:
//! the only way to advance a stamp's clock is to attribute the cycles.
//!
//! # Composition rules
//!
//! * **Sequential** composition is [`Stamp::advance`]: charge `n`
//!   cycles to a component, the clock moves by `n`.
//! * **Fan-out/max** composition (a write waiting on the later of its
//!   data fetch and its invalidation acks) is [`Stamp::max`]: the later
//!   stamp wins *wholly*, so the breakdown always describes the
//!   critical path, never a double-counted union.
//!
//! Both preserve the invariant `at == origin + parts.total()`, which is
//! `debug_assert`ed at every step and property-tested end-to-end in the
//! conformance crate.

/// A named latency component: the layer a cycle is charged to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Component {
    /// On-chip mesh hops (core → LLC slice, LLC → directory tile).
    Mesh,
    /// Inter-socket link serialization + propagation.
    Link,
    /// Cycles queued behind a busy DRAM bank (or tRAS window).
    BankQueue,
    /// DRAM bank service time (tRCD/tCL/tRP/burst as applicable).
    BankService,
    /// Everything the protocol itself charges: L1/LLC/directory
    /// lookups, forward hops inside a socket, ECC decode penalties.
    Protocol,
    /// Cycles spent on the §V-B2 recovery detour after a detected
    /// DRAM error: the remote-replica fetch across the inter-socket
    /// link, the repair write-back and the re-read. Only the timed
    /// fault-injection path (the chaos layer) ever charges this
    /// component; fault-free runs keep it at exactly zero.
    Recovery,
}

impl Component {
    /// All components, in display order.
    pub const ALL: [Component; 6] = [
        Component::Mesh,
        Component::Link,
        Component::BankQueue,
        Component::BankService,
        Component::Protocol,
        Component::Recovery,
    ];

    /// Short stable label (used in reports and JSON).
    pub fn label(self) -> &'static str {
        match self {
            Component::Mesh => "mesh",
            Component::Link => "link",
            Component::BankQueue => "bank_queue",
            Component::BankService => "bank_service",
            Component::Protocol => "protocol",
            Component::Recovery => "recovery",
        }
    }
}

/// Per-component cycle totals. The additive half of the timing model:
/// [`LatencyBreakdown::total`] of an access equals its end-to-end
/// latency (the conservation invariant).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LatencyBreakdown {
    /// On-chip mesh hop cycles.
    pub mesh: u64,
    /// Inter-socket link cycles (serialization + propagation + queue).
    pub link: u64,
    /// Cycles queued behind busy DRAM banks.
    pub bank_queue: u64,
    /// DRAM bank service cycles.
    pub bank_service: u64,
    /// Protocol-layer cycles (cache lookups, directory, forwards, ECC).
    pub protocol: u64,
    /// Recovery-detour cycles (remote-replica fetch, repair, re-read).
    pub recovery: u64,
}

impl LatencyBreakdown {
    /// Sum of every component.
    pub fn total(&self) -> u64 {
        self.mesh + self.link + self.bank_queue + self.bank_service + self.protocol + self.recovery
    }

    /// The cycles charged to `c`.
    pub fn get(&self, c: Component) -> u64 {
        match c {
            Component::Mesh => self.mesh,
            Component::Link => self.link,
            Component::BankQueue => self.bank_queue,
            Component::BankService => self.bank_service,
            Component::Protocol => self.protocol,
            Component::Recovery => self.recovery,
        }
    }

    /// Charges `cycles` to component `c`.
    pub fn add(&mut self, c: Component, cycles: u64) {
        match c {
            Component::Mesh => self.mesh += cycles,
            Component::Link => self.link += cycles,
            Component::BankQueue => self.bank_queue += cycles,
            Component::BankService => self.bank_service += cycles,
            Component::Protocol => self.protocol += cycles,
            Component::Recovery => self.recovery += cycles,
        }
    }

    /// Component-wise sum (accumulating per-access breakdowns into a
    /// run total).
    pub fn merge(&mut self, other: &LatencyBreakdown) {
        self.mesh += other.mesh;
        self.link += other.link;
        self.bank_queue += other.bank_queue;
        self.bank_service += other.bank_service;
        self.protocol += other.protocol;
        self.recovery += other.recovery;
    }

    /// Component-wise `self - earlier` for interval/epoch deltas.
    ///
    /// Debug-asserts monotonicity (cumulative counters never shrink),
    /// matching the PR 3 stats convention.
    pub fn delta_since(&self, earlier: &LatencyBreakdown) -> LatencyBreakdown {
        for c in Component::ALL {
            debug_assert!(
                self.get(c) >= earlier.get(c),
                "latency counter {} went backwards: {} -> {}",
                c.label(),
                earlier.get(c),
                self.get(c)
            );
        }
        LatencyBreakdown {
            mesh: self.mesh - earlier.mesh,
            link: self.link - earlier.link,
            bank_queue: self.bank_queue - earlier.bank_queue,
            bank_service: self.bank_service - earlier.bank_service,
            protocol: self.protocol - earlier.protocol,
            recovery: self.recovery - earlier.recovery,
        }
    }

    /// Fraction of the total charged to `c` (0.0 when empty).
    pub fn fraction(&self, c: Component) -> f64 {
        let total = self.total();
        if total == 0 {
            0.0
        } else {
            self.get(c) as f64 / total as f64
        }
    }
}

/// Per-op latency distributions: one [`LogHistogram`] for the
/// end-to-end latency plus one per [`Component`].
///
/// [`LatencyBreakdown`] answers "where did the cycles go in aggregate";
/// `LatencyHists` answers the serving question — "what did the p99 op
/// pay, and to which layer". Every completed memory operation records
/// its breakdown once (zeros included, so per-component counts equal
/// the op count), which gives two invariants for free:
///
/// * each component histogram's [`LogHistogram::sum`] equals the
///   cycles the aggregate breakdown charged to that component, and
/// * every histogram's count equals the number of recorded ops.
///
/// [`LatencyHists::conserves`] checks the first against an aggregate
/// snapshot; the service telemetry gates on it per scrape.
///
/// [`LogHistogram`]: crate::stats::LogHistogram
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LatencyHists {
    /// End-to-end per-op latency (sum of all components).
    pub total: crate::stats::LogHistogram,
    /// Per-component distributions, indexed like [`Component::ALL`].
    per: [crate::stats::LogHistogram; 6],
}

impl LatencyHists {
    /// Creates an empty set of histograms.
    pub fn new() -> LatencyHists {
        LatencyHists::default()
    }

    /// Records one completed op's breakdown (every component, zeros
    /// included).
    pub fn record(&mut self, b: &LatencyBreakdown) {
        self.total.record(b.total());
        for (h, c) in self.per.iter_mut().zip(Component::ALL) {
            h.record(b.get(c));
        }
    }

    /// The distribution of one component's per-op latency.
    pub fn component(&self, c: Component) -> &crate::stats::LogHistogram {
        let idx = Component::ALL
            .iter()
            .position(|&x| x == c)
            .expect("component in ALL");
        &self.per[idx]
    }

    /// Number of recorded ops.
    pub fn count(&self) -> u64 {
        self.total.count()
    }

    /// Adds every op of `other` into `self` (epoch aggregation).
    pub fn merge(&mut self, other: &LatencyHists) {
        self.total.merge(&other.total);
        for (a, b) in self.per.iter_mut().zip(&other.per) {
            a.merge(b);
        }
    }

    /// Sum-conservation against an aggregate breakdown over the same
    /// ops: per component, the histogram's exact sum must equal the
    /// cycles the aggregate charged to that component.
    pub fn conserves(&self, aggregate: &LatencyBreakdown) -> bool {
        self.total.sum() == aggregate.total() as u128
            && Component::ALL
                .iter()
                .all(|&c| self.component(c).sum() == aggregate.get(c) as u128)
    }
}

/// A point in time that remembers where its cycles came from.
///
/// A `Stamp` starts at some `origin` and can only move forward by
/// attributing cycles to a [`Component`], so the invariant
///
/// ```text
/// at() == origin() + breakdown().total()
/// ```
///
/// holds by construction: conservation is not something the timing code
/// has to remember, it is the only thing the API permits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Stamp {
    at: u64,
    origin: u64,
    parts: LatencyBreakdown,
}

impl Stamp {
    /// A fresh stamp at `now` with an empty breakdown.
    pub fn start(now: u64) -> Stamp {
        Stamp {
            at: now,
            origin: now,
            parts: LatencyBreakdown::default(),
        }
    }

    /// The current time of this stamp.
    pub fn at(&self) -> u64 {
        self.at
    }

    /// The time the stamp started at.
    pub fn origin(&self) -> u64 {
        self.origin
    }

    /// The attributed cycles so far.
    pub fn breakdown(&self) -> LatencyBreakdown {
        self.parts
    }

    /// Total elapsed cycles (`at - origin`), always equal to
    /// `breakdown().total()`.
    pub fn elapsed(&self) -> u64 {
        self.check();
        self.at - self.origin
    }

    /// Advances the clock by `cycles`, charging them to `c`.
    pub fn advance(self, c: Component, cycles: u64) -> Stamp {
        let mut s = self;
        s.at += cycles;
        s.parts.add(c, cycles);
        s.check();
        s
    }

    /// Fan-out/max composition: the later stamp wins wholly, so the
    /// result describes the critical path. Ties resolve to `self`
    /// (deterministic). Both stamps must share an origin — `max` over
    /// stamps from different forks of the *same* request is the only
    /// meaningful use.
    pub fn max(self, other: Stamp) -> Stamp {
        debug_assert_eq!(
            self.origin, other.origin,
            "Stamp::max across different origins loses conservation"
        );
        if other.at > self.at {
            other
        } else {
            self
        }
    }

    fn check(&self) {
        debug_assert_eq!(
            self.at,
            self.origin + self.parts.total(),
            "latency conservation violated: at={} origin={} parts={:?}",
            self.at,
            self.origin,
            self.parts
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn breakdown_totals_and_accessors() {
        let mut b = LatencyBreakdown::default();
        assert_eq!(b.total(), 0);
        b.add(Component::Mesh, 4);
        b.add(Component::Link, 150);
        b.add(Component::BankQueue, 7);
        b.add(Component::BankService, 36);
        b.add(Component::Protocol, 21);
        b.add(Component::Recovery, 190);
        assert_eq!(b.total(), 4 + 150 + 7 + 36 + 21 + 190);
        for c in Component::ALL {
            assert!(b.get(c) > 0, "{} not set", c.label());
        }
        assert!((b.fraction(Component::Link) - 150.0 / b.total() as f64).abs() < 1e-12);
    }

    #[test]
    fn merge_and_delta_roundtrip() {
        let mut a = LatencyBreakdown::default();
        a.add(Component::Mesh, 3);
        a.add(Component::Protocol, 9);
        let mut run = a;
        let mut b = LatencyBreakdown::default();
        b.add(Component::Link, 5);
        b.add(Component::Mesh, 1);
        run.merge(&b);
        assert_eq!(run.total(), a.total() + b.total());
        assert_eq!(run.delta_since(&a), b);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "went backwards")]
    fn delta_guards_monotonicity() {
        let mut a = LatencyBreakdown::default();
        a.add(Component::Mesh, 3);
        LatencyBreakdown::default().delta_since(&a);
    }

    #[test]
    fn latency_hists_record_merge_conserve() {
        let mut agg = LatencyBreakdown::default();
        let mut hists = LatencyHists::new();
        let ops = [
            Stamp::start(0)
                .advance(Component::Protocol, 3)
                .advance(Component::Mesh, 4),
            Stamp::start(10)
                .advance(Component::Link, 150)
                .advance(Component::BankService, 36),
            Stamp::start(99).advance(Component::Recovery, 500),
        ];
        for s in &ops {
            hists.record(&s.breakdown());
            agg.merge(&s.breakdown());
        }
        assert_eq!(hists.count(), 3);
        assert!(hists.conserves(&agg));
        // Zeros are recorded, so per-component counts equal op count.
        for c in Component::ALL {
            assert_eq!(hists.component(c).count(), 3, "{}", c.label());
        }
        // A mismatched aggregate is caught.
        agg.add(Component::Mesh, 1);
        assert!(!hists.conserves(&agg));
        // Merge equals recording everything into one set.
        let mut a = LatencyHists::new();
        a.record(&ops[0].breakdown());
        let mut b = LatencyHists::new();
        b.record(&ops[1].breakdown());
        b.record(&ops[2].breakdown());
        a.merge(&b);
        assert_eq!(a, hists);
    }

    #[test]
    fn stamp_conserves_by_construction() {
        let s = Stamp::start(100)
            .advance(Component::Protocol, 1)
            .advance(Component::Mesh, 2)
            .advance(Component::Link, 150)
            .advance(Component::BankService, 36);
        assert_eq!(s.origin(), 100);
        assert_eq!(s.at(), 100 + 1 + 2 + 150 + 36);
        assert_eq!(s.elapsed(), s.breakdown().total());
    }

    #[test]
    fn max_picks_critical_path_wholly() {
        let base = Stamp::start(10).advance(Component::Protocol, 1);
        let data = base.advance(Component::Link, 150);
        let acks = base.advance(Component::Mesh, 4);
        let joined = data.max(acks);
        assert_eq!(joined, data, "later fork wins");
        assert_eq!(
            joined.breakdown().mesh,
            0,
            "loser's cycles are not unioned in"
        );
        // Ties resolve to self.
        let tie_a = base.advance(Component::Link, 7);
        let tie_b = base.advance(Component::Mesh, 7);
        assert_eq!(tie_a.max(tie_b), tie_a);
        assert_eq!(tie_b.max(tie_a), tie_b);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "different origins")]
    fn max_rejects_mismatched_origins() {
        let _ = Stamp::start(0).max(Stamp::start(1));
    }

    #[test]
    fn fraction_of_empty_is_zero() {
        let b = LatencyBreakdown::default();
        assert_eq!(b.fraction(Component::Mesh), 0.0);
    }
}
