//! Deterministic time-ordered event queue.
//!
//! [`EventQueue`] is a min-heap keyed on `(time, sequence)`. The sequence
//! number is a monotonically increasing insertion counter, so two events
//! scheduled for the same simulated time are always delivered in the order
//! they were pushed. This property is what makes every experiment in this
//! workspace reproducible run-to-run: there is no dependence on hash-map
//! iteration order or allocator behaviour.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Simulated timestamp, in the clock domain chosen by the caller
/// (the Dvé system simulator uses core cycles at 3 GHz).
pub type Time = u64;

#[derive(Debug, Clone)]
struct Entry<E> {
    time: Time,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert to get earliest-first.
        (other.time, other.seq).cmp(&(self.time, self.seq))
    }
}

/// A deterministic discrete-event queue.
///
/// # Example
///
/// ```
/// use dve_sim::event::EventQueue;
///
/// let mut q = EventQueue::new();
/// q.push(100, "tick");
/// let (t, ev) = q.pop().unwrap();
/// assert_eq!((t, ev), (100, "tick"));
/// ```
#[derive(Debug, Clone)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
    now: Time,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue with the clock at time zero.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            now: 0,
        }
    }

    /// Creates an empty queue with room for `capacity` pending events.
    ///
    /// Long-running simulation loops (the DRAM controller's maintenance
    /// queue, the system simulator's request pipeline) know their
    /// steady-state occupancy up front; pre-sizing the heap keeps the
    /// push path allocation-free in the steady state.
    pub fn with_capacity(capacity: usize) -> Self {
        EventQueue {
            heap: BinaryHeap::with_capacity(capacity),
            next_seq: 0,
            now: 0,
        }
    }

    /// Reserves capacity for at least `additional` more pending events.
    pub fn reserve(&mut self, additional: usize) {
        self.heap.reserve(additional);
    }

    /// Number of pending events the queue can hold without reallocating.
    pub fn capacity(&self) -> usize {
        self.heap.capacity()
    }

    /// Schedules `event` at absolute time `time`.
    ///
    /// # Panics
    ///
    /// Panics if `time` is earlier than the current time ([`Self::now`]) —
    /// scheduling into the past is always a simulator bug — or if the
    /// insertion counter would wrap. A silent `next_seq` wraparound would
    /// flip FIFO-within-time ordering for the wrapped pushes, breaking
    /// replay determinism without any visible error.
    pub fn push(&mut self, time: Time, event: E) {
        assert!(
            time >= self.now,
            "event scheduled in the past: t={time} < now={}",
            self.now
        );
        let seq = self.next_seq;
        self.next_seq = seq
            .checked_add(1)
            .expect("EventQueue sequence counter overflowed u64");
        self.heap.push(Entry { time, seq, event });
    }

    /// Schedules `event` `delay` ticks after the current time.
    pub fn push_after(&mut self, delay: Time, event: E) {
        self.push(self.now.saturating_add(delay), event);
    }

    /// Removes and returns the earliest event, advancing the clock to its
    /// timestamp. Returns `None` when the queue is empty.
    pub fn pop(&mut self) -> Option<(Time, E)> {
        let entry = self.heap.pop()?;
        // Popped times must never run backwards: `push` rejects past
        // events, so a violation here means the heap ordering itself is
        // broken (or `now` was corrupted).
        debug_assert!(
            entry.time >= self.now,
            "popped event time {} ran behind the clock {}",
            entry.time,
            self.now
        );
        self.now = entry.time;
        Some((entry.time, entry.event))
    }

    /// Timestamp of the earliest pending event, if any, without popping it.
    pub fn peek_time(&self) -> Option<Time> {
        self.heap.peek().map(|e| e.time)
    }

    /// The current simulated time (timestamp of the last popped event).
    pub fn now(&self) -> Time {
        self.now
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the queue has no pending events.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orders_by_time() {
        let mut q = EventQueue::new();
        q.push(30, 3);
        q.push(10, 1);
        q.push(20, 2);
        assert_eq!(q.pop(), Some((10, 1)));
        assert_eq!(q.pop(), Some((20, 2)));
        assert_eq!(q.pop(), Some((30, 3)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn fifo_within_same_time() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(7, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((7, i)));
        }
    }

    #[test]
    fn clock_advances_monotonically() {
        let mut q = EventQueue::new();
        q.push(5, ());
        q.push(9, ());
        assert_eq!(q.now(), 0);
        q.pop();
        assert_eq!(q.now(), 5);
        q.pop();
        assert_eq!(q.now(), 9);
    }

    #[test]
    #[should_panic(expected = "scheduled in the past")]
    fn panics_on_past_event() {
        let mut q = EventQueue::new();
        q.push(10, ());
        q.pop();
        q.push(3, ());
    }

    #[test]
    fn push_after_is_relative_to_now() {
        let mut q = EventQueue::new();
        q.push(100, "a");
        q.pop();
        q.push_after(5, "b");
        assert_eq!(q.pop(), Some((105, "b")));
    }

    #[test]
    fn peek_does_not_advance() {
        let mut q = EventQueue::new();
        q.push(42, ());
        assert_eq!(q.peek_time(), Some(42));
        assert_eq!(q.now(), 0);
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }

    #[test]
    fn with_capacity_presizes_and_reserve_grows() {
        let mut q: EventQueue<u32> = EventQueue::with_capacity(16);
        assert!(q.capacity() >= 16);
        for i in 0..16 {
            q.push(i as Time, i);
        }
        q.reserve(32);
        assert!(q.capacity() >= q.len() + 32);
        // Pre-sizing must not change delivery order.
        for i in 0..16 {
            assert_eq!(q.pop(), Some((i as Time, i)));
        }
    }

    #[test]
    fn clone_is_independent() {
        let mut q = EventQueue::new();
        q.push(10, "a");
        q.push(20, "b");
        let mut snapshot = q.clone();
        assert_eq!(q.pop(), Some((10, "a")));
        // The clone still holds both events and its own clock.
        assert_eq!(snapshot.len(), 2);
        assert_eq!(snapshot.now(), 0);
        assert_eq!(snapshot.pop(), Some((10, "a")));
        assert_eq!(snapshot.pop(), Some((20, "b")));
        // Sequence counters are independent too: pushes to the clone do
        // not perturb the original's FIFO-within-time ordering.
        assert_eq!(q.pop(), Some((20, "b")));
    }

    #[test]
    fn clone_replays_identically_under_interleaving() {
        // A clone must carry the insertion counter, not just the heap:
        // if `next_seq` reset on clone, a fresh push into the clone
        // could slot *before* surviving same-time events and the clone
        // would pop in a different order than the original given the
        // same subsequent pushes. Drive both queues through an
        // identical interleaved push/pop schedule and demand identical
        // pop sequences throughout.
        let mut original = EventQueue::new();
        original.push(5, "e0");
        original.push(5, "e1");
        original.push(9, "e2");
        let mut clone = original.clone();

        let schedule: &[(&str, Time, &str)] = &[
            ("pop", 0, ""),
            ("push", 5, "e3"), // same time as pending e1: seq decides
            ("push", 9, "e4"), // same time as pending e2: seq decides
            ("pop", 0, ""),
            ("pop", 0, ""),
            ("push", 9, "e5"),
            ("pop", 0, ""),
            ("pop", 0, ""),
            ("pop", 0, ""),
        ];
        for &(kind, time, tag) in schedule {
            match kind {
                "push" => {
                    original.push(time, tag);
                    clone.push(time, tag);
                }
                _ => {
                    assert_eq!(original.pop(), clone.pop(), "replay diverged");
                }
            }
        }
        assert_eq!(original.pop(), None);
        assert_eq!(clone.pop(), None);
    }

    #[test]
    fn interleaved_push_pop_keeps_determinism() {
        let mut q = EventQueue::new();
        q.push(1, "a");
        q.push(3, "c");
        assert_eq!(q.pop(), Some((1, "a")));
        q.push(3, "d");
        q.push(2, "b");
        assert_eq!(q.pop(), Some((2, "b")));
        assert_eq!(q.pop(), Some((3, "c")));
        assert_eq!(q.pop(), Some((3, "d")));
    }
}
