//! A reusable occupancy port: the one contention model every timed
//! substrate shares.
//!
//! Before this module existed, three components hand-rolled their own
//! serialization/queueing arithmetic: the inter-socket link (manual
//! `bytes / bytes_per_cycle` serialization), the DRAM banks (a bare
//! `busy_until` timestamp), and the mesh (collapsed to a rounded mean).
//! The Ramulator 2.0 re-evaluation showed exactly this kind of ad-hoc
//! latency bookkeeping is where simulators silently diverge, so all of
//! them now sit on [`Resource`]: a deterministic, cloneable set of
//! service slots with uniform statistics (grants, busy cycles, queue
//! cycles) that any audit can read back.
//!
//! Two occupancy disciplines are supported:
//!
//! * **finite** (`ways = n`): `n` parallel service slots; a request
//!   arriving while every slot is busy queues behind the
//!   earliest-freeing one. `ways = 1` is a fully serialized port (a
//!   DRAM bank, an MSHR file with one entry).
//! * **pipelined** (unbounded ways): requests never queue — the port
//!   charges the service time but admits any number of overlapping
//!   requests. This models a deeply pipelined channel whose utilization
//!   is far below saturation (the paper's inter-socket link runs at
//!   <3% of a QPI-class 48 GB/s lane).
//!
//! # Example
//!
//! ```
//! use dve_sim::resource::Resource;
//!
//! let mut bank = Resource::new(1);
//! let a = bank.acquire(0, 100);
//! assert_eq!((a.start, a.complete_at, a.queued), (0, 100, 0));
//! // Arrives at 40, but the port is busy until 100: queues 60 cycles.
//! let b = bank.acquire(40, 100);
//! assert_eq!((b.start, b.complete_at, b.queued), (100, 200, 60));
//! assert_eq!(bank.stats().queue_cycles, 60);
//! ```

/// One admitted request: when it started service, when it completes,
/// and how long it queued first.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Grant {
    /// Time service began (`>=` the requested time).
    pub start: u64,
    /// Time service completes (`start + service`).
    pub complete_at: u64,
    /// Cycles spent waiting for a free slot (`start - now`).
    pub queued: u64,
    /// Service time charged.
    pub service: u64,
}

/// Aggregate port statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ResourceStats {
    /// Requests admitted.
    pub grants: u64,
    /// Total service cycles charged (occupancy).
    pub busy_cycles: u64,
    /// Total cycles requests spent queued before service.
    pub queue_cycles: u64,
}

/// A deterministic, cloneable occupancy port. See the module docs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Resource {
    /// `Some(free_at)` per slot for finite ports; `None` = pipelined.
    slots: Option<Vec<u64>>,
    stats: ResourceStats,
}

impl Resource {
    /// A finite port with `ways` parallel service slots.
    ///
    /// # Panics
    ///
    /// Panics if `ways` is zero.
    pub fn new(ways: usize) -> Resource {
        assert!(ways > 0, "a resource needs at least one way");
        Resource {
            slots: Some(vec![0; ways]),
            stats: ResourceStats::default(),
        }
    }

    /// A pipelined port: service time is charged, occupancy is tracked,
    /// but requests never queue.
    pub fn pipelined() -> Resource {
        Resource {
            slots: None,
            stats: ResourceStats::default(),
        }
    }

    /// Number of parallel service slots (`None` for a pipelined port).
    pub fn ways(&self) -> Option<usize> {
        self.slots.as_ref().map(Vec::len)
    }

    /// Index of the slot that frees earliest (ties: lowest index, so
    /// admission order is deterministic).
    fn best_slot(slots: &[u64]) -> usize {
        let mut best = 0;
        for (i, &free) in slots.iter().enumerate().skip(1) {
            if free < slots[best] {
                best = i;
            }
        }
        best
    }

    /// Admits a request arriving at `now` needing `service` cycles.
    pub fn acquire(&mut self, now: u64, service: u64) -> Grant {
        let grant = self.probe(now, service);
        if let Some(slots) = &mut self.slots {
            let best = Self::best_slot(slots);
            slots[best] = grant.complete_at;
        }
        self.stats.grants += 1;
        self.stats.busy_cycles += service;
        self.stats.queue_cycles += grant.queued;
        grant
    }

    /// The grant a request *would* receive, without admitting it or
    /// touching statistics (speculative costing).
    pub fn probe(&self, now: u64, service: u64) -> Grant {
        let start = match &self.slots {
            Some(slots) => now.max(slots[Self::best_slot(slots)]),
            None => now,
        };
        Grant {
            start,
            complete_at: start + service,
            queued: start - now,
            service,
        }
    }

    /// Forces every slot busy until at least `until` (e.g. an all-bank
    /// refresh window). No-op on a pipelined port.
    pub fn block_until(&mut self, until: u64) {
        if let Some(slots) = &mut self.slots {
            for s in slots {
                *s = (*s).max(until);
            }
        }
    }

    /// Earliest time at which *some* slot is free (0 for a pipelined
    /// port or an idle finite port).
    pub fn earliest_available(&self) -> u64 {
        match &self.slots {
            Some(slots) => slots[Self::best_slot(slots)],
            None => 0,
        }
    }

    /// Time by which *every* slot has drained (all outstanding service
    /// complete). 0 for a pipelined port.
    pub fn drained_at(&self) -> u64 {
        match &self.slots {
            Some(slots) => slots.iter().copied().max().unwrap_or(0),
            None => 0,
        }
    }

    /// Whether at least one slot is free at `now`.
    pub fn available(&self, now: u64) -> bool {
        self.earliest_available() <= now
    }

    /// Aggregate statistics.
    pub fn stats(&self) -> ResourceStats {
        self.stats
    }

    /// Resets the statistics (not the occupancy).
    pub fn reset_stats(&mut self) {
        self.stats = ResourceStats::default();
    }

    /// Mean occupancy over `elapsed` cycles (busy / (ways × elapsed)).
    /// Pipelined ports report busy / elapsed (can exceed 1.0).
    pub fn utilization(&self, elapsed: u64) -> f64 {
        if elapsed == 0 {
            return 0.0;
        }
        let ways = self.ways().unwrap_or(1) as f64;
        self.stats.busy_cycles as f64 / (ways * elapsed as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serialized_port_queues_fifo() {
        let mut r = Resource::new(1);
        let a = r.acquire(0, 10);
        let b = r.acquire(0, 10);
        let c = r.acquire(5, 10);
        assert_eq!(a.complete_at, 10);
        assert_eq!((b.start, b.queued), (10, 10));
        assert_eq!((c.start, c.queued, c.complete_at), (20, 15, 30));
        assert_eq!(r.stats().grants, 3);
        assert_eq!(r.stats().busy_cycles, 30);
        assert_eq!(r.stats().queue_cycles, 25);
    }

    #[test]
    fn multi_way_port_overlaps_up_to_ways() {
        let mut r = Resource::new(2);
        let a = r.acquire(0, 10);
        let b = r.acquire(0, 10);
        let c = r.acquire(0, 10);
        assert_eq!(a.queued, 0);
        assert_eq!(b.queued, 0, "second way admits in parallel");
        assert_eq!(c.start, 10, "third request queues behind a way");
    }

    #[test]
    fn pipelined_port_never_queues() {
        let mut r = Resource::pipelined();
        for i in 0..100 {
            let g = r.acquire(7, 3 + i);
            assert_eq!(g.start, 7);
            assert_eq!(g.queued, 0);
        }
        assert_eq!(r.stats().queue_cycles, 0);
        assert_eq!(r.stats().grants, 100);
    }

    #[test]
    fn probe_matches_acquire_without_side_effects() {
        let mut r = Resource::new(1);
        r.acquire(0, 50);
        let p = r.probe(10, 5);
        let a = r.acquire(10, 5);
        assert_eq!(p, a);
        assert_eq!(r.stats().grants, 2);
    }

    #[test]
    fn block_until_behaves_like_refresh() {
        let mut r = Resource::new(1);
        r.block_until(1000);
        let g = r.acquire(10, 5);
        assert_eq!(g.start, 1000);
        assert_eq!(g.queued, 990);
        // block_until never shortens existing occupancy.
        r.block_until(500);
        assert_eq!(r.earliest_available(), 1005);
    }

    #[test]
    fn availability_probes() {
        let mut r = Resource::new(2);
        r.acquire(0, 10);
        assert!(r.available(0), "second way still free");
        r.acquire(0, 20);
        assert!(!r.available(5));
        assert_eq!(r.earliest_available(), 10);
        assert_eq!(r.drained_at(), 20);
    }

    #[test]
    fn deterministic_and_cloneable() {
        let mut a = Resource::new(3);
        for i in 0..20 {
            a.acquire(i * 3, 11);
        }
        let mut b = a.clone();
        assert_eq!(a, b);
        assert_eq!(a.acquire(100, 7), b.acquire(100, 7));
        assert_eq!(a, b);
    }

    #[test]
    fn utilization_accounts_ways() {
        let mut r = Resource::new(2);
        r.acquire(0, 10);
        r.acquire(0, 10);
        assert!((r.utilization(10) - 1.0).abs() < 1e-12);
        assert!((r.utilization(20) - 0.5).abs() < 1e-12);
        assert_eq!(r.utilization(0), 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one way")]
    fn zero_ways_rejected() {
        Resource::new(0);
    }
}
