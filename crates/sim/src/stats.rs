//! Statistics primitives used by the evaluation harnesses.
//!
//! The paper reports geometric means of speedups over workload groups
//! (top-10 / top-15 / all-20 by L2 MPKI); [`geomean`] implements exactly
//! that aggregation. [`Counter`] and [`Histogram`] are the building blocks
//! components use to expose run statistics, and [`Summary`] accumulates
//! running mean/min/max/variance without storing samples.

use std::fmt;

/// A named monotonically increasing event counter.
///
/// # Example
///
/// ```
/// use dve_sim::stats::Counter;
///
/// let mut c = Counter::new("llc_misses");
/// c.add(3);
/// c.inc();
/// assert_eq!(c.value(), 4);
/// assert_eq!(c.name(), "llc_misses");
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Counter {
    name: String,
    value: u64,
}

impl Counter {
    /// Creates a counter starting at zero.
    pub fn new(name: impl Into<String>) -> Counter {
        Counter {
            name: name.into(),
            value: 0,
        }
    }

    /// Adds `n` to the counter.
    pub fn add(&mut self, n: u64) {
        self.value += n;
    }

    /// Adds one to the counter.
    pub fn inc(&mut self) {
        self.value += 1;
    }

    /// Current value.
    pub fn value(&self) -> u64 {
        self.value
    }

    /// The counter's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Resets the counter to zero (used between profiling epochs by the
    /// sampling-based dynamic protocol).
    pub fn reset(&mut self) {
        self.value = 0;
    }
}

impl fmt::Display for Counter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.name, self.value)
    }
}

/// A power-of-two bucketed latency histogram.
///
/// Bucket `i` counts samples in `[2^i, 2^(i+1))`; bucket 0 also holds 0.
///
/// # Example
///
/// ```
/// use dve_sim::stats::Histogram;
///
/// let mut h = Histogram::new();
/// h.record(1);
/// h.record(100);
/// h.record(100);
/// assert_eq!(h.count(), 3);
/// assert_eq!(h.mean(), 67.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    buckets: [u64; 64],
    count: u64,
    sum: u128,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [0; 64],
            count: 0,
            sum: 0,
            max: 0,
        }
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Histogram {
        Histogram::default()
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        let idx = if value == 0 {
            0
        } else {
            63 - value.leading_zeros() as usize
        };
        self.buckets[idx] += 1;
        self.count += 1;
        self.sum += value as u128;
        self.max = self.max.max(value);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of recorded samples (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Largest recorded sample.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Approximate percentile from the bucketed distribution: returns the
    /// upper bound of the bucket containing the requested quantile.
    ///
    /// # Panics
    ///
    /// Panics if `q` is not within `0.0..=1.0`.
    pub fn percentile(&self, q: f64) -> u64 {
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0,1]");
        if self.count == 0 {
            return 0;
        }
        let target = (q * self.count as f64).ceil() as u64;
        let mut seen = 0;
        for (i, &b) in self.buckets.iter().enumerate() {
            seen += b;
            if seen >= target.max(1) {
                return 1u64 << (i + 1).min(63);
            }
        }
        self.max
    }

    /// Bucket counts, for rendering.
    pub fn buckets(&self) -> &[u64; 64] {
        &self.buckets
    }
}

/// Running summary (count / mean / min / max / variance) without storing
/// samples; Welford's online algorithm.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Summary {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Summary {
    /// Creates an empty summary.
    pub fn new() -> Summary {
        Summary {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds a sample.
    pub fn record(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sample mean (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (0.0 when fewer than two samples).
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Smallest sample (`None` when empty).
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest sample (`None` when empty).
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }
}

/// Geometric mean of a slice of strictly positive values.
///
/// This is the aggregate the paper uses for speedups ("we report the
/// geometric mean of speedup ... for the top-10, top-15 and all 20
/// benchmarks").
///
/// # Panics
///
/// Panics if any value is not strictly positive, or the slice is empty.
///
/// # Example
///
/// ```
/// use dve_sim::stats::geomean;
///
/// let g = geomean(&[1.0, 4.0]);
/// assert!((g - 2.0).abs() < 1e-12);
/// ```
pub fn geomean(values: &[f64]) -> f64 {
    assert!(!values.is_empty(), "geomean of empty slice");
    let mut log_sum = 0.0;
    for &v in values {
        assert!(
            v > 0.0 && v.is_finite(),
            "geomean requires positive finite values, got {v}"
        );
        log_sum += v.ln();
    }
    (log_sum / values.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_basics() {
        let mut c = Counter::new("x");
        c.inc();
        c.add(9);
        assert_eq!(c.value(), 10);
        c.reset();
        assert_eq!(c.value(), 0);
        assert_eq!(format!("{c}"), "x: 0");
    }

    #[test]
    fn histogram_mean_and_max() {
        let mut h = Histogram::new();
        for v in [0, 1, 2, 4, 8] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.mean(), 3.0);
        assert_eq!(h.max(), 8);
    }

    #[test]
    fn histogram_percentile_bounds() {
        let mut h = Histogram::new();
        for _ in 0..99 {
            h.record(10);
        }
        h.record(1000);
        // p50 should land in the bucket containing 10 -> upper bound 16
        assert_eq!(h.percentile(0.5), 16);
        // p100 should reach the big sample's bucket
        assert!(h.percentile(1.0) >= 1000);
    }

    #[test]
    fn summary_welford() {
        let mut s = Summary::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.record(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.variance() - 4.0).abs() < 1e-12);
        assert_eq!(s.min(), Some(2.0));
        assert_eq!(s.max(), Some(9.0));
    }

    #[test]
    fn summary_empty() {
        let s = Summary::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
    }

    #[test]
    fn geomean_matches_by_hand() {
        assert!((geomean(&[2.0, 8.0]) - 4.0).abs() < 1e-12);
        assert!((geomean(&[1.0, 1.0, 1.0]) - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn geomean_rejects_zero() {
        geomean(&[1.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn geomean_rejects_empty() {
        geomean(&[]);
    }
}
