//! Statistics primitives used by the evaluation harnesses.
//!
//! The paper reports geometric means of speedups over workload groups
//! (top-10 / top-15 / all-20 by L2 MPKI); [`geomean`] implements exactly
//! that aggregation. [`Counter`] and [`Histogram`] are the building blocks
//! components use to expose run statistics, and [`Summary`] accumulates
//! running mean/min/max/variance without storing samples.

use std::fmt;

/// A named monotonically increasing event counter.
///
/// # Example
///
/// ```
/// use dve_sim::stats::Counter;
///
/// let mut c = Counter::new("llc_misses");
/// c.add(3);
/// c.inc();
/// assert_eq!(c.value(), 4);
/// assert_eq!(c.name(), "llc_misses");
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Counter {
    name: String,
    value: u64,
}

impl Counter {
    /// Creates a counter starting at zero.
    pub fn new(name: impl Into<String>) -> Counter {
        Counter {
            name: name.into(),
            value: 0,
        }
    }

    /// Adds `n` to the counter.
    pub fn add(&mut self, n: u64) {
        self.value += n;
    }

    /// Adds one to the counter.
    pub fn inc(&mut self) {
        self.value += 1;
    }

    /// Current value.
    pub fn value(&self) -> u64 {
        self.value
    }

    /// The counter's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Resets the counter to zero (used between profiling epochs by the
    /// sampling-based dynamic protocol).
    pub fn reset(&mut self) {
        self.value = 0;
    }
}

impl fmt::Display for Counter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.name, self.value)
    }
}

/// A power-of-two bucketed latency histogram.
///
/// Bucket `i` counts samples in `[2^i, 2^(i+1))`; bucket 0 also holds 0.
///
/// # Example
///
/// ```
/// use dve_sim::stats::Histogram;
///
/// let mut h = Histogram::new();
/// h.record(1);
/// h.record(100);
/// h.record(100);
/// assert_eq!(h.count(), 3);
/// assert_eq!(h.mean(), 67.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    buckets: [u64; 64],
    count: u64,
    sum: u128,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [0; 64],
            count: 0,
            sum: 0,
            max: 0,
        }
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Histogram {
        Histogram::default()
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        let idx = if value == 0 {
            0
        } else {
            63 - value.leading_zeros() as usize
        };
        self.buckets[idx] += 1;
        self.count += 1;
        self.sum += value as u128;
        self.max = self.max.max(value);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of recorded samples (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Largest recorded sample.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Approximate percentile from the bucketed distribution: returns the
    /// upper bound of the bucket containing the requested quantile.
    ///
    /// # Panics
    ///
    /// Panics if `q` is not within `0.0..=1.0`.
    pub fn percentile(&self, q: f64) -> u64 {
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0,1]");
        if self.count == 0 {
            return 0;
        }
        let target = (q * self.count as f64).ceil() as u64;
        let mut seen = 0;
        for (i, &b) in self.buckets.iter().enumerate() {
            seen += b;
            if seen >= target.max(1) {
                return 1u64 << (i + 1).min(63);
            }
        }
        self.max
    }

    /// Bucket counts, for rendering.
    pub fn buckets(&self) -> &[u64; 64] {
        &self.buckets
    }
}

/// Number of linear sub-buckets per octave in a [`LogHistogram`]
/// (as a power of two: 2^3 = 8 sub-buckets).
const LOG_HIST_SUB_BITS: u32 = 3;
const LOG_HIST_SUB: usize = 1 << LOG_HIST_SUB_BITS;
/// Values below `LOG_HIST_SUB` get one exact bucket each; above that,
/// each octave `[2^o, 2^(o+1))` is split into `LOG_HIST_SUB` linear
/// sub-buckets. 64-bit values need octaves 3..=63.
const LOG_HIST_BUCKETS: usize = LOG_HIST_SUB + (64 - LOG_HIST_SUB_BITS as usize) * LOG_HIST_SUB;

/// A log-linear latency histogram: mergeable, allocation-light, and
/// tight enough for tail reporting.
///
/// The coarse power-of-two [`Histogram`] bounds percentiles only to
/// within a factor of two — fine for sanity checks, useless for a p999
/// SLO line. `LogHistogram` subdivides every octave into 8 linear
/// sub-buckets, so percentile upper bounds carry at most 12.5% relative
/// error while the whole structure stays a flat array of counters that
/// merges across epochs and worker threads by addition. This is the
/// serving-path histogram: the service telemetry records every
/// completion's per-component latency into one of these.
///
/// # Example
///
/// ```
/// use dve_sim::stats::LogHistogram;
///
/// let mut h = LogHistogram::new();
/// for v in 0..1000u64 {
///     h.record(v);
/// }
/// let p50 = h.percentile(0.5);
/// assert!((499..=562).contains(&p50), "p50 bound = {p50}");
/// assert_eq!(h.count(), 1000);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogHistogram {
    /// Flat bucket counters (heap-allocated: the per-component
    /// histograms ride inside `RunResult`, which must stay cheap to
    /// move around).
    buckets: Vec<u64>,
    count: u64,
    sum: u128,
    max: u64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        LogHistogram {
            buckets: vec![0; LOG_HIST_BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
        }
    }
}

impl LogHistogram {
    /// Creates an empty histogram.
    pub fn new() -> LogHistogram {
        LogHistogram::default()
    }

    fn bucket_index(value: u64) -> usize {
        if value < LOG_HIST_SUB as u64 {
            value as usize
        } else {
            let octave = 63 - value.leading_zeros();
            let sub = (value >> (octave - LOG_HIST_SUB_BITS)) as usize & (LOG_HIST_SUB - 1);
            LOG_HIST_SUB + (octave - LOG_HIST_SUB_BITS) as usize * LOG_HIST_SUB + sub
        }
    }

    /// `(octave, sub, sub-bucket width)` of log bucket `i`
    /// (`i >= LOG_HIST_SUB`).
    fn bucket_geometry(i: usize) -> (u32, u64, u64) {
        let octave = LOG_HIST_SUB_BITS + ((i - LOG_HIST_SUB) / LOG_HIST_SUB) as u32;
        let sub = ((i - LOG_HIST_SUB) % LOG_HIST_SUB) as u64;
        let width = 1u64 << (octave - LOG_HIST_SUB_BITS);
        (octave, sub, width)
    }

    /// Inclusive lower bound of bucket `i`: the smallest value that
    /// [`LogHistogram::record`] files under it. Never overflows — the
    /// top bucket starts at `2^63 + 7·2^60`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is not a valid bucket index.
    pub fn bucket_lower(i: usize) -> u64 {
        assert!(i < LOG_HIST_BUCKETS, "bucket index {i} out of range");
        if i < LOG_HIST_SUB {
            i as u64
        } else {
            let (octave, sub, width) = Self::bucket_geometry(i);
            (1u64 << octave) + sub * width
        }
    }

    /// Inclusive upper bound of bucket `i` (the value `percentile`
    /// reports for a quantile landing in that bucket).
    ///
    /// # Panics
    ///
    /// Panics if `i` is not a valid bucket index.
    pub fn bucket_upper(i: usize) -> u64 {
        assert!(i < LOG_HIST_BUCKETS, "bucket index {i} out of range");
        if i < LOG_HIST_SUB {
            i as u64
        } else {
            let (octave, sub, width) = Self::bucket_geometry(i);
            let base = 1u64 << octave;
            // The exclusive bound is base + (sub+1)*width. Only the top
            // bucket's exclusive bound (2^63 + 8·2^60 = 2^64) is allowed
            // to wrap — to 0, so the subtract lands its inclusive bound
            // exactly on u64::MAX. Any other wrap would be a geometry
            // bug silently mapping a mid-range bucket to a tiny bound.
            let exclusive = base.wrapping_add((sub + 1) * width);
            debug_assert!(
                exclusive > base || (octave == 63 && sub + 1 == LOG_HIST_SUB as u64),
                "bucket {i} bound math wrapped outside the top bucket"
            );
            exclusive.wrapping_sub(1)
        }
    }

    /// Number of buckets ([`LogHistogram::bucket_lower`] /
    /// [`LogHistogram::bucket_upper`] accept `0..bucket_count()`).
    pub fn bucket_count() -> usize {
        LOG_HIST_BUCKETS
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        self.buckets[Self::bucket_index(value)] += 1;
        self.count += 1;
        self.sum += value as u128;
        self.max = self.max.max(value);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact sum of all recorded samples (the conservation hook: per
    /// component, this must equal the engine's cumulative latency).
    pub fn sum(&self) -> u128 {
        self.sum
    }

    /// Mean of recorded samples (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Largest recorded sample (exact, not a bucket bound).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Percentile upper bound from the bucketed distribution: the
    /// inclusive upper edge of the sub-bucket containing the requested
    /// quantile (≤12.5% above the true value). Returns 0 when empty.
    ///
    /// # Panics
    ///
    /// Panics if `q` is not within `0.0..=1.0`.
    pub fn percentile(&self, q: f64) -> u64 {
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0,1]");
        if self.count == 0 {
            return 0;
        }
        let target = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0;
        for (i, &b) in self.buckets.iter().enumerate() {
            seen += b;
            if seen >= target {
                // Never report past the actually observed maximum.
                return Self::bucket_upper(i).min(self.max);
            }
        }
        self.max
    }

    /// The standard serving-tail triple: (p50, p99, p999).
    pub fn tail(&self) -> (u64, u64, u64) {
        (
            self.percentile(0.50),
            self.percentile(0.99),
            self.percentile(0.999),
        )
    }

    /// Adds every sample of `other` into `self` (epoch / worker
    /// aggregation).
    pub fn merge(&mut self, other: &LogHistogram) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }
}

/// Running summary (count / mean / min / max / variance) without storing
/// samples; Welford's online algorithm.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Summary {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Summary {
    /// Creates an empty summary.
    pub fn new() -> Summary {
        Summary {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds a sample.
    pub fn record(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sample mean (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (0.0 when fewer than two samples).
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Smallest sample (`None` when empty).
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest sample (`None` when empty).
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }
}

/// Geometric mean of a slice of strictly positive values.
///
/// This is the aggregate the paper uses for speedups ("we report the
/// geometric mean of speedup ... for the top-10, top-15 and all 20
/// benchmarks").
///
/// # Panics
///
/// Panics if any value is not strictly positive, or the slice is empty.
///
/// # Example
///
/// ```
/// use dve_sim::stats::geomean;
///
/// let g = geomean(&[1.0, 4.0]);
/// assert!((g - 2.0).abs() < 1e-12);
/// ```
pub fn geomean(values: &[f64]) -> f64 {
    assert!(!values.is_empty(), "geomean of empty slice");
    let mut log_sum = 0.0;
    for &v in values {
        assert!(
            v > 0.0 && v.is_finite(),
            "geomean requires positive finite values, got {v}"
        );
        log_sum += v.ln();
    }
    (log_sum / values.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_basics() {
        let mut c = Counter::new("x");
        c.inc();
        c.add(9);
        assert_eq!(c.value(), 10);
        c.reset();
        assert_eq!(c.value(), 0);
        assert_eq!(format!("{c}"), "x: 0");
    }

    #[test]
    fn histogram_mean_and_max() {
        let mut h = Histogram::new();
        for v in [0, 1, 2, 4, 8] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.mean(), 3.0);
        assert_eq!(h.max(), 8);
    }

    #[test]
    fn histogram_percentile_bounds() {
        let mut h = Histogram::new();
        for _ in 0..99 {
            h.record(10);
        }
        h.record(1000);
        // p50 should land in the bucket containing 10 -> upper bound 16
        assert_eq!(h.percentile(0.5), 16);
        // p100 should reach the big sample's bucket
        assert!(h.percentile(1.0) >= 1000);
    }

    #[test]
    fn log_histogram_small_values_are_exact() {
        let mut h = LogHistogram::new();
        for v in 0..8u64 {
            h.record(v);
        }
        // Each small value has its own bucket, so every percentile
        // bound is the exact value.
        assert_eq!(h.percentile(1.0 / 8.0), 0);
        assert_eq!(h.percentile(1.0), 7);
        assert_eq!(h.count(), 8);
        assert_eq!(h.sum(), (0..8).sum::<u64>() as u128);
    }

    #[test]
    fn log_histogram_percentile_bound_is_tight() {
        let mut h = LogHistogram::new();
        for _ in 0..999 {
            h.record(1000);
        }
        h.record(1_000_000);
        let p50 = h.percentile(0.5);
        assert!(
            (1000..=1125).contains(&p50),
            "p50 bound {p50} within 12.5% of 1000"
        );
        let p999 = h.percentile(0.999);
        assert!((1000..=1125).contains(&p999), "p999 bound {p999}");
        assert_eq!(h.percentile(1.0), 1_000_000, "max clamps the top bucket");
        let (t50, t99, t999) = h.tail();
        assert_eq!((t50, t99, t999), (p50, h.percentile(0.99), p999));
    }

    #[test]
    fn log_histogram_merge_matches_combined_recording() {
        let mut a = LogHistogram::new();
        let mut b = LogHistogram::new();
        let mut both = LogHistogram::new();
        for v in [0u64, 3, 17, 900, 65_536, u64::MAX] {
            a.record(v);
            both.record(v);
        }
        for v in [5u64, 12_345, 1 << 40] {
            b.record(v);
            both.record(v);
        }
        a.merge(&b);
        assert_eq!(a, both);
        assert_eq!(a.count(), 9);
    }

    #[test]
    fn log_histogram_empty_and_extremes() {
        let mut h = LogHistogram::new();
        assert_eq!(h.percentile(0.99), 0);
        assert_eq!(h.mean(), 0.0);
        h.record(u64::MAX);
        assert_eq!(h.percentile(0.5), u64::MAX);
        assert_eq!(h.max(), u64::MAX);
    }

    #[test]
    fn log_histogram_bucket_roundtrip() {
        // Exhaustive audit of the bound math, both ends of every
        // bucket: each bucket's inclusive lower and upper bound must
        // map back into that bucket, the buckets must tile the u64
        // range contiguously (no gap, no overlap, no off-by-one at any
        // octave boundary), and the top bucket's inclusive upper bound
        // must be exactly u64::MAX.
        assert_eq!(LogHistogram::bucket_count(), LOG_HIST_BUCKETS);
        for i in 0..LOG_HIST_BUCKETS {
            let lo = LogHistogram::bucket_lower(i);
            let hi = LogHistogram::bucket_upper(i);
            assert!(lo <= hi, "bucket {i}: inverted bounds [{lo}, {hi}]");
            assert_eq!(LogHistogram::bucket_index(lo), i, "bucket {i} lower {lo}");
            assert_eq!(LogHistogram::bucket_index(hi), i, "bucket {i} upper {hi}");
            if i > 0 {
                let prev_hi = LogHistogram::bucket_upper(i - 1);
                assert_eq!(
                    lo,
                    prev_hi + 1,
                    "buckets {} and {i} must tile contiguously",
                    i - 1
                );
            }
            // The first value past the bucket belongs to the next one.
            if i + 1 < LOG_HIST_BUCKETS {
                assert_eq!(LogHistogram::bucket_index(hi + 1), i + 1, "bucket {i}");
            }
        }
        assert_eq!(LogHistogram::bucket_lower(0), 0, "range starts at 0");
        assert_eq!(
            LogHistogram::bucket_upper(LOG_HIST_BUCKETS - 1),
            u64::MAX,
            "top bucket's inclusive bound is u64::MAX"
        );
    }

    #[test]
    fn log_histogram_bounds_bracket_recorded_values() {
        // Spot-check mid-range octaves with values straddling every
        // sub-bucket edge: the recorded value must fall inside its
        // bucket's [lower, upper] interval.
        let mut values = vec![0u64, 1, 7, 8, 9, 15, 16, 255, 256, 4095, 4096];
        for shift in [10u32, 20, 33, 47, 62, 63] {
            let base = 1u64 << shift;
            for delta in [0u64, 1, base / 8, base / 8 + 1, base / 2, base - 1] {
                values.push(base + delta);
            }
        }
        values.push(u64::MAX);
        for v in values {
            let i = LogHistogram::bucket_index(v);
            let lo = LogHistogram::bucket_lower(i);
            let hi = LogHistogram::bucket_upper(i);
            assert!(
                (lo..=hi).contains(&v),
                "value {v} filed in bucket {i} with bounds [{lo}, {hi}]"
            );
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn log_histogram_bucket_bounds_reject_bad_index() {
        LogHistogram::bucket_upper(LOG_HIST_BUCKETS);
    }

    #[test]
    fn summary_welford() {
        let mut s = Summary::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.record(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.variance() - 4.0).abs() < 1e-12);
        assert_eq!(s.min(), Some(2.0));
        assert_eq!(s.max(), Some(9.0));
    }

    #[test]
    fn summary_empty() {
        let s = Summary::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
    }

    #[test]
    fn geomean_matches_by_hand() {
        assert!((geomean(&[2.0, 8.0]) - 4.0).abs() < 1e-12);
        assert!((geomean(&[1.0, 1.0, 1.0]) - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn geomean_rejects_zero() {
        geomean(&[1.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn geomean_rejects_empty() {
        geomean(&[]);
    }
}
