//! Strongly-typed simulated time.
//!
//! The Dvé system mixes clock domains: cores run at a configured frequency
//! (3 GHz in the paper's Table II), DRAM timing is specified in
//! nanoseconds, and the inter-socket link latency is quoted in nanoseconds
//! as well. [`Cycles`] and [`Nanos`] keep the two units from being mixed
//! up, and [`Frequency`] converts between them.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A duration or timestamp measured in core clock cycles.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Cycles(pub u64);

/// A duration measured in nanoseconds (used for DRAM timing parameters and
/// interconnect latencies, matching how the paper quotes them).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Nanos(pub u64);

impl Cycles {
    /// Zero-length duration.
    pub const ZERO: Cycles = Cycles(0);

    /// The raw cycle count.
    pub fn raw(self) -> u64 {
        self.0
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, rhs: Cycles) -> Cycles {
        Cycles(self.0.saturating_sub(rhs.0))
    }

    /// The later of two timestamps.
    pub fn max(self, rhs: Cycles) -> Cycles {
        Cycles(self.0.max(rhs.0))
    }
}

impl Nanos {
    /// The raw nanosecond count.
    pub fn raw(self) -> u64 {
        self.0
    }
}

impl Add for Cycles {
    type Output = Cycles;
    fn add(self, rhs: Cycles) -> Cycles {
        Cycles(self.0 + rhs.0)
    }
}

impl AddAssign for Cycles {
    fn add_assign(&mut self, rhs: Cycles) {
        self.0 += rhs.0;
    }
}

impl Sub for Cycles {
    type Output = Cycles;
    fn sub(self, rhs: Cycles) -> Cycles {
        Cycles(self.0 - rhs.0)
    }
}

impl Add for Nanos {
    type Output = Nanos;
    fn add(self, rhs: Nanos) -> Nanos {
        Nanos(self.0 + rhs.0)
    }
}

impl fmt::Display for Cycles {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} cyc", self.0)
    }
}

impl fmt::Display for Nanos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ns", self.0)
    }
}

impl From<u64> for Cycles {
    fn from(v: u64) -> Self {
        Cycles(v)
    }
}

impl From<u64> for Nanos {
    fn from(v: u64) -> Self {
        Nanos(v)
    }
}

/// A clock frequency, used to convert wall-clock DRAM/link latencies into
/// core cycles.
///
/// # Example
///
/// ```
/// use dve_sim::time::{Frequency, Nanos};
///
/// let f = Frequency::ghz(3.0); // the paper's 3.0 GHz cores
/// assert_eq!(f.cycles_for(Nanos(50)).raw(), 150); // 50 ns QPI hop = 150 cycles
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Frequency {
    hz: f64,
}

impl Frequency {
    /// Creates a frequency from a GHz value.
    ///
    /// # Panics
    ///
    /// Panics if `ghz` is not strictly positive and finite.
    pub fn ghz(ghz: f64) -> Frequency {
        assert!(ghz.is_finite() && ghz > 0.0, "frequency must be positive");
        Frequency { hz: ghz * 1e9 }
    }

    /// Creates a frequency from a MHz value.
    ///
    /// # Panics
    ///
    /// Panics if `mhz` is not strictly positive and finite.
    pub fn mhz(mhz: f64) -> Frequency {
        assert!(mhz.is_finite() && mhz > 0.0, "frequency must be positive");
        Frequency { hz: mhz * 1e6 }
    }

    /// The frequency in Hz.
    pub fn hz(self) -> f64 {
        self.hz
    }

    /// Converts a nanosecond duration to cycles in this clock domain,
    /// rounding up (a latency never gets shorter by quantization).
    pub fn cycles_for(self, ns: Nanos) -> Cycles {
        let cycles = (ns.0 as f64) * self.hz / 1e9;
        Cycles(cycles.ceil() as u64)
    }

    /// Converts fractional nanoseconds (e.g. DDR4 tCL = 14.16 ns) to
    /// cycles, rounding up.
    pub fn cycles_for_ns_f64(self, ns: f64) -> Cycles {
        assert!(ns >= 0.0 && ns.is_finite(), "latency must be non-negative");
        Cycles((ns * self.hz / 1e9).ceil() as u64)
    }

    /// Converts a cycle count in this domain to (fractional) nanoseconds.
    pub fn nanos_for(self, cycles: Cycles) -> f64 {
        cycles.0 as f64 * 1e9 / self.hz
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ns_to_cycles_at_3ghz() {
        let f = Frequency::ghz(3.0);
        assert_eq!(f.cycles_for(Nanos(50)), Cycles(150));
        assert_eq!(f.cycles_for(Nanos(0)), Cycles(0));
        assert_eq!(f.cycles_for(Nanos(1)), Cycles(3));
    }

    #[test]
    fn fractional_ns_rounds_up() {
        let f = Frequency::ghz(3.0);
        // tCL = 14.16 ns -> 42.48 cycles -> 43
        assert_eq!(f.cycles_for_ns_f64(14.16), Cycles(43));
    }

    #[test]
    fn roundtrip_nanos() {
        let f = Frequency::ghz(2.0);
        let ns = f.nanos_for(Cycles(100));
        assert!((ns - 50.0).abs() < 1e-9);
    }

    #[test]
    fn mhz_constructor() {
        let f = Frequency::mhz(2400.0);
        assert!((f.hz() - 2.4e9).abs() < 1.0);
    }

    #[test]
    fn cycle_arithmetic() {
        let a = Cycles(10);
        let b = Cycles(4);
        assert_eq!(a + b, Cycles(14));
        assert_eq!(a - b, Cycles(6));
        assert_eq!(b.saturating_sub(a), Cycles(0));
        assert_eq!(a.max(b), Cycles(10));
        let mut c = a;
        c += b;
        assert_eq!(c, Cycles(14));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_frequency_rejected() {
        Frequency::ghz(0.0);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Cycles(5).to_string(), "5 cyc");
        assert_eq!(Nanos(7).to_string(), "7 ns");
    }
}
