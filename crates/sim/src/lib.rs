//! # dve-sim — discrete-event simulation engine
//!
//! The foundation shared by every other crate in the Dvé reproduction:
//!
//! * [`event::EventQueue`] — a deterministic time-ordered event queue.
//!   Events scheduled at the same timestamp are delivered in insertion
//!   order, which makes every simulation in this workspace bit-for-bit
//!   reproducible.
//! * [`time`] — strongly-typed simulated time ([`time::Cycles`],
//!   [`time::Nanos`]) and clock-domain conversion ([`time::Frequency`]).
//! * [`stats`] — counters, histograms and summary statistics used by the
//!   evaluation harnesses (including the geometric-mean aggregation the
//!   paper reports).
//! * [`rng`] — a tiny, dependency-free, seedable [`rng::SplitMix64`]
//!   generator for components that need cheap deterministic randomness
//!   without pulling `rand` into the simulation core.
//! * [`resource`] — the [`resource::Resource`] occupancy port, the one
//!   contention model (serialization + queueing) every timed substrate
//!   shares: DRAM banks, the inter-socket link, per-core MSHR files.
//! * [`latency`] — structured latency attribution: the
//!   [`latency::LatencyBreakdown`] component totals and the
//!   [`latency::Stamp`] clock that conserves them by construction.
//! * [`pdes`] — the conservative-lookahead parallel executive:
//!   [`pdes::Domain`] shards own private event queues and exchange
//!   cross-domain messages only at lookahead-window barriers, with
//!   threaded execution bit-identical to the sequential reference.
//!
//! # Example
//!
//! ```
//! use dve_sim::event::EventQueue;
//!
//! let mut q = EventQueue::new();
//! q.push(10, "b");
//! q.push(5, "a");
//! q.push(10, "c");
//! assert_eq!(q.pop(), Some((5, "a")));
//! assert_eq!(q.pop(), Some((10, "b"))); // same-time events keep FIFO order
//! assert_eq!(q.pop(), Some((10, "c")));
//! assert_eq!(q.pop(), None);
//! ```

pub mod event;
pub mod latency;
pub mod pdes;
pub mod resource;
pub mod rng;
pub mod stats;
pub mod time;

pub use event::EventQueue;
pub use latency::{Component, LatencyBreakdown, Stamp};
pub use pdes::{Ctx, Domain, ExecStats, Executive};
pub use resource::{Grant, Resource, ResourceStats};
pub use rng::SplitMix64;
pub use stats::{geomean, Counter, Histogram, Summary};
pub use time::{Cycles, Frequency, Nanos};
