//! Property-based tests for the simulation engine primitives.

use dve_sim::event::EventQueue;
use dve_sim::rng::SplitMix64;
use dve_sim::stats::{geomean, Histogram, Summary};
use dve_sim::time::{Cycles, Frequency, Nanos};
use proptest::prelude::*;

proptest! {
    // The event queue is a stable priority queue: pops come out in
    // non-decreasing time order, FIFO within a timestamp.
    #[test]
    fn event_queue_is_stable_priority_order(times in proptest::collection::vec(0u64..1000, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.push(t, i);
        }
        let mut popped = Vec::new();
        while let Some((t, id)) = q.pop() {
            popped.push((t, id));
        }
        prop_assert_eq!(popped.len(), times.len());
        for w in popped.windows(2) {
            prop_assert!(w[0].0 <= w[1].0, "time order violated");
            if w[0].0 == w[1].0 {
                prop_assert!(w[0].1 < w[1].1, "FIFO within a timestamp violated");
            }
        }
    }

    // Histogram mean equals the exact mean; count and max are exact.
    #[test]
    fn histogram_summary_statistics_exact(samples in proptest::collection::vec(0u64..1_000_000, 1..300)) {
        let mut h = Histogram::new();
        for &s in &samples {
            h.record(s);
        }
        let exact_mean = samples.iter().sum::<u64>() as f64 / samples.len() as f64;
        prop_assert_eq!(h.count(), samples.len() as u64);
        prop_assert_eq!(h.max(), *samples.iter().max().unwrap());
        prop_assert!((h.mean() - exact_mean).abs() < 1e-6);
        // Percentile upper bounds dominate the true percentiles.
        let mut sorted = samples.clone();
        sorted.sort_unstable();
        let true_p50 = sorted[(sorted.len() - 1) / 2];
        prop_assert!(h.percentile(0.5) as f64 >= true_p50 as f64 * 0.99);
    }

    // Welford matches the two-pass variance.
    #[test]
    fn summary_matches_two_pass(samples in proptest::collection::vec(-1e6f64..1e6, 2..200)) {
        let mut s = Summary::new();
        for &x in &samples {
            s.record(x);
        }
        let n = samples.len() as f64;
        let mean = samples.iter().sum::<f64>() / n;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n;
        prop_assert!((s.mean() - mean).abs() < 1e-6 * mean.abs().max(1.0));
        prop_assert!((s.variance() - var).abs() < 1e-5 * var.abs().max(1.0));
    }

    // geomean(k·xs) == k · geomean(xs) and lies within [min, max].
    #[test]
    fn geomean_homogeneous_and_bounded(
        xs in proptest::collection::vec(0.001f64..1000.0, 1..50),
        k in 0.01f64..100.0,
    ) {
        let g = geomean(&xs);
        let scaled: Vec<f64> = xs.iter().map(|x| x * k).collect();
        let gs = geomean(&scaled);
        prop_assert!((gs / g - k).abs() < 1e-9 * k);
        let min = xs.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(g >= min * 0.999_999 && g <= max * 1.000_001);
    }

    // Frequency conversion: cycles_for never rounds down below the exact
    // value, and nanos_for inverts within one cycle.
    #[test]
    fn frequency_conversions_consistent(ghz in 0.1f64..10.0, ns in 0u64..1_000_000) {
        let f = Frequency::ghz(ghz);
        let cycles = f.cycles_for(Nanos(ns));
        let exact = ns as f64 * ghz;
        prop_assert!(cycles.raw() as f64 >= exact - 1e-6);
        prop_assert!(cycles.raw() as f64 <= exact + 1.0);
        let back = f.nanos_for(Cycles(cycles.raw()));
        prop_assert!(back >= ns as f64 - 1e-6);
    }

    // SplitMix64 bounded draws are in range and roughly uniform.
    #[test]
    fn rng_bounded_uniformity(seed in any::<u64>(), bound in 1u64..64) {
        let mut r = SplitMix64::new(seed);
        let mut counts = vec![0u64; bound as usize];
        let draws = 2000;
        for _ in 0..draws {
            let v = r.next_below(bound);
            prop_assert!(v < bound);
            counts[v as usize] += 1;
        }
        // No bucket wildly over-represented (6x expectation).
        let expected = draws as f64 / bound as f64;
        for c in counts {
            prop_assert!((c as f64) < expected * 6.0 + 10.0);
        }
    }
}
