//! Multi-tenant workload mixes: per-tenant priorities, address
//! partitions and SLO budgets.
//!
//! The service front end multiplexes many client sessions onto one
//! timed system. A [`TenantMix`] slices that client population into
//! tenants — every client id maps to exactly one tenant
//! ([`TenantMix::tenant_of_client`]) — and gives each tenant:
//!
//! * a **priority** (higher wins): the epoch batcher sheds
//!   lowest-priority work first when the admission queue overflows, so
//!   overload and degraded-mode detours land on the tenants contracted
//!   to absorb them;
//! * an **address partition** ([`TenantMix::fold_line`]): tenants touch
//!   disjoint line ranges of the shared span, so one tenant's row-hammer
//!   pressure or fault exposure is its own;
//! * an **SLO budget**: the p99 end-to-end latency (in simulated
//!   cycles) the tenant's contract allows. Telemetry reports measured
//!   p99/p999 against it per tenant.
//!
//! The mix round-trips through `Display`/`FromStr`
//! (`"gold:2:60000,bronze:0:200000"`) so the service config can carry
//! it as a `tenants=` key.

use std::fmt;
use std::str::FromStr;

/// One tenant of a [`TenantMix`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TenantProfile {
    /// Stable name (metrics label; no `:` or `,`).
    pub name: String,
    /// Scheduling priority — higher values are shed *last* under
    /// overload.
    pub priority: u8,
    /// Contracted p99 end-to-end latency budget, simulated cycles.
    pub slo_p99_cycles: u64,
}

/// A validated set of tenants sharing one service.
///
/// # Example
///
/// ```
/// use dve_workloads::tenant::TenantMix;
///
/// let mix: TenantMix = "gold:2:60000,silver:1:90000,bronze:0:200000"
///     .parse()
///     .unwrap();
/// assert_eq!(mix.tenants().len(), 3);
/// assert_eq!(mix.tenant_of_client(7), 7 % 3);
/// assert_eq!(mix.to_string().parse::<TenantMix>().unwrap(), mix);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TenantMix {
    tenants: Vec<TenantProfile>,
}

impl TenantMix {
    /// Builds a mix from profiles.
    ///
    /// # Panics
    ///
    /// Panics if [`TenantMix::validate`] fails.
    pub fn new(tenants: Vec<TenantProfile>) -> TenantMix {
        let mix = TenantMix { tenants };
        mix.validate();
        mix
    }

    /// The standard three-class mix: `gold` (priority 2), `silver`
    /// (priority 1), `bronze` (priority 0), with progressively looser
    /// p99 budgets. Bronze absorbs overload first.
    pub fn standard() -> TenantMix {
        TenantMix::new(vec![
            TenantProfile {
                name: "gold".to_string(),
                priority: 2,
                slo_p99_cycles: 60_000,
            },
            TenantProfile {
                name: "silver".to_string(),
                priority: 1,
                slo_p99_cycles: 90_000,
            },
            TenantProfile {
                name: "bronze".to_string(),
                priority: 0,
                slo_p99_cycles: 200_000,
            },
        ])
    }

    /// The tenants, in declaration order (tenant index = position).
    pub fn tenants(&self) -> &[TenantProfile] {
        &self.tenants
    }

    /// Validates the mix: at least one tenant, unique non-empty names
    /// without the separator characters, non-zero budgets.
    ///
    /// # Panics
    ///
    /// Panics on the first violation.
    pub fn validate(&self) {
        assert!(!self.tenants.is_empty(), "need at least one tenant");
        for t in &self.tenants {
            assert!(!t.name.is_empty(), "tenant name must be non-empty");
            assert!(
                !t.name.contains([':', ',', ' ']),
                "tenant name {:?} contains a separator",
                t.name
            );
            assert!(
                t.slo_p99_cycles > 0,
                "tenant {} needs a non-zero SLO budget",
                t.name
            );
        }
        for (i, a) in self.tenants.iter().enumerate() {
            for b in &self.tenants[i + 1..] {
                assert!(a.name != b.name, "duplicate tenant name {:?}", a.name);
            }
        }
    }

    /// Which tenant a client id belongs to: clients stripe round-robin
    /// over the tenants, so every tenant sees traffic from every
    /// session batch.
    pub fn tenant_of_client(&self, client: u64) -> usize {
        (client % self.tenants.len() as u64) as usize
    }

    /// Folds a raw line address into tenant `tenant`'s partition of a
    /// shared `span` of lines: partitions are the `n` equal contiguous
    /// stripes `[t * span / n, (t+1) * span / n)`, so tenants never
    /// share a line and per-tenant fault exposure is attributable.
    ///
    /// # Panics
    ///
    /// Panics if `tenant` is out of range or `span` is smaller than
    /// the tenant count.
    pub fn fold_line(&self, tenant: usize, line: u64, span: u64) -> u64 {
        let n = self.tenants.len() as u64;
        assert!(tenant < self.tenants.len(), "tenant out of range");
        assert!(span >= n, "span {span} smaller than tenant count {n}");
        let t = tenant as u64;
        let base = t * span / n;
        let width = (t + 1) * span / n - base;
        base + line % width
    }

    /// The priority of tenant index `t`.
    pub fn priority_of(&self, t: usize) -> u8 {
        self.tenants[t].priority
    }
}

impl fmt::Display for TenantMix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, t) in self.tenants.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{}:{}:{}", t.name, t.priority, t.slo_p99_cycles)?;
        }
        Ok(())
    }
}

impl FromStr for TenantMix {
    type Err = String;

    fn from_str(s: &str) -> Result<TenantMix, String> {
        let mut tenants = Vec::new();
        for part in s.split(',') {
            let fields: Vec<&str> = part.split(':').collect();
            let [name, priority, budget] = fields[..] else {
                return Err(format!(
                    "tenant {part:?}: expected name:priority:p99_budget"
                ));
            };
            if name.is_empty() {
                return Err("tenant name must be non-empty".to_string());
            }
            let priority: u8 = priority
                .parse()
                .map_err(|e| format!("tenant {name}: bad priority: {e}"))?;
            let slo_p99_cycles: u64 = budget
                .parse()
                .map_err(|e| format!("tenant {name}: bad SLO budget: {e}"))?;
            if slo_p99_cycles == 0 {
                return Err(format!("tenant {name}: SLO budget must be non-zero"));
            }
            tenants.push(TenantProfile {
                name: name.to_string(),
                priority,
                slo_p99_cycles,
            });
        }
        if tenants.is_empty() {
            return Err("need at least one tenant".to_string());
        }
        for (i, a) in tenants.iter().enumerate() {
            for b in &tenants[i + 1..] {
                if a.name == b.name {
                    return Err(format!("duplicate tenant name {:?}", a.name));
                }
            }
        }
        Ok(TenantMix { tenants })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_mix_is_valid_and_ordered() {
        let mix = TenantMix::standard();
        assert_eq!(mix.tenants().len(), 3);
        assert!(mix.priority_of(0) > mix.priority_of(2), "gold above bronze");
        assert!(
            mix.tenants()[0].slo_p99_cycles < mix.tenants()[2].slo_p99_cycles,
            "tighter budget for gold"
        );
    }

    #[test]
    fn display_from_str_round_trips() {
        let mix = TenantMix::standard();
        let again: TenantMix = mix.to_string().parse().unwrap();
        assert_eq!(mix, again);
    }

    #[test]
    fn clients_stripe_over_tenants() {
        let mix = TenantMix::standard();
        for c in 0..12u64 {
            assert_eq!(mix.tenant_of_client(c), (c % 3) as usize);
        }
    }

    #[test]
    fn partitions_are_disjoint_and_cover_nothing_shared() {
        let mix = TenantMix::standard();
        let span = 1000u64;
        for line in 0..5000u64 {
            let a = mix.fold_line(0, line, span);
            let b = mix.fold_line(1, line, span);
            let c = mix.fold_line(2, line, span);
            assert!(a < 333, "gold stripe");
            assert!((333..666).contains(&b), "silver stripe");
            assert!((666..1000).contains(&c), "bronze stripe");
        }
    }

    #[test]
    fn bad_strings_rejected() {
        assert!("".parse::<TenantMix>().is_err());
        assert!("gold".parse::<TenantMix>().is_err());
        assert!("gold:2".parse::<TenantMix>().is_err());
        assert!("gold:2:0".parse::<TenantMix>().is_err());
        assert!("gold:2:100,gold:1:200".parse::<TenantMix>().is_err());
        assert!("gold:boom:100".parse::<TenantMix>().is_err());
    }

    #[test]
    #[should_panic(expected = "duplicate tenant name")]
    fn duplicate_names_rejected_on_construction() {
        TenantMix::new(vec![
            TenantProfile {
                name: "a".to_string(),
                priority: 0,
                slo_p99_cycles: 1,
            },
            TenantProfile {
                name: "a".to_string(),
                priority: 1,
                slo_p99_cycles: 1,
            },
        ]);
    }
}
