//! The trace operation vocabulary.
//!
//! Matches the event classes of the paper's Prism traces (§VI): compute,
//! memory, and thread-API/synchronization events. The replay rules are
//! the paper's: compute costs 1 cycle per unit, thread-API events cost
//! 100 cycles, memory operations are simulated in detail.

/// Memory request type at trace level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemReq {
    /// A load.
    Read,
    /// A store.
    Write,
}

/// One trace operation for one thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// Computation consuming the given number of cycles (the paper
    /// charges 1 cycle per integer/FP operation).
    Compute(u32),
    /// A memory access to a cache-line address.
    Mem {
        /// Line address (byte address / 64).
        line: u64,
        /// Load or store.
        req: MemReq,
    },
    /// A synchronization / thread-API event (create, join, mutex,
    /// barrier, ...) — fixed 100-cycle cost in the paper's replay.
    Sync,
}

impl Op {
    /// The paper's fixed cost for thread-API events.
    pub const SYNC_CYCLES: u32 = 100;

    /// Whether this operation reaches the memory system.
    pub fn is_mem(&self) -> bool {
        matches!(self, Op::Mem { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_kinds() {
        assert!(Op::Mem {
            line: 0,
            req: MemReq::Read
        }
        .is_mem());
        assert!(!Op::Compute(5).is_mem());
        assert!(!Op::Sync.is_mem());
        assert_eq!(Op::SYNC_CYCLES, 100);
    }
}
