//! # dve-workloads — the 20 benchmark profiles and trace synthesis
//!
//! The paper evaluates on Prism/Valgrind traces of 20 multithreaded
//! benchmarks (Table III) replayed in gem5. Neither the trace files nor
//! the original applications are usable here, so this crate substitutes
//! **statistical workload clones**: for each benchmark, a
//! [`profile::WorkloadProfile`] captures the published characteristics
//! that the coherent-replication protocols actually react to —
//!
//! * the L2 MPKI *ordering* (the paper sorts workloads by MPKI and
//!   reports top-10/top-15/all-20 geomeans),
//! * the Fig. 7 sharing-class mix (private-read / read-only / read-write
//!   / private-read-write) that determines whether the allow- or
//!   deny-based protocol wins,
//! * working-set size, write fraction, spatial locality, and the
//!   compute-to-memory ratio.
//!
//! [`generate::TraceGenerator`] turns a profile into a deterministic
//! per-thread operation stream (compute delays, reads, writes, sync
//! events — the same event vocabulary as the paper's Prism traces).
//! Every stream is seeded, so whole experiments are reproducible
//! bit-for-bit.
//!
//! # Example
//!
//! ```
//! use dve_workloads::{catalog, TraceGenerator};
//!
//! let profiles = catalog();
//! assert_eq!(profiles.len(), 20);
//! let backprop = profiles.iter().find(|p| p.name == "backprop").unwrap();
//! let mut gen = TraceGenerator::new(backprop, 16, 42);
//! let op = gen.next_op(0); // first operation of thread 0
//! assert!(matches!(op, dve_workloads::Op::Compute(_) | dve_workloads::Op::Mem { .. }));
//! ```

pub mod generate;
pub mod op;
pub mod profile;
pub mod tenant;
pub mod trace_file;

pub use generate::{CoreTraceStream, TraceGenerator, TraceShape};
pub use op::Op;
pub use profile::{catalog, SharingMix, WorkloadProfile};
pub use tenant::{TenantMix, TenantProfile};
pub use trace_file::{record_profile, TraceReader};
