//! The 20 benchmark profiles of Table III as statistical workload clones.
//!
//! Each profile records the characteristics the coherence protocols
//! react to. The sharing-class mixes are set so the Fig. 7 structure
//! holds: the ten benchmarks the paper names as deny-protocol winners
//! (backprop, graph500, fft, stencil, xsbench, ocean_cp, nw, rsbench,
//! bfs, streamcluster) are read-dominated, while the other ten exhibit
//! the >46% private-read/write behaviour the paper associates with
//! allow-protocol wins. The MPKI values order the workloads the way the
//! paper's top-10/top-15 grouping requires (absolute MPKI was not
//! published per benchmark; only the ordering and grouping matter for
//! the reported aggregates).

/// The issue-level sharing mix of a workload — probabilities that a
/// generated memory operation targets each kind of region.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SharingMix {
    /// Thread-private, read-only data (streamed inputs).
    pub private_read: f64,
    /// Globally shared read-only data (lookup tables).
    pub read_only: f64,
    /// Actively read-write shared data (reductions, frontiers).
    pub read_write: f64,
    /// Thread-private read-write data (per-thread scratch/output).
    pub private_read_write: f64,
}

impl SharingMix {
    /// Validates that the mix is a probability distribution.
    ///
    /// # Panics
    ///
    /// Panics if any component is negative or the sum differs from 1.
    pub fn validate(&self) {
        let parts = [
            self.private_read,
            self.read_only,
            self.read_write,
            self.private_read_write,
        ];
        for p in parts {
            assert!((0.0..=1.0).contains(&p), "mix component out of range: {p}");
        }
        let sum: f64 = parts.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9, "mix must sum to 1, got {sum}");
    }
}

/// A statistical clone of one Table III benchmark.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadProfile {
    /// Benchmark name as in Table III.
    pub name: &'static str,
    /// Suite it came from.
    pub suite: &'static str,
    /// Approximate L2 misses per kilo-instruction (ordering only).
    pub l2_mpki: f64,
    /// Sharing-class mix (drives Fig. 7 and protocol choice).
    pub mix: SharingMix,
    /// Working set in cache lines (across all threads).
    pub working_set_lines: u64,
    /// Probability a read-write-region access is a store.
    pub write_frac: f64,
    /// Probability the next access in a region continues sequentially
    /// (row-buffer locality).
    pub spatial: f64,
    /// Mean compute cycles inserted between memory operations.
    pub compute_per_mem: u32,
    /// Probability of a synchronization event per operation slot.
    pub sync_frac: f64,
}

impl WorkloadProfile {
    /// Validates all profile parameters.
    ///
    /// # Panics
    ///
    /// Panics on any out-of-range parameter.
    pub fn validate(&self) {
        self.mix.validate();
        assert!(self.l2_mpki > 0.0, "MPKI must be positive");
        assert!(
            self.working_set_lines > 1024,
            "working set implausibly small"
        );
        assert!((0.0..=1.0).contains(&self.write_frac));
        assert!((0.0..=1.0).contains(&self.spatial));
        assert!(
            (0.0..=0.2).contains(&self.sync_frac),
            "sync fraction out of range"
        );
    }

    /// Whether the paper reports this benchmark performing better under
    /// the deny-based protocol (§VII lists exactly ten).
    pub fn paper_deny_winner(&self) -> bool {
        DENY_WINNERS.contains(&self.name)
    }
}

/// The ten benchmarks the paper names as deny-protocol winners.
pub const DENY_WINNERS: [&str; 10] = [
    "backprop",
    "graph500",
    "fft",
    "stencil",
    "xsbench",
    "ocean_cp",
    "nw",
    "rsbench",
    "bfs",
    "streamcluster",
];

const MB: u64 = (1 << 20) / 64; // lines per MiB

// Compact literal-table constructor; the argument list mirrors the
// profile-table columns one-to-one, so splitting it would hurt clarity.
#[allow(clippy::too_many_arguments)]
fn p(
    name: &'static str,
    suite: &'static str,
    mpki: f64,
    mix: (f64, f64, f64, f64),
    ws_mb: u64,
    write_frac: f64,
    spatial: f64,
    compute: u32,
    sync_frac: f64,
) -> WorkloadProfile {
    WorkloadProfile {
        name,
        suite,
        l2_mpki: mpki,
        mix: SharingMix {
            private_read: mix.0,
            read_only: mix.1,
            read_write: mix.2,
            private_read_write: mix.3,
        },
        working_set_lines: ws_mb * MB,
        write_frac,
        spatial,
        compute_per_mem: compute,
        sync_frac,
    }
}

/// All 20 benchmark profiles, ordered by descending L2 MPKI (the paper's
/// reporting order: the first ten form the "top-10" group).
pub fn catalog() -> Vec<WorkloadProfile> {
    let v = vec![
        // ---- top-10 (high MPKI): the paper's deny winners ------------
        p(
            "backprop",
            "Rodinia",
            45.0,
            (0.72, 0.22, 0.02, 0.04),
            96,
            0.3,
            0.85,
            60,
            0.002,
        ),
        p(
            "graph500",
            "HPC",
            40.0,
            (0.50, 0.42, 0.04, 0.04),
            128,
            0.2,
            0.30,
            75,
            0.004,
        ),
        p(
            "fft",
            "SPLASH-2x",
            35.0,
            (0.44, 0.36, 0.08, 0.12),
            96,
            0.4,
            0.75,
            90,
            0.004,
        ),
        p(
            "stencil",
            "Parboil",
            30.0,
            (0.50, 0.30, 0.05, 0.15),
            96,
            0.4,
            0.90,
            75,
            0.003,
        ),
        p(
            "xsbench",
            "HPC",
            28.0,
            (0.30, 0.56, 0.04, 0.10),
            160,
            0.2,
            0.20,
            105,
            0.002,
        ),
        p(
            "ocean_cp",
            "SPLASH-2x",
            25.0,
            (0.40, 0.30, 0.12, 0.18),
            112,
            0.4,
            0.80,
            105,
            0.006,
        ),
        p(
            "nw",
            "Rodinia",
            22.0,
            (0.42, 0.33, 0.10, 0.15),
            64,
            0.4,
            0.70,
            120,
            0.004,
        ),
        p(
            "rsbench",
            "HPC",
            20.0,
            (0.28, 0.57, 0.05, 0.10),
            128,
            0.2,
            0.20,
            120,
            0.002,
        ),
        p(
            "bfs",
            "Rodinia",
            18.0,
            (0.46, 0.34, 0.10, 0.10),
            96,
            0.3,
            0.25,
            135,
            0.005,
        ),
        p(
            "streamcluster",
            "PARSEC",
            15.0,
            (0.34, 0.41, 0.10, 0.15),
            80,
            0.3,
            0.60,
            150,
            0.008,
        ),
        // ---- bottom-10: the allow winners (>46% private read/write) --
        p(
            "comd",
            "HPC",
            12.0,
            (0.10, 0.15, 0.08, 0.67),
            96,
            0.74,
            0.70,
            180,
            0.004,
        ),
        p(
            "lbm",
            "SPEC 2017",
            11.0,
            (0.10, 0.09, 0.04, 0.77),
            128,
            0.75,
            0.90,
            180,
            0.001,
        ),
        p(
            "mg",
            "NAS PB",
            10.0,
            (0.10, 0.15, 0.06, 0.69),
            112,
            0.74,
            0.85,
            210,
            0.004,
        ),
        p(
            "canneal",
            "PARSEC",
            9.0,
            (0.09, 0.13, 0.10, 0.68),
            144,
            0.74,
            0.15,
            210,
            0.006,
        ),
        p(
            "sp",
            "NAS PB",
            8.0,
            (0.10, 0.15, 0.06, 0.69),
            96,
            0.74,
            0.85,
            240,
            0.004,
        ),
        p(
            "bt",
            "NAS PB",
            7.0,
            (0.09, 0.13, 0.05, 0.73),
            96,
            0.74,
            0.85,
            270,
            0.004,
        ),
        p(
            "lu",
            "NAS PB",
            6.0,
            (0.09, 0.13, 0.08, 0.70),
            80,
            0.74,
            0.80,
            300,
            0.006,
        ),
        p(
            "barnes",
            "SPLASH-2x",
            5.0,
            (0.09, 0.13, 0.11, 0.67),
            64,
            0.72,
            0.35,
            330,
            0.010,
        ),
        p(
            "histo",
            "Parboil",
            4.0,
            (0.09, 0.14, 0.10, 0.67),
            64,
            0.72,
            0.40,
            360,
            0.004,
        ),
        p(
            "freqmine",
            "PARSEC",
            3.0,
            (0.08, 0.12, 0.08, 0.72),
            80,
            0.74,
            0.30,
            390,
            0.006,
        ),
    ];
    for w in &v {
        w.validate();
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn twenty_profiles_all_valid() {
        let c = catalog();
        assert_eq!(c.len(), 20);
        for w in &c {
            w.validate();
        }
    }

    #[test]
    fn ordered_by_descending_mpki() {
        let c = catalog();
        for w in c.windows(2) {
            assert!(
                w[0].l2_mpki > w[1].l2_mpki,
                "{} vs {}",
                w[0].name,
                w[1].name
            );
        }
    }

    #[test]
    fn top10_are_exactly_the_deny_winners() {
        let c = catalog();
        for (i, w) in c.iter().enumerate() {
            assert_eq!(
                w.paper_deny_winner(),
                i < 10,
                "{} at position {i} has wrong group",
                w.name
            );
        }
    }

    #[test]
    fn allow_winners_have_dominant_private_write() {
        // The paper: workloads with >46% private read/write favor allow.
        for w in catalog() {
            if !w.paper_deny_winner() {
                assert!(
                    w.mix.private_read_write > 0.46,
                    "{} has only {:.2}",
                    w.name,
                    w.mix.private_read_write
                );
            } else {
                assert!(w.mix.private_read_write <= 0.20, "{}", w.name);
            }
        }
    }

    #[test]
    fn suites_match_table_iii() {
        let c = catalog();
        let suite_of = |n: &str| c.iter().find(|w| w.name == n).unwrap().suite;
        assert_eq!(suite_of("canneal"), "PARSEC");
        assert_eq!(suite_of("barnes"), "SPLASH-2x");
        assert_eq!(suite_of("backprop"), "Rodinia");
        assert_eq!(suite_of("mg"), "NAS PB");
        assert_eq!(suite_of("stencil"), "Parboil");
        assert_eq!(suite_of("lbm"), "SPEC 2017");
        assert_eq!(suite_of("xsbench"), "HPC");
    }

    #[test]
    #[should_panic(expected = "sum to 1")]
    fn invalid_mix_rejected() {
        SharingMix {
            private_read: 0.5,
            read_only: 0.5,
            read_write: 0.5,
            private_read_write: 0.0,
        }
        .validate();
    }
}
