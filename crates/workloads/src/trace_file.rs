//! Compact binary trace recording and replay.
//!
//! The paper's methodology is trace-driven: Prism captures
//! "architecture-agnostic multi-threaded traces" once, and gem5 replays
//! them under each memory-system configuration. This module gives the
//! reproduction the same workflow: [`record`] freezes a synthesized
//! trace to a compact byte format (so every scheme replays *identical*
//! input, byte-for-byte shareable between machines), and
//! [`TraceReader`] streams it back.
//!
//! ## Format
//!
//! Little-endian. Header: magic `DVET`, u32 version, u32 threads,
//! u64 ops-per-thread. Then per-thread contiguous op streams, each op:
//!
//! * `0x01 <u32 cycles>` — compute
//! * `0x02 <u64 line>` — read
//! * `0x03 <u64 line>` — write
//! * `0x04` — sync event

use crate::generate::TraceGenerator;
use crate::op::{MemReq, Op};
use crate::profile::WorkloadProfile;

/// Magic bytes identifying a trace file.
pub const MAGIC: [u8; 4] = *b"DVET";
/// Current format version.
pub const VERSION: u32 = 1;

/// Errors from trace decoding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceError {
    /// The buffer does not start with the `DVET` magic.
    BadMagic,
    /// Unsupported format version.
    BadVersion(u32),
    /// The buffer ended mid-record or declares impossible sizes.
    Truncated,
    /// Unknown opcode byte.
    BadOpcode(u8),
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceError::BadMagic => write!(f, "not a DVET trace (bad magic)"),
            TraceError::BadVersion(v) => write!(f, "unsupported trace version {v}"),
            TraceError::Truncated => write!(f, "trace truncated"),
            TraceError::BadOpcode(b) => write!(f, "unknown opcode {b:#x}"),
        }
    }
}

impl std::error::Error for TraceError {}

/// Records `ops_per_thread` operations of every thread into the binary
/// format.
pub fn record(gen: &mut TraceGenerator, threads: usize, ops_per_thread: u64) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&VERSION.to_le_bytes());
    out.extend_from_slice(&(threads as u32).to_le_bytes());
    out.extend_from_slice(&ops_per_thread.to_le_bytes());
    for t in 0..threads {
        for _ in 0..ops_per_thread {
            match gen.next_op(t) {
                Op::Compute(c) => {
                    out.push(0x01);
                    out.extend_from_slice(&c.to_le_bytes());
                }
                Op::Mem { line, req } => {
                    out.push(if req == MemReq::Read { 0x02 } else { 0x03 });
                    out.extend_from_slice(&line.to_le_bytes());
                }
                Op::Sync => out.push(0x04),
            }
        }
    }
    out
}

/// Convenience: synthesize and record a profile in one call.
pub fn record_profile(
    profile: &WorkloadProfile,
    threads: usize,
    ops_per_thread: u64,
    seed: u64,
) -> Vec<u8> {
    let mut gen = TraceGenerator::new(profile, threads, seed);
    record(&mut gen, threads, ops_per_thread)
}

/// Streams a recorded trace back, per thread.
#[derive(Debug, Clone)]
pub struct TraceReader {
    threads: usize,
    ops_per_thread: u64,
    /// Per-thread byte cursors into `data`.
    cursors: Vec<usize>,
    /// Remaining ops per thread.
    remaining: Vec<u64>,
    data: Vec<u8>,
}

impl TraceReader {
    /// Parses the header and indexes the per-thread streams.
    ///
    /// # Errors
    ///
    /// Any [`TraceError`] on malformed input.
    pub fn new(data: Vec<u8>) -> Result<TraceReader, TraceError> {
        if data.len() < 20 {
            return Err(TraceError::Truncated);
        }
        if data[0..4] != MAGIC {
            return Err(TraceError::BadMagic);
        }
        let version = u32::from_le_bytes(data[4..8].try_into().expect("4 bytes"));
        if version != VERSION {
            return Err(TraceError::BadVersion(version));
        }
        let threads = u32::from_le_bytes(data[8..12].try_into().expect("4 bytes")) as usize;
        let ops_per_thread = u64::from_le_bytes(data[12..20].try_into().expect("8 bytes"));
        // Walk once to find each thread's start offset.
        let mut cursors = Vec::with_capacity(threads);
        let mut pos = 20usize;
        for _ in 0..threads {
            cursors.push(pos);
            for _ in 0..ops_per_thread {
                let op = *data.get(pos).ok_or(TraceError::Truncated)?;
                pos += match op {
                    0x01 => 5,
                    0x02 | 0x03 => 9,
                    0x04 => 1,
                    b => return Err(TraceError::BadOpcode(b)),
                };
            }
        }
        if pos > data.len() {
            return Err(TraceError::Truncated);
        }
        Ok(TraceReader {
            threads,
            ops_per_thread,
            cursors,
            remaining: vec![ops_per_thread; threads],
            data,
        })
    }

    /// Thread count recorded in the header.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Operations per thread recorded in the header.
    pub fn ops_per_thread(&self) -> u64 {
        self.ops_per_thread
    }

    /// The next operation for `thread`, or `None` when its stream ends.
    ///
    /// # Panics
    ///
    /// Panics if `thread` is out of range.
    pub fn next_op(&mut self, thread: usize) -> Option<Op> {
        assert!(thread < self.threads, "thread out of range");
        if self.remaining[thread] == 0 {
            return None;
        }
        let pos = self.cursors[thread];
        let opcode = self.data[pos];
        let (op, len) = match opcode {
            0x01 => {
                let c = u32::from_le_bytes(self.data[pos + 1..pos + 5].try_into().expect("4"));
                (Op::Compute(c), 5)
            }
            0x02 | 0x03 => {
                let line = u64::from_le_bytes(self.data[pos + 1..pos + 9].try_into().expect("8"));
                let req = if opcode == 0x02 {
                    MemReq::Read
                } else {
                    MemReq::Write
                };
                (Op::Mem { line, req }, 9)
            }
            0x04 => (Op::Sync, 1),
            b => unreachable!("opcode {b:#x} validated at construction"),
        };
        self.cursors[thread] = pos + len;
        self.remaining[thread] -= 1;
        Some(op)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::catalog;

    #[test]
    fn roundtrip_matches_generator() {
        let p = &catalog()[2]; // fft
        let bytes = record_profile(p, 4, 500, 7);
        let mut reader = TraceReader::new(bytes).unwrap();
        assert_eq!(reader.threads(), 4);
        assert_eq!(reader.ops_per_thread(), 500);
        let mut gen = TraceGenerator::new(p, 4, 7);
        for t in 0..4 {
            for i in 0..500 {
                let replayed = reader.next_op(t).expect("op present");
                let fresh = gen.next_op(t);
                assert_eq!(replayed, fresh, "thread {t} op {i}");
            }
            assert_eq!(reader.next_op(t), None, "stream ends");
        }
    }

    #[test]
    fn header_validation() {
        assert_eq!(TraceReader::new(vec![]).unwrap_err(), TraceError::Truncated);
        let mut bad = record_profile(&catalog()[0], 1, 10, 1);
        bad[0] = b'X';
        assert_eq!(TraceReader::new(bad).unwrap_err(), TraceError::BadMagic);
        let mut badv = record_profile(&catalog()[0], 1, 10, 1);
        badv[4] = 99;
        assert_eq!(
            TraceReader::new(badv).unwrap_err(),
            TraceError::BadVersion(99)
        );
    }

    #[test]
    fn truncation_detected() {
        let bytes = record_profile(&catalog()[0], 2, 100, 3);
        let cut = bytes[..bytes.len() - 5].to_vec();
        assert_eq!(TraceReader::new(cut).unwrap_err(), TraceError::Truncated);
    }

    #[test]
    fn bad_opcode_detected() {
        let mut bytes = record_profile(&catalog()[0], 1, 5, 3);
        bytes[20] = 0x7F;
        assert_eq!(
            TraceReader::new(bytes).unwrap_err(),
            TraceError::BadOpcode(0x7F)
        );
    }

    #[test]
    fn trace_files_are_deterministic() {
        let p = &catalog()[0];
        let a = record_profile(p, 8, 200, 42);
        let b = record_profile(p, 8, 200, 42);
        assert_eq!(a, b, "same profile + seed -> identical bytes");
    }
}
