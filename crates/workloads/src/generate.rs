//! Deterministic trace synthesis from a workload profile.
//!
//! Each thread draws from four region types laid out in one flat
//! line-address space (pages of which the system interleaves across
//! sockets, per the paper's allocation policy):
//!
//! * a globally shared **read-only** pool (lookup tables),
//! * a globally shared **read-write** pool (frontiers, reductions),
//! * a per-thread **private read** pool (streamed input partitions),
//! * a per-thread **private read-write** pool (scratch/output).
//!
//! Spatial locality is modeled as sequential runs within the current
//! region; temporal locality as re-touches of a small recent-line ring.
//! All randomness comes from a per-thread [`SplitMix64`] whose seed is
//! [`derive_seed`]`(experiment seed, WORKLOAD_STREAM, thread id)` —
//! identical streams on every run.

use crate::op::{MemReq, Op};
use crate::profile::WorkloadProfile;
use dve_sim::rng::{derive_seed, SplitMix64};

/// Stream id reserved for workload trace synthesis in [`derive_seed`].
pub const WORKLOAD_STREAM: u64 = 0x574B;

/// Length of the long-range history ring per thread.
const HISTORY_LINES: usize = 4_096;
/// Probability that a fresh access revisits the distant history
/// (loop-level reuse: the line has left the caches by then).
const REVISIT_PROB: f64 = 0.10;
/// Revisits draw from at least this far back in the history.
const REVISIT_MIN_DISTANCE: usize = 2_048;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Region {
    SharedRo,
    SharedRw,
    PrivateRo,
    PrivateRw,
}

#[derive(Debug)]
struct ThreadState {
    rng: SplitMix64,
    /// Sequential cursor per region.
    cursors: [u64; 4],
    /// Recently touched lines for temporal reuse, with whether the
    /// line lives in a writable region.
    recent: Vec<(u64, bool)>,
    recent_pos: usize,
    /// Long-range access history for loop-level revisits (lines come
    /// back after falling out of the LLC — the reuse that a large
    /// replica directory converts into local replica hits, Fig. 9).
    history: Vec<u64>,
    history_pos: usize,
    /// Whether the next emitted op should be the pending memory op.
    pending_mem: bool,
}

/// Layout of the synthesized address space, in line addresses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Layout {
    /// Shared read-only pool `[0, shared_ro)`.
    pub shared_ro: u64,
    /// Shared read-write pool `[shared_ro, shared_ro + shared_rw)`.
    pub shared_rw: u64,
    /// Lines of private read pool per thread.
    pub private_ro_per_thread: u64,
    /// Lines of private read-write pool per thread.
    pub private_rw_per_thread: u64,
}

/// The immutable part of trace synthesis: profile parameters, address
/// layout and derived locality knobs, shared by every thread's stream.
///
/// All per-thread mutable state lives in `ThreadState`, and the op
/// synthesis itself ([`TraceShape::step`]) only ever touches the shape
/// plus *one* thread's state. That separation is what lets
/// [`CoreTraceStream`] hand a single core's stream to a worker thread
/// (the PDES trace-sharding path) while guaranteeing — structurally,
/// not just by test — that the sequence cannot depend on any other
/// core's progress.
#[derive(Debug, Clone)]
pub struct TraceShape {
    profile: WorkloadProfile,
    threads: usize,
    layout: Layout,
    /// Probability of re-touching a recent line (temporal locality),
    /// derived from the profile's MPKI.
    reuse: f64,
}

impl TraceShape {
    /// Derives the shape for `threads` threads of `profile`.
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0`.
    pub fn new(profile: &WorkloadProfile, threads: usize) -> TraceShape {
        assert!(threads > 0, "need at least one thread");
        profile.validate();
        let ws = profile.working_set_lines;
        let mix = profile.mix;
        // Partition the working set proportionally to the issue mix.
        // Shared pools are capped: lookup tables and shared frontiers
        // are compact structures that get *re-read* (that re-reading,
        // after LLC eviction under stream pressure, is what produces the
        // read-only GETS class of Fig. 7); the bulky streamed data lives
        // in the private pools.
        let shared_ro = ((ws as f64 * mix.read_only) as u64).clamp(1024, 12_288);
        let shared_rw = ((ws as f64 * mix.read_write) as u64).clamp(256, 16_384);
        let private_ro_per_thread =
            (((ws as f64 * mix.private_read) as u64) / threads as u64).max(512);
        let private_rw_per_thread =
            (((ws as f64 * mix.private_read_write) as u64) / threads as u64).max(512);
        let layout = Layout {
            shared_ro,
            shared_rw,
            private_ro_per_thread,
            private_rw_per_thread,
        };
        // Higher MPKI → less temporal reuse; clamp to a sane band.
        let reuse = (1.0 - profile.l2_mpki / 150.0).clamp(0.50, 0.96);
        TraceShape {
            profile: profile.clone(),
            threads,
            layout,
            reuse,
        }
    }

    /// Thread count this shape was derived for.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The synthesized address-space layout.
    pub fn layout(&self) -> Layout {
        self.layout
    }

    /// The seeded initial state of `thread`'s stream.
    fn thread_state(&self, seed: u64, thread: usize) -> ThreadState {
        let mut rng = SplitMix64::new(derive_seed(seed, WORKLOAD_STREAM, thread as u64));
        let cursors = [
            rng.next_below(self.layout.shared_ro),
            rng.next_below(self.layout.shared_rw),
            rng.next_below(self.layout.private_ro_per_thread),
            rng.next_below(self.layout.private_rw_per_thread),
        ];
        ThreadState {
            rng,
            cursors,
            recent: Vec::with_capacity(16),
            recent_pos: 0,
            history: Vec::with_capacity(HISTORY_LINES),
            history_pos: 0,
            pending_mem: false,
        }
    }

    fn region_base(&self, region: Region, thread: usize) -> u64 {
        let l = self.layout;
        match region {
            Region::SharedRo => 0,
            Region::SharedRw => l.shared_ro,
            Region::PrivateRo => {
                l.shared_ro + l.shared_rw + thread as u64 * l.private_ro_per_thread
            }
            Region::PrivateRw => {
                l.shared_ro
                    + l.shared_rw
                    + self.threads as u64 * l.private_ro_per_thread
                    + thread as u64 * l.private_rw_per_thread
            }
        }
    }

    fn region_len(&self, region: Region) -> u64 {
        let l = self.layout;
        match region {
            Region::SharedRo => l.shared_ro,
            Region::SharedRw => l.shared_rw,
            Region::PrivateRo => l.private_ro_per_thread,
            Region::PrivateRw => l.private_rw_per_thread,
        }
    }

    /// Advances `thread`'s stream by one operation.
    fn step(&self, st: &mut ThreadState, thread: usize) -> Op {
        let mix = self.profile.mix;
        let write_frac = self.profile.write_frac;
        let spatial = self.profile.spatial;
        let sync_frac = self.profile.sync_frac;
        let compute = self.profile.compute_per_mem;
        let reuse = self.reuse;

        // Alternate compute and memory; occasionally emit a sync event.
        if !st.pending_mem {
            st.pending_mem = true;
            if st.rng.chance(sync_frac) {
                return Op::Sync;
            }
            if compute > 0 {
                let span = compute.max(1) as u64 * 2;
                let c = 1 + st.rng.next_below(span) as u32;
                return Op::Compute(c);
            }
        }
        st.pending_mem = false;

        // Temporal reuse of a recently touched line.
        if !st.recent.is_empty() && st.rng.chance(reuse) {
            let recent_len = st.recent.len();
            let idx = st.rng.next_below(recent_len as u64) as usize;
            let (line, writable) = st.recent[idx];
            let req = if writable && st.rng.chance(write_frac * 0.3) {
                MemReq::Write
            } else {
                MemReq::Read
            };
            return Op::Mem { line, req };
        }

        // Loop-level revisit of a long-evicted line (read-only: the
        // iteration re-reads last sweep's data).
        if st.history.len() > REVISIT_MIN_DISTANCE && st.rng.chance(REVISIT_PROB) {
            let len = st.history.len();
            let back = REVISIT_MIN_DISTANCE
                + st.rng.next_below((len - REVISIT_MIN_DISTANCE) as u64) as usize;
            let idx = (st.history_pos + len - back) % len;
            let line = st.history[idx];
            return Op::Mem {
                line,
                req: MemReq::Read,
            };
        }

        // Pick a region by the profile's mix.
        let roll: f64 = st.rng.next_f64();
        let (region, region_idx) = if roll < mix.private_read {
            (Region::PrivateRo, 2)
        } else if roll < mix.private_read + mix.read_only {
            (Region::SharedRo, 0)
        } else if roll < mix.private_read + mix.read_only + mix.read_write {
            (Region::SharedRw, 1)
        } else {
            (Region::PrivateRw, 3)
        };
        let len = self.region_len(region);
        let pos = if st.rng.chance(spatial) {
            let c = (st.cursors[region_idx] + 1) % len;
            st.cursors[region_idx] = c;
            c
        } else {
            let c = st.rng.next_below(len);
            st.cursors[region_idx] = c;
            c
        };
        let line = self.region_base(region, thread) + pos;

        let req = match region {
            Region::SharedRo | Region::PrivateRo => MemReq::Read,
            Region::SharedRw | Region::PrivateRw => {
                if st.rng.chance(write_frac) {
                    MemReq::Write
                } else {
                    MemReq::Read
                }
            }
        };

        // Remember for temporal reuse and long-range revisits.
        let writable = matches!(region, Region::SharedRw | Region::PrivateRw);
        if st.recent.len() < 16 {
            st.recent.push((line, writable));
        } else {
            st.recent[st.recent_pos] = (line, writable);
            st.recent_pos = (st.recent_pos + 1) % 16;
        }
        if st.history.len() < HISTORY_LINES {
            st.history.push(line);
        } else {
            st.history[st.history_pos] = line;
        }
        st.history_pos = (st.history_pos + 1) % HISTORY_LINES;
        Op::Mem { line, req }
    }
}

/// A deterministic multi-threaded trace generator.
///
/// # Example
///
/// ```
/// use dve_workloads::{catalog, TraceGenerator};
///
/// let profiles = catalog();
/// let mut a = TraceGenerator::new(&profiles[0], 16, 1);
/// let mut b = TraceGenerator::new(&profiles[0], 16, 1);
/// for t in 0..16 {
///     for _ in 0..100 {
///         assert_eq!(a.next_op(t), b.next_op(t)); // reproducible
///     }
/// }
/// ```
#[derive(Debug)]
pub struct TraceGenerator {
    shape: TraceShape,
    states: Vec<ThreadState>,
}

impl TraceGenerator {
    /// Builds a generator for `threads` threads with experiment `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0`.
    pub fn new(profile: &WorkloadProfile, threads: usize, seed: u64) -> TraceGenerator {
        let shape = TraceShape::new(profile, threads);
        let states = (0..threads).map(|t| shape.thread_state(seed, t)).collect();
        TraceGenerator { shape, states }
    }

    /// The synthesized address-space layout.
    pub fn layout(&self) -> Layout {
        self.shape.layout
    }

    /// Total span of the address space in lines.
    pub fn span_lines(&self) -> u64 {
        let l = self.shape.layout;
        l.shared_ro
            + l.shared_rw
            + self.shape.threads as u64 * (l.private_ro_per_thread + l.private_rw_per_thread)
    }

    /// Produces the next operation for `thread`.
    ///
    /// # Panics
    ///
    /// Panics if `thread` is out of range.
    pub fn next_op(&mut self, thread: usize) -> Op {
        assert!(thread < self.shape.threads, "thread out of range");
        self.shape.step(&mut self.states[thread], thread)
    }
}

/// One core's trace stream, detached from the other cores.
///
/// Produces exactly the op sequence [`TraceGenerator::next_op`] would
/// produce for `thread` under the same `(profile, threads, seed)`, but
/// owns only that thread's mutable state — so it is `Send`, cheap to
/// construct, and safe to drive from a PDES trace-sharding worker
/// while sibling cores' streams advance on other threads. Timing
/// cannot leak between streams because [`TraceShape::step`] reads
/// nothing mutable but this one state.
///
/// # Example
///
/// ```
/// use dve_workloads::{catalog, CoreTraceStream, TraceGenerator};
///
/// let p = &catalog()[0];
/// let mut whole = TraceGenerator::new(p, 16, 42);
/// let mut solo = CoreTraceStream::new(p, 16, 42, 5);
/// for _ in 0..100 {
///     assert_eq!(solo.next_op(), whole.next_op(5));
/// }
/// ```
#[derive(Debug)]
pub struct CoreTraceStream {
    shape: TraceShape,
    state: ThreadState,
    thread: usize,
}

impl CoreTraceStream {
    /// Builds the stream of `thread` out of a `threads`-wide trace with
    /// experiment `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0` or `thread >= threads`.
    pub fn new(
        profile: &WorkloadProfile,
        threads: usize,
        seed: u64,
        thread: usize,
    ) -> CoreTraceStream {
        assert!(thread < threads, "thread out of range");
        let shape = TraceShape::new(profile, threads);
        let state = shape.thread_state(seed, thread);
        CoreTraceStream {
            shape,
            state,
            thread,
        }
    }

    /// Which core this stream belongs to.
    pub fn thread(&self) -> usize {
        self.thread
    }

    /// Produces the core's next operation.
    pub fn next_op(&mut self) -> Op {
        self.shape.step(&mut self.state, self.thread)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::catalog;

    fn backprop() -> WorkloadProfile {
        catalog()
            .into_iter()
            .find(|p| p.name == "backprop")
            .unwrap()
    }

    fn lbm() -> WorkloadProfile {
        catalog().into_iter().find(|p| p.name == "lbm").unwrap()
    }

    #[test]
    fn deterministic_across_instances() {
        let p = backprop();
        let mut a = TraceGenerator::new(&p, 4, 7);
        let mut b = TraceGenerator::new(&p, 4, 7);
        for t in 0..4 {
            for _ in 0..1000 {
                assert_eq!(a.next_op(t), b.next_op(t));
            }
        }
    }

    #[test]
    fn different_seeds_differ() {
        let p = backprop();
        let mut a = TraceGenerator::new(&p, 1, 1);
        let mut b = TraceGenerator::new(&p, 1, 2);
        let same = (0..1000).filter(|_| a.next_op(0) == b.next_op(0)).count();
        assert!(same < 900, "streams should diverge, {same}/1000 equal");
    }

    #[test]
    fn private_regions_are_disjoint_across_threads() {
        let p = lbm();
        let threads = 8;
        let mut g = TraceGenerator::new(&p, threads, 3);
        let shared_top = g.layout().shared_ro + g.layout().shared_rw;
        let mut owner: std::collections::HashMap<u64, usize> = std::collections::HashMap::new();
        for t in 0..threads {
            for _ in 0..5000 {
                if let Op::Mem { line, .. } = g.next_op(t) {
                    if line >= shared_top {
                        if let Some(&prev) = owner.get(&line) {
                            assert_eq!(prev, t, "private line {line} touched by two threads");
                        }
                        owner.insert(line, t);
                    }
                }
            }
        }
    }

    #[test]
    fn read_only_regions_never_written() {
        let p = backprop();
        let mut g = TraceGenerator::new(&p, 4, 9);
        let l = g.layout();
        let priv_ro_base = l.shared_ro + l.shared_rw;
        let priv_rw_base = priv_ro_base + 4 * l.private_ro_per_thread;
        for t in 0..4 {
            for _ in 0..20_000 {
                if let Op::Mem { line, req } = g.next_op(t) {
                    let in_ro = line < l.shared_ro || (line >= priv_ro_base && line < priv_rw_base);
                    if in_ro && req == MemReq::Write {
                        // Temporal-reuse writes can only come from lines
                        // first touched in RW regions; RO lines must stay
                        // read-only. The reuse path writes with
                        // probability write_frac*0.3 regardless of
                        // region, so tolerate zero-region writes only.
                        panic!("write to read-only region at line {line}");
                    }
                }
            }
        }
    }

    #[test]
    fn write_fraction_materializes() {
        let p = lbm(); // write-heavy private scratch
        let mut g = TraceGenerator::new(&p, 2, 11);
        let mut reads = 0u64;
        let mut writes = 0u64;
        for t in 0..2 {
            for _ in 0..50_000 {
                if let Op::Mem { req, .. } = g.next_op(t) {
                    match req {
                        MemReq::Read => reads += 1,
                        MemReq::Write => writes += 1,
                    }
                }
            }
        }
        let frac = writes as f64 / (reads + writes) as f64;
        assert!(frac > 0.08 && frac < 0.70, "write fraction {frac}");
    }

    #[test]
    fn compute_ops_interleave() {
        let p = backprop();
        let mut g = TraceGenerator::new(&p, 1, 5);
        let mut mem = 0;
        let mut comp = 0;
        for _ in 0..10_000 {
            match g.next_op(0) {
                Op::Mem { .. } => mem += 1,
                Op::Compute(_) => comp += 1,
                Op::Sync => {}
            }
        }
        assert!(mem > 4000 && comp > 4000, "mem={mem} comp={comp}");
    }

    #[test]
    fn span_covers_all_regions() {
        let p = backprop();
        let g = TraceGenerator::new(&p, 16, 1);
        let l = g.layout();
        assert_eq!(
            g.span_lines(),
            l.shared_ro + l.shared_rw + 16 * (l.private_ro_per_thread + l.private_rw_per_thread)
        );
    }

    #[test]
    fn all_catalog_profiles_generate() {
        for p in catalog() {
            let mut g = TraceGenerator::new(&p, 16, 42);
            let mut mems = 0;
            for t in 0..16 {
                for _ in 0..200 {
                    if g.next_op(t).is_mem() {
                        mems += 1;
                    }
                }
            }
            assert!(mems > 0, "{} produced no memory ops", p.name);
        }
    }

    #[test]
    #[should_panic(expected = "thread out of range")]
    fn thread_bounds_checked() {
        let p = backprop();
        let mut g = TraceGenerator::new(&p, 2, 0);
        g.next_op(2);
    }

    #[test]
    fn core_stream_matches_full_generator() {
        // The detached per-core stream must replay exactly what the
        // full generator hands that core — including when the full
        // generator's cores advance interleaved (the sharded trace
        // supply depends on this being true op-for-op).
        let p = lbm();
        let threads = 8;
        let mut whole = TraceGenerator::new(&p, threads, 1234);
        let mut solos: Vec<CoreTraceStream> = (0..threads)
            .map(|t| CoreTraceStream::new(&p, threads, 1234, t))
            .collect();
        let mut rng = SplitMix64::new(99);
        for _ in 0..20_000 {
            let t = rng.next_below(threads as u64) as usize;
            assert_eq!(solos[t].next_op(), whole.next_op(t), "core {t}");
        }
        assert_eq!(solos[3].thread(), 3);
    }

    #[test]
    #[should_panic(expected = "thread out of range")]
    fn core_stream_bounds_checked() {
        CoreTraceStream::new(&backprop(), 4, 0, 4);
    }
}
