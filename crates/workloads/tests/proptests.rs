//! Property-based tests for trace synthesis and the trace file format.

use dve_workloads::op::{MemReq, Op};
use dve_workloads::trace_file::{record_profile, TraceReader};
use dve_workloads::{catalog, TraceGenerator};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    // Every generated address stays within the declared span, for every
    // profile.
    #[test]
    fn addresses_stay_in_span(profile_idx in 0usize..20, seed in any::<u64>()) {
        let p = &catalog()[profile_idx];
        let mut g = TraceGenerator::new(p, 8, seed);
        let span = g.span_lines();
        for t in 0..8 {
            for _ in 0..500 {
                if let Op::Mem { line, .. } = g.next_op(t) {
                    prop_assert!(line < span, "line {line} outside span {span}");
                }
            }
        }
    }

    // Trace generation is a pure function of (profile, threads, seed).
    #[test]
    fn generation_deterministic(profile_idx in 0usize..20, seed in any::<u64>()) {
        let p = &catalog()[profile_idx];
        let a = record_profile(p, 4, 200, seed);
        let b = record_profile(p, 4, 200, seed);
        prop_assert_eq!(a, b);
    }

    // The binary format round-trips every op stream exactly.
    #[test]
    fn trace_file_roundtrip(profile_idx in 0usize..20, seed in any::<u64>(), ops in 1u64..300) {
        let p = &catalog()[profile_idx];
        let bytes = record_profile(p, 3, ops, seed);
        let mut reader = TraceReader::new(bytes).unwrap();
        let mut gen = TraceGenerator::new(p, 3, seed);
        for t in 0..3 {
            for _ in 0..ops {
                prop_assert_eq!(reader.next_op(t), Some(gen.next_op(t)));
            }
            prop_assert_eq!(reader.next_op(t), None);
        }
    }

    // Writes only ever target writable regions (shared-rw / private-rw).
    #[test]
    fn writes_only_in_writable_regions(profile_idx in 0usize..20, seed in any::<u64>()) {
        let p = &catalog()[profile_idx];
        let threads = 4usize;
        let mut g = TraceGenerator::new(p, threads, seed);
        let l = g.layout();
        let shared_rw = (l.shared_ro, l.shared_ro + l.shared_rw);
        let priv_rw_base = l.shared_ro + l.shared_rw + threads as u64 * l.private_ro_per_thread;
        for t in 0..threads {
            for _ in 0..1000 {
                if let Op::Mem { line, req: MemReq::Write } = g.next_op(t) {
                    let in_shared_rw = line >= shared_rw.0 && line < shared_rw.1;
                    let in_priv_rw = line >= priv_rw_base;
                    prop_assert!(in_shared_rw || in_priv_rw, "write to read-only line {line}");
                }
            }
        }
    }
}
