//! The model-checking state: two caches, two directories, two memory
//! copies, and ordered message channels.
//!
//! The model is the smallest configuration that exercises every
//! transition of Fig. 5 plus the transient states: one cache on the home
//! socket (`CacheH`), one on the replica socket (`CacheR`), the home
//! directory, the replica directory, the home and replica memory copies
//! of a single address, and FIFO channels ("All links are ordered",
//! §VI). Requests and responses travel on separate virtual networks so
//! a busy directory stalls new requests without blocking the responses
//! it is waiting for; the directory-to-directory link is a single FIFO,
//! which (exactly as in the paper's system) orders permission grants
//! against subsequent invalidations.

/// A data value. Writes produce `latest + 1 (mod 4)`; with at most a
/// handful of values in flight, mod-4 arithmetic distinguishes stale
/// data from fresh.
pub type Val = u8;

/// Messages exchanged by the protocol agents.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Msg {
    /// Cache → its directory: read request.
    GetS,
    /// Cache → its directory: write (ownership) request.
    GetX,
    /// Cache → its directory: dirty eviction carrying the data.
    PutM(Val),
    /// Directory → cache: downgrade to S and reply with data.
    FwdGetS,
    /// Directory → cache: invalidate and reply with data.
    FwdGetX,
    /// Invalidate (directory → cache, or home dir → replica dir).
    Inv,
    /// Invalidation acknowledged.
    InvAck,
    /// Data grant for a read. `once` satisfies the load without caching
    /// (used when the line may no longer be cacheable).
    Data {
        /// The value.
        val: Val,
        /// If set, the requester must not cache the line.
        once: bool,
    },
    /// Data grant for a write (M state).
    DataX(Val),
    /// Eviction acknowledged.
    PutAck,
    /// Replica dir → home dir: allow-protocol read-permission pull.
    PermReq,
    /// Home dir → replica dir: permission granted; `Some(v)` also
    /// freshens the replica memory (a dirty line was written back).
    PermGrant(Option<Val>),
    /// Replica dir → home dir: replica-side write request.
    ReqX,
    /// Home dir → replica dir: ownership granted with data.
    GrantX(Val),
    /// Replica dir → home dir: deny-protocol read of an RM line.
    ReadReq,
    /// Home dir → replica dir: RM read response (line now clean in both
    /// memories; the RM entry clears).
    ReadResp(Val),
    /// Home dir → replica dir: install a deny (RM) entry.
    RmInstall,
    /// Replica dir → home dir: RM installed (and replica-side caches
    /// invalidated).
    RmAck,
    /// Writeback data (cache → home dir, replica dir ↔ home dir).
    WbData(Val),
    /// Writeback propagation acknowledged.
    WbAck,
}

/// Stable cache states (MSI at the model's granularity).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CState {
    /// Invalid.
    I,
    /// Shared (clean, readable).
    S,
    /// Modified (dirty, writable).
    M,
}

/// Cache transient (pending transaction).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CPend {
    /// No transaction outstanding.
    None,
    /// GETS outstanding.
    WaitS,
    /// GETX outstanding.
    WaitX,
    /// PUTM outstanding (data retained until the ack).
    WaitPut,
}

/// One cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Cache {
    /// Stable state.
    pub state: CState,
    /// Cached value (meaningful in S/M and while WaitPut).
    pub val: Val,
    /// Outstanding transaction.
    pub pend: CPend,
}

/// Who owns the line from the home directory's viewpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Owner {
    /// No owner (clean in memory).
    None,
    /// The home-side cache.
    CacheH,
    /// The replica directory (i.e. the replica-side cache).
    Rdir,
}

/// Home-directory transient.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HBusy {
    /// Ready for the next request.
    Idle,
    /// GETX from CacheH: waiting for the replica directory's
    /// invalidation/RM acknowledgment before granting.
    WaitRdirAckX {
        /// Value to grant once acknowledged.
        val: Val,
    },
    /// Waiting for CacheH's WbData after a downgrade, to then answer a
    /// PermReq (allow).
    WaitWbForPerm,
    /// Waiting for CacheH's WbData, to then answer a ReadReq (deny).
    WaitWbForRead,
    /// Waiting for CacheH's WbData (it was invalidated), to then answer
    /// a ReqX from the replica side.
    WaitWbForGrantX,
    /// Waiting for CacheH's InvAck (it held S), to then answer a ReqX.
    WaitInvAckForGrantX,
    /// Waiting for the replica dir's WbAck after propagating CacheH's
    /// PUTM to the replica memory.
    WaitWbAckForPut,
    /// Forwarded GetS/GetX to the replica dir (owner = Rdir); waiting
    /// for the WbData coming back.
    WaitRdirWb {
        /// Whether the original request was a GETX.
        for_x: bool,
    },
}

/// Home directory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct HomeDir {
    /// Current owner.
    pub owner: Owner,
    /// CacheH is a sharer.
    pub sh_h: bool,
    /// The replica directory holds a read permission (allow protocol).
    pub sh_r: bool,
    /// Transient.
    pub busy: HBusy,
}

/// Replica-directory entry (Fig. 5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum REntry {
    /// No entry (allow: replica not readable; deny: readable).
    None,
    /// Read permission held (allow).
    S,
    /// The replica-side cache owns the line.
    M,
    /// Remote-modified: the home side owns the line (deny).
    Rm,
}

/// Replica-directory transient.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RBusy {
    /// Ready.
    Idle,
    /// PermReq outstanding (allow read pull).
    WaitGrant,
    /// ReqX outstanding.
    WaitGrantX,
    /// ReadReq outstanding (deny RM read).
    WaitReadResp,
    /// FwdGetS relayed to CacheR; on its WbData, update replica memory
    /// and relay WbData home (downgrade).
    WaitCacheWbForS,
    /// FwdGetX relayed to CacheR; on its WbData, relay home and drop /
    /// RM the entry.
    WaitCacheWbForX,
    /// PUTM from CacheR propagated home as WbData; waiting WbAck.
    WaitHomeWbAck,
}

/// Replica-directory invalidation sub-transaction (can overlap a main
/// transient: e.g. an Inv arriving while a PermReq is outstanding).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RSub {
    /// No sub-transaction.
    None,
    /// Inv sent to CacheR; on its InvAck, reply InvAck to home.
    InvThenInvAck,
    /// Inv sent to CacheR; on its InvAck, install RM and RmAck home.
    InvThenRmAck,
}

/// Replica directory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ReplicaDir {
    /// Stable entry.
    pub entry: REntry,
    /// Transient.
    pub busy: RBusy,
    /// Invalidation sub-transaction.
    pub sub: RSub,
}

/// Channel indices (each a FIFO `Vec<Msg>`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Chan {
    /// CacheH → HomeDir requests.
    HReq = 0,
    /// CacheR → ReplicaDir requests.
    RReq = 1,
    /// HomeDir → CacheH (forwards + responses, ordered).
    ToCacheH = 2,
    /// ReplicaDir → CacheR (forwards + responses, ordered).
    ToCacheR = 3,
    /// CacheH → HomeDir responses.
    HResp = 4,
    /// CacheR → ReplicaDir responses.
    RResp = 5,
    /// HomeDir → ReplicaDir (single ordered FIFO).
    HdToRd = 6,
    /// ReplicaDir → HomeDir requests.
    RdToHdReq = 7,
    /// ReplicaDir → HomeDir responses.
    RdToHdResp = 8,
}

/// Number of channels.
pub const NUM_CHANNELS: usize = 9;
/// Per-channel capacity bound (asserted, never hit in this model).
pub const CHANNEL_CAP: usize = 4;

/// The full model state.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct State {
    /// `[CacheH, CacheR]`.
    pub caches: [Cache; 2],
    /// The home directory.
    pub hd: HomeDir,
    /// The replica directory.
    pub rd: ReplicaDir,
    /// Home memory copy.
    pub home_mem: Val,
    /// Replica memory copy.
    pub replica_mem: Val,
    /// The value of the most recent completed store (mod 4).
    pub latest: Val,
    /// FIFO channels.
    pub chans: [Vec<Msg>; NUM_CHANNELS],
}

impl State {
    /// The initial state: everything invalid, memories equal.
    pub fn initial() -> State {
        State {
            caches: [Cache {
                state: CState::I,
                val: 0,
                pend: CPend::None,
            }; 2],
            hd: HomeDir {
                owner: Owner::None,
                sh_h: false,
                sh_r: false,
                busy: HBusy::Idle,
            },
            rd: ReplicaDir {
                entry: REntry::None,
                busy: RBusy::Idle,
                sub: RSub::None,
            },
            home_mem: 0,
            replica_mem: 0,
            latest: 0,
            chans: Default::default(),
        }
    }

    /// Pushes a message, asserting the capacity bound.
    pub fn send(&mut self, chan: Chan, msg: Msg) {
        let c = &mut self.chans[chan as usize];
        assert!(c.len() < CHANNEL_CAP, "channel {chan:?} overflow");
        c.push(msg);
    }

    /// Whether the state is quiescent: no pending transactions, no
    /// in-flight messages.
    pub fn quiescent(&self) -> bool {
        self.caches.iter().all(|c| c.pend == CPend::None)
            && self.hd.busy == HBusy::Idle
            && self.rd.busy == RBusy::Idle
            && self.rd.sub == RSub::None
            && self.chans.iter().all(|c| c.is_empty())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn initial_is_quiescent_and_consistent() {
        let s = State::initial();
        assert!(s.quiescent());
        assert_eq!(s.home_mem, s.replica_mem);
    }

    #[test]
    fn send_respects_capacity() {
        let mut s = State::initial();
        for _ in 0..CHANNEL_CAP {
            s.send(Chan::HReq, Msg::GetS);
        }
        assert_eq!(s.chans[Chan::HReq as usize].len(), CHANNEL_CAP);
    }

    #[test]
    #[should_panic(expected = "overflow")]
    fn overflow_asserts() {
        let mut s = State::initial();
        for _ in 0..=CHANNEL_CAP {
            s.send(Chan::HReq, Msg::GetS);
        }
    }

    #[test]
    fn state_hashes_and_compares() {
        use std::collections::HashSet;
        let mut set = HashSet::new();
        set.insert(State::initial());
        let mut s2 = State::initial();
        s2.send(Chan::HReq, Msg::GetS);
        set.insert(s2);
        assert_eq!(set.len(), 2);
        assert!(set.contains(&State::initial()));
    }
}
