//! Counterexample reconstruction.
//!
//! When a protocol change breaks an invariant, a bare "violation at
//! depth 14" is useless; what a protocol engineer needs is the *shortest
//! action sequence* from reset to the bad state. [`shortest_violation`]
//! re-runs the BFS with parent tracking and renders the full path —
//! every cache request, message delivery, and intermediate state — in
//! the order it happened. (This tool found the PUTM-vs-forward and
//! moribund-copy races during this reproduction's own development.)

use crate::explore::invariants_for_testing as invariants;
use crate::protocol::{apply, enabled, Action, Variant};
use crate::state::State;
use std::collections::{HashMap, HashSet, VecDeque};
use std::fmt::Write as _;

/// One step of a counterexample.
#[derive(Debug, Clone)]
pub struct TraceStep {
    /// The action taken.
    pub action: Action,
    /// The state after the action.
    pub state: State,
}

/// A rendered counterexample.
#[derive(Debug, Clone)]
pub struct Counterexample {
    /// The violated property.
    pub violation: String,
    /// Steps from the initial state to the violation.
    pub steps: Vec<TraceStep>,
}

impl Counterexample {
    /// Human-readable rendering of the full trace.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "VIOLATION: {}", self.violation);
        for (i, step) in self.steps.iter().enumerate() {
            let s = &step.state;
            let _ = writeln!(out, "{:>3}. {:?}", i + 1, step.action);
            let _ = writeln!(
                out,
                "     caches: H={:?}/{:?} R={:?}/{:?}  hd: {:?} owner={:?}  rd: {:?}/{:?}",
                s.caches[0].state,
                s.caches[0].pend,
                s.caches[1].state,
                s.caches[1].pend,
                s.hd.busy,
                s.hd.owner,
                s.rd.entry,
                s.rd.busy
            );
            for (ci, chan) in s.chans.iter().enumerate() {
                if !chan.is_empty() {
                    let _ = writeln!(out, "     ch{ci}: {chan:?}");
                }
            }
        }
        out
    }
}

/// Searches for the shortest path to any invariant violation or illegal
/// transition, up to `max_states` distinct states. Returns `None` when
/// the protocol is clean within the bound (the expected outcome for the
/// shipped protocols).
pub fn shortest_violation(variant: Variant, max_states: usize) -> Option<Counterexample> {
    let initial = State::initial();
    let mut seen: HashSet<State> = HashSet::new();
    let mut parent: HashMap<State, (State, Action)> = HashMap::new();
    let mut queue: VecDeque<State> = VecDeque::new();
    seen.insert(initial.clone());
    queue.push_back(initial);

    let reconstruct = |bad: &State, parent: &HashMap<State, (State, Action)>| {
        let mut steps = Vec::new();
        let mut cur = bad.clone();
        while let Some((prev, action)) = parent.get(&cur) {
            steps.push(TraceStep {
                action: *action,
                state: cur.clone(),
            });
            cur = prev.clone();
        }
        steps.reverse();
        steps
    };

    while let Some(s) = queue.pop_front() {
        if let Err(v) = invariants(&s) {
            return Some(Counterexample {
                violation: v,
                steps: reconstruct(&s, &parent),
            });
        }
        for a in enabled(&s, variant) {
            match apply(&s, a, variant) {
                Ok(next) => {
                    if seen.len() < max_states && !seen.contains(&next) {
                        seen.insert(next.clone());
                        parent.insert(next.clone(), (s.clone(), a));
                        queue.push_back(next);
                    }
                }
                Err(v) => {
                    let mut steps = reconstruct(&s, &parent);
                    steps.push(TraceStep {
                        action: a,
                        state: s.clone(),
                    });
                    return Some(Counterexample {
                        violation: format!("illegal transition: {v}"),
                        steps,
                    });
                }
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shipped_protocols_have_no_counterexample() {
        assert!(shortest_violation(Variant::Allow, 2_000_000).is_none());
        assert!(shortest_violation(Variant::Deny, 2_000_000).is_none());
    }

    #[test]
    fn render_produces_readable_output() {
        // Build a synthetic counterexample to exercise the renderer.
        let ce = Counterexample {
            violation: "synthetic".into(),
            steps: vec![TraceStep {
                action: Action::IssueGetS(0),
                state: State::initial(),
            }],
        };
        let text = ce.render();
        assert!(text.contains("VIOLATION: synthetic"));
        assert!(text.contains("IssueGetS"));
        assert!(text.contains("caches:"));
    }
}
