//! Mutation testing for the model checker itself.
//!
//! A verifier that passes on a correct protocol is only trustworthy if
//! it *fails* on incorrect ones. This module re-runs exploration with
//! deliberately seeded protocol bugs — each a mistake that is easy to
//! make when implementing Coherent Replication — and the test suite
//! asserts the checker reports a violation for every one of them:
//!
//! * [`Mutation::CompleteWriteBeforeRmAck`] — the deny protocol's GETX
//!   completes as soon as the RM install is *sent*, not acknowledged
//!   (the tempting "the link is ordered anyway" shortcut); a racing
//!   replica read then returns stale data.
//! * [`Mutation::GrantReplicaReadInAllowOnMiss`] — the allow protocol
//!   treats a replica-directory miss as "readable" (confusing the two
//!   families' absence semantics).
//! * [`Mutation::SkipReplicaWriteback`] — a dirty eviction updates only
//!   the home memory, breaking §V-B1's strong consistency; the replica
//!   serves stale data after the writeback.

use crate::protocol::{apply as apply_real, enabled, Action, Variant};
use crate::state::{Chan, HBusy, Msg, Owner, RBusy, REntry, State};

/// A seeded protocol bug.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mutation {
    /// Deny GETX completes on RM *send* instead of RM *ack*.
    CompleteWriteBeforeRmAck,
    /// Allow treats replica-directory absence as readable.
    GrantReplicaReadInAllowOnMiss,
    /// Writebacks skip the replica memory update.
    SkipReplicaWriteback,
}

impl Mutation {
    /// The protocol family this mutation applies to.
    pub fn variant(self) -> Variant {
        match self {
            Mutation::CompleteWriteBeforeRmAck => Variant::Deny,
            Mutation::GrantReplicaReadInAllowOnMiss => Variant::Allow,
            Mutation::SkipReplicaWriteback => Variant::Deny,
        }
    }
}

/// Applies `a` under the mutated protocol.
pub fn apply_mutated(s: &State, a: Action, m: Mutation) -> Result<State, String> {
    let variant = m.variant();
    match m {
        Mutation::CompleteWriteBeforeRmAck => {
            // Intercept: home processing a GETX that would wait for the
            // replica dir's RM ack instead grants immediately (still
            // sending the RM install, fire-and-forget).
            if let Action::Deliver(ci) = a {
                if ci == Chan::HReq as usize
                    && s.hd.busy == HBusy::Idle
                    && s.chans[ci].first() == Some(&Msg::GetX)
                    && s.hd.owner == Owner::None
                {
                    let mut n = s.clone();
                    n.chans[ci].remove(0);
                    let v = n.home_mem;
                    n.hd.owner = Owner::CacheH;
                    n.hd.sh_h = false;
                    n.send(Chan::HdToRd, Msg::RmInstall);
                    n.send(Chan::ToCacheH, Msg::DataX(v));
                    // BUG: not waiting for RmAck. Swallow the eventual
                    // ack so it does not trip the "unsolicited" check —
                    // the data-value violation is the bug we hunt.
                    return Ok(n);
                }
            }
            // Swallow stray RmAck responses produced by the bug.
            if let Action::Deliver(ci) = a {
                if ci == Chan::RdToHdResp as usize
                    && s.chans[ci].first() == Some(&Msg::RmAck)
                    && s.hd.busy == HBusy::Idle
                {
                    let mut n = s.clone();
                    n.chans[ci].remove(0);
                    return Ok(n);
                }
            }
            apply_real(s, a, variant)
        }
        Mutation::GrantReplicaReadInAllowOnMiss => {
            if let Action::Deliver(ci) = a {
                if ci == Chan::RReq as usize
                    && s.rd.busy == RBusy::Idle
                    && s.chans[ci].first() == Some(&Msg::GetS)
                    && s.rd.entry == REntry::None
                {
                    // BUG: serve the replica without pulling permission.
                    let mut n = s.clone();
                    n.chans[ci].remove(0);
                    let v = n.replica_mem;
                    n.send(
                        Chan::ToCacheR,
                        Msg::Data {
                            val: v,
                            once: false,
                        },
                    );
                    return Ok(n);
                }
            }
            apply_real(s, a, variant)
        }
        Mutation::SkipReplicaWriteback => {
            if let Action::Deliver(ci) = a {
                // Intercept the home's propagation of a PutM: write home
                // memory but never forward to the replica.
                if ci == Chan::HReq as usize && s.hd.busy == HBusy::Idle {
                    if let Some(&Msg::PutM(v)) = s.chans[ci].first() {
                        if s.hd.owner == Owner::CacheH {
                            let mut n = s.clone();
                            n.chans[ci].remove(0);
                            n.home_mem = v;
                            n.hd.owner = Owner::None;
                            n.hd.sh_h = false;
                            // BUG: replica memory not updated, RM not
                            // cleared via WbData; ack immediately.
                            n.send(Chan::ToCacheH, Msg::PutAck);
                            // Still clear the RM entry (the "we forgot
                            // the data but remembered the metadata"
                            // variant) so the stale replica is readable.
                            n.rd.entry = REntry::None;
                            return Ok(n);
                        }
                    }
                }
            }
            apply_real(s, a, variant)
        }
    }
}

/// Explores the mutated protocol and returns the first violation found,
/// if any (the test suite asserts `Some` for every mutation).
pub fn check_mutation(m: Mutation, max_states: usize) -> Option<String> {
    use std::collections::{HashSet, VecDeque};
    let initial = State::initial();
    let mut seen: HashSet<State> = HashSet::new();
    let mut queue: VecDeque<State> = VecDeque::new();
    seen.insert(initial.clone());
    queue.push_back(initial);
    while let Some(s) = queue.pop_front() {
        if let Err(v) = crate::explore::invariants_for_testing(&s) {
            return Some(v);
        }
        let actions = enabled(&s, m.variant());
        if actions.is_empty() && !s.quiescent() {
            return Some("deadlock".to_string());
        }
        for a in actions {
            match apply_mutated(&s, a, m) {
                Ok(next) => {
                    if seen.len() < max_states && !seen.contains(&next) {
                        seen.insert(next.clone());
                        queue.push_back(next);
                    }
                }
                Err(v) => return Some(v),
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checker_catches_write_completing_before_rm_ack() {
        let v = check_mutation(Mutation::CompleteWriteBeforeRmAck, 3_000_000)
            .expect("the checker must catch the missing RM-ack wait");
        assert!(
            v.contains("stale") || v.contains("value invariant") || v.contains("SWMR"),
            "unexpected violation class: {v}"
        );
    }

    #[test]
    fn checker_catches_allow_absence_confusion() {
        let v = check_mutation(Mutation::GrantReplicaReadInAllowOnMiss, 3_000_000)
            .expect("the checker must catch absence-means-yes in allow");
        assert!(
            v.contains("stale") || v.contains("value invariant") || v.contains("SWMR"),
            "unexpected violation class: {v}"
        );
    }

    #[test]
    fn checker_catches_missing_replica_writeback() {
        let v = check_mutation(Mutation::SkipReplicaWriteback, 3_000_000)
            .expect("the checker must catch the skipped replica update");
        assert!(
            v.contains("stale") || v.contains("replica") || v.contains("value invariant"),
            "unexpected violation class: {v}"
        );
    }

    #[test]
    fn unmutated_protocols_still_pass_through_this_path() {
        // Sanity: apply_mutated == apply_real when the mutation's
        // trigger pattern never fires (e.g. deny mutation on a state
        // with no GETX in flight).
        let s = State::initial();
        for a in enabled(&s, Variant::Deny) {
            let real = apply_real(&s, a, Variant::Deny);
            let mutated = apply_mutated(&s, a, Mutation::SkipReplicaWriteback);
            assert_eq!(real.is_ok(), mutated.is_ok());
        }
    }
}
