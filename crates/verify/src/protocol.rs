//! Protocol transitions for the allow- and deny-based replica protocols,
//! with all transient states.
//!
//! Every function here is a *total* specification: a combination of
//! state × message that the protocol should never produce returns an
//! error, which the explorer reports as a safety violation. The
//! transitions encode exactly the flows described in §V-C (and exercised
//! in Fig. 5), including:
//!
//! * lazy permission pulls (allow) and eager RM pushes (deny),
//! * synchronous dual writebacks (home + replica memory),
//! * downgrades/forwards when a directory request hits a dirty line,
//! * the eviction races (PUTM vs forward, stale PUTM from a downgraded
//!   owner),
//! * invalidation sub-transactions at the replica directory overlapping
//!   its own outstanding requests.

use crate::state::{CPend, CState, Chan, HBusy, Msg, Owner, RBusy, REntry, RSub, State, Val};

/// Which protocol family to check.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Variant {
    /// Allow-based: pulled permissions, absence = not readable.
    Allow,
    /// Deny-based: pushed RM entries, absence = readable.
    Deny,
}

/// One enabled transition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Action {
    /// Cache `i` issues a GETS.
    IssueGetS(usize),
    /// Cache `i` issues a GETX.
    IssueGetX(usize),
    /// Cache `i` evicts its dirty line (PUTM).
    IssuePutM(usize),
    /// Cache `i` silently drops a clean shared line.
    SilentEvictS(usize),
    /// Deliver the head message of channel `c`.
    Deliver(usize),
}

const H: usize = 0;
const R: usize = 1;

fn bump(latest: Val) -> Val {
    (latest + 1) % 4
}

/// Enumerates every action enabled in `s`.
pub fn enabled(s: &State, _variant: Variant) -> Vec<Action> {
    let mut acts = Vec::new();
    for i in [H, R] {
        let c = &s.caches[i];
        if c.pend == CPend::None {
            match c.state {
                CState::I => {
                    acts.push(Action::IssueGetS(i));
                    acts.push(Action::IssueGetX(i));
                }
                CState::S => {
                    acts.push(Action::IssueGetX(i));
                    acts.push(Action::SilentEvictS(i));
                }
                CState::M => acts.push(Action::IssuePutM(i)),
            }
        }
    }
    for (ci, chan) in s.chans.iter().enumerate() {
        if chan.is_empty() {
            continue;
        }
        let deliverable = match ci {
            x if x == Chan::HReq as usize => s.hd.busy == HBusy::Idle,
            x if x == Chan::RdToHdReq as usize => s.hd.busy == HBusy::Idle,
            x if x == Chan::RReq as usize => s.rd.busy == RBusy::Idle && s.rd.sub == RSub::None,
            x if x == Chan::HdToRd as usize => {
                s.rd.sub == RSub::None
                    && !matches!(s.rd.busy, RBusy::WaitCacheWbForS | RBusy::WaitCacheWbForX)
            }
            _ => true,
        };
        if deliverable {
            acts.push(Action::Deliver(ci));
        }
    }
    acts
}

/// Applies `a` to a copy of `s`. `Err` is a protocol violation (either a
/// state/message combination that must be unreachable, or stale data
/// served to a reader).
pub fn apply(s: &State, a: Action, variant: Variant) -> Result<State, String> {
    let mut n = s.clone();
    match a {
        Action::IssueGetS(i) => {
            n.caches[i].pend = CPend::WaitS;
            n.send(if i == H { Chan::HReq } else { Chan::RReq }, Msg::GetS);
        }
        Action::IssueGetX(i) => {
            n.caches[i].pend = CPend::WaitX;
            n.send(if i == H { Chan::HReq } else { Chan::RReq }, Msg::GetX);
        }
        Action::IssuePutM(i) => {
            n.caches[i].pend = CPend::WaitPut;
            let v = n.caches[i].val;
            n.send(if i == H { Chan::HReq } else { Chan::RReq }, Msg::PutM(v));
        }
        Action::SilentEvictS(i) => {
            n.caches[i].state = CState::I;
        }
        Action::Deliver(ci) => {
            let msg = n.chans[ci].remove(0);
            deliver(&mut n, ci, msg, variant)?;
        }
    }
    Ok(n)
}

fn deliver(n: &mut State, ci: usize, msg: Msg, variant: Variant) -> Result<(), String> {
    match ci {
        x if x == Chan::HReq as usize => home_request(n, msg, variant, /*from_rdir=*/ false),
        x if x == Chan::RdToHdReq as usize => home_request(n, msg, variant, true),
        x if x == Chan::HResp as usize => home_response(n, msg),
        x if x == Chan::RdToHdResp as usize => home_rdir_response(n, msg, variant),
        x if x == Chan::RReq as usize => rdir_request(n, msg, variant),
        x if x == Chan::HdToRd as usize => rdir_from_home(n, msg, variant),
        x if x == Chan::RResp as usize => rdir_cache_response(n, msg, variant),
        x if x == Chan::ToCacheH as usize => cache_msg(n, H, msg),
        x if x == Chan::ToCacheR as usize => cache_msg(n, R, msg),
        _ => unreachable!("channel {ci}"),
    }
}

// ----- home directory ---------------------------------------------------

fn home_request(n: &mut State, msg: Msg, variant: Variant, from_rdir: bool) -> Result<(), String> {
    debug_assert_eq!(n.hd.busy, HBusy::Idle);
    match (msg, from_rdir) {
        (Msg::GetS, false) => match n.hd.owner {
            Owner::None => {
                n.hd.sh_h = true;
                let v = n.home_mem;
                n.send(
                    Chan::ToCacheH,
                    Msg::Data {
                        val: v,
                        once: false,
                    },
                );
            }
            Owner::CacheH => Err("GetS from the current owner".to_string())?,
            Owner::Rdir => {
                n.hd.busy = HBusy::WaitRdirWb { for_x: false };
                n.send(Chan::HdToRd, Msg::FwdGetS);
            }
        },
        (Msg::GetX, false) => match n.hd.owner {
            Owner::None => {
                let needs_rdir_handshake = match variant {
                    Variant::Allow => n.hd.sh_r,
                    Variant::Deny => true,
                };
                if needs_rdir_handshake {
                    n.hd.busy = HBusy::WaitRdirAckX { val: n.home_mem };
                    let m = match variant {
                        Variant::Allow => Msg::Inv,
                        Variant::Deny => Msg::RmInstall,
                    };
                    n.send(Chan::HdToRd, m);
                } else {
                    let v = n.home_mem;
                    n.hd.owner = Owner::CacheH;
                    n.hd.sh_h = false;
                    n.hd.sh_r = false;
                    n.send(Chan::ToCacheH, Msg::DataX(v));
                }
            }
            Owner::CacheH => Err("GetX from the current owner".to_string())?,
            Owner::Rdir => {
                n.hd.busy = HBusy::WaitRdirWb { for_x: true };
                n.send(Chan::HdToRd, Msg::FwdGetX);
            }
        },
        (Msg::PutM(v), false) => {
            if n.hd.owner == Owner::CacheH {
                n.home_mem = v;
                n.hd.owner = Owner::None;
                n.hd.sh_h = false;
                n.hd.busy = HBusy::WaitWbAckForPut;
                n.send(Chan::HdToRd, Msg::WbData(v));
            } else {
                // Stale PutM from a downgraded/invalidated owner: ack
                // without touching memory.
                n.send(Chan::ToCacheH, Msg::PutAck);
            }
        }
        (Msg::PermReq, true) => match n.hd.owner {
            Owner::None => {
                n.hd.sh_r = true;
                n.send(Chan::HdToRd, Msg::PermGrant(None));
            }
            Owner::CacheH => {
                n.hd.busy = HBusy::WaitWbForPerm;
                n.send(Chan::ToCacheH, Msg::FwdGetS);
            }
            Owner::Rdir => Err("PermReq while the replica side owns the line".to_string())?,
        },
        (Msg::ReqX, true) => match n.hd.owner {
            Owner::None => {
                if n.hd.sh_h {
                    n.hd.busy = HBusy::WaitInvAckForGrantX;
                    n.send(Chan::ToCacheH, Msg::Inv);
                } else {
                    let v = n.home_mem;
                    n.hd.owner = Owner::Rdir;
                    n.hd.sh_r = false;
                    n.send(Chan::HdToRd, Msg::GrantX(v));
                }
            }
            Owner::CacheH => {
                n.hd.busy = HBusy::WaitWbForGrantX;
                n.send(Chan::ToCacheH, Msg::FwdGetX);
            }
            Owner::Rdir => Err("ReqX while the replica side already owns".to_string())?,
        },
        (Msg::ReadReq, true) => match n.hd.owner {
            Owner::CacheH => {
                n.hd.busy = HBusy::WaitWbForRead;
                n.send(Chan::ToCacheH, Msg::FwdGetS);
            }
            Owner::None => {
                // The racing writeback already cleaned the line.
                let v = n.home_mem;
                n.send(Chan::HdToRd, Msg::ReadResp(v));
            }
            Owner::Rdir => Err("ReadReq while the replica side owns".to_string())?,
        },
        other => Err(format!("home dir cannot handle request {other:?}"))?,
    }
    Ok(())
}

fn home_response(n: &mut State, msg: Msg) -> Result<(), String> {
    match (msg, n.hd.busy) {
        (Msg::WbData(v), HBusy::WaitWbForPerm) => {
            n.home_mem = v;
            n.hd.owner = Owner::None;
            n.hd.sh_h = true; // downgraded owner keeps an S copy
            n.hd.sh_r = true;
            n.hd.busy = HBusy::Idle;
            n.send(Chan::HdToRd, Msg::PermGrant(Some(v)));
        }
        (Msg::WbData(v), HBusy::WaitWbForRead) => {
            n.home_mem = v;
            n.hd.owner = Owner::None;
            n.hd.sh_h = true;
            n.hd.busy = HBusy::Idle;
            n.send(Chan::HdToRd, Msg::ReadResp(v));
        }
        (Msg::WbData(v), HBusy::WaitWbForGrantX) => {
            n.home_mem = v;
            n.hd.owner = Owner::Rdir;
            n.hd.sh_h = false;
            n.hd.busy = HBusy::Idle;
            n.send(Chan::HdToRd, Msg::GrantX(v));
        }
        (Msg::InvAck, HBusy::WaitInvAckForGrantX) => {
            n.hd.sh_h = false;
            n.hd.owner = Owner::Rdir;
            n.hd.busy = HBusy::Idle;
            let v = n.home_mem;
            n.send(Chan::HdToRd, Msg::GrantX(v));
        }
        other => Err(format!("home dir cannot handle cache response {other:?}"))?,
    }
    Ok(())
}

fn home_rdir_response(n: &mut State, msg: Msg, variant: Variant) -> Result<(), String> {
    match (msg, n.hd.busy) {
        (Msg::InvAck, HBusy::WaitRdirAckX { val }) | (Msg::RmAck, HBusy::WaitRdirAckX { val }) => {
            n.hd.sh_r = false;
            n.hd.owner = Owner::CacheH;
            n.hd.sh_h = false;
            n.hd.busy = HBusy::Idle;
            n.send(Chan::ToCacheH, Msg::DataX(val));
        }
        (Msg::WbData(v), HBusy::WaitRdirWb { for_x: false }) => {
            n.home_mem = v;
            n.hd.owner = Owner::None;
            n.hd.sh_h = true;
            if variant == Variant::Allow {
                n.hd.sh_r = true; // the replica dir kept an S entry
            }
            n.hd.busy = HBusy::Idle;
            n.send(
                Chan::ToCacheH,
                Msg::Data {
                    val: v,
                    once: false,
                },
            );
        }
        (Msg::WbData(v), HBusy::WaitRdirWb { for_x: true }) => {
            n.home_mem = v;
            n.hd.owner = Owner::CacheH;
            n.hd.sh_h = false;
            n.hd.sh_r = false;
            n.hd.busy = HBusy::Idle;
            n.send(Chan::ToCacheH, Msg::DataX(v));
        }
        (Msg::WbData(v), _) => {
            // A writeback not matching an awaited forward response: the
            // normal completion of CacheR's PUTM, or a stray duplicate
            // when the PUTM raced a forward the replica dir answered
            // directly. Only an authoritative (still-owning) writer may
            // update memory.
            if n.hd.owner == Owner::Rdir {
                n.home_mem = v;
                n.hd.owner = Owner::None;
            }
            n.send(Chan::HdToRd, Msg::WbAck);
        }
        (Msg::WbAck, HBusy::WaitWbAckForPut) => {
            n.hd.busy = HBusy::Idle;
            n.send(Chan::ToCacheH, Msg::PutAck);
        }
        other => Err(format!("home dir cannot handle rdir response {other:?}"))?,
    }
    Ok(())
}

// ----- replica directory -------------------------------------------------

fn rdir_request(n: &mut State, msg: Msg, variant: Variant) -> Result<(), String> {
    debug_assert_eq!(n.rd.busy, RBusy::Idle);
    match msg {
        Msg::GetS => match (variant, n.rd.entry) {
            (Variant::Allow, REntry::S) | (Variant::Deny, REntry::None | REntry::S) => {
                // Serve from the local replica memory — the protocol
                // promises this data is current.
                if n.replica_mem != n.latest {
                    return Err(format!(
                        "replica served stale data: replica_mem={} latest={}",
                        n.replica_mem, n.latest
                    ));
                }
                let v = n.replica_mem;
                n.send(
                    Chan::ToCacheR,
                    Msg::Data {
                        val: v,
                        once: false,
                    },
                );
            }
            (Variant::Allow, REntry::None) => {
                n.rd.busy = RBusy::WaitGrant;
                n.send(Chan::RdToHdReq, Msg::PermReq);
            }
            (Variant::Deny, REntry::Rm) => {
                n.rd.busy = RBusy::WaitReadResp;
                n.send(Chan::RdToHdReq, Msg::ReadReq);
            }
            (_, REntry::M) => Err("GetS while the replica cache owns the line".to_string())?,
            (Variant::Allow, REntry::Rm) => Err("RM entry in the allow protocol".to_string())?,
        },
        Msg::GetX => {
            if n.rd.entry == REntry::M {
                return Err("GetX while the replica cache owns the line".to_string());
            }
            n.rd.busy = RBusy::WaitGrantX;
            n.send(Chan::RdToHdReq, Msg::ReqX);
        }
        Msg::PutM(v) => {
            if n.rd.entry == REntry::M {
                n.replica_mem = v;
                n.rd.entry = REntry::None;
                n.rd.busy = RBusy::WaitHomeWbAck;
                n.send(Chan::RdToHdResp, Msg::WbData(v));
            } else {
                n.send(Chan::ToCacheR, Msg::PutAck);
            }
        }
        other => Err(format!("replica dir cannot handle request {other:?}"))?,
    }
    Ok(())
}

fn rdir_from_home(n: &mut State, msg: Msg, variant: Variant) -> Result<(), String> {
    debug_assert_eq!(n.rd.sub, RSub::None);
    match msg {
        Msg::PermGrant(opt) => {
            if n.rd.busy != RBusy::WaitGrant {
                return Err("unsolicited PermGrant".to_string());
            }
            if let Some(v) = opt {
                n.replica_mem = v;
            }
            n.rd.entry = REntry::S;
            n.rd.busy = RBusy::Idle;
            if n.replica_mem != n.latest {
                return Err(format!(
                    "permission granted over stale replica: replica_mem={} latest={}",
                    n.replica_mem, n.latest
                ));
            }
            let v = n.replica_mem;
            n.send(
                Chan::ToCacheR,
                Msg::Data {
                    val: v,
                    once: false,
                },
            );
        }
        Msg::GrantX(v) => {
            if n.rd.busy != RBusy::WaitGrantX {
                return Err("unsolicited GrantX".to_string());
            }
            n.rd.entry = REntry::M;
            n.rd.busy = RBusy::Idle;
            n.send(Chan::ToCacheR, Msg::DataX(v));
        }
        Msg::ReadResp(v) => {
            if n.rd.busy != RBusy::WaitReadResp {
                return Err("unsolicited ReadResp".to_string());
            }
            n.replica_mem = v;
            n.rd.entry = REntry::None; // the RM entry clears: line clean
            n.rd.busy = RBusy::Idle;
            n.send(
                Chan::ToCacheR,
                Msg::Data {
                    val: v,
                    once: false,
                },
            );
        }
        Msg::Inv => {
            // Allow-protocol permission revoke. Forward to the cache if
            // it may hold a copy (we track that via our S entry);
            // otherwise ack immediately.
            let had_entry = n.rd.entry == REntry::S;
            n.rd.entry = REntry::None;
            if had_entry {
                n.rd.sub = RSub::InvThenInvAck;
                n.send(Chan::ToCacheR, Msg::Inv);
            } else {
                n.send(Chan::RdToHdResp, Msg::InvAck);
            }
        }
        Msg::RmInstall => {
            // Deny-protocol push: always invalidate the replica-side
            // cache (it may hold an untracked S copy), then RM + ack.
            n.rd.sub = RSub::InvThenRmAck;
            n.send(Chan::ToCacheR, Msg::Inv);
        }
        Msg::WbData(v) => {
            // Propagation of CacheH's PUTM: freshen the replica copy.
            n.replica_mem = v;
            if n.rd.entry == REntry::Rm {
                n.rd.entry = REntry::None;
            }
            n.send(Chan::RdToHdResp, Msg::WbAck);
        }
        Msg::WbAck => {
            // Completion of CacheR's PUTM propagation to home memory.
            if n.rd.busy != RBusy::WaitHomeWbAck {
                return Err("unsolicited WbAck from home".to_string());
            }
            n.rd.busy = RBusy::Idle;
            n.send(Chan::ToCacheR, Msg::PutAck);
        }
        Msg::FwdGetS => match n.rd.busy {
            RBusy::Idle if n.rd.entry == REntry::M => {
                n.rd.busy = RBusy::WaitCacheWbForS;
                n.send(Chan::ToCacheR, Msg::FwdGetS);
            }
            RBusy::WaitHomeWbAck => {
                // The owner's PUTM is already in flight: answer with the
                // fresh replica copy.
                let v = n.replica_mem;
                if variant == Variant::Allow {
                    n.rd.entry = REntry::S;
                }
                n.send(Chan::RdToHdResp, Msg::WbData(v));
            }
            _ => Err(format!("FwdGetS in replica-dir state {:?}", n.rd.busy))?,
        },
        Msg::FwdGetX => match n.rd.busy {
            RBusy::Idle if n.rd.entry == REntry::M => {
                n.rd.busy = RBusy::WaitCacheWbForX;
                n.send(Chan::ToCacheR, Msg::FwdGetX);
            }
            RBusy::WaitHomeWbAck => {
                let v = n.replica_mem;
                n.rd.entry = if variant == Variant::Deny {
                    REntry::Rm
                } else {
                    REntry::None
                };
                n.send(Chan::RdToHdResp, Msg::WbData(v));
            }
            _ => Err(format!("FwdGetX in replica-dir state {:?}", n.rd.busy))?,
        },
        other => Err(format!("replica dir cannot handle home message {other:?}"))?,
    }
    Ok(())
}

fn rdir_cache_response(n: &mut State, msg: Msg, variant: Variant) -> Result<(), String> {
    match msg {
        Msg::InvAck => match n.rd.sub {
            RSub::InvThenInvAck => {
                n.rd.sub = RSub::None;
                n.send(Chan::RdToHdResp, Msg::InvAck);
            }
            RSub::InvThenRmAck => {
                n.rd.sub = RSub::None;
                n.rd.entry = REntry::Rm;
                n.send(Chan::RdToHdResp, Msg::RmAck);
            }
            RSub::None => Err("unsolicited InvAck from the replica cache".to_string())?,
        },
        Msg::WbData(v) => match n.rd.busy {
            RBusy::WaitCacheWbForS => {
                n.replica_mem = v;
                n.rd.entry = if variant == Variant::Allow {
                    REntry::S
                } else {
                    REntry::None
                };
                n.rd.busy = RBusy::Idle;
                n.send(Chan::RdToHdResp, Msg::WbData(v));
            }
            RBusy::WaitCacheWbForX => {
                n.replica_mem = v;
                n.rd.entry = if variant == Variant::Deny {
                    REntry::Rm
                } else {
                    REntry::None
                };
                n.rd.busy = RBusy::Idle;
                n.send(Chan::RdToHdResp, Msg::WbData(v));
            }
            _ => Err(format!("WbData in replica-dir state {:?}", n.rd.busy))?,
        },
        other => Err(format!(
            "replica dir cannot handle cache response {other:?}"
        ))?,
    }
    Ok(())
}

// ----- caches -------------------------------------------------------------

fn cache_msg(n: &mut State, i: usize, msg: Msg) -> Result<(), String> {
    let resp = if i == H { Chan::HResp } else { Chan::RResp };
    match msg {
        Msg::Data { val, once } => {
            if n.caches[i].pend != CPend::WaitS {
                return Err("unsolicited Data".to_string());
            }
            n.caches[i].pend = CPend::None;
            if once {
                // Load satisfied without caching.
            } else {
                if val != n.latest {
                    return Err(format!(
                        "load at cache {i} returned stale data: got {val}, latest {}",
                        n.latest
                    ));
                }
                n.caches[i].state = CState::S;
                n.caches[i].val = val;
            }
        }
        Msg::DataX(_) => {
            if n.caches[i].pend != CPend::WaitX {
                return Err("unsolicited DataX".to_string());
            }
            // The store completes: the cache produces a fresh value.
            let v = bump(n.latest);
            n.latest = v;
            n.caches[i].state = CState::M;
            n.caches[i].val = v;
            n.caches[i].pend = CPend::None;
        }
        Msg::Inv => match (n.caches[i].state, n.caches[i].pend) {
            (CState::S, _) | (CState::I, _) => {
                n.caches[i].state = CState::I;
                n.send(resp, Msg::InvAck);
            }
            // A moribund copy (PUTM in flight, ownership already moved
            // on at the directory) surrenders silently.
            (CState::M, CPend::WaitPut) => {
                n.caches[i].state = CState::I;
                n.send(resp, Msg::InvAck);
            }
            (CState::M, _) => Err(format!("Inv delivered to cache {i} in M"))?,
        },
        Msg::FwdGetS => match (n.caches[i].state, n.caches[i].pend) {
            (CState::M, _) => {
                let v = n.caches[i].val;
                n.caches[i].state = CState::S;
                n.send(resp, Msg::WbData(v));
            }
            other => Err(format!("FwdGetS to cache {i} in {other:?}"))?,
        },
        Msg::FwdGetX => match n.caches[i].state {
            CState::M => {
                let v = n.caches[i].val;
                n.caches[i].state = CState::I;
                n.send(resp, Msg::WbData(v));
            }
            other => Err(format!("FwdGetX to cache {i} in {other:?}"))?,
        },
        Msg::PutAck => {
            if n.caches[i].pend != CPend::WaitPut {
                return Err("unsolicited PutAck".to_string());
            }
            n.caches[i].pend = CPend::None;
            n.caches[i].state = CState::I;
        }
        other => Err(format!("cache {i} cannot handle {other:?}"))?,
    }
    Ok(())
}
