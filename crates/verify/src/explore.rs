//! Breadth-first explicit-state exploration with invariant checking.

use crate::protocol::{apply, enabled, Variant};
use crate::state::{CPend, CState, HBusy, RBusy, RSub, State};
use std::collections::{HashSet, VecDeque};
use std::fmt;

/// Result of a verification run.
#[derive(Debug, Clone)]
pub struct Report {
    /// Protocol variant checked.
    pub variant: Variant,
    /// Distinct states reached.
    pub states: usize,
    /// Transitions executed.
    pub transitions: usize,
    /// Maximum BFS depth reached.
    pub max_depth: usize,
    /// Safety violations (SWMR, data value, stale replica, unreachable
    /// state/message combinations).
    pub violations: Vec<String>,
    /// Deadlocked states (non-quiescent with no enabled action).
    pub deadlocks: usize,
    /// Whether exploration hit the state cap before exhausting the
    /// space.
    pub truncated: bool,
}

impl Report {
    /// Whether the protocol verified cleanly (no violations, no
    /// deadlocks, full exploration).
    pub fn ok(&self) -> bool {
        self.violations.is_empty() && self.deadlocks == 0 && !self.truncated
    }
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:?}: {} states, {} transitions, depth {}, {} violations, {} deadlocks{}",
            self.variant,
            self.states,
            self.transitions,
            self.max_depth,
            self.violations.len(),
            self.deadlocks,
            if self.truncated { " (TRUNCATED)" } else { "" }
        )
    }
}

/// Checks the state-level invariants: SWMR and the data-value invariant
/// on cached copies and quiescent memory.
fn invariants(s: &State) -> Result<(), String> {
    invariants_impl(s)
}

/// The invariant checker, exposed for the counterexample tracer.
#[doc(hidden)]
pub fn invariants_for_testing(s: &State) -> Result<(), String> {
    invariants_impl(s)
}

fn invariants_impl(s: &State) -> Result<(), String> {
    let h = &s.caches[0];
    let r = &s.caches[1];
    // SWMR: a *writable* copy never coexists with any other usable copy.
    // A cache that has issued a PUTM (WaitPut) holds a moribund copy —
    // it can no longer read or write it, only surrender it — so it is
    // excluded, exactly like the MI_A transient of a classic Murphi MSI
    // model. Its *value* is still checked below (it may be forwarded).
    let usable = |c: &crate::state::Cache| c.state != CState::I && c.pend != CPend::WaitPut;
    let writable = |c: &crate::state::Cache| c.state == CState::M && c.pend != CPend::WaitPut;
    if writable(h) && usable(r) {
        return Err(format!(
            "SWMR violated: CacheH M while CacheR {:?}",
            r.state
        ));
    }
    if writable(r) && usable(h) {
        return Err(format!(
            "SWMR violated: CacheR M while CacheH {:?}",
            h.state
        ));
    }
    // Data-value invariant: every *usable* cached copy holds the latest
    // completed store's value. (A moribund WaitPut copy may be stale if
    // ownership has already moved on; the directories' owner checks
    // guarantee its value is never written to memory or forwarded.)
    for (name, c) in [("CacheH", h), ("CacheR", r)] {
        if usable(c) && c.val != s.latest {
            return Err(format!(
                "value invariant violated: {name} in {:?} holds {} but latest is {}",
                c.state, c.val, s.latest
            ));
        }
    }
    // Strong replica consistency at quiescence: both memory copies hold
    // the latest value unless a cache still owns it dirty.
    if s.quiescent() {
        let dirty = h.state == CState::M || r.state == CState::M;
        if !dirty {
            if s.home_mem != s.latest {
                return Err(format!(
                    "quiescent home memory stale: {} vs latest {}",
                    s.home_mem, s.latest
                ));
            }
            if s.replica_mem != s.latest {
                return Err(format!(
                    "quiescent replica memory stale: {} vs latest {}",
                    s.replica_mem, s.latest
                ));
            }
        }
    }
    Ok(())
}

/// Runs BFS from the initial state, checking invariants on every state,
/// up to `max_states` distinct states.
pub fn check(variant: Variant, max_states: usize) -> Report {
    let mut report = Report {
        variant,
        states: 0,
        transitions: 0,
        max_depth: 0,
        violations: Vec::new(),
        deadlocks: 0,
        truncated: false,
    };
    let initial = State::initial();
    let mut seen: HashSet<State> = HashSet::new();
    let mut queue: VecDeque<(State, usize)> = VecDeque::new();
    seen.insert(initial.clone());
    queue.push_back((initial, 0));

    while let Some((s, depth)) = queue.pop_front() {
        report.states += 1;
        report.max_depth = report.max_depth.max(depth);
        if let Err(v) = invariants(&s) {
            if report.violations.len() < 10 {
                report.violations.push(format!("depth {depth}: {v}"));
            }
            continue;
        }
        let actions = enabled(&s, variant);
        if actions.is_empty() && !s.quiescent() {
            report.deadlocks += 1;
            if report.violations.len() < 10 {
                report
                    .violations
                    .push(format!("deadlock at depth {depth}: {s:?}"));
            }
            continue;
        }
        for a in actions {
            report.transitions += 1;
            match apply(&s, a, variant) {
                Ok(next) => {
                    if !seen.contains(&next) {
                        if seen.len() >= max_states {
                            report.truncated = true;
                            continue;
                        }
                        seen.insert(next.clone());
                        queue.push_back((next, depth + 1));
                    }
                }
                Err(v) => {
                    if report.violations.len() < 10 {
                        report
                            .violations
                            .push(format!("depth {depth}, action {a:?}: {v}"));
                    }
                }
            }
        }
    }
    report
}

/// A quick structural census of the reachable state space, used by the
/// Fig. 5 harness to print the verified stable-state transition tables.
pub fn census(variant: Variant, max_states: usize) -> StateCensus {
    let mut seen: HashSet<State> = HashSet::new();
    let mut queue: VecDeque<State> = VecDeque::new();
    let initial = State::initial();
    seen.insert(initial.clone());
    queue.push_back(initial);
    let mut census = StateCensus::default();
    while let Some(s) = queue.pop_front() {
        census.count(&s);
        for a in enabled(&s, variant) {
            if let Ok(next) = apply(&s, a, variant) {
                if !seen.contains(&next) && seen.len() < max_states {
                    seen.insert(next.clone());
                    queue.push_back(next);
                }
            }
        }
    }
    census
}

/// Counts of interesting structural configurations seen during
/// exploration.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StateCensus {
    /// States where the replica directory holds an S entry.
    pub rdir_s: usize,
    /// States where the replica directory holds an M entry.
    pub rdir_m: usize,
    /// States where the replica directory holds an RM entry.
    pub rdir_rm: usize,
    /// States with a busy home directory (transient in flight).
    pub hd_busy: usize,
    /// States with a busy replica directory.
    pub rd_busy: usize,
    /// States with an invalidation sub-transaction at the replica dir.
    pub rd_sub: usize,
    /// States where some cache has a pending request.
    pub cache_pending: usize,
}

impl StateCensus {
    fn count(&mut self, s: &State) {
        match s.rd.entry {
            crate::state::REntry::S => self.rdir_s += 1,
            crate::state::REntry::M => self.rdir_m += 1,
            crate::state::REntry::Rm => self.rdir_rm += 1,
            crate::state::REntry::None => {}
        }
        if s.hd.busy != HBusy::Idle {
            self.hd_busy += 1;
        }
        if s.rd.busy != RBusy::Idle {
            self.rd_busy += 1;
        }
        if s.rd.sub != RSub::None {
            self.rd_sub += 1;
        }
        if s.caches.iter().any(|c| c.pend != CPend::None) {
            self.cache_pending += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allow_protocol_verifies() {
        let r = check(Variant::Allow, 2_000_000);
        assert!(r.ok(), "{r}\nviolations: {:#?}", r.violations);
        assert!(
            r.states > 1000,
            "state space too small to be meaningful: {r}"
        );
    }

    #[test]
    fn deny_protocol_verifies() {
        let r = check(Variant::Deny, 2_000_000);
        assert!(r.ok(), "{r}\nviolations: {:#?}", r.violations);
        assert!(
            r.states > 1000,
            "state space too small to be meaningful: {r}"
        );
    }

    #[test]
    fn exploration_is_deterministic() {
        let a = check(Variant::Allow, 500_000);
        let b = check(Variant::Allow, 500_000);
        assert_eq!(a.states, b.states);
        assert_eq!(a.transitions, b.transitions);
        assert_eq!(a.max_depth, b.max_depth);
    }

    #[test]
    fn truncation_is_reported() {
        let r = check(Variant::Allow, 10);
        assert!(r.truncated);
        assert!(!r.ok());
    }

    #[test]
    fn census_sees_protocol_specific_states() {
        let allow = census(Variant::Allow, 500_000);
        assert!(allow.rdir_s > 0, "allow protocol must reach S entries");
        assert!(allow.rdir_m > 0, "allow protocol must reach M entries");
        assert_eq!(
            allow.rdir_rm, 0,
            "allow protocol must never hold RM entries"
        );
        let deny = census(Variant::Deny, 500_000);
        assert!(deny.rdir_rm > 0, "deny protocol must reach RM entries");
        assert!(deny.rdir_m > 0);
        assert!(deny.hd_busy > 0 && deny.rd_busy > 0 && deny.rd_sub > 0);
        assert!(deny.cache_pending > 0);
    }
}
