//! # dve-verify — explicit-state model checking of Coherent Replication
//!
//! §V-C4 of the paper: *"We have fully fleshed out complete protocol
//! specifications including transient states and actions for both
//! protocol variants. Further, we have modeled the complete protocol in
//! the Murφ model checker and exhaustively verified the protocol for
//! deadlock-freedom and safety, i.e., they enforce the
//! Single-Writer-Multiple-Reader invariant."*
//!
//! This crate is that verification, rebuilt from scratch in Rust: a
//! breadth-first explicit-state enumerator over a small but complete
//! model of the two-socket system — one home-side cache, one
//! replica-side cache, the home directory, the replica directory, the
//! two memory copies, and FIFO message channels — with **all transient
//! states** (pending GETS/GETX/PUTM at the caches, busy directories,
//! in-flight invalidations, the stale-grant race where an invalidation
//! overtakes a read permission, and the deny protocol's RM
//! install/clear handshakes).
//!
//! Checked properties, on every reachable state:
//!
//! * **SWMR** — a modified copy never coexists with any other valid
//!   copy.
//! * **Replica consistency** — whenever the protocol lets the replica
//!   memory be read, it holds the same value as the authoritative copy;
//!   and in quiescent states the two memories are identical.
//! * **Data-value invariant** — every load returns the value of the
//!   most recent store ordered before it.
//! * **Deadlock freedom** — every non-quiescent state has at least one
//!   enabled transition.
//!
//! # Example
//!
//! ```
//! use dve_verify::{check, Variant};
//!
//! let report = check(Variant::Allow, 200_000);
//! assert!(report.ok(), "allow protocol verified: {report}");
//! let report = check(Variant::Deny, 200_000);
//! assert!(report.ok(), "deny protocol verified: {report}");
//! ```

pub mod explore;
pub mod mutation;
pub mod protocol;
pub mod state;
pub mod trace;

pub use explore::{check, Report};
pub use protocol::Variant;
pub use state::State;
pub use trace::{shortest_violation, Counterexample};
