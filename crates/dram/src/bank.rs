//! Per-bank row-buffer state machine.

use dve_sim::time::Cycles;

/// Classification of an access against the bank's row-buffer state —
/// determines which DRAM timing path applies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RowOutcome {
    /// Requested row is already open: column access only (tCL).
    Hit,
    /// Bank precharged, no row open: activate + column (tRCD + tCL).
    Miss,
    /// A different row is open: precharge + activate + column
    /// (tRP + tRCD + tCL).
    Conflict,
}

/// One DRAM bank: the open row (if any) and the time until which the bank
/// is busy with a previous operation.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Bank {
    open_row: Option<u64>,
    busy_until: Cycles,
    /// When the currently open row was activated (to honor tRAS before a
    /// precharge on conflict).
    activated_at: Cycles,
}

impl Bank {
    /// Creates an idle, precharged bank.
    pub fn new() -> Bank {
        Bank::default()
    }

    /// The row currently latched in the row buffer.
    pub fn open_row(&self) -> Option<u64> {
        self.open_row
    }

    /// Earliest time the bank can start a new operation.
    pub fn busy_until(&self) -> Cycles {
        self.busy_until
    }

    /// Classifies an access to `row` without performing it.
    pub fn classify(&self, row: u64) -> RowOutcome {
        match self.open_row {
            Some(r) if r == row => RowOutcome::Hit,
            Some(_) => RowOutcome::Conflict,
            None => RowOutcome::Miss,
        }
    }

    /// Performs an access to `row` arriving at `now`, given the timing
    /// parameters. Returns `(outcome, start, finish)` where `start` is
    /// when the command actually issues (after any queuing on a busy
    /// bank) and `finish` is when data transfer completes.
    #[allow(clippy::too_many_arguments)]
    pub fn access(
        &mut self,
        row: u64,
        now: Cycles,
        t_cl: Cycles,
        t_rcd: Cycles,
        t_rp: Cycles,
        t_ras: Cycles,
        t_burst: Cycles,
    ) -> (RowOutcome, Cycles, Cycles) {
        let outcome = self.classify(row);
        let mut start = now.max(self.busy_until);
        let latency = match outcome {
            RowOutcome::Hit => t_cl + t_burst,
            RowOutcome::Miss => t_rcd + t_cl + t_burst,
            RowOutcome::Conflict => {
                // The precharge may not issue until tRAS after the open
                // row's activation.
                let ras_ready = self.activated_at + t_ras;
                start = start.max(ras_ready);
                t_rp + t_rcd + t_cl + t_burst
            }
        };
        let finish = start + latency;
        match outcome {
            RowOutcome::Hit => {}
            RowOutcome::Miss => {
                self.open_row = Some(row);
                self.activated_at = start;
            }
            RowOutcome::Conflict => {
                self.open_row = Some(row);
                self.activated_at = start + t_rp;
            }
        }
        self.busy_until = finish;
        (outcome, start, finish)
    }

    /// Closes the open row (e.g. for a refresh) and marks the bank busy
    /// until `until`.
    pub fn force_busy(&mut self, until: Cycles) {
        self.open_row = None;
        self.busy_until = self.busy_until.max(until);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const CL: Cycles = Cycles(43);
    const RCD: Cycles = Cycles(43);
    const RP: Cycles = Cycles(43);
    const RAS: Cycles = Cycles(96);
    const BURST: Cycles = Cycles(10);

    fn go(bank: &mut Bank, row: u64, now: u64) -> (RowOutcome, Cycles, Cycles) {
        bank.access(row, Cycles(now), CL, RCD, RP, RAS, BURST)
    }

    #[test]
    fn first_access_is_miss() {
        let mut b = Bank::new();
        let (o, start, finish) = go(&mut b, 5, 0);
        assert_eq!(o, RowOutcome::Miss);
        assert_eq!(start, Cycles(0));
        assert_eq!(finish, RCD + CL + BURST);
        assert_eq!(b.open_row(), Some(5));
    }

    #[test]
    fn same_row_hits() {
        let mut b = Bank::new();
        let (_, _, f1) = go(&mut b, 5, 0);
        let (o, _, f2) = go(&mut b, 5, f1.raw());
        assert_eq!(o, RowOutcome::Hit);
        assert_eq!(f2 - f1, CL + BURST);
    }

    #[test]
    fn different_row_conflicts_and_respects_tras() {
        let mut b = Bank::new();
        go(&mut b, 5, 0); // activated at 0
        let (o, start, _) = go(&mut b, 9, 0);
        assert_eq!(o, RowOutcome::Conflict);
        // Cannot precharge before tRAS after activation (0 + 96).
        assert!(start >= RAS);
        assert_eq!(b.open_row(), Some(9));
    }

    #[test]
    fn busy_bank_queues_requests() {
        let mut b = Bank::new();
        let (_, _, f1) = go(&mut b, 1, 0);
        // Request arrives while the first is in flight.
        let (_, start, _) = go(&mut b, 1, 1);
        assert_eq!(start, f1, "second request waits for the bank");
    }

    #[test]
    fn force_busy_closes_row() {
        let mut b = Bank::new();
        go(&mut b, 1, 0);
        b.force_busy(Cycles(10_000));
        assert_eq!(b.open_row(), None);
        assert_eq!(b.busy_until(), Cycles(10_000));
        let (o, start, _) = go(&mut b, 1, 0);
        assert_eq!(o, RowOutcome::Miss);
        assert_eq!(start, Cycles(10_000));
    }
}
