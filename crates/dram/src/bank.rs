//! Per-bank row-buffer state machine.
//!
//! Bank occupancy used to be a bare `busy_until` timestamp with the
//! queueing arithmetic inlined at each use; it now sits on a
//! single-way [`dve_sim::resource::Resource`] port, so a busy bank
//! queues requests through the same audited primitive as every other
//! timed substrate, and the queue/service split is read straight off
//! the returned [`Grant`].

use dve_sim::resource::{Grant, Resource};
use dve_sim::time::Cycles;

/// Classification of an access against the bank's row-buffer state —
/// determines which DRAM timing path applies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RowOutcome {
    /// Requested row is already open: column access only (tCL).
    Hit,
    /// Bank precharged, no row open: activate + column (tRCD + tCL).
    Miss,
    /// A different row is open: precharge + activate + column
    /// (tRP + tRCD + tCL).
    Conflict,
}

/// One DRAM bank: the open row (if any) and a one-way occupancy port
/// serializing its command bus.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Bank {
    open_row: Option<u64>,
    /// Single-way occupancy port: the bank services one burst at a time.
    port: Resource,
    /// When the currently open row was activated (to honor tRAS before a
    /// precharge on conflict).
    activated_at: Cycles,
}

impl Default for Bank {
    fn default() -> Bank {
        Bank {
            open_row: None,
            port: Resource::new(1),
            activated_at: Cycles(0),
        }
    }
}

impl Bank {
    /// Creates an idle, precharged bank.
    pub fn new() -> Bank {
        Bank::default()
    }

    /// The row currently latched in the row buffer.
    pub fn open_row(&self) -> Option<u64> {
        self.open_row
    }

    /// Earliest time the bank can start a new operation.
    pub fn busy_until(&self) -> Cycles {
        Cycles(self.port.drained_at())
    }

    /// The bank's occupancy port (grants, busy cycles, queue cycles).
    pub fn port(&self) -> &Resource {
        &self.port
    }

    /// Classifies an access to `row` without performing it.
    pub fn classify(&self, row: u64) -> RowOutcome {
        match self.open_row {
            Some(r) if r == row => RowOutcome::Hit,
            Some(_) => RowOutcome::Conflict,
            None => RowOutcome::Miss,
        }
    }

    /// Performs an access to `row` arriving at `now`, given the timing
    /// parameters. Returns the row outcome plus the port [`Grant`]:
    /// `grant.start` is when the first DRAM command actually issues
    /// (after any queueing on a busy bank, including a tRAS hold before
    /// a conflict's precharge), `grant.complete_at` is when the data
    /// transfer completes, and `grant.queued` is the full pre-issue wait.
    #[allow(clippy::too_many_arguments)]
    pub fn access(
        &mut self,
        row: u64,
        now: Cycles,
        t_cl: Cycles,
        t_rcd: Cycles,
        t_rp: Cycles,
        t_ras: Cycles,
        t_burst: Cycles,
    ) -> (RowOutcome, Grant) {
        let outcome = self.classify(row);
        let latency = match outcome {
            RowOutcome::Hit => t_cl + t_burst,
            RowOutcome::Miss => t_rcd + t_cl + t_burst,
            RowOutcome::Conflict => {
                // The precharge may not issue until tRAS after the open
                // row's activation: hold the port shut until then so the
                // wait is charged as queueing.
                self.port.block_until((self.activated_at + t_ras).raw());
                t_rp + t_rcd + t_cl + t_burst
            }
        };
        let grant = self.port.acquire(now.raw(), latency.raw());
        let start = Cycles(grant.start);
        match outcome {
            RowOutcome::Hit => {}
            RowOutcome::Miss => {
                self.open_row = Some(row);
                self.activated_at = start;
            }
            RowOutcome::Conflict => {
                self.open_row = Some(row);
                self.activated_at = start + t_rp;
            }
        }
        (outcome, grant)
    }

    /// Closes the open row (e.g. for a refresh) and marks the bank busy
    /// until `until`.
    pub fn force_busy(&mut self, until: Cycles) {
        self.open_row = None;
        self.port.block_until(until.raw());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const CL: Cycles = Cycles(43);
    const RCD: Cycles = Cycles(43);
    const RP: Cycles = Cycles(43);
    const RAS: Cycles = Cycles(96);
    const BURST: Cycles = Cycles(10);

    fn go(bank: &mut Bank, row: u64, now: u64) -> (RowOutcome, Grant) {
        bank.access(row, Cycles(now), CL, RCD, RP, RAS, BURST)
    }

    #[test]
    fn first_access_is_miss() {
        let mut b = Bank::new();
        let (o, g) = go(&mut b, 5, 0);
        assert_eq!(o, RowOutcome::Miss);
        assert_eq!(g.start, 0);
        assert_eq!(g.complete_at, (RCD + CL + BURST).raw());
        assert_eq!(b.open_row(), Some(5));
    }

    #[test]
    fn same_row_hits() {
        let mut b = Bank::new();
        let (_, g1) = go(&mut b, 5, 0);
        let (o, g2) = go(&mut b, 5, g1.complete_at);
        assert_eq!(o, RowOutcome::Hit);
        assert_eq!(g2.complete_at - g1.complete_at, (CL + BURST).raw());
    }

    #[test]
    fn different_row_conflicts_and_respects_tras() {
        let mut b = Bank::new();
        go(&mut b, 5, 0); // activated at 0
        let (o, g) = go(&mut b, 9, 0);
        assert_eq!(o, RowOutcome::Conflict);
        // Cannot precharge before tRAS after activation (0 + 96).
        assert!(g.start >= RAS.raw());
        assert_eq!(b.open_row(), Some(9));
    }

    #[test]
    fn busy_bank_queues_requests() {
        let mut b = Bank::new();
        let (_, g1) = go(&mut b, 1, 0);
        // Request arrives while the first is in flight.
        let (_, g2) = go(&mut b, 1, 1);
        assert_eq!(
            g2.start, g1.complete_at,
            "second request waits for the bank"
        );
        assert_eq!(g2.queued, g1.complete_at - 1, "wait is charged as queueing");
        assert_eq!(b.port().stats().queue_cycles, g2.queued);
    }

    #[test]
    fn force_busy_closes_row() {
        let mut b = Bank::new();
        go(&mut b, 1, 0);
        b.force_busy(Cycles(10_000));
        assert_eq!(b.open_row(), None);
        assert_eq!(b.busy_until(), Cycles(10_000));
        let (o, g) = go(&mut b, 1, 0);
        assert_eq!(o, RowOutcome::Miss);
        assert_eq!(g.start, 10_000);
    }
}
