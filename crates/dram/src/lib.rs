//! # dve-dram — DDR4 DRAM device, controller, energy and fault model
//!
//! The memory substrate under both the baseline NUMA system and Dvé
//! (Table II of the paper: 8 GB DDR4-2400, 8 devices with an 8-bit
//! interface each, tCL = tRCD = tRP = 14.16 ns, tRAS = 32 ns, 1 KB row
//! buffer, 16 banks/rank, 1 channel/socket baseline and 2 channels/socket
//! when replication doubles capacity).
//!
//! * [`config`] — timing/geometry parameters with the paper's defaults.
//! * [`address`] — physical-address → (channel, rank, bank, row, column)
//!   decomposition.
//! * [`bank`] — per-bank row-buffer state machine (open row, busy-until).
//! * [`controller`] — the memory controller: open-page FR-FCFS-style
//!   access timing, per-request latency, row hit/miss/conflict and
//!   refresh accounting, and the ECC check hook at the controller edge
//!   (where Dvé performs detection).
//! * [`energy`] — Micron-datasheet-style energy accounting and the
//!   energy-delay-product metric used in §VII.
//! * [`fault`] — persistent fault state at controller/channel/chip/row
//!   granularity; failed components make reads return detection failures,
//!   which is what triggers Dvé's replica recovery.
//! * [`rowhammer`] — per-row activation tracking within refresh windows;
//!   quantifies the exposure reduction Dvé's replica load-balancing
//!   provides (§III).
//! * [`thermal`] — chip- and rank-level thermal profiles with Arrhenius
//!   FIT scaling, and the risk-inverse replica placement of §IV-C
//!   (including its rank-level future-work generalization).
//! * [`scrub`] — the patrol scrubber whose interval conditions every
//!   DUE/SDC coincidence term in §IV's analytical model.
//!
//! # Example
//!
//! ```
//! use dve_dram::config::DramConfig;
//! use dve_dram::controller::{AccessKind, MemoryController};
//! use dve_sim::time::Cycles;
//!
//! let mut mc = MemoryController::new(0, DramConfig::ddr4_2400());
//! let first = mc.access(0x0000, AccessKind::Read, Cycles(0));
//! let second = mc.access(0x0040, AccessKind::Read, Cycles(first.complete_at.raw()));
//! // Second access hits the open row: strictly faster.
//! assert!(second.latency < first.latency);
//! ```

pub mod address;
pub mod bank;
pub mod config;
pub mod controller;
pub mod energy;
pub mod fault;
pub mod rowhammer;
pub mod scrub;
pub mod thermal;

pub use config::DramConfig;
pub use controller::{AccessKind, AccessResult, MemoryController};
pub use energy::EnergyModel;
pub use fault::{FaultDomain, FaultState};
pub use rowhammer::RowHammerMonitor;
pub use scrub::Scrubber;
pub use thermal::{risk_inverse_placement, ThermalProfile};
