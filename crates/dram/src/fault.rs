//! Persistent fault state for the memory subsystem.
//!
//! §II of the paper argues that failures occur at *every* level of the
//! memory path: cells, chips, DIMM-shared circuitry, channels, and the
//! memory controller itself. [`FaultState`] records failed components at
//! each of those granularities; the controller consults it on every read
//! and reports how many codeword symbols the active faults corrupt, which
//! the attached ECC code then translates into a corrected / detected /
//! silent outcome. Dvé's recovery path (in the `dve` crate) reads the
//! replica whenever detection fires.

use crate::address::{AddressMapper, DramCoord};
use std::collections::HashSet;

/// A failed hardware component, mirroring Fig. 2's anatomy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultDomain {
    /// The whole memory controller (subsumes everything behind it).
    Controller,
    /// One channel behind this controller.
    Channel {
        /// Channel index.
        channel: usize,
    },
    /// One DRAM device (chip) — a chipkill-class fault: corrupts one
    /// 8-bit symbol of every codeword in the rank.
    Chip {
        /// Channel index.
        channel: usize,
        /// Rank within the channel.
        rank: usize,
        /// Device index within the rank.
        chip: usize,
    },
    /// One row in one bank (e.g. row-hammer victim / wordline failure).
    Row {
        /// Channel index.
        channel: usize,
        /// Rank within the channel.
        rank: usize,
        /// Bank within the rank.
        bank: usize,
        /// Row index.
        row: u64,
    },
    /// A single cache line (cell cluster failure).
    Line {
        /// Channel index.
        channel: usize,
        /// Channel-local line address (byte address / 64).
        line: u64,
    },
}

/// How a read is affected by active faults.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultImpact {
    /// Number of codeword symbols corrupted (chip-granularity count; a
    /// controller or channel fault corrupts all of them).
    pub symbols_corrupted: usize,
    /// Whether the fault wipes the entire codeword (controller/channel
    /// class faults — beyond any local code's reach).
    pub whole_codeword: bool,
}

/// The set of currently failed components for one memory controller.
///
/// # Example
///
/// ```
/// use dve_dram::fault::{FaultDomain, FaultState};
/// use dve_dram::address::AddressMapper;
/// use dve_dram::config::DramConfig;
///
/// let mapper = AddressMapper::new(DramConfig::ddr4_2400());
/// let mut faults = FaultState::new();
/// faults.fail(FaultDomain::Chip { channel: 0, rank: 0, chip: 3 });
/// let impact = faults.impact(0, 0x1000, &mapper).unwrap();
/// assert_eq!(impact.symbols_corrupted, 1); // one chip = one symbol
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultState {
    domains: HashSet<FaultDomain>,
}

impl FaultState {
    /// Creates an empty (fault-free) state.
    pub fn new() -> FaultState {
        FaultState::default()
    }

    /// Marks a component as failed.
    ///
    /// # Edge contract
    ///
    /// `fail` is a set insert: failing an already-failed domain is a
    /// no-op on the state, and the return value reports it accurately —
    /// `true` only when the domain transitions healthy → failed,
    /// `false` when it was already failed (double-`fail`). Callers that
    /// count injected faults (campaign samplers, the chaos schedule
    /// executor) must branch on this bool rather than assume every call
    /// planted something new.
    pub fn fail(&mut self, domain: FaultDomain) -> bool {
        self.domains.insert(domain)
    }

    /// Repairs a component (e.g. after a successful scrub of a transient
    /// fault, §V-B2).
    ///
    /// # Edge contract
    ///
    /// `repair` is a set remove: repairing a domain that is not failed
    /// is a no-op on the state, and the return value reports it
    /// accurately — `true` only when the domain transitions
    /// failed → healthy, `false` when it was absent (spurious repair).
    /// Recovery ledgers must only count a repair when this returns
    /// `true`.
    pub fn repair(&mut self, domain: FaultDomain) -> bool {
        self.domains.remove(&domain)
    }

    /// Whether `domain` is currently failed.
    pub fn is_failed(&self, domain: FaultDomain) -> bool {
        self.domains.contains(&domain)
    }

    /// Whether any fault is active.
    pub fn any(&self) -> bool {
        !self.domains.is_empty()
    }

    /// Number of active fault domains.
    pub fn len(&self) -> usize {
        self.domains.len()
    }

    /// Whether no fault is active.
    pub fn is_empty(&self) -> bool {
        self.domains.is_empty()
    }

    /// Iterates over the currently failed domains (arbitrary order).
    ///
    /// Fault campaigns use this to enumerate what to repair when
    /// simulating transients cleared by a scrub pass.
    pub fn iter(&self) -> impl Iterator<Item = FaultDomain> + '_ {
        self.domains.iter().copied()
    }

    /// Whether failed-or-not domain `d` would affect a read of
    /// channel-local byte address described by (`channel`, `coord`,
    /// `line`). Pure geometry — does not consult the failed set.
    fn domain_covers(d: FaultDomain, channel: usize, coord: &DramCoord, line: u64) -> bool {
        match d {
            FaultDomain::Controller => true,
            FaultDomain::Channel { channel: c } => c == channel,
            FaultDomain::Chip {
                channel: c,
                rank,
                chip: _,
            } => c == channel && rank == coord.rank,
            FaultDomain::Row {
                channel: c,
                rank,
                bank,
                row,
            } => c == channel && rank == coord.rank && bank == coord.bank && row == coord.row,
            FaultDomain::Line {
                channel: c,
                line: l,
            } => c == channel && l == line,
        }
    }

    /// The currently failed domains whose footprint covers a read of
    /// channel-local byte address `addr` on `channel`, in no particular
    /// order. The §V-B2 repair step uses this to know which transient
    /// domains a successful rewrite clears.
    pub fn domains_hitting(
        &self,
        channel: usize,
        addr: u64,
        mapper: &AddressMapper,
    ) -> Vec<FaultDomain> {
        if self.domains.is_empty() {
            return Vec::new();
        }
        let coord: DramCoord = mapper.decode(addr);
        let line = addr / mapper.config().line_bytes as u64;
        self.domains
            .iter()
            .copied()
            .filter(|&d| Self::domain_covers(d, channel, &coord, line))
            .collect()
    }

    /// Computes the impact of active faults on a read of channel-local
    /// byte address `addr` on `channel`. `None` means the read is clean.
    pub fn impact(&self, channel: usize, addr: u64, mapper: &AddressMapper) -> Option<FaultImpact> {
        if self.domains.is_empty() {
            return None;
        }
        let coord: DramCoord = mapper.decode(addr);
        let line = addr / mapper.config().line_bytes as u64;
        let mut symbols = 0usize;
        let mut whole = false;
        for d in &self.domains {
            if !Self::domain_covers(*d, channel, &coord, line) {
                continue;
            }
            match *d {
                FaultDomain::Chip { .. } => symbols += 1,
                // Controller/channel faults wipe the codeword; a dead
                // row or dead line loses the whole line.
                _ => whole = true,
            }
        }
        if whole {
            Some(FaultImpact {
                symbols_corrupted: mapper.config().devices_per_rank + 1,
                whole_codeword: true,
            })
        } else if symbols > 0 {
            Some(FaultImpact {
                symbols_corrupted: symbols,
                whole_codeword: false,
            })
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DramConfig;

    fn mapper() -> AddressMapper {
        AddressMapper::new(DramConfig::ddr4_2400())
    }

    #[test]
    fn clean_state_has_no_impact() {
        let f = FaultState::new();
        assert!(f.impact(0, 0, &mapper()).is_none());
        assert!(!f.any());
        assert!(f.is_empty());
    }

    #[test]
    fn controller_fault_hits_everything() {
        let mut f = FaultState::new();
        f.fail(FaultDomain::Controller);
        for addr in [0u64, 4096, 1 << 24] {
            let i = f.impact(0, addr, &mapper()).unwrap();
            assert!(i.whole_codeword);
        }
        let i = f.impact(1, 0, &mapper()).unwrap();
        assert!(i.whole_codeword, "controller fault covers all channels");
    }

    #[test]
    fn channel_fault_is_channel_local() {
        let mut f = FaultState::new();
        f.fail(FaultDomain::Channel { channel: 1 });
        assert!(f.impact(0, 0, &mapper()).is_none());
        assert!(f.impact(1, 0, &mapper()).unwrap().whole_codeword);
    }

    #[test]
    fn chip_fault_corrupts_one_symbol() {
        let mut f = FaultState::new();
        f.fail(FaultDomain::Chip {
            channel: 0,
            rank: 0,
            chip: 2,
        });
        let i = f.impact(0, 0x40, &mapper()).unwrap();
        assert_eq!(i.symbols_corrupted, 1);
        assert!(!i.whole_codeword);
    }

    #[test]
    fn two_chip_faults_corrupt_two_symbols() {
        let mut f = FaultState::new();
        f.fail(FaultDomain::Chip {
            channel: 0,
            rank: 0,
            chip: 2,
        });
        f.fail(FaultDomain::Chip {
            channel: 0,
            rank: 0,
            chip: 7,
        });
        let i = f.impact(0, 0x40, &mapper()).unwrap();
        assert_eq!(i.symbols_corrupted, 2);
    }

    #[test]
    fn row_fault_only_hits_that_row() {
        let m = mapper();
        let mut f = FaultState::new();
        let coord = m.decode(0x123400);
        f.fail(FaultDomain::Row {
            channel: 0,
            rank: coord.rank,
            bank: coord.bank,
            row: coord.row,
        });
        assert!(f.impact(0, 0x123400, &m).unwrap().whole_codeword);
        // A different row in the same bank is unaffected: advance by one
        // full row span across all banks.
        let other = 0x123400 + 1024 * 16;
        assert!(f.impact(0, other, &m).is_none());
    }

    #[test]
    fn line_fault_is_line_exact() {
        let m = mapper();
        let mut f = FaultState::new();
        f.fail(FaultDomain::Line {
            channel: 0,
            line: 0x1000 / 64,
        });
        assert!(f.impact(0, 0x1000, &m).is_some());
        assert!(f.impact(0, 0x1040, &m).is_none());
    }

    #[test]
    fn repair_restores_cleanliness() {
        let mut f = FaultState::new();
        let d = FaultDomain::Chip {
            channel: 0,
            rank: 0,
            chip: 0,
        };
        assert!(f.fail(d));
        assert!(!f.fail(d), "double-fail is idempotent");
        assert!(f.repair(d));
        assert!(!f.repair(d));
        assert!(f.impact(0, 0, &mapper()).is_none());
    }

    #[test]
    fn double_fail_reports_false_and_keeps_one_domain() {
        let mut f = FaultState::new();
        let d = FaultDomain::Row {
            channel: 0,
            rank: 1,
            bank: 3,
            row: 7,
        };
        assert!(f.fail(d), "first fail transitions healthy -> failed");
        assert!(!f.fail(d), "second fail reports already-failed");
        assert_eq!(f.len(), 1, "no duplicate domain recorded");
        assert!(f.is_failed(d));
        // One repair fully heals it — the double-fail did not stack.
        assert!(f.repair(d));
        assert!(f.is_empty());
    }

    #[test]
    fn repair_of_absent_domain_reports_false_and_is_noop() {
        let mut f = FaultState::new();
        let present = FaultDomain::Chip {
            channel: 0,
            rank: 0,
            chip: 4,
        };
        let absent = FaultDomain::Chip {
            channel: 0,
            rank: 0,
            chip: 5,
        };
        f.fail(present);
        assert!(!f.repair(absent), "spurious repair reports false");
        assert_eq!(f.len(), 1, "state untouched by spurious repair");
        assert!(f.is_failed(present));
        assert!(!f.is_failed(absent));
    }

    #[test]
    fn domains_hitting_selects_exactly_the_covering_faults() {
        let m = mapper();
        let mut f = FaultState::new();
        let chip = FaultDomain::Chip {
            channel: 0,
            rank: 0,
            chip: 2,
        };
        let line = FaultDomain::Line {
            channel: 0,
            line: 0x1000 / 64,
        };
        let other_chan = FaultDomain::Channel { channel: 1 };
        f.fail(chip);
        f.fail(line);
        f.fail(other_chan);
        let hits = f.domains_hitting(0, 0x1000, &m);
        assert_eq!(hits.len(), 2);
        assert!(hits.contains(&chip) && hits.contains(&line));
        // The neighbouring line only sees the rank-wide chip fault.
        assert_eq!(f.domains_hitting(0, 0x1040, &m), vec![chip]);
        // Channel 1 only sees the channel fault.
        assert_eq!(f.domains_hitting(1, 0x1000, &m), vec![other_chan]);
    }
}
