//! DRAM configuration with the paper's Table II defaults.

use dve_sim::time::{Cycles, Frequency};

/// Geometry and timing of one memory channel's DRAM.
///
/// Latencies are stored in *core* cycles (the simulation's single clock
/// domain, 3 GHz by default), pre-converted from the nanosecond values
/// the paper quotes.
///
/// # Example
///
/// ```
/// use dve_dram::config::DramConfig;
///
/// let cfg = DramConfig::ddr4_2400();
/// assert_eq!(cfg.banks_per_rank, 16);
/// assert_eq!(cfg.row_buffer_bytes, 8192);
/// // tCL = 14.16 ns at 3 GHz = ceil(42.48) = 43 core cycles
/// assert_eq!(cfg.t_cl.raw(), 43);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DramConfig {
    /// Core clock used as the global time base.
    pub core_clock: Frequency,
    /// CAS latency.
    pub t_cl: Cycles,
    /// RAS-to-CAS delay.
    pub t_rcd: Cycles,
    /// Row precharge time.
    pub t_rp: Cycles,
    /// Minimum row-active time.
    pub t_ras: Cycles,
    /// Data burst transfer time for one cache line.
    pub t_burst: Cycles,
    /// Average refresh command interval (tREFI).
    pub t_refi: Cycles,
    /// Refresh cycle time (tRFC) during which the rank is unavailable.
    pub t_rfc: Cycles,
    /// Row buffer (page) size in bytes at rank level (Table II's 1 KB
    /// per-chip page × 8 data devices = 8 KB per rank).
    pub row_buffer_bytes: usize,
    /// Banks per rank.
    pub banks_per_rank: usize,
    /// Ranks per channel.
    pub ranks_per_channel: usize,
    /// Data devices (chips) per rank — 8 × 8-bit in the paper.
    pub devices_per_rank: usize,
    /// Channel capacity in bytes (8 GB per DIMM/channel in Table II).
    pub channel_capacity: u64,
    /// Cache-line size in bytes.
    pub line_bytes: usize,
    /// Whether periodic refresh is modeled.
    pub refresh_enabled: bool,
}

impl DramConfig {
    /// Table II configuration: 8 GB DDR4-2400, 1 KB per-chip row buffer
    /// (8 KB across the rank's 8 devices), 16 banks/rank,
    /// tCL-tRCD-tRP-tRAS = 14.16-14.16-14.16-32 ns, 3 GHz core clock.
    pub fn ddr4_2400() -> DramConfig {
        let core = Frequency::ghz(3.0);
        DramConfig {
            core_clock: core,
            t_cl: core.cycles_for_ns_f64(14.16),
            t_rcd: core.cycles_for_ns_f64(14.16),
            t_rp: core.cycles_for_ns_f64(14.16),
            t_ras: core.cycles_for_ns_f64(32.0),
            // 64-byte line over a 64-bit channel at DDR4-2400:
            // 8 beats * (1/1200MHz)/2 ≈ 3.33 ns.
            t_burst: core.cycles_for_ns_f64(3.33),
            t_refi: core.cycles_for_ns_f64(7800.0),
            t_rfc: core.cycles_for_ns_f64(350.0),
            row_buffer_bytes: 8192,
            banks_per_rank: 16,
            ranks_per_channel: 1,
            devices_per_rank: 8,
            channel_capacity: 8 << 30,
            line_bytes: 64,
            refresh_enabled: true,
        }
    }

    /// Same device timing but with refresh modeling off (useful for
    /// deterministic latency unit tests).
    pub fn ddr4_2400_no_refresh() -> DramConfig {
        DramConfig {
            refresh_enabled: false,
            ..Self::ddr4_2400()
        }
    }

    /// A CXL-class far-memory pool: DDR4 media behind a serialized
    /// controller hop, so every column access carries an extra ~30 ns
    /// of media/controller latency, in exchange for 4× the capacity per
    /// channel. Used for the far node of a two-tier topology (the
    /// Volos & Sazeides replication-based protection scheme).
    pub fn far_tier() -> DramConfig {
        let core = Frequency::ghz(3.0);
        DramConfig {
            t_cl: core.cycles_for_ns_f64(14.16 + 30.0),
            channel_capacity: 32 << 30,
            ..Self::ddr4_2400()
        }
    }

    /// Random-access (row miss, bank precharged) read latency:
    /// tRCD + tCL + burst.
    pub fn miss_latency(&self) -> Cycles {
        self.t_rcd + self.t_cl + self.t_burst
    }

    /// Row-hit read latency: tCL + burst.
    pub fn hit_latency(&self) -> Cycles {
        self.t_cl + self.t_burst
    }

    /// Row-conflict latency: tRP + tRCD + tCL + burst.
    pub fn conflict_latency(&self) -> Cycles {
        self.t_rp + self.t_rcd + self.t_cl + self.t_burst
    }

    /// The minimum cycles any DRAM access occupies its bank — the
    /// row-hit service time. A domain-sharded parallel simulation
    /// (`dve_sim::pdes`) may fold this floor into its cross-domain
    /// channel latencies: a remote access can never complete in fewer
    /// cycles than link propagation plus this service minimum.
    pub fn min_service_cycles(&self) -> Cycles {
        self.hit_latency()
    }

    /// Total banks on the channel.
    pub fn total_banks(&self) -> usize {
        self.banks_per_rank * self.ranks_per_channel
    }

    /// Lines per row buffer.
    pub fn lines_per_row(&self) -> usize {
        self.row_buffer_bytes / self.line_bytes
    }
}

impl Default for DramConfig {
    fn default() -> Self {
        Self::ddr4_2400()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_ii_timings() {
        let c = DramConfig::ddr4_2400();
        assert_eq!(c.t_cl, c.t_rcd);
        assert_eq!(c.t_cl, c.t_rp);
        assert_eq!(c.t_ras.raw(), 96); // 32 ns * 3 GHz
        assert_eq!(c.total_banks(), 16);
        assert_eq!(c.lines_per_row(), 128);
    }

    #[test]
    fn latency_ordering() {
        let c = DramConfig::ddr4_2400();
        assert!(c.hit_latency() < c.miss_latency());
        assert!(c.miss_latency() < c.conflict_latency());
    }

    #[test]
    fn default_is_paper_config() {
        assert_eq!(DramConfig::default(), DramConfig::ddr4_2400());
    }

    #[test]
    fn far_tier_is_slower_and_larger() {
        let near = DramConfig::ddr4_2400();
        let far = DramConfig::far_tier();
        assert!(far.hit_latency() > near.hit_latency());
        assert!(far.miss_latency() > near.miss_latency());
        assert!(far.channel_capacity > near.channel_capacity);
        // Bank geometry (and therefore addressing) is unchanged, so a
        // far-node controller decodes the same line layout.
        assert_eq!(far.total_banks(), near.total_banks());
        assert_eq!(far.lines_per_row(), near.lines_per_row());
    }
}
