//! The memory controller: request timing, refresh, statistics, and the
//! ECC check performed at the controller edge.
//!
//! Dvé's end-to-end argument (§III) protects memory "at the highest end
//! point" — the memory controller — so this model is where detection
//! happens: every read consults the [`FaultState`] and the configured
//! [`EccProfile`] to decide whether the data returned is clean, silently
//! repaired (CE), or flagged uncorrectable (which, under Dvé, reroutes
//! the request to the replica's controller on the other socket).

use crate::address::AddressMapper;
use crate::bank::{Bank, RowOutcome};
use crate::config::DramConfig;
use crate::energy::EnergyModel;
use crate::fault::FaultState;
use crate::rowhammer::RowHammerMonitor;
use dve_ecc::code::CheckOutcome;
use dve_sim::event::EventQueue;
use dve_sim::time::Cycles;

/// Read or write.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// A read burst (fill or fetch).
    Read,
    /// A write burst (writeback).
    Write,
}

/// Timing result of one access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessResult {
    /// Latency observed by the requester (`complete_at - now`).
    pub latency: Cycles,
    /// Absolute completion time.
    pub complete_at: Cycles,
    /// When the first DRAM command issued: `issued_at - now` is the
    /// bank-queue share of the latency (waiting behind a busy bank,
    /// a tRAS hold, or an in-flight refresh) and
    /// `complete_at - issued_at` is the bank-service share.
    pub issued_at: Cycles,
    /// Row-buffer outcome.
    pub row: RowOutcome,
}

/// Symbolic capability of the ECC code attached to this controller: how
/// many corrupted symbols it can repair locally and how many it is
/// guaranteed to detect. (The concrete codecs live in `dve-ecc`; the
/// controller only needs the capability numbers.)
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EccProfile {
    /// Symbols repairable in place (0 for detect-only DSD/TSD).
    pub correct_symbols: usize,
    /// Symbols whose corruption is guaranteed to be detected.
    pub detect_symbols: usize,
}

impl EccProfile {
    /// Chipkill SSC-DSD: correct 1 symbol, detect 2.
    pub fn chipkill() -> EccProfile {
        EccProfile {
            correct_symbols: 1,
            detect_symbols: 2,
        }
    }

    /// Dvé+DSD: detect 2 symbols, correct none locally.
    pub fn dsd() -> EccProfile {
        EccProfile {
            correct_symbols: 0,
            detect_symbols: 2,
        }
    }

    /// Dvé+TSD: detect 3 symbols, correct none locally.
    pub fn tsd() -> EccProfile {
        EccProfile {
            correct_symbols: 0,
            detect_symbols: 3,
        }
    }
}

/// Periodic maintenance operations the controller self-schedules on its
/// internal [`EventQueue`]. Today this is only refresh; scrub and
/// rowhammer mitigation sweeps slot in as further variants without
/// touching the access path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum MaintEvent {
    /// An all-bank auto-refresh (tREFI cadence, tRFC busy window).
    Refresh,
}

/// Aggregated controller statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ControllerStats {
    /// Total read accesses.
    pub reads: u64,
    /// Total write accesses.
    pub writes: u64,
    /// Row-buffer hits.
    pub row_hits: u64,
    /// Row-buffer misses (bank precharged).
    pub row_misses: u64,
    /// Row-buffer conflicts (wrong row open).
    pub row_conflicts: u64,
    /// Refresh commands issued.
    pub refreshes: u64,
    /// Reads that returned a corrected error (CE).
    pub corrected_errors: u64,
    /// Reads that returned detected-uncorrectable (DUE before recovery).
    pub detected_errors: u64,
    /// Total cycles requests spent waiting for a busy bank before their
    /// first DRAM command issued (queuing delay).
    pub queue_delay_sum: u64,
}

/// One channel's memory controller.
///
/// # Example
///
/// ```
/// use dve_dram::config::DramConfig;
/// use dve_dram::controller::{AccessKind, MemoryController};
/// use dve_sim::time::Cycles;
///
/// let mut mc = MemoryController::new(0, DramConfig::ddr4_2400_no_refresh());
/// let r = mc.access(0x80, AccessKind::Read, Cycles(0));
/// assert_eq!(r.latency, mc.config().miss_latency());
/// ```
#[derive(Debug, Clone)]
pub struct MemoryController {
    channel: usize,
    mapper: AddressMapper,
    banks: Vec<Bank>,
    energy: EnergyModel,
    faults: FaultState,
    stats: ControllerStats,
    ecc: EccProfile,
    /// Self-scheduled maintenance (refresh today; scrub/mitigation later).
    /// Pre-sized so steady-state rescheduling never reallocates.
    maintenance: EventQueue<MaintEvent>,
    hammer: RowHammerMonitor,
}

impl MemoryController {
    /// Creates a controller for channel `channel`.
    pub fn new(channel: usize, cfg: DramConfig) -> MemoryController {
        let banks = vec![Bank::new(); cfg.total_banks()];
        let ranks = cfg.ranks_per_channel;
        let t_refi = cfg.t_refi;
        let refresh_enabled = cfg.refresh_enabled;
        let mut maintenance = EventQueue::with_capacity(4);
        if refresh_enabled {
            maintenance.push(t_refi.raw(), MaintEvent::Refresh);
        }
        MemoryController {
            channel,
            mapper: AddressMapper::new(cfg),
            banks,
            energy: EnergyModel::new(ranks),
            faults: FaultState::new(),
            stats: ControllerStats::default(),
            ecc: EccProfile::chipkill(),
            maintenance,
            hammer: RowHammerMonitor::ddr4_default(),
        }
    }

    /// The row-hammer exposure monitor (activations per row per refresh
    /// window).
    pub fn rowhammer(&self) -> &RowHammerMonitor {
        &self.hammer
    }

    /// Sets the ECC capability at this controller.
    pub fn set_ecc(&mut self, ecc: EccProfile) {
        self.ecc = ecc;
    }

    /// The configuration in use.
    pub fn config(&self) -> &DramConfig {
        self.mapper.config()
    }

    /// The channel index.
    pub fn channel(&self) -> usize {
        self.channel
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> ControllerStats {
        self.stats
    }

    /// The energy model (for EDP computation).
    pub fn energy(&self) -> &EnergyModel {
        &self.energy
    }

    /// Mutable access to the fault state (for fault-injection campaigns).
    pub fn faults_mut(&mut self) -> &mut FaultState {
        &mut self.faults
    }

    /// Shared access to the fault state.
    pub fn faults(&self) -> &FaultState {
        &self.faults
    }

    /// Drains maintenance events due at or before `now`, applying their
    /// effects and rescheduling the periodic ones. Refresh semantics are
    /// unchanged from the original counter-based implementation: each
    /// elapsed tREFI boundary forces every bank busy through tRFC.
    fn catch_up_refresh(&mut self, now: Cycles) {
        while self.maintenance.peek_time().is_some_and(|t| t <= now.raw()) {
            let (at, event) = self.maintenance.pop().expect("peeked event vanished");
            match event {
                MaintEvent::Refresh => {
                    let cfg = self.mapper.config();
                    let (t_rfc, t_refi) = (cfg.t_rfc, cfg.t_refi);
                    let until = Cycles(at) + t_rfc;
                    for b in &mut self.banks {
                        b.force_busy(until);
                    }
                    self.energy.count_refresh();
                    self.stats.refreshes += 1;
                    self.maintenance
                        .push(at + t_refi.raw(), MaintEvent::Refresh);
                }
            }
        }
    }

    /// Performs a timed access. The returned latency includes any queuing
    /// behind a busy bank or an in-progress refresh.
    pub fn access(&mut self, addr: u64, kind: AccessKind, now: Cycles) -> AccessResult {
        self.catch_up_refresh(now);
        let coord = self.mapper.decode(addr);
        let flat = self.mapper.flat_bank(coord);
        let cfg = self.mapper.config().clone();
        let (row, grant) = self.banks[flat].access(
            coord.row,
            now,
            cfg.t_cl,
            cfg.t_rcd,
            cfg.t_rp,
            cfg.t_ras,
            cfg.t_burst,
        );
        self.stats.queue_delay_sum += grant.queued;
        match row {
            RowOutcome::Hit => self.stats.row_hits += 1,
            RowOutcome::Miss => {
                self.stats.row_misses += 1;
                self.energy.count_activate();
                self.hammer.record_activation(flat, coord.row, grant.start);
            }
            RowOutcome::Conflict => {
                self.stats.row_conflicts += 1;
                self.energy.count_activate();
                self.hammer.record_activation(flat, coord.row, grant.start);
            }
        }
        match kind {
            AccessKind::Read => {
                self.stats.reads += 1;
                self.energy.count_read();
            }
            AccessKind::Write => {
                self.stats.writes += 1;
                self.energy.count_write();
            }
        }
        let finish = Cycles(grant.complete_at);
        AccessResult {
            latency: finish.saturating_sub(now),
            complete_at: finish,
            issued_at: Cycles(grant.start),
            row,
        }
    }

    /// Whether a read of `addr` would report detected-uncorrectable
    /// under the current fault state and ECC capability — the pure
    /// predicate behind [`read_with_check`], with no timing, stats or
    /// energy side effects. The recovery layer uses it to re-validate
    /// degraded-line records after heal events.
    ///
    /// [`read_with_check`]: MemoryController::read_with_check
    pub fn would_detect(&self, addr: u64) -> bool {
        match self.faults.impact(self.channel, addr, &self.mapper) {
            None => false,
            Some(i) => i.whole_codeword || i.symbols_corrupted > self.ecc.correct_symbols,
        }
    }

    /// The failed fault domains whose footprint covers `addr` at this
    /// controller (see [`FaultState::domains_hitting`]). The §V-B2
    /// repair step uses this to decide which transient domains a
    /// successful rewrite clears.
    pub fn faulty_domains_at(&self, addr: u64) -> Vec<crate::fault::FaultDomain> {
        self.faults
            .domains_hitting(self.channel, addr, &self.mapper)
    }

    /// Performs a read and runs the controller-edge ECC check against the
    /// active fault state.
    ///
    /// Returns the timing plus the check outcome:
    /// * no active fault → [`CheckOutcome::NoError`];
    /// * corrupted symbols within `correct_symbols` → repaired in place
    ///   ([`CheckOutcome::Corrected`], a CE);
    /// * anything larger (including whole-codeword controller/channel
    ///   faults) → [`CheckOutcome::DetectedUncorrectable`], Dvé's cue to
    ///   read the replica.
    pub fn read_with_check(&mut self, addr: u64, now: Cycles) -> (AccessResult, CheckOutcome) {
        let timing = self.access(addr, AccessKind::Read, now);
        let outcome = match self.faults.impact(self.channel, addr, &self.mapper) {
            None => CheckOutcome::NoError,
            Some(impact) => {
                if !impact.whole_codeword && impact.symbols_corrupted <= self.ecc.correct_symbols {
                    self.stats.corrected_errors += 1;
                    CheckOutcome::Corrected {
                        symbols_fixed: impact.symbols_corrupted,
                    }
                } else {
                    self.stats.detected_errors += 1;
                    CheckOutcome::DetectedUncorrectable {
                        syndrome_weight: impact.symbols_corrupted.min(self.ecc.detect_symbols),
                    }
                }
            }
        };
        (timing, outcome)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultDomain;

    fn mc() -> MemoryController {
        MemoryController::new(0, DramConfig::ddr4_2400_no_refresh())
    }

    #[test]
    fn first_access_misses_then_hits() {
        let mut m = mc();
        let r1 = m.access(0, AccessKind::Read, Cycles(0));
        assert_eq!(r1.row, RowOutcome::Miss);
        let r2 = m.access(64, AccessKind::Read, r1.complete_at);
        assert_eq!(r2.row, RowOutcome::Hit);
        assert_eq!(m.stats().row_hits, 1);
        assert_eq!(m.stats().row_misses, 1);
        assert_eq!(m.stats().reads, 2);
    }

    #[test]
    fn conflicting_rows_in_same_bank() {
        let mut m = mc();
        // Same bank, different row: advance by rows*banks span.
        let stride = 8192u64 * 16; // one row of each bank → same bank next row
        let r1 = m.access(0, AccessKind::Read, Cycles(0));
        let r2 = m.access(stride, AccessKind::Read, r1.complete_at);
        assert_eq!(r2.row, RowOutcome::Conflict);
        assert_eq!(m.stats().row_conflicts, 1);
    }

    #[test]
    fn parallel_banks_overlap() {
        let mut m = mc();
        // Two requests to different banks at t=0 don't serialize.
        let r1 = m.access(0, AccessKind::Read, Cycles(0));
        let r2 = m.access(8192, AccessKind::Read, Cycles(0)); // next bank
        assert_eq!(r1.latency, r2.latency);
    }

    #[test]
    fn same_bank_requests_serialize() {
        let mut m = mc();
        let r1 = m.access(0, AccessKind::Read, Cycles(0));
        let r2 = m.access(64, AccessKind::Read, Cycles(0));
        assert!(r2.complete_at > r1.complete_at);
    }

    #[test]
    fn writes_counted_separately() {
        let mut m = mc();
        m.access(0, AccessKind::Write, Cycles(0));
        assert_eq!(m.stats().writes, 1);
        assert_eq!(m.stats().reads, 0);
        assert_eq!(m.energy().writes(), 1);
    }

    #[test]
    fn refresh_fires_on_schedule() {
        let mut m = MemoryController::new(0, DramConfig::ddr4_2400());
        let t_refi = m.config().t_refi;
        // Jump past 3 refresh intervals.
        m.access(0, AccessKind::Read, Cycles(t_refi.raw() * 3 + 1));
        assert_eq!(m.stats().refreshes, 3);
    }

    #[test]
    fn refresh_delays_inflight_access() {
        let mut m = MemoryController::new(0, DramConfig::ddr4_2400());
        let t_refi = m.config().t_refi;
        let t_rfc = m.config().t_rfc;
        // Access lands exactly at the refresh boundary: the bank is busy
        // until the refresh completes.
        let r = m.access(0, AccessKind::Read, Cycles(t_refi.raw()));
        assert!(r.latency >= t_rfc);
    }

    #[test]
    fn clean_read_checks_clean() {
        let mut m = mc();
        let (_, outcome) = m.read_with_check(0x40, Cycles(0));
        assert_eq!(outcome, CheckOutcome::NoError);
    }

    #[test]
    fn chip_fault_corrected_by_chipkill() {
        let mut m = mc();
        m.set_ecc(EccProfile::chipkill());
        m.faults_mut().fail(FaultDomain::Chip {
            channel: 0,
            rank: 0,
            chip: 1,
        });
        let (_, outcome) = m.read_with_check(0x40, Cycles(0));
        assert_eq!(outcome, CheckOutcome::Corrected { symbols_fixed: 1 });
        assert_eq!(m.stats().corrected_errors, 1);
    }

    #[test]
    fn chip_fault_detected_not_corrected_by_dsd() {
        let mut m = mc();
        m.set_ecc(EccProfile::dsd());
        m.faults_mut().fail(FaultDomain::Chip {
            channel: 0,
            rank: 0,
            chip: 1,
        });
        let (_, outcome) = m.read_with_check(0x40, Cycles(0));
        assert!(matches!(
            outcome,
            CheckOutcome::DetectedUncorrectable { .. }
        ));
        assert_eq!(m.stats().detected_errors, 1);
    }

    #[test]
    fn controller_fault_beyond_any_local_code() {
        let mut m = mc();
        m.set_ecc(EccProfile::chipkill());
        m.faults_mut().fail(FaultDomain::Controller);
        let (_, outcome) = m.read_with_check(0x40, Cycles(0));
        assert!(matches!(
            outcome,
            CheckOutcome::DetectedUncorrectable { .. }
        ));
    }

    #[test]
    fn two_chip_faults_exceed_chipkill() {
        let mut m = mc();
        m.set_ecc(EccProfile::chipkill());
        m.faults_mut().fail(FaultDomain::Chip {
            channel: 0,
            rank: 0,
            chip: 1,
        });
        m.faults_mut().fail(FaultDomain::Chip {
            channel: 0,
            rank: 0,
            chip: 5,
        });
        let (_, outcome) = m.read_with_check(0x40, Cycles(0));
        assert!(matches!(
            outcome,
            CheckOutcome::DetectedUncorrectable { .. }
        ));
    }
}
