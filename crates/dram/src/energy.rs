//! DRAM energy accounting and the energy-delay product metric (§VII).
//!
//! The paper measures the energy-delay product (EDP) of the DRAM
//! subsystem "using the Micron datasheet" and computes system EDP
//! assuming memory is ~18% of total system power in a 2-socket NUMA box
//! [Barroso et al.]. We use representative per-operation energies derived
//! from Micron 8 Gb DDR4-2400 IDD figures (VDD = 1.2 V); absolute joules
//! are not the point — the *relative* EDP between baseline and replicated
//! configurations is.

use dve_sim::time::{Cycles, Frequency};

/// Per-operation and background energy constants, in picojoules /
/// picowatts terms (stored as nanojoules and milliwatts for readability).
#[derive(Debug, Clone, PartialEq)]
pub struct EnergyParams {
    /// Energy of one activate+precharge pair (nJ).
    pub act_pre_nj: f64,
    /// Energy of one 64-byte read burst, incl. I/O (nJ).
    pub read_nj: f64,
    /// Energy of one 64-byte write burst (nJ).
    pub write_nj: f64,
    /// Energy of one per-rank refresh command (nJ).
    pub refresh_nj: f64,
    /// Background (standby + peripheral) power per rank (mW).
    pub background_mw_per_rank: f64,
}

impl EnergyParams {
    /// Background (standby + peripheral) power per DRAM rank, in
    /// milliwatts — the Micron 8 Gb DDR4-2400 standby figure (IDD2N/3N
    /// class at VDD = 1.2 V plus peripheral overheads, ≈150 mW). This is
    /// the single source of truth for the standby term: the system
    /// runner's region-level background-energy accounting and
    /// [`EnergyModel::total_joules`] both derive from it.
    pub const BACKGROUND_MW_PER_RANK: f64 = 150.0;

    /// Background energy of `ranks` ranks held in standby for
    /// `seconds`, in joules.
    pub fn background_joules(ranks: usize, seconds: f64) -> f64 {
        Self::BACKGROUND_MW_PER_RANK * 1e-3 * ranks as f64 * seconds
    }
}

impl Default for EnergyParams {
    fn default() -> Self {
        // Micron 8Gb DDR4-2400 approximations: IDD0-based ACT/PRE ~2 nJ,
        // IDD4R/W bursts ~3.5/3.8 nJ per line, tRFC*IDD5 ~28 nJ/refresh,
        // BACKGROUND_MW_PER_RANK standby per rank.
        EnergyParams {
            act_pre_nj: 2.0,
            read_nj: 3.5,
            write_nj: 3.8,
            refresh_nj: 28.0,
            background_mw_per_rank: EnergyParams::BACKGROUND_MW_PER_RANK,
        }
    }
}

/// Accumulates DRAM energy over a simulation and computes EDP.
///
/// # Example
///
/// ```
/// use dve_dram::energy::EnergyModel;
/// use dve_sim::time::{Cycles, Frequency};
///
/// let mut e = EnergyModel::new(1); // one rank
/// e.count_read();
/// e.count_activate();
/// let joules = e.total_joules(Cycles(3_000_000_000), Frequency::ghz(3.0));
/// assert!(joules > 0.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct EnergyModel {
    params: EnergyParams,
    ranks: usize,
    activates: u64,
    reads: u64,
    writes: u64,
    refreshes: u64,
}

impl EnergyModel {
    /// Creates a model for a subsystem with `ranks` total DRAM ranks.
    pub fn new(ranks: usize) -> EnergyModel {
        Self::with_params(ranks, EnergyParams::default())
    }

    /// Creates a model with explicit energy parameters.
    pub fn with_params(ranks: usize, params: EnergyParams) -> EnergyModel {
        EnergyModel {
            params,
            ranks,
            activates: 0,
            reads: 0,
            writes: 0,
            refreshes: 0,
        }
    }

    /// Records one activate+precharge.
    pub fn count_activate(&mut self) {
        self.activates += 1;
    }

    /// Records one read burst.
    pub fn count_read(&mut self) {
        self.reads += 1;
    }

    /// Records one write burst.
    pub fn count_write(&mut self) {
        self.writes += 1;
    }

    /// Records one refresh command.
    pub fn count_refresh(&mut self) {
        self.refreshes += 1;
    }

    /// Merges counts from another model (e.g. per-channel submodels).
    pub fn merge(&mut self, other: &EnergyModel) {
        self.activates += other.activates;
        self.reads += other.reads;
        self.writes += other.writes;
        self.refreshes += other.refreshes;
        self.ranks += other.ranks;
    }

    /// Number of read bursts recorded.
    pub fn reads(&self) -> u64 {
        self.reads
    }

    /// Number of write bursts recorded.
    pub fn writes(&self) -> u64 {
        self.writes
    }

    /// Number of activates recorded.
    pub fn activates(&self) -> u64 {
        self.activates
    }

    /// Dynamic energy only (no background), in joules.
    pub fn dynamic_joules(&self) -> f64 {
        (self.activates as f64 * self.params.act_pre_nj
            + self.reads as f64 * self.params.read_nj
            + self.writes as f64 * self.params.write_nj
            + self.refreshes as f64 * self.params.refresh_nj)
            * 1e-9
    }

    /// Total energy (dynamic + background) over an execution of
    /// `duration` at `clock`, in joules.
    pub fn total_joules(&self, duration: Cycles, clock: Frequency) -> f64 {
        let seconds = clock.nanos_for(duration) * 1e-9;
        self.dynamic_joules()
            + self.params.background_mw_per_rank * 1e-3 * self.ranks as f64 * seconds
    }

    /// Memory energy-delay product: total energy × execution time (J·s).
    pub fn memory_edp(&self, duration: Cycles, clock: Frequency) -> f64 {
        let seconds = clock.nanos_for(duration) * 1e-9;
        self.total_joules(duration, clock) * seconds
    }
}

/// System-level EDP from memory EDP using the paper's assumption that
/// memory is `memory_fraction` (≈0.18) of total system power: scaling the
/// memory power term and holding the rest constant.
///
/// Given memory energy `e_mem` over time `t`, system energy is
/// `e_mem / memory_fraction` for the *baseline*; for a variant with
/// memory energy `e_mem'` and time `t'`, the non-memory power is the same
/// `P_rest = e_mem * (1 - f) / (f * t)`, so
/// `E_sys' = e_mem' + P_rest * t'` and `EDP_sys' = E_sys' * t'`.
pub fn system_edp(
    baseline_mem_joules: f64,
    baseline_seconds: f64,
    variant_mem_joules: f64,
    variant_seconds: f64,
    memory_fraction: f64,
) -> f64 {
    assert!(
        memory_fraction > 0.0 && memory_fraction < 1.0,
        "memory fraction must be in (0,1)"
    );
    let rest_power =
        baseline_mem_joules * (1.0 - memory_fraction) / (memory_fraction * baseline_seconds);
    let system_energy = variant_mem_joules + rest_power * variant_seconds;
    system_energy * variant_seconds
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dynamic_energy_adds_up() {
        let mut e = EnergyModel::new(1);
        e.count_activate();
        e.count_read();
        e.count_write();
        e.count_refresh();
        let expected = (2.0 + 3.5 + 3.8 + 28.0) * 1e-9;
        assert!((e.dynamic_joules() - expected).abs() < 1e-18);
    }

    #[test]
    fn background_constant_is_single_source_of_truth() {
        // The named constant, the default params and the helper must all
        // agree, so total energy computed through any of them is
        // identical to the historical inline `150.0e-3 * ranks * s`.
        assert_eq!(EnergyParams::BACKGROUND_MW_PER_RANK, 150.0);
        assert_eq!(
            EnergyParams::default().background_mw_per_rank,
            EnergyParams::BACKGROUND_MW_PER_RANK
        );
        let seconds = 0.25;
        let ranks = 4;
        let via_helper = EnergyParams::background_joules(ranks, seconds);
        let via_literal = 150.0e-3 * ranks as f64 * seconds;
        assert_eq!(via_helper, via_literal);
        // And the model's total = dynamic + the same background term.
        let mut e = EnergyModel::new(ranks);
        e.count_read();
        let t = Cycles(750_000_000); // 0.25 s at 3 GHz
        let f = Frequency::ghz(3.0);
        let total = e.total_joules(t, f);
        assert!((total - (e.dynamic_joules() + via_helper)).abs() < 1e-15);
    }

    #[test]
    fn background_scales_with_ranks_and_time() {
        let e1 = EnergyModel::new(1);
        let e2 = EnergyModel::new(2);
        let t = Cycles(3_000_000_000); // 1 s at 3 GHz
        let f = Frequency::ghz(3.0);
        let j1 = e1.total_joules(t, f);
        let j2 = e2.total_joules(t, f);
        assert!((j2 / j1 - 2.0).abs() < 1e-9);
        assert!((j1 - 0.150).abs() < 1e-9); // 150 mW for 1 s
    }

    #[test]
    fn edp_is_energy_times_delay() {
        let mut e = EnergyModel::new(1);
        e.count_read();
        let t = Cycles(3_000_000);
        let f = Frequency::ghz(3.0);
        let edp = e.memory_edp(t, f);
        let expect = e.total_joules(t, f) * 1e-3;
        assert!((edp - expect).abs() < 1e-15);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = EnergyModel::new(1);
        a.count_read();
        let mut b = EnergyModel::new(1);
        b.count_read();
        b.count_write();
        a.merge(&b);
        assert_eq!(a.reads(), 2);
        assert_eq!(a.writes(), 1);
    }

    #[test]
    fn system_edp_baseline_identity() {
        // With identical variant == baseline, system EDP reduces to
        // (e_mem / f) * t.
        let edp = system_edp(1.0, 2.0, 1.0, 2.0, 0.18);
        let expect = (1.0 / 0.18) * 2.0;
        assert!((edp - expect).abs() < 1e-9);
    }

    #[test]
    fn faster_variant_lowers_system_edp_despite_higher_mem_energy() {
        // The paper's §VII result in miniature: +40% memory energy but
        // -15% runtime still lowers system EDP.
        let base = system_edp(1.0, 2.0, 1.0, 2.0, 0.18);
        let variant = system_edp(1.0, 2.0, 1.4, 1.7, 0.18);
        assert!(variant < base);
    }

    #[test]
    #[should_panic(expected = "memory fraction")]
    fn bad_fraction_rejected() {
        system_edp(1.0, 1.0, 1.0, 1.0, 1.5);
    }
}
