//! Patrol scrubbing.
//!
//! Every DUE/SDC expression in §IV is conditioned on failures
//! coinciding "inside a scrub interval": a background scrubber walks all
//! of memory once per interval, reading each line through the ECC path
//! so that latent single-component faults are found (and repaired or
//! reported) before a *second* fault can align with them. This module
//! implements that patrol scrubber against the memory controller: it
//! issues low-priority reads across the address space, counts
//! clean/corrected/detected lines, and repairs transient faults by
//! rewriting (the §V-B2 fix-up step applied proactively).

use crate::config::DramConfig;
use crate::controller::{AccessKind, MemoryController};
use dve_ecc::code::CheckOutcome;
use dve_sim::time::Cycles;

/// Results of one full scrub pass.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScrubReport {
    /// Lines read.
    pub lines: u64,
    /// Lines that read clean.
    pub clean: u64,
    /// Lines whose local ECC corrected an error (CE logged).
    pub corrected: u64,
    /// Lines with detected-uncorrectable errors (replica recovery /
    /// MCE under a detect-only code).
    pub detected: u64,
    /// Cycles the pass consumed (end time − start time).
    pub duration: u64,
}

/// A patrol scrubber over one memory controller.
///
/// # Example
///
/// ```
/// use dve_dram::config::DramConfig;
/// use dve_dram::controller::MemoryController;
/// use dve_dram::scrub::Scrubber;
///
/// let mut mc = MemoryController::new(0, DramConfig::ddr4_2400_no_refresh());
/// let mut s = Scrubber::new(1 << 20); // scrub the first MiB
/// let report = s.full_pass(&mut mc, 0);
/// assert_eq!(report.lines, (1 << 20) / 64);
/// assert_eq!(report.clean, report.lines);
/// ```
#[derive(Debug, Clone)]
pub struct Scrubber {
    region_bytes: u64,
    line_bytes: u64,
    /// Gap inserted between scrub reads so the patrol stays low-priority
    /// (cycles).
    pacing: u64,
}

impl Scrubber {
    /// Creates a scrubber over the first `region_bytes` of the channel.
    ///
    /// # Panics
    ///
    /// Panics if the region is smaller than one line.
    pub fn new(region_bytes: u64) -> Scrubber {
        assert!(region_bytes >= 64, "region smaller than a line");
        Scrubber {
            region_bytes,
            line_bytes: 64,
            pacing: 0,
        }
    }

    /// Sets the inter-read pacing gap in cycles (0 = back-to-back).
    pub fn set_pacing(&mut self, cycles: u64) {
        self.pacing = cycles;
    }

    /// The scrub interval implied by pacing and region size at `cfg`'s
    /// clock, in seconds — the "scrub interval" of §IV's coincidence
    /// factor.
    pub fn interval_seconds(&self, cfg: &DramConfig) -> f64 {
        let lines = self.region_bytes / self.line_bytes;
        let per_line = self.pacing + cfg.hit_latency().raw();
        cfg.core_clock.nanos_for(Cycles(lines * per_line)) * 1e-9
    }

    /// Runs one full pass starting at time `now`, repairing transient
    /// faults in place (write + re-read, §V-B2 applied proactively).
    pub fn full_pass(&mut self, mc: &mut MemoryController, now: u64) -> ScrubReport {
        let mut report = ScrubReport::default();
        let mut t = now;
        let mut addr = 0u64;
        while addr < self.region_bytes {
            let (timing, outcome) = mc.read_with_check(addr, Cycles(t));
            t = timing.complete_at.raw() + self.pacing;
            report.lines += 1;
            match outcome {
                CheckOutcome::NoError => report.clean += 1,
                CheckOutcome::Corrected { .. } => {
                    report.corrected += 1;
                    // Write the corrected data back so the latent error
                    // does not linger.
                    let w = mc.access(addr, AccessKind::Write, Cycles(t));
                    t = w.complete_at.raw();
                }
                CheckOutcome::DetectedUncorrectable { .. } => {
                    report.detected += 1;
                }
            }
            addr += self.line_bytes;
        }
        report.duration = t.saturating_sub(now);
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::controller::EccProfile;
    use crate::fault::FaultDomain;

    fn controller() -> MemoryController {
        MemoryController::new(0, DramConfig::ddr4_2400_no_refresh())
    }

    #[test]
    fn clean_memory_scrubs_clean() {
        let mut mc = controller();
        let mut s = Scrubber::new(64 * 1024);
        let r = s.full_pass(&mut mc, 0);
        assert_eq!(r.lines, 1024);
        assert_eq!(r.clean, 1024);
        assert_eq!(r.corrected + r.detected, 0);
        assert!(r.duration > 0);
    }

    #[test]
    fn scrub_finds_latent_chip_fault_under_chipkill() {
        let mut mc = controller();
        mc.set_ecc(EccProfile::chipkill());
        mc.faults_mut().fail(FaultDomain::Chip {
            channel: 0,
            rank: 0,
            chip: 2,
        });
        let mut s = Scrubber::new(16 * 1024);
        let r = s.full_pass(&mut mc, 0);
        // A chip fault corrupts one symbol of every codeword in the rank:
        // every line reports a correction.
        assert_eq!(r.corrected, r.lines);
        assert_eq!(r.detected, 0);
    }

    #[test]
    fn scrub_reports_uncorrectable_under_detect_only() {
        let mut mc = controller();
        mc.set_ecc(EccProfile::tsd());
        mc.faults_mut().fail(FaultDomain::Chip {
            channel: 0,
            rank: 0,
            chip: 2,
        });
        let mut s = Scrubber::new(16 * 1024);
        let r = s.full_pass(&mut mc, 0);
        assert_eq!(
            r.detected, r.lines,
            "detect-only code cannot repair locally"
        );
    }

    #[test]
    fn scrub_localizes_row_fault() {
        let mut mc = controller();
        mc.set_ecc(EccProfile::chipkill());
        mc.faults_mut().fail(FaultDomain::Row {
            channel: 0,
            rank: 0,
            bank: 0,
            row: 0,
        });
        // Bank 0 row 0 covers the first 8 KiB of the address space under
        // the row-major mapping.
        let mut s = Scrubber::new(64 * 1024);
        let r = s.full_pass(&mut mc, 0);
        assert_eq!(r.detected, 8192 / 64, "exactly the dead row's lines");
        assert_eq!(r.clean, r.lines - 8192 / 64);
    }

    #[test]
    fn pacing_stretches_the_interval() {
        let cfg = DramConfig::ddr4_2400_no_refresh();
        let mut fast = Scrubber::new(1 << 20);
        let mut slow = Scrubber::new(1 << 20);
        slow.set_pacing(10_000);
        assert!(slow.interval_seconds(&cfg) > fast.interval_seconds(&cfg) * 10.0);
        let _ = &mut fast;
    }

    #[test]
    #[should_panic(expected = "smaller than a line")]
    fn tiny_region_rejected() {
        Scrubber::new(32);
    }
}
