//! Patrol scrubbing.
//!
//! Every DUE/SDC expression in §IV is conditioned on failures
//! coinciding "inside a scrub interval": a background scrubber walks all
//! of memory once per interval, reading each line through the ECC path
//! so that latent single-component faults are found (and repaired or
//! reported) before a *second* fault can align with them. This module
//! implements that patrol scrubber against the memory controller: it
//! issues low-priority reads across the address space, counts
//! clean/corrected/detected lines, and repairs transient faults by
//! rewriting (the §V-B2 fix-up step applied proactively).

use crate::config::DramConfig;
use crate::controller::{AccessKind, MemoryController};
use dve_ecc::code::CheckOutcome;
use dve_sim::time::Cycles;

/// Results of one full scrub pass.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScrubReport {
    /// Lines read.
    pub lines: u64,
    /// Lines that read clean.
    pub clean: u64,
    /// Lines whose local ECC corrected an error (CE logged).
    pub corrected: u64,
    /// Lines with detected-uncorrectable errors (replica recovery /
    /// MCE under a detect-only code).
    pub detected: u64,
    /// Cycles the pass consumed (end time − start time).
    pub duration: u64,
}

/// Results of one paced scrub slice ([`Scrubber::slice`]).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ScrubSlice {
    /// The delta report for just this slice (same invariants as a full
    /// pass: `lines == clean + corrected + detected`).
    pub report: ScrubReport,
    /// Byte addresses of lines with detected-uncorrectable errors —
    /// the caller escalates these to the §V-B2 recovery path.
    pub detected_addrs: Vec<u64>,
    /// Time the slice finished (last read/repair completion + pacing).
    pub end: u64,
    /// Whether the cursor wrapped past the end of the region (one
    /// patrol pass completed) during this slice.
    pub wrapped: bool,
}

/// A patrol scrubber over one memory controller.
///
/// Supports both an instantaneous [`full_pass`] (out-of-band, as used
/// by the untimed reliability unit tests) and paced [`slice`]s driven
/// from the simulation's event queue, where each slice's reads occupy
/// banks and therefore contend with demand traffic.
///
/// [`full_pass`]: Scrubber::full_pass
/// [`slice`]: Scrubber::slice
///
/// # Example
///
/// ```
/// use dve_dram::config::DramConfig;
/// use dve_dram::controller::MemoryController;
/// use dve_dram::scrub::Scrubber;
///
/// let mut mc = MemoryController::new(0, DramConfig::ddr4_2400_no_refresh());
/// let mut s = Scrubber::new(1 << 20); // scrub the first MiB
/// let report = s.full_pass(&mut mc, 0);
/// assert_eq!(report.lines, (1 << 20) / 64);
/// assert_eq!(report.clean, report.lines);
/// ```
#[derive(Debug, Clone)]
pub struct Scrubber {
    region_bytes: u64,
    line_bytes: u64,
    /// Gap inserted between scrub reads so the patrol stays low-priority
    /// (cycles).
    pacing: u64,
    /// Patrol cursor for paced slices: the next byte address to scrub.
    cursor: u64,
    /// Completed patrol passes (cursor wraps).
    passes: u64,
}

impl Scrubber {
    /// Creates a scrubber over the first `region_bytes` of the channel.
    ///
    /// # Panics
    ///
    /// Panics if the region is smaller than one line.
    pub fn new(region_bytes: u64) -> Scrubber {
        assert!(region_bytes >= 64, "region smaller than a line");
        Scrubber {
            region_bytes,
            line_bytes: 64,
            pacing: 0,
            cursor: 0,
            passes: 0,
        }
    }

    /// Sets the inter-read pacing gap in cycles (0 = back-to-back).
    pub fn set_pacing(&mut self, cycles: u64) {
        self.pacing = cycles;
    }

    /// The scrub interval implied by pacing and region size at `cfg`'s
    /// clock, in seconds — the "scrub interval" of §IV's coincidence
    /// factor.
    pub fn interval_seconds(&self, cfg: &DramConfig) -> f64 {
        let lines = self.region_bytes / self.line_bytes;
        let per_line = self.pacing + cfg.hit_latency().raw();
        cfg.core_clock.nanos_for(Cycles(lines * per_line)) * 1e-9
    }

    /// The patrol cursor (next byte address a [`slice`] will scrub).
    ///
    /// [`slice`]: Scrubber::slice
    pub fn cursor(&self) -> u64 {
        self.cursor
    }

    /// Completed patrol passes (cursor wraps) across all slices.
    pub fn passes(&self) -> u64 {
        self.passes
    }

    /// Scrubs one line at `addr`, updating `report` and returning the
    /// time after the read (and any repair write) plus pacing. Pushes
    /// detected-uncorrectable addresses into `detected_addrs` if given.
    fn scrub_line(
        &self,
        mc: &mut MemoryController,
        addr: u64,
        t: u64,
        report: &mut ScrubReport,
        detected_addrs: Option<&mut Vec<u64>>,
    ) -> u64 {
        let (timing, outcome) = mc.read_with_check(addr, Cycles(t));
        let mut t = timing.complete_at.raw() + self.pacing;
        report.lines += 1;
        match outcome {
            CheckOutcome::NoError => report.clean += 1,
            CheckOutcome::Corrected { .. } => {
                report.corrected += 1;
                // Write the corrected data back so the latent error
                // does not linger.
                let w = mc.access(addr, AccessKind::Write, Cycles(t));
                t = w.complete_at.raw();
            }
            CheckOutcome::DetectedUncorrectable { .. } => {
                report.detected += 1;
                if let Some(v) = detected_addrs {
                    v.push(addr);
                }
            }
        }
        t
    }

    /// Runs one full pass starting at time `now`, repairing transient
    /// faults in place (write + re-read, §V-B2 applied proactively).
    ///
    /// Out-of-band: walks the whole region in one call and does not
    /// move the paced-slice cursor.
    pub fn full_pass(&mut self, mc: &mut MemoryController, now: u64) -> ScrubReport {
        let mut report = ScrubReport::default();
        let mut t = now;
        let mut addr = 0u64;
        while addr < self.region_bytes {
            t = self.scrub_line(mc, addr, t, &mut report, None);
            addr += self.line_bytes;
        }
        report.duration = t.saturating_sub(now);
        report
    }

    /// Runs one paced slice of at most `max_lines` lines starting at
    /// the patrol cursor at time `now`. The reads go through the
    /// controller's normal timed path, so they occupy banks and
    /// contend with demand traffic; the returned [`ScrubSlice`] carries
    /// the delta report, the detected-uncorrectable addresses for
    /// escalation, and the finish time for rescheduling the next slice.
    ///
    /// A slice never crosses a pass boundary: when the cursor reaches
    /// the end of the region the slice ends there (possibly shorter
    /// than `max_lines`) with `wrapped == true`, so slice reports sum
    /// exactly to full-pass reports.
    ///
    /// # Panics
    ///
    /// Panics if `max_lines` is zero.
    pub fn slice(&mut self, mc: &mut MemoryController, now: u64, max_lines: u64) -> ScrubSlice {
        assert!(max_lines > 0, "a scrub slice must cover at least one line");
        let mut out = ScrubSlice {
            end: now,
            ..ScrubSlice::default()
        };
        let mut t = now;
        for _ in 0..max_lines {
            let addr = self.cursor;
            t = self.scrub_line(mc, addr, t, &mut out.report, Some(&mut out.detected_addrs));
            self.cursor += self.line_bytes;
            if self.cursor >= self.region_bytes {
                self.cursor = 0;
                self.passes += 1;
                out.wrapped = true;
                break; // never cross a pass boundary inside one slice
            }
        }
        out.report.duration = t.saturating_sub(now);
        out.end = t;
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::controller::EccProfile;
    use crate::fault::FaultDomain;

    fn controller() -> MemoryController {
        MemoryController::new(0, DramConfig::ddr4_2400_no_refresh())
    }

    #[test]
    fn clean_memory_scrubs_clean() {
        let mut mc = controller();
        let mut s = Scrubber::new(64 * 1024);
        let r = s.full_pass(&mut mc, 0);
        assert_eq!(r.lines, 1024);
        assert_eq!(r.clean, 1024);
        assert_eq!(r.corrected + r.detected, 0);
        assert!(r.duration > 0);
    }

    #[test]
    fn scrub_finds_latent_chip_fault_under_chipkill() {
        let mut mc = controller();
        mc.set_ecc(EccProfile::chipkill());
        mc.faults_mut().fail(FaultDomain::Chip {
            channel: 0,
            rank: 0,
            chip: 2,
        });
        let mut s = Scrubber::new(16 * 1024);
        let r = s.full_pass(&mut mc, 0);
        // A chip fault corrupts one symbol of every codeword in the rank:
        // every line reports a correction.
        assert_eq!(r.corrected, r.lines);
        assert_eq!(r.detected, 0);
    }

    #[test]
    fn scrub_reports_uncorrectable_under_detect_only() {
        let mut mc = controller();
        mc.set_ecc(EccProfile::tsd());
        mc.faults_mut().fail(FaultDomain::Chip {
            channel: 0,
            rank: 0,
            chip: 2,
        });
        let mut s = Scrubber::new(16 * 1024);
        let r = s.full_pass(&mut mc, 0);
        assert_eq!(
            r.detected, r.lines,
            "detect-only code cannot repair locally"
        );
    }

    #[test]
    fn scrub_localizes_row_fault() {
        let mut mc = controller();
        mc.set_ecc(EccProfile::chipkill());
        mc.faults_mut().fail(FaultDomain::Row {
            channel: 0,
            rank: 0,
            bank: 0,
            row: 0,
        });
        // Bank 0 row 0 covers the first 8 KiB of the address space under
        // the row-major mapping.
        let mut s = Scrubber::new(64 * 1024);
        let r = s.full_pass(&mut mc, 0);
        assert_eq!(r.detected, 8192 / 64, "exactly the dead row's lines");
        assert_eq!(r.clean, r.lines - 8192 / 64);
    }

    #[test]
    fn pacing_stretches_the_interval() {
        let cfg = DramConfig::ddr4_2400_no_refresh();
        let mut fast = Scrubber::new(1 << 20);
        let mut slow = Scrubber::new(1 << 20);
        slow.set_pacing(10_000);
        assert!(slow.interval_seconds(&cfg) > fast.interval_seconds(&cfg) * 10.0);
        let _ = &mut fast;
    }

    #[test]
    #[should_panic(expected = "smaller than a line")]
    fn tiny_region_rejected() {
        Scrubber::new(32);
    }

    #[test]
    fn slices_cover_the_region_like_a_full_pass() {
        let mut mc_full = controller();
        let mut mc_sliced = controller();
        for mc in [&mut mc_full, &mut mc_sliced] {
            mc.set_ecc(EccProfile::chipkill());
            mc.faults_mut().fail(FaultDomain::Row {
                channel: 0,
                rank: 0,
                bank: 0,
                row: 0,
            });
        }
        let mut s_full = Scrubber::new(64 * 1024);
        let full = s_full.full_pass(&mut mc_full, 0);

        let mut s = Scrubber::new(64 * 1024);
        let mut sum = ScrubReport::default();
        let mut t = 0u64;
        let mut wraps = 0;
        while wraps == 0 {
            let out = s.slice(&mut mc_sliced, t, 100);
            sum.lines += out.report.lines;
            sum.clean += out.report.clean;
            sum.corrected += out.report.corrected;
            sum.detected += out.report.detected;
            t = out.end;
            if out.wrapped {
                wraps += 1;
            }
        }
        // Slices never cross a pass boundary, so their reports sum
        // exactly to the full pass.
        assert_eq!(sum.lines, full.lines);
        assert_eq!(sum.detected, full.detected, "same dead row found");
        assert_eq!(sum.clean, full.clean);
        assert_eq!(sum.corrected, full.corrected);
        assert_eq!(s.passes(), 1);
        assert_eq!(s.cursor(), 0, "cursor back at the region start");
    }

    #[test]
    fn slice_reports_detected_addresses_for_escalation() {
        let mut mc = controller();
        mc.set_ecc(EccProfile::chipkill());
        mc.faults_mut().fail(FaultDomain::Row {
            channel: 0,
            rank: 0,
            bank: 0,
            row: 0,
        });
        let mut s = Scrubber::new(16 * 1024);
        let out = s.slice(&mut mc, 0, 16);
        assert_eq!(out.report.lines, 16);
        assert_eq!(out.detected_addrs.len() as u64, out.report.detected);
        for a in &out.detected_addrs {
            assert!(*a < 8192, "dead row covers the first 8 KiB");
        }
        assert!(out.end > 0);
        assert!(!out.wrapped);
        assert_eq!(s.cursor(), 16 * 64);
    }

    #[test]
    fn slice_invariant_lines_partition() {
        let mut mc = controller();
        mc.set_ecc(EccProfile::tsd());
        mc.faults_mut().fail(FaultDomain::Chip {
            channel: 0,
            rank: 0,
            chip: 1,
        });
        let mut s = Scrubber::new(8 * 1024);
        let out = s.slice(&mut mc, 100, 32);
        let r = out.report;
        assert_eq!(r.lines, r.clean + r.corrected + r.detected);
        assert_eq!(out.end, 100 + r.duration);
    }

    #[test]
    #[should_panic(expected = "at least one line")]
    fn empty_slice_rejected() {
        let mut mc = controller();
        Scrubber::new(4096).slice(&mut mc, 0, 0);
    }
}
