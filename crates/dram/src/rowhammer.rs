//! Row-hammer exposure monitoring (§III).
//!
//! "Row hammer errors can be mitigated by load balancing requests
//! between the independent replicas" — because Dvé serves reads from the
//! nearest copy, per-row activation pressure on any single physical row
//! is roughly halved relative to a single-copy system. [`RowHammerMonitor`]
//! tracks activations per row within refresh windows and reports the
//! worst-case (victim-adjacent) activation count, the quantity row-hammer
//! thresholds are defined over. The `ablation` harness uses it to
//! measure the exposure reduction Dvé's replication provides.

use std::collections::HashMap;

/// Tracks per-row activation counts within refresh windows.
///
/// # Example
///
/// ```
/// use dve_dram::rowhammer::RowHammerMonitor;
///
/// let mut m = RowHammerMonitor::new(23_400 * 8192); // one tREFW in cycles
/// for t in 0..1000u64 {
///     m.record_activation(0, 42, t);
/// }
/// assert_eq!(m.max_activations(), 1000);
/// ```
#[derive(Debug, Clone)]
pub struct RowHammerMonitor {
    window_cycles: u64,
    window_start: u64,
    counts: HashMap<(usize, u64), u64>,
    max_seen: u64,
    windows: u64,
}

impl RowHammerMonitor {
    /// Creates a monitor with the given refresh-window length in cycles
    /// (tREFW; activations reset each window because refresh restores
    /// the victim rows).
    ///
    /// # Panics
    ///
    /// Panics if `window_cycles` is zero.
    pub fn new(window_cycles: u64) -> RowHammerMonitor {
        assert!(window_cycles > 0, "window must be non-zero");
        RowHammerMonitor {
            window_cycles,
            window_start: 0,
            counts: HashMap::new(),
            max_seen: 0,
            windows: 0,
        }
    }

    /// The default DDR4 window: 64 ms at 3 GHz.
    pub fn ddr4_default() -> RowHammerMonitor {
        RowHammerMonitor::new(192_000_000)
    }

    /// Records one row activation of `(bank, row)` at time `now`.
    ///
    /// An activation landing exactly on a window boundary belongs to the
    /// *new* window: refresh restored the victim rows at that instant,
    /// so its count starts the fresh window at 1.
    pub fn record_activation(&mut self, bank: usize, row: u64, now: u64) {
        if now >= self.window_start + self.window_cycles {
            self.counts.clear();
            // Snap the window origin forward, counting every elapsed
            // window (possibly several empty ones) as completed.
            let skipped = (now - self.window_start) / self.window_cycles;
            self.windows += skipped;
            self.window_start += skipped * self.window_cycles;
        }
        let c = self.counts.entry((bank, row)).or_insert(0);
        *c += 1;
        self.max_seen = self.max_seen.max(*c);
    }

    /// The largest activation count any row accumulated within a single
    /// window — the row-hammer exposure metric.
    pub fn max_activations(&self) -> u64 {
        self.max_seen
    }

    /// Rows whose current-window count exceeds `threshold` (candidates
    /// for targeted refresh / request throttling).
    pub fn rows_over(&self, threshold: u64) -> Vec<(usize, u64)> {
        let mut v: Vec<(usize, u64)> = self
            .counts
            .iter()
            .filter(|(_, &c)| c > threshold)
            .map(|(&k, _)| k)
            .collect();
        v.sort_unstable();
        v
    }

    /// Completed refresh windows.
    pub fn windows(&self) -> u64 {
        self.windows
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_within_window() {
        let mut m = RowHammerMonitor::new(1000);
        for t in 0..500 {
            m.record_activation(1, 7, t);
        }
        assert_eq!(m.max_activations(), 500);
        assert_eq!(m.rows_over(400), vec![(1, 7)]);
        assert!(m.rows_over(500).is_empty());
    }

    #[test]
    fn window_rollover_resets_counts() {
        let mut m = RowHammerMonitor::new(1000);
        for t in 0..500 {
            m.record_activation(0, 1, t);
        }
        // Next window: counts restart, max is retained historically.
        m.record_activation(0, 1, 1500);
        assert_eq!(m.max_activations(), 500);
        assert!(
            m.rows_over(100).is_empty(),
            "current window has 1 activation"
        );
        assert_eq!(m.windows(), 1);
    }

    #[test]
    fn distinct_rows_tracked_independently() {
        let mut m = RowHammerMonitor::new(10_000);
        for t in 0..300 {
            m.record_activation(0, t % 3, t);
        }
        assert_eq!(m.max_activations(), 100);
    }

    #[test]
    fn long_idle_skips_windows() {
        let mut m = RowHammerMonitor::new(100);
        m.record_activation(0, 0, 0);
        m.record_activation(0, 0, 100_000);
        assert_eq!(m.max_activations(), 1);
        // Every elapsed window counts as completed, not just one.
        assert_eq!(m.windows(), 1000);
    }

    #[test]
    fn boundary_activation_opens_the_new_window() {
        let mut m = RowHammerMonitor::new(1000);
        for t in 0..500 {
            m.record_activation(0, 9, t);
        }
        // t == 1000 is exactly the boundary: refresh has restored the
        // victims, so this activation starts the new window at 1 and
        // the historical max stays pinned at the old window's 500.
        m.record_activation(0, 9, 1000);
        assert_eq!(m.max_activations(), 500);
        assert_eq!(m.windows(), 1);
        assert!(m.rows_over(1).is_empty(), "new window holds exactly 1");
        m.record_activation(0, 9, 1001);
        assert_eq!(m.rows_over(1), vec![(0, 9)]);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_window_rejected() {
        RowHammerMonitor::new(0);
    }
}
