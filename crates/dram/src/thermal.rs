//! Thermal modeling and risk-aware replica placement (§IV-C).
//!
//! The paper exploits the ~10 °C gradient between the DRAM chip nearest
//! and farthest from the fan: mapping data on hot chips to replicas on
//! cool chips ("risk-inverse mapping") lowers the probability that both
//! copies of a line sit on high-FIT silicon. §IV-C closes with future
//! work this module also implements: *rank-level* thermal profiles
//! ("ranks closer to the processor may exhibit higher temperatures") and
//! memory-controller policies that place the two copies of data in ranks
//! that are not both at high risk.

/// A thermal profile over the chips of one DIMM and the ranks of one
/// channel.
#[derive(Debug, Clone, PartialEq)]
pub struct ThermalProfile {
    /// Temperature of each chip in a DIMM, °C, ordered by distance from
    /// the fan.
    pub chip_celsius: Vec<f64>,
    /// Temperature of each rank in the channel, °C, ordered by distance
    /// from the processor.
    pub rank_celsius: Vec<f64>,
}

impl ThermalProfile {
    /// The paper's profile: a 10 °C gradient across the 9 chips of a
    /// DIMM (§IV-C), and a 6 °C gradient across ranks.
    pub fn paper_default(ranks: usize) -> ThermalProfile {
        let chip_celsius = (0..9).map(|i| 45.0 + 10.0 * i as f64 / 8.0).collect();
        let rank_celsius = (0..ranks.max(1))
            .map(|i| 51.0 - 6.0 * i as f64 / ranks.max(2).saturating_sub(1) as f64)
            .collect();
        ThermalProfile {
            chip_celsius,
            rank_celsius,
        }
    }

    /// Scales a base FIT rate per chip using the Arrhenius relation at
    /// activation energy `ea_ev`, referenced to the coolest chip.
    pub fn chip_fits(&self, base_fit: f64, ea_ev: f64) -> Vec<f64> {
        let t0 = self
            .chip_celsius
            .iter()
            .cloned()
            .fold(f64::INFINITY, f64::min);
        self.chip_celsius
            .iter()
            .map(|&t| crate_arrhenius(base_fit, t0, t, ea_ev))
            .collect()
    }

    /// Per-rank risk scores (relative FIT), referenced to the coolest
    /// rank.
    pub fn rank_risks(&self, ea_ev: f64) -> Vec<f64> {
        let t0 = self
            .rank_celsius
            .iter()
            .cloned()
            .fold(f64::INFINITY, f64::min);
        self.rank_celsius
            .iter()
            .map(|&t| crate_arrhenius(1.0, t0, t, ea_ev))
            .collect()
    }
}

fn crate_arrhenius(fit: f64, t0: f64, t1: f64, ea_ev: f64) -> f64 {
    const K_B: f64 = 8.617_333e-5;
    fit * (ea_ev / K_B * (1.0 / (t0 + 273.15) - 1.0 / (t1 + 273.15))).exp()
}

/// A rank-level replica placement: for each primary rank, the rank (on
/// the other socket's channel) that holds its replica.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RankPlacement {
    /// `replica_rank[i]` is the replica rank paired with primary rank `i`.
    pub replica_rank: Vec<usize>,
}

/// Computes the thermal-risk-minimizing rank pairing: sort primaries by
/// descending risk, replicas by ascending risk, and pair them — the
/// rank-level generalization of the paper's chip-level risk-inverse
/// mapping. Returns the placement and its *joint risk* (sum over pairs
/// of the product of the two risks, the quantity the DUE rate is
/// proportional to).
///
/// # Panics
///
/// Panics if the slices differ in length or are empty.
pub fn risk_inverse_placement(
    primary_risks: &[f64],
    replica_risks: &[f64],
) -> (RankPlacement, f64) {
    assert!(!primary_risks.is_empty(), "need at least one rank");
    assert_eq!(
        primary_risks.len(),
        replica_risks.len(),
        "rank counts must match"
    );
    let n = primary_risks.len();
    let mut primaries: Vec<usize> = (0..n).collect();
    let mut replicas: Vec<usize> = (0..n).collect();
    primaries.sort_by(|&a, &b| primary_risks[b].total_cmp(&primary_risks[a]));
    replicas.sort_by(|&a, &b| replica_risks[a].total_cmp(&replica_risks[b]));
    let mut replica_rank = vec![0usize; n];
    for (p, r) in primaries.iter().zip(&replicas) {
        replica_rank[*p] = *r;
    }
    let joint = joint_risk(
        &RankPlacement {
            replica_rank: replica_rank.clone(),
        },
        primary_risks,
        replica_risks,
    );
    (RankPlacement { replica_rank }, joint)
}

/// The identity pairing (what same-position mirroring is stuck with).
pub fn identity_placement(n: usize) -> RankPlacement {
    RankPlacement {
        replica_rank: (0..n).collect(),
    }
}

/// Joint failure risk of a placement: Σ risk_primary(i) ×
/// risk_replica(pair(i)) — the DUE rate is proportional to this.
pub fn joint_risk(p: &RankPlacement, primary: &[f64], replica: &[f64]) -> f64 {
    p.replica_rank
        .iter()
        .enumerate()
        .map(|(i, &r)| primary[i] * replica[r])
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_profile_shape() {
        let t = ThermalProfile::paper_default(2);
        assert_eq!(t.chip_celsius.len(), 9);
        assert!((t.chip_celsius[8] - t.chip_celsius[0] - 10.0).abs() < 1e-9);
        assert!(
            t.rank_celsius[0] > t.rank_celsius[1],
            "rank 0 nearer the CPU runs hotter"
        );
    }

    #[test]
    fn chip_fits_monotone_with_temperature() {
        let t = ThermalProfile::paper_default(1);
        let fits = t.chip_fits(66.1, 0.6);
        for w in fits.windows(2) {
            assert!(w[1] > w[0]);
        }
        assert!(
            (fits[0] - 66.1).abs() < 1e-9,
            "coolest chip keeps the base FIT"
        );
    }

    #[test]
    fn risk_inverse_beats_identity() {
        let risks = [1.0, 1.3, 1.7, 2.2];
        let (placement, joint) = risk_inverse_placement(&risks, &risks);
        let identity = joint_risk(&identity_placement(4), &risks, &risks);
        assert!(joint < identity, "{joint} !< {identity}");
        // The hottest primary pairs with the coolest replica.
        assert_eq!(placement.replica_rank[3], 0);
        assert_eq!(placement.replica_rank[0], 3);
    }

    #[test]
    fn risk_inverse_is_optimal_among_reversals() {
        // Rearrangement inequality: no transposition improves it.
        let primary = [1.0, 2.0, 4.0];
        let replica = [1.5, 2.5, 3.0];
        let (p, joint) = risk_inverse_placement(&primary, &replica);
        for i in 0..3 {
            for j in (i + 1)..3 {
                let mut alt = p.clone();
                alt.replica_rank.swap(i, j);
                assert!(joint <= joint_risk(&alt, &primary, &replica) + 1e-12);
            }
        }
    }

    #[test]
    fn placement_is_a_permutation() {
        let risks = [3.0, 1.0, 2.0, 5.0, 4.0];
        let (p, _) = risk_inverse_placement(&risks, &risks);
        let mut seen: Vec<usize> = p.replica_rank.clone();
        seen.sort_unstable();
        assert_eq!(seen, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn rank_risks_reference_coolest() {
        let t = ThermalProfile::paper_default(4);
        let r = t.rank_risks(0.6);
        let min = r.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!((min - 1.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn empty_rejected() {
        risk_inverse_placement(&[], &[]);
    }
}
