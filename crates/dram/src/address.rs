//! Physical-address → DRAM coordinate mapping.
//!
//! The decomposition follows the open-page-friendly row-major
//! interleave: consecutive cache lines fill a row buffer (8 KB at rank
//! level), rows interleave across banks, then ranks. A sequential
//! stream camps on one bank for a whole row (127 row hits after the
//! activation), and independent streams usually occupy different banks.

use crate::config::DramConfig;

/// A decoded DRAM location.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DramCoord {
    /// Rank index within the channel.
    pub rank: usize,
    /// Bank index within the rank.
    pub bank: usize,
    /// Row index within the bank.
    pub row: u64,
    /// Column (line offset within the row buffer).
    pub column: usize,
}

/// Maps channel-local byte addresses to DRAM coordinates.
///
/// # Example
///
/// ```
/// use dve_dram::address::AddressMapper;
/// use dve_dram::config::DramConfig;
///
/// let m = AddressMapper::new(DramConfig::ddr4_2400());
/// let a = m.decode(0);
/// let b = m.decode(64); // next line: same open row
/// assert_eq!(a.bank, b.bank);
/// assert_eq!(a.row, b.row);
/// assert_eq!(b.column, a.column + 1);
/// ```
#[derive(Debug, Clone)]
pub struct AddressMapper {
    cfg: DramConfig,
}

impl AddressMapper {
    /// Creates a mapper for the given configuration.
    pub fn new(cfg: DramConfig) -> AddressMapper {
        AddressMapper { cfg }
    }

    /// The configuration in use.
    pub fn config(&self) -> &DramConfig {
        &self.cfg
    }

    /// Decodes a channel-local byte address.
    ///
    /// Layout (low → high bits): line offset | column | bank | rank |
    /// row (row-major, open-page friendly).
    pub fn decode(&self, addr: u64) -> DramCoord {
        let line = addr / self.cfg.line_bytes as u64;
        let cols = self.cfg.lines_per_row() as u64;
        let banks = self.cfg.banks_per_rank as u64;
        let ranks = self.cfg.ranks_per_channel as u64;

        let column = (line % cols) as usize;
        let bank = ((line / cols) % banks) as usize;
        let rank = ((line / (cols * banks)) % ranks) as usize;
        let row = line / (cols * banks * ranks);
        DramCoord {
            rank,
            bank,
            row,
            column,
        }
    }

    /// Re-encodes a coordinate to the lowest byte address it covers
    /// (inverse of [`Self::decode`] up to line granularity).
    pub fn encode(&self, coord: DramCoord) -> u64 {
        let cols = self.cfg.lines_per_row() as u64;
        let banks = self.cfg.banks_per_rank as u64;
        let ranks = self.cfg.ranks_per_channel as u64;
        let line = coord.column as u64
            + coord.bank as u64 * cols
            + coord.rank as u64 * cols * banks
            + coord.row * cols * banks * ranks;
        line * self.cfg.line_bytes as u64
    }

    /// Flat bank identifier (rank-major) for indexing bank state arrays.
    pub fn flat_bank(&self, coord: DramCoord) -> usize {
        coord.rank * self.cfg.banks_per_rank + coord.bank
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mapper() -> AddressMapper {
        AddressMapper::new(DramConfig::ddr4_2400())
    }

    #[test]
    fn decode_encode_roundtrip() {
        let m = mapper();
        for addr in [0u64, 64, 1024, 65536, 1 << 20, (8u64 << 30) - 64] {
            let coord = m.decode(addr);
            assert_eq!(m.encode(coord), addr & !63, "addr={addr:#x}");
        }
    }

    #[test]
    fn sequential_lines_share_a_row() {
        let m = mapper();
        let base = m.decode(0x10000);
        let lines_per_row = m.config().lines_per_row() as u64;
        for i in 1..lines_per_row {
            let c = m.decode(0x10000 + i * 64);
            assert_eq!(c.row, base.row);
            assert_eq!(c.bank, base.bank);
        }
        // The next line rolls to the next bank.
        let next = m.decode(0x10000 + lines_per_row * 64);
        assert_ne!(next.bank, base.bank);
    }

    #[test]
    fn rows_interleave_across_banks() {
        let m = mapper();
        let row_span = m.config().row_buffer_bytes as u64;
        let mut banks_seen = std::collections::HashSet::new();
        for i in 0..16 {
            banks_seen.insert(m.decode(i * row_span).bank);
        }
        assert_eq!(banks_seen.len(), 16, "16 consecutive rows hit 16 banks");
    }

    #[test]
    fn flat_bank_is_dense_and_unique() {
        let m = mapper();
        let mut seen = std::collections::HashSet::new();
        for bank in 0..16 {
            let coord = DramCoord {
                rank: 0,
                bank,
                row: 0,
                column: 0,
            };
            assert!(seen.insert(m.flat_bank(coord)));
        }
        assert_eq!(seen.len(), m.config().total_banks());
    }
}
