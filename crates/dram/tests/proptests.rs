//! Property-based tests for the DRAM substrate.

use dve_dram::address::AddressMapper;
use dve_dram::config::DramConfig;
use dve_dram::controller::{AccessKind, MemoryController};
use dve_dram::fault::{FaultDomain, FaultState};
use dve_sim::time::Cycles;
use proptest::prelude::*;

proptest! {
    // Address mapping is a bijection at line granularity.
    #[test]
    fn address_mapping_bijective(addr in 0u64..(8u64 << 30)) {
        let m = AddressMapper::new(DramConfig::ddr4_2400());
        let coord = m.decode(addr);
        prop_assert_eq!(m.encode(coord), addr & !63);
        prop_assert!(coord.bank < 16);
        prop_assert!(coord.column < m.config().lines_per_row());
    }

    // Controller timing invariants: completion after arrival, latency at
    // least the row-hit floor and (uncontended) at most conflict +
    // refresh-window, monotone per bank.
    #[test]
    fn controller_latency_bounds(
        addrs in proptest::collection::vec(0u64..(1u64 << 24), 1..100),
        gap in 0u64..500,
    ) {
        let cfg = DramConfig::ddr4_2400_no_refresh();
        let hit = cfg.hit_latency().raw();
        let mut mc = MemoryController::new(0, cfg);
        let mut t = 0u64;
        for addr in addrs {
            let r = mc.access(addr, AccessKind::Read, Cycles(t));
            prop_assert!(r.complete_at.raw() >= t + hit);
            prop_assert!(r.latency.raw() >= hit);
            t = t + gap + 1;
        }
        let s = mc.stats();
        prop_assert_eq!(s.row_hits + s.row_misses + s.row_conflicts, s.reads);
    }

    // Fault impact is monotone: adding fault domains never un-corrupts a
    // read, and repair restores cleanliness exactly.
    #[test]
    fn fault_state_monotone(
        addr in 0u64..(1u64 << 24),
        chips in proptest::collection::btree_set(0usize..9, 0..5),
    ) {
        let mapper = AddressMapper::new(DramConfig::ddr4_2400());
        let mut f = FaultState::new();
        let mut last = 0usize;
        for &chip in &chips {
            f.fail(FaultDomain::Chip { channel: 0, rank: 0, chip });
            let impact = f.impact(0, addr, &mapper).expect("chip fault must impact rank reads");
            prop_assert!(impact.symbols_corrupted >= last.max(1));
            last = impact.symbols_corrupted;
        }
        prop_assert_eq!(last, chips.len().max(if chips.is_empty() { 0 } else { 1 }));
        for &chip in &chips {
            f.repair(FaultDomain::Chip { channel: 0, rank: 0, chip });
        }
        prop_assert!(f.impact(0, addr, &mapper).is_none());
    }

    // ScrubReport partition invariant under arbitrary fault
    // populations: every patrol-read line is exactly one of
    // clean / corrected / detected, for full passes and for paced
    // slices alike — and the slices of one pass sum to the full pass.
    #[test]
    fn scrub_report_partitions_lines(
        lines in proptest::collection::btree_set(0u64..64, 0..8),
        chips in proptest::collection::btree_set(0usize..4, 0..3),
        slice_lines in 1u64..32,
    ) {
        use dve_dram::scrub::Scrubber;
        let region: u64 = 1 << 12; // 64 lines
        let mk = || {
            let mut mc = MemoryController::new(0, DramConfig::ddr4_2400_no_refresh());
            for &line in &lines {
                mc.faults_mut().fail(FaultDomain::Line { channel: 0, line });
            }
            for &chip in &chips {
                mc.faults_mut().fail(FaultDomain::Chip { channel: 0, rank: 0, chip });
            }
            mc
        };
        // Full pass partitions.
        let mut mc = mk();
        let full = Scrubber::new(region).full_pass(&mut mc, 0);
        prop_assert_eq!(full.lines, full.clean + full.corrected + full.detected);
        prop_assert_eq!(full.lines, region / 64);
        // Paced slices partition individually and sum to one pass.
        // (Corrected lines are rewritten in place by both paths, so we
        // compare against a fresh controller with the same faults.)
        let mut mc = mk();
        let mut s = Scrubber::new(region);
        let mut sum = dve_dram::scrub::ScrubReport::default();
        let mut t = 0u64;
        while s.passes() == 0 {
            let slice = s.slice(&mut mc, t, slice_lines);
            let r = &slice.report;
            prop_assert_eq!(r.lines, r.clean + r.corrected + r.detected);
            prop_assert_eq!(u64::from(slice.wrapped), s.passes());
            sum.lines += r.lines;
            sum.clean += r.clean;
            sum.corrected += r.corrected;
            sum.detected += r.detected;
            t = slice.end;
        }
        prop_assert_eq!(sum.lines, full.lines);
        prop_assert_eq!(sum.clean, full.clean);
        prop_assert_eq!(sum.corrected, full.corrected);
        prop_assert_eq!(sum.detected, full.detected);
    }

    // Scrub duration is monotone in the number of lines patrolled:
    // prefixes of a pass never cost more than the longer run, whatever
    // fault population is present.
    #[test]
    fn scrub_duration_monotone_in_lines(
        lines in proptest::collection::btree_set(0u64..128, 0..10),
        regions in proptest::collection::btree_set(1u64..16, 2..6),
    ) {
        use dve_dram::scrub::Scrubber;
        let mut last = (0u64, 0u64); // (lines, duration)
        for &r in &regions {
            let mut mc = MemoryController::new(0, DramConfig::ddr4_2400_no_refresh());
            for &line in &lines {
                mc.faults_mut().fail(FaultDomain::Line { channel: 0, line });
            }
            let report = Scrubber::new(r * 4096).full_pass(&mut mc, 0);
            prop_assert!(report.lines > last.0);
            prop_assert!(
                report.duration >= last.1,
                "{} lines took {} < {} for {} lines",
                report.lines, report.duration, last.1, last.0
            );
            last = (report.lines, report.duration);
        }
    }

    // Energy accounting is additive under merge.
    #[test]
    fn energy_additive(reads in 0u64..1000, writes in 0u64..1000, acts in 0u64..1000) {
        use dve_dram::energy::EnergyModel;
        let mut a = EnergyModel::new(1);
        let mut b = EnergyModel::new(1);
        for _ in 0..reads { a.count_read(); }
        for _ in 0..writes { b.count_write(); }
        for _ in 0..acts { a.count_activate(); }
        let (ja, jb) = (a.dynamic_joules(), b.dynamic_joules());
        a.merge(&b);
        prop_assert!((a.dynamic_joules() - (ja + jb)).abs() < 1e-15);
    }
}
