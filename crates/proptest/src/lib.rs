//! A self-contained, offline drop-in for the subset of the `proptest`
//! API this workspace's property tests use.
//!
//! The build environment has no network access to crates.io, so the real
//! `proptest` crate cannot be fetched. Rather than rewriting every
//! property test, this crate re-implements the small surface they rely
//! on:
//!
//! * the [`proptest!`] macro (with optional `#![proptest_config(..)]`),
//! * [`prop_assert!`] / [`prop_assert_eq!`] / [`prop_assert_ne!`] /
//!   [`prop_assume!`],
//! * [`Strategy`] implementations for integer/float ranges, tuples and
//!   [`any`] (via [`Arbitrary`]),
//! * [`collection::vec`], [`collection::btree_set`] and
//!   [`collection::hash_map`].
//!
//! Semantics differ from upstream proptest in two deliberate ways:
//! there is **no shrinking** (failures report the raw generated case),
//! and generation is **fully deterministic**: every test derives its RNG
//! seed from its module path and name, so failures reproduce exactly
//! across runs and machines. `PROPTEST_CASES` overrides the per-test
//! case count (default 64).

pub mod collection;
pub mod prelude;
pub mod strategy;

pub use strategy::{any, Any, Arbitrary, Strategy};

use std::fmt;

/// Per-`proptest!` block configuration (only `cases` is supported).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Resolves the effective case count: `PROPTEST_CASES` env override, or
/// the block's configured value.
pub fn resolve_cases(configured: u32) -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(configured)
        .max(1)
}

/// Why a single generated case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs; the case is skipped.
    Reject,
    /// An assertion failed with this message.
    Fail(String),
}

impl TestCaseError {
    /// Builds a failure with a message.
    pub fn fail(msg: impl Into<String>) -> TestCaseError {
        TestCaseError::Fail(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Reject => write!(f, "input rejected by prop_assume!"),
            TestCaseError::Fail(m) => write!(f, "{m}"),
        }
    }
}

/// The deterministic generator behind every strategy (SplitMix64; kept
/// local so this crate has zero dependencies).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator from a raw seed.
    pub fn new(seed: u64) -> TestRng {
        TestRng { state: seed }
    }

    /// Derives a stable seed from a test's fully qualified name
    /// (FNV-1a), so each test gets its own reproducible stream.
    pub fn from_name(name: &str) -> TestRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.as_bytes() {
            h ^= *b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng::new(h)
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform value in `[0, bound)` over the full `u128` span.
    pub fn below_u128(&mut self, bound: u128) -> u128 {
        debug_assert!(bound > 0);
        if bound <= u64::MAX as u128 {
            self.below(bound as u64) as u128
        } else {
            // Rejection-free 128-bit reduction via double draw.
            let raw = ((self.next_u64() as u128) << 64) | self.next_u64() as u128;
            // Multiply-shift on 128 bits loses the high part; use modulo
            // (bias is negligible for test generation purposes).
            raw % bound
        }
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Defines property tests. Supports the upstream form:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(32))]
///     #[test]
///     fn my_property(x in 0u64..100, flips in any::<bool>()) {
///         prop_assert!(x < 100);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!{ (<$crate::ProptestConfig as ::std::default::Default>::default()) $($rest)* }
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_items {
    (($cfg:expr) $($(#[$meta:meta])+ fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])+
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let cases = $crate::resolve_cases(config.cases);
                let mut rng = $crate::TestRng::from_name(
                    concat!(module_path!(), "::", stringify!($name)),
                );
                let mut ran = 0u32;
                let mut attempts = 0u32;
                while ran < cases && attempts < cases.saturating_mul(20) {
                    attempts += 1;
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)+
                    let outcome = (move || -> ::std::result::Result<(), $crate::TestCaseError> {
                        $body
                        #[allow(unreachable_code)]
                        Ok(())
                    })();
                    match outcome {
                        Ok(()) => ran += 1,
                        Err($crate::TestCaseError::Reject) => continue,
                        Err($crate::TestCaseError::Fail(msg)) => {
                            panic!(
                                "proptest {} failed (case {} of {}): {}",
                                stringify!($name), ran + 1, cases, msg,
                            );
                        }
                    }
                }
            }
        )*
    };
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let l = &$left;
        let r = &$right;
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                l,
                r,
            )));
        }
    }};
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let l = &$left;
        let r = &$right;
        if *l == *r {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                l,
            )));
        }
    }};
}

/// Skips the current case when its inputs do not satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn rng_is_deterministic_per_name() {
        let mut a = crate::TestRng::from_name("x::y");
        let mut b = crate::TestRng::from_name("x::y");
        let mut c = crate::TestRng::from_name("x::z");
        assert_eq!(a.next_u64(), b.next_u64());
        assert_ne!(a.next_u64(), c.next_u64());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u64..17, y in 1u8.., f in -2.0f64..2.0) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(y >= 1);
            prop_assert!((-2.0..2.0).contains(&f));
        }

        #[test]
        fn assume_rejects(pair in (0u8..10, 0u8..10)) {
            prop_assume!(pair.0 != pair.1);
            prop_assert_ne!(pair.0, pair.1);
        }

        #[test]
        fn collections_respect_sizes(
            v in crate::collection::vec(any::<u8>(), 4),
            s in crate::collection::btree_set(0usize..100, 1..=3),
            m in crate::collection::hash_map(0u64..50, any::<bool>(), 2..6),
        ) {
            prop_assert_eq!(v.len(), 4);
            prop_assert!((1..=3).contains(&s.len()));
            prop_assert!((2..6).contains(&m.len()));
        }
    }
}
