//! Collection strategies: `vec`, `btree_set`, `hash_map`.

use crate::strategy::Strategy;
use crate::TestRng;
use std::collections::{BTreeSet, HashMap};
use std::hash::Hash;
use std::ops::{Range, RangeInclusive};

/// An inclusive size band for generated collections.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl SizeRange {
    fn pick(&self, rng: &mut TestRng) -> usize {
        self.lo + rng.below((self.hi - self.lo + 1) as u64) as usize
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> SizeRange {
        SizeRange { lo: n, hi: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> SizeRange {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> SizeRange {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}

/// Strategy for `Vec<S::Value>` with a length in `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// See [`vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let n = self.size.pick(rng);
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}

/// Strategy for `BTreeSet<S::Value>` with a cardinality in `size`
/// (best-effort when the element domain is smaller than the target).
pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    BTreeSetStrategy {
        element,
        size: size.into(),
    }
}

/// See [`btree_set`].
#[derive(Debug, Clone)]
pub struct BTreeSetStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S> Strategy for BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    type Value = BTreeSet<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
        let target = self.size.pick(rng);
        let mut out = BTreeSet::new();
        let mut attempts = 0usize;
        while out.len() < target && attempts < target * 20 + 100 {
            out.insert(self.element.generate(rng));
            attempts += 1;
        }
        out
    }
}

/// Strategy for `HashMap<K::Value, V::Value>` with a cardinality in
/// `size` (best-effort when the key domain is small).
pub fn hash_map<K, V>(keys: K, values: V, size: impl Into<SizeRange>) -> HashMapStrategy<K, V>
where
    K: Strategy,
    K::Value: Eq + Hash,
    V: Strategy,
{
    HashMapStrategy {
        keys,
        values,
        size: size.into(),
    }
}

/// See [`hash_map`].
#[derive(Debug, Clone)]
pub struct HashMapStrategy<K, V> {
    keys: K,
    values: V,
    size: SizeRange,
}

impl<K, V> Strategy for HashMapStrategy<K, V>
where
    K: Strategy,
    K::Value: Eq + Hash,
    V: Strategy,
{
    type Value = HashMap<K::Value, V::Value>;
    fn generate(&self, rng: &mut TestRng) -> HashMap<K::Value, V::Value> {
        let target = self.size.pick(rng);
        let mut out = HashMap::new();
        let mut attempts = 0usize;
        while out.len() < target && attempts < target * 20 + 100 {
            let k = self.keys.generate(rng);
            let v = self.values.generate(rng);
            out.insert(k, v);
            attempts += 1;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::any;

    #[test]
    fn vec_exact_and_banded_sizes() {
        let mut rng = TestRng::new(7);
        let v = vec(any::<u8>(), 16).generate(&mut rng);
        assert_eq!(v.len(), 16);
        for _ in 0..100 {
            let v = vec(any::<u8>(), 1..5).generate(&mut rng);
            assert!((1..5).contains(&v.len()));
        }
    }

    #[test]
    fn set_capped_by_small_domain() {
        let mut rng = TestRng::new(8);
        // Domain {0,1}: asking for up to 5 members must terminate.
        let s = btree_set(0u8..2, 0..6).generate(&mut rng);
        assert!(s.len() <= 2);
    }

    #[test]
    fn map_sizes_in_band() {
        let mut rng = TestRng::new(9);
        for _ in 0..50 {
            let m = hash_map(0u64..1000, any::<bool>(), 2..10).generate(&mut rng);
            assert!((2..10).contains(&m.len()));
        }
    }
}
