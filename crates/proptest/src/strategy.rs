//! Value-generation strategies: ranges, tuples, and [`any`].

use crate::TestRng;
use std::marker::PhantomData;
use std::ops::{Range, RangeFrom, RangeInclusive};

/// A source of random values of one type.
///
/// Unlike upstream proptest there is no shrinking: a strategy is just a
/// deterministic function of the test RNG.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Generates an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(PhantomData<T>);

/// A strategy producing any value of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
arbitrary_uint!(u8, u16, u32, u64, usize);

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
arbitrary_int!(i8, i16, i32, i64, isize);

impl Arbitrary for u128 {
    fn arbitrary(rng: &mut TestRng) -> u128 {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite, sign-symmetric, wide dynamic range.
        let mag = rng.unit_f64() * 1e12;
        if rng.next_u64() & 1 == 1 {
            -mag
        } else {
            mag
        }
    }
}

impl<T: Arbitrary, const N: usize> Arbitrary for [T; N] {
    fn arbitrary(rng: &mut TestRng) -> [T; N] {
        std::array::from_fn(|_| T::arbitrary(rng))
    }
}

impl<T: Arbitrary> Arbitrary for Option<T> {
    fn arbitrary(rng: &mut TestRng) -> Option<T> {
        if rng.next_u64() & 1 == 1 {
            Some(T::arbitrary(rng))
        } else {
            None
        }
    }
}

// ---- integer ranges ----------------------------------------------------

macro_rules! range_strategy_uint {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = self.end as u128 - self.start as u128;
                (self.start as u128 + rng.below_u128(span)) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "empty range strategy");
                let span = *self.end() as u128 - *self.start() as u128 + 1;
                (*self.start() as u128 + rng.below_u128(span)) as $t
            }
        }
        impl Strategy for RangeFrom<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let span = <$t>::MAX as u128 - self.start as u128 + 1;
                (self.start as u128 + rng.below_u128(span)) as $t
            }
        }
    )*};
}
range_strategy_uint!(u8, u16, u32, u64, usize);

macro_rules! range_strategy_int {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + rng.below_u128(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "empty range strategy");
                let span = (*self.end() as i128 - *self.start() as i128) as u128 + 1;
                (*self.start() as i128 + rng.below_u128(span) as i128) as $t
            }
        }
    )*};
}
range_strategy_int!(i8, i16, i32, i64, isize);

// ---- float ranges --------------------------------------------------------

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start() <= self.end(), "empty range strategy");
        self.start() + rng.unit_f64() * (self.end() - self.start())
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() as f32 * (self.end - self.start)
    }
}

// ---- tuples --------------------------------------------------------------

macro_rules! tuple_strategy {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}
tuple_strategy!(A: 0);
tuple_strategy!(A: 0, B: 1);
tuple_strategy!(A: 0, B: 1, C: 2);
tuple_strategy!(A: 0, B: 1, C: 2, D: 3);

// `Just` is occasionally handy for parameterizing shared test bodies.
/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_range_from_covers_extremes_eventually() {
        let mut rng = TestRng::new(1);
        let mut seen_high = false;
        for _ in 0..10_000 {
            let v = Strategy::generate(&(0u8..), &mut rng);
            if v > 250 {
                seen_high = true;
            }
        }
        assert!(seen_high);
    }

    #[test]
    fn inclusive_range_hits_both_ends() {
        let mut rng = TestRng::new(2);
        let (mut lo, mut hi) = (false, false);
        for _ in 0..1000 {
            match Strategy::generate(&(0u8..=1), &mut rng) {
                0 => lo = true,
                1 => hi = true,
                _ => unreachable!(),
            }
        }
        assert!(lo && hi);
    }

    #[test]
    fn signed_range_in_bounds() {
        let mut rng = TestRng::new(3);
        for _ in 0..1000 {
            let v = Strategy::generate(&(-5i64..5), &mut rng);
            assert!((-5..5).contains(&v));
        }
    }

    #[test]
    fn tuples_compose() {
        let mut rng = TestRng::new(4);
        let (a, b) = Strategy::generate(&(0u64..10, any::<bool>()), &mut rng);
        assert!(a < 10);
        let _ = b;
    }
}
