//! The names test files import via `use proptest::prelude::*;`.

pub use crate::strategy::{any, Any, Arbitrary, Just, Strategy};
pub use crate::{
    prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, ProptestConfig,
    TestCaseError,
};

/// Upstream proptest re-exports the crate root as `proptest` inside the
/// prelude so `proptest::collection::vec(..)` works either way; mirror
/// the collection module path here.
pub mod proptest_crate {
    pub use crate::collection;
}
