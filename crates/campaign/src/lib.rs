//! # dve-campaign — Monte Carlo fault-injection campaigns
//!
//! Empirically cross-validates the analytical reliability model of §IV
//! (`dve-reliability`) by *running* accelerated fault campaigns against
//! the real machinery of the rest of the workspace:
//!
//! * [`sampler`] draws per-chip failures (bit / pin / chip granularity,
//!   transient or permanent) at the accelerated per-window probability
//!   of [`dve_reliability::accel::AccelParams`];
//! * [`trial`] adjudicates each fault set with the *real* codecs
//!   (`Rs::chipkill()`, detect-only DSD/TSD) against golden data — so
//!   SDCs are genuine detection misses and RS miscorrections — and
//!   replays a seeded workload slice on [`dve::RecoverableMemory`] with
//!   fault hooks, patrol scrub, and §V-B2 transient write-repair,
//!   logging recovery events;
//! * [`runner`] fans seeded trials across `std::thread` workers via
//!   chunked work-stealing over a shared atomic cursor, with
//!   cache-line-padded per-worker accumulators and bit-reproducible,
//!   worker-count-independent aggregation plus Wilson confidence
//!   intervals. [`runner::SamplingMode::Stratified`] partitions the
//!   trial budget over `(fault count, all-chip)` strata so rare
//!   miscorrection/escape events get tight nonzero CIs;
//! * [`report`] compares the empirical DUE/SDC mass to the exact
//!   binomial expectations of [`dve_reliability::accel::AccelModel`]
//!   (same probability space, so agreement is exact up to sampling
//!   noise and the documented SDC model fidelity), reweights
//!   stratified campaigns without bias, prints Table I's real-scale
//!   analytical rows and per-stratum breakdowns alongside, and
//!   serializes per-trial recovery events as CSV and a compact binary
//!   log.
//!
//! Entry point: `cargo run -p dve-bench --bin campaign --release`.

pub mod report;
pub mod runner;
pub mod sampler;
pub mod trial;

pub use report::{
    read_events_binary, stratified_rate, write_events_binary, write_events_csv, CampaignReport,
    SchemeEventLog, SchemeReport, StratumRow, Verdict,
};
pub use runner::{
    run_all, run_campaign, wilson_interval, CampaignConfig, CampaignResult, OutcomeCounts,
    SamplingMode, StratumResult, MERGE_TEST_WORKERS,
};
pub use sampler::{
    ChipFault, FaultSample, FaultSampler, Granularity, Side, StrataPlan, Stratum, StratumSpec,
    DEFAULT_TAIL_MIN,
};
pub use trial::{CampaignScheme, TrialExecutor, TrialOutcome, TrialResult};
